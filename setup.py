"""Setuptools shim.

The modern PEP 660 editable-install path requires the ``wheel`` package;
this shim keeps ``pip install -e .`` / ``python setup.py develop`` working
on minimal offline environments (like the one this reproduction targets)
where only setuptools is available.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
