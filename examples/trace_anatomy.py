#!/usr/bin/env python3
"""Fig. 2 walkthrough: watch MOSAIC process traces step by step.

Renders the paper's trace-processing panels (raw operations, merged
operations, periodicity result, temporal chunks, metadata rate) for a
few contrasting application archetypes, including the kept-open
checkpointer whose periodicity Darshan hides (§IV-A).

Run:  python examples/trace_anatomy.py [cohort ...]
"""

import sys

import numpy as np

from repro.synth import cohort_by_name, generate_run
from repro.viz import render_trace_anatomy

DEFAULT_COHORTS = [
    "rcw",                 # read input, compute, write result
    "rcw_ckpt_periodic",   # file-per-checkpoint: periodicity detectable
    "rcw_ckpt_hidden",     # kept-open checkpoints: flattened to steady
    "sim_per_rw",          # periodic reads AND periodic writes
]


def main() -> None:
    cohorts = sys.argv[1:] or DEFAULT_COHORTS
    rng = np.random.default_rng(42)
    for name in cohorts:
        spec = cohort_by_name(name).build(1, rng)
        trace = generate_run(spec, 1, rng, force_nominal=True)
        print("=" * 100)
        print(f"cohort: {name}")
        print("=" * 100)
        print(render_trace_anatomy(trace, width=90))
        print()
        if name == "rcw_ckpt_hidden":
            print("note: this application checkpoints periodically, but its "
                  "files stay open for the whole run, so Darshan flattens "
                  "the events into one window -> MOSAIC (correctly, given "
                  "its input) reports write_steady.  The paper estimates "
                  "most of the 37% write_steady traffic is this case.\n")


if __name__ == "__main__":
    main()
