#!/usr/bin/env python3
"""Quickstart: categorize a single I/O trace with MOSAIC.

Builds a Darshan-equivalent trace by hand (an application that reads its
input at startup, checkpoints every ten minutes, and writes a final
result), runs the categorizer, and prints the assigned categories plus
the calculated values — the paper's workflow step ④ output.

Run:  python examples/quickstart.py
"""

import json

from repro import categorize_trace
from repro.darshan import FileRecord, JobMeta, Trace

GB = 1024**3


def build_trace() -> Trace:
    """A 4-hour, 64-rank simulation traced like Blue Waters Darshan."""
    run_time = 4 * 3600.0
    meta = JobMeta(
        job_id=9807799,
        uid=380111,
        exe="iobubble.exe",
        nprocs=64,
        start_time=1_554_861_840.0,  # 2019-04-10, like the paper's Fig. 2
        end_time=1_554_861_840.0 + run_time,
    )
    records = []

    # input read at startup: every rank reads its shard of a 40 GB mesh
    for rank in range(8):
        records.append(
            FileRecord(
                file_id=100 + rank,
                file_name=f"mesh/part{rank:03d}.h5",
                rank=rank,
                opens=1, closes=1, seeks=1, reads=300,
                bytes_read=5 * GB,
                open_start=2.0, close_end=95.0,
                read_start=3.0 + 0.4 * rank, read_end=90.0 + 0.4 * rank,
            )
        )

    # checkpoint every 600 s, one fresh file per checkpoint
    n_checkpoints = int(run_time // 600) - 1
    for k in range(n_checkpoints):
        t0 = 300.0 + k * 600.0
        records.append(
            FileRecord(
                file_id=1000 + k,
                file_name=f"ckpt/step{k:05d}.dat",
                rank=-1,  # shared: ranks write collectively
                opens=64, closes=64, seeks=64, writes=6400,
                bytes_written=2 * GB,
                open_start=t0, close_end=t0 + 25.0,
                write_start=t0 + 0.5, write_end=t0 + 24.0,
            )
        )

    # final result just before the end
    records.append(
        FileRecord(
            file_id=9999,
            file_name="out/final.h5",
            rank=-1,
            opens=64, closes=64, seeks=64, writes=4000,
            bytes_written=6 * GB,
            open_start=run_time - 90.0, close_end=run_time - 5.0,
            write_start=run_time - 88.0, write_end=run_time - 6.0,
        )
    )
    return Trace(meta=meta, records=records)


def main() -> None:
    trace = build_trace()
    result = categorize_trace(trace)

    print(f"job {result.job_id} ({result.exe}, {result.nprocs} ranks, "
          f"{result.run_time / 3600:.1f} h)")
    print("\ncategories:")
    for cat in sorted(c.value for c in result.categories):
        print(f"  - {cat}")

    for direction, groups in result.periodic_groups.items():
        for g in groups:
            print(f"\nperiodic {direction}: period {g.period:.0f}s, "
                  f"{g.n_occurrences} occurrences, "
                  f"{g.mean_volume / GB:.1f} GB each, "
                  f"busy {g.busy_fraction:.0%} of the period")

    print(f"\nmetadata: peak {result.metadata_peak_rate:.0f} req/s, "
          f"mean {result.metadata_mean_rate:.1f} req/s, "
          f"{result.metadata_n_spikes} spike seconds")

    print("\nJSON output (workflow step 4):")
    print(json.dumps(result.to_dict(), indent=2)[:600] + " ...")


if __name__ == "__main__":
    main()
