#!/usr/bin/env python3
"""Reproduce the paper's evaluation on a scaled synthetic "year of Blue
Waters": the Fig. 3 funnel, Table II, Table III, Fig. 4, the Fig. 5
Jaccard pairs, the §IV-D correlations, and the §IV-E accuracy estimate.

This is the library-API walkthrough of everything ``mosaic report`` does,
plus the accuracy measurement (possible here because the synthetic
corpus carries ground truth).

Run:  python examples/blue_waters_year.py [n_apps]
"""

import sys

from repro import SyntheticSource, run_pipeline_stream
from repro.analysis import (
    estimate_accuracy,
    funnel_report,
    jaccard_matrix,
    metadata_table,
    paper_correlations,
    periodicity_table,
    temporality_table,
)
from repro.synth import FleetConfig
from repro.viz import render_jaccard, render_shares_table


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    print(f"generating calibrated corpus (n_apps={n_apps}, "
          f"paper scale is 24,606)...")
    # the streaming pipeline pulls traces through a lazy source; swap in
    # DirectorySource(path) to run the same analysis out of core on disk
    source = SyntheticSource(FleetConfig(n_apps=n_apps, seed=2019))
    result = run_pipeline_stream(source)
    fleet = source.fleet
    print(f"  {fleet.n_input} traces ({fleet.n_valid} valid executions, "
          f"{fleet.n_corrupted} corrupted)")
    print("  stage metrics: "
          + ", ".join(f"{k}={v}" for k, v in sorted(result.metrics.items())))
    weights = result.run_weights()

    print("\n-- Fig. 3: pre-processing funnel "
          "(paper: 462,502 -> 32% corrupted -> 8% unique -> 24,606) --")
    fun = funnel_report(result.preprocess)
    for stage in fun.stages:
        print(f"  {stage.name:>30}: {stage.count:>7}  ({stage.retention:.0%} kept)")

    print("\n-- Table II: periodic writes "
          "(paper: 2% of apps, 8% of executions, minutes to hours) --")
    print(render_shares_table(periodicity_table(result.results, weights, "write")))

    print("\n-- Table III: temporality "
          "(paper single/all: read 85/27, 9/38, 2/30, 4/5; "
          "write 87/47, 8/14, 3/37, 2/2) --")
    print(render_shares_table(temporality_table(result.results, weights)))

    print("\n-- Fig. 4: metadata categories "
          "(paper all-runs: spike 60%, multiple 45.9%, density ~13%) --")
    print(render_shares_table(metadata_table(result.results, weights)))

    print("\n-- Fig. 5: Jaccard pairs > 1% --")
    print(render_jaccard(jaccard_matrix(result.results)))

    corr = paper_correlations(result.results)
    print("\n-- SIV-D: noteworthy correlations --")
    print(f"  P(write insig | read insig)     = {corr.insig_read_implies_insig_write:.0%}  (paper 95%)")
    print(f"  P(write on end | read on start) = {corr.read_start_implies_write_end:.0%}  (paper 66%)")
    print(f"  periodic writers < 25% busy     = {corr.periodic_writes_low_busy:.0%}  (paper 96%)")

    acc = estimate_accuracy(result.results, fleet.truth, sample_size=512, seed=0)
    print("\n-- SIV-E: accuracy via 512-trace sampling (paper: 92%) --")
    print(f"  {acc.accuracy:.1%}  [{acc.ci_low:.1%}, {acc.ci_high:.1%}], "
          f"{acc.n_incorrect} wrong, dominant error axis: "
          f"{acc.dominant_error_axis() or 'none'}")


if __name__ == "__main__":
    main()
