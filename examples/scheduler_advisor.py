#!/usr/bin/env python3
"""I/O-aware job scheduling from MOSAIC categories.

The paper's conclusion motivates the categorization with scheduling:
"two jobs categorized as reading large volumes of data at the start of
execution could be scheduled so as not to overlap."  This example builds
that advisor: it categorizes a queue of jobs, derives each job's
*contention profile* (when it pressures the PFS: start, end, steadily,
periodically, metadata server), and greedily staggers start times so
that start-burst readers never launch together and metadata-storm jobs
are spread out.

Run:  python examples/scheduler_advisor.py
"""

from dataclasses import dataclass

import numpy as np

from repro import Category, categorize_trace
from repro.core import CategorizationResult
from repro.synth import cohort_by_name, generate_run

#: Cohorts standing in for a realistic submission queue.
QUEUE = [
    ("climate-sim", "rcw"),
    ("cfd-solver", "rcw"),
    ("lattice-qcd", "rcw_ckpt_periodic"),
    ("genomics-pre", "r_only"),
    ("ml-training", "sim_per_w"),
    ("post-process", "w_only_end"),
    ("viz-extract", "r_only"),
    ("archive-pack", "silent"),
]


@dataclass
class ContentionProfile:
    """When a job pressures the storage system."""

    name: str
    start_burst: bool     # reads/writes heavily right after launch
    end_burst: bool       # heavy I/O at the end
    steady: bool          # sustained bandwidth over the whole run
    periodic: bool        # recurring checkpoint pressure
    metadata_storm: bool  # spikes on the metadata server

    @classmethod
    def from_result(cls, name: str, r: CategorizationResult) -> "ContentionProfile":
        cats = r.categories
        return cls(
            name=name,
            start_burst=(
                Category.READ_ON_START in cats or Category.WRITE_ON_START in cats
            ),
            end_burst=(
                Category.WRITE_ON_END in cats or Category.READ_ON_END in cats
            ),
            steady=(
                Category.READ_STEADY in cats or Category.WRITE_STEADY in cats
            ),
            periodic=Category.PERIODIC in cats,
            metadata_storm=(
                Category.METADATA_HIGH_SPIKE in cats
                or Category.METADATA_HIGH_DENSITY in cats
            ),
        )

    def conflicts_at_launch(self, other: "ContentionProfile") -> bool:
        """Would launching these two jobs together collide on the PFS?"""
        if self.start_burst and other.start_burst:
            return True  # the paper's canonical example
        if self.metadata_storm and other.metadata_storm:
            return True
        return False


def advise(profiles: list[ContentionProfile], slot_s: float = 300.0) -> list[tuple[str, float]]:
    """Greedy start-time staggering: each job takes the earliest slot
    whose co-launched jobs it does not conflict with."""
    slots: list[list[ContentionProfile]] = []
    schedule: list[tuple[str, float]] = []
    for p in profiles:
        placed = False
        for i, slot in enumerate(slots):
            if not any(p.conflicts_at_launch(q) for q in slot):
                slot.append(p)
                schedule.append((p.name, i * slot_s))
                placed = True
                break
        if not placed:
            slots.append([p])
            schedule.append((p.name, (len(slots) - 1) * slot_s))
    return schedule


def main() -> None:
    rng = np.random.default_rng(7)
    profiles = []
    print("categorizing the submission queue...\n")
    for i, (name, cohort) in enumerate(QUEUE):
        spec = cohort_by_name(cohort).build(5000 + i, rng)
        trace = generate_run(spec, 5000 + i, rng, force_nominal=True)
        result = categorize_trace(trace)
        profile = ContentionProfile.from_result(name, result)
        profiles.append(profile)
        flags = [
            flag for flag, on in (
                ("start-burst", profile.start_burst),
                ("end-burst", profile.end_burst),
                ("steady", profile.steady),
                ("periodic", profile.periodic),
                ("metadata-storm", profile.metadata_storm),
            ) if on
        ]
        print(f"  {name:14s} -> {', '.join(flags) or 'quiet'}")

    print("\nnaive schedule: everything launches at t=0 "
          f"({sum(p.start_burst for p in profiles)} start-burst jobs collide)")

    schedule = advise(profiles)
    print("\nI/O-aware schedule (5-minute launch slots):")
    for name, t in sorted(schedule, key=lambda x: x[1]):
        print(f"  t+{t:5.0f}s  {name}")

    n_slots = len({t for _, t in schedule})
    print(f"\nstart-burst and metadata-storm jobs spread over {n_slots} "
          "launch slots; steady/periodic jobs share slots freely.")

    quantify(schedule)


def quantify(schedule: list[tuple[str, float]]) -> None:
    """Measure the schedule's effect with the PFS contention simulator
    (see repro.interference): eight launch-burst readers on a PFS sized
    at a quarter of their aggregate demand."""
    from repro.interference import (
        IOPhase,
        IOProfile,
        Schedule,
        evaluate_schedule,
        schedule_together,
    )

    GB = 1024**3
    profiles = [
        IOProfile(name=f"job{i}", run_time=3600.0,
                  phases=(IOPhase(0.0, 60.0, 100 * GB, "read"),))
        for i in range(8)
    ]
    bandwidth = 3.3 * GB
    baseline = evaluate_schedule(schedule_together(profiles), profiles, bandwidth)
    staggered = Schedule(
        offsets={p.name: 300.0 * i for i, p in enumerate(profiles)},
        policy="advised",
    )
    advised = evaluate_schedule(staggered, profiles, bandwidth)
    print("\nquantified on 8 launch-burst readers (PFS at 1/4 of their demand):")
    print(f"  all at once: mean stretch {baseline.mean_stretch:.3f}, "
          f"congested {baseline.congested_time:.0f}s")
    print(f"  advised:     mean stretch {advised.mean_stretch:.3f}, "
          f"congested {advised.congested_time:.0f}s")


if __name__ == "__main__":
    main()
