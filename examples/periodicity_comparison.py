#!/usr/bin/env python3
"""Compare the three periodicity detectors in the repo.

MOSAIC detects periodic behaviour by segmenting the operation stream and
clustering segment features with Mean Shift.  The paper's related work
[24] uses frequency techniques instead; the paper plans to integrate
them (§V).  This example runs MOSAIC's detector, the DFT detector, and
the autocorrelation detector side by side on progressively harder
signals and prints what each one reports.

Run:  python examples/periodicity_comparison.py
"""

import numpy as np

from repro.core import DEFAULT_CONFIG, detect_periodicity
from repro.darshan.trace import OperationArray
from repro.signalproc import (
    build_activity_signal,
    detect_periodicity_autocorr,
    detect_periodicity_dft,
)

GB = 1024**3


def train(period, n, duration=8.0, volume=2 * GB, jitter=0.0, offset=0.0, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for k in range(n):
        s = offset + k * period + (rng.normal(0, jitter * period) if jitter else 0.0)
        s = max(s, 0.0)
        rows.append((s, s + duration, volume))
    return rows


SCENARIOS = {
    "clean checkpoint train (period 600s)": (train(600.0, 20), 12000.0),
    "2% timing jitter": (train(600.0, 20, jitter=0.02, seed=3), 12000.0),
    "5% timing jitter": (train(600.0, 20, jitter=0.05, seed=3), 12000.0),
    "alternating big/small checkpoints (one cadence, two operations)": (
        train(600.0, 20, volume=8 * GB)
        + train(600.0, 20, volume=0.25 * GB, duration=4.0, offset=300.0),
        12300.0,
    ),
    "interleaved 600s + 97s mixture": (
        train(600.0, 20, volume=4 * GB)
        + train(97.0, 120, duration=2.0, volume=0.5 * GB, seed=2),
        12000.0,
    ),
}


def describe_mosaic(ops, run_time):
    det = detect_periodicity(ops, run_time, "write", DEFAULT_CONFIG)
    if not det.periodic:
        return "not periodic"
    parts = [
        f"{g.period:.0f}s x{g.n_occurrences} ({g.mean_volume / GB:.2f} GB)"
        for g in det.groups[:3]
    ]
    return f"{len(det.groups)} group(s): " + ", ".join(parts)


def describe_dft(sig):
    det = detect_periodicity_dft(sig)
    if not det.periodic:
        return "abstains (comb confidence below floor)"
    return f"{det.period:.0f}s (confidence {det.confidence:.2f})"


def describe_autocorr(sig):
    det = detect_periodicity_autocorr(sig)
    if not det.periodic:
        return "abstains (no significant ACF peak)"
    return f"{det.period:.0f}s (strength {det.strength:.2f})"


def main() -> None:
    for name, (rows, run_time) in SCENARIOS.items():
        ops = OperationArray.from_tuples(rows)
        sig = build_activity_signal(ops, run_time, n_bins=2048)
        print(f"\n## {name}")
        print(f"  MOSAIC (segments + Mean Shift): {describe_mosaic(ops, run_time)}")
        print(f"  DFT (harmonic comb):            {describe_dft(sig)}")
        print(f"  autocorrelation:                {describe_autocorr(sig)}")

    print(
        "\ntakeaways: Mean Shift resolves co-cadenced operations of"
        "\ndifferent volumes and survives timing jitter; spectral methods"
        "\ngive precise single periods on clean signals but degrade under"
        "\nphase noise, and none of the detectors separates an interleaved"
        "\nsame-direction mixture (the paper resolves multi-periodicity"
        "\nacross directions: periodic reads vs periodic writes)."
    )


if __name__ == "__main__":
    main()
