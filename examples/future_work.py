#!/usr/bin/env python3
"""The paper's §V roadmap, implemented: signal-processing periodicity,
automatic category discovery, and interference-aware scheduling.

1. *"We plan to implement [signal-processing] techniques to improve the
   detection of this type of pattern"* — switch MOSAIC's periodicity
   method per config (`meanshift` / `dft` / `autocorr` / `hybrid`).
2. *"Category determination could be made more automatic using
   clustering methods"* — discover temporality classes with k-means and
   compare them to Table I.
3. *"...use this information to improve concurrency-aware job
   scheduling"* — stagger a job queue by predicted demand and measure
   the interference reduction with the PFS contention simulator.

Run:  python examples/future_work.py
"""

import numpy as np

from repro.core import DEFAULT_CONFIG, categorize_trace, run_pipeline
from repro.discovery import discover_temporality
from repro.interference import (
    IOPhase,
    IOProfile,
    evaluate_schedule,
    schedule_category_aware,
    schedule_together,
)
from repro.synth import FleetConfig, cohort_by_name, generate_fleet, generate_run

GB = 1024**3


def demo_periodicity_methods() -> None:
    print("== 1. pluggable periodicity detection ==")
    rng = np.random.default_rng(1)
    spec = cohort_by_name("rcw_ckpt_periodic").build(1, rng)
    trace = generate_run(spec, 1, rng, force_nominal=True)
    for method in ("meanshift", "dft", "autocorr", "hybrid"):
        cfg = DEFAULT_CONFIG.with_overrides(periodicity_method=method)
        result = categorize_trace(trace, cfg)
        groups = result.periodic_groups.get("write", [])
        desc = (
            f"period {groups[0].period:.0f}s x{groups[0].n_occurrences}"
            if groups else "not periodic"
        )
        print(f"  {method:10s}: {desc}")


def demo_discovery() -> None:
    print("\n== 2. automatic category discovery ==")
    fleet = generate_fleet(FleetConfig(n_apps=300, seed=2))
    result = run_pipeline(fleet.traces)
    for direction in ("read", "write"):
        rep = discover_temporality(result.results, direction, seed=2)
        print(f"  {direction}: k={rep.k}, purity {rep.overall_purity:.2f}, "
              f"ARI vs Table I rules {rep.ari:.2f}")
        for c in rep.clusters[:3]:
            print(f"    {c.size:4d} traces -> {c.majority_label.value} "
                  f"(purity {c.purity:.2f})")


def demo_scheduling() -> None:
    print("\n== 3. interference-aware scheduling ==")
    # eight queued jobs that each read 100 GB right at launch
    profiles = [
        IOProfile(
            name=f"job{i}", run_time=3600.0,
            phases=(IOPhase(0.0, 60.0, 100 * GB, "read"),),
        )
        for i in range(8)
    ]
    bandwidth = 2 * GB
    together = evaluate_schedule(schedule_together(profiles), profiles, bandwidth)
    aware = evaluate_schedule(
        schedule_category_aware(profiles, window=1800.0), profiles, bandwidth
    )
    print(f"  all at once:    mean stretch {together.mean_stretch:.3f}, "
          f"congested {together.congested_time:.0f}s")
    print(f"  category-aware: mean stretch {aware.mean_stretch:.3f}, "
          f"congested {aware.congested_time:.0f}s")


if __name__ == "__main__":
    demo_periodicity_methods()
    demo_discovery()
    demo_scheduling()
