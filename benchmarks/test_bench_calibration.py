"""ABL-THRESH — threshold calibration ablation (paper §III-B3a, §IV-E).

The paper sets its clustering thresholds empirically on one month of
traces and validates them by sampling the year.  This bench replays that
methodology on the calibrated corpus and asks two questions:

1. does the month-calibrated optimum land on (or near) the defaults the
   rest of the reproduction uses?
2. how sensitive is accuracy to the two main periodicity knobs — i.e.
   is the paper's "empirically set" procedure operating on a forgiving
   plateau or a knife's edge?
"""

import pytest

from repro.calibration import calibrate_and_validate, month_subset, score_config
from repro.core import DEFAULT_CONFIG
from repro.viz import rows_to_csv, write_csv

from _paper import report

GRID = {
    "meanshift_bandwidth": [0.05, 0.15, 0.5, 2.0],
    "min_group_size": [2, 3, 6],
}


@pytest.mark.benchmark(group="calibration")
def test_month_calibration_recovers_defaults(benchmark, corpus, pipeline, results_dir):
    traces = pipeline.preprocess.selected
    truth = corpus.truth

    outcome = calibrate_and_validate(
        traces, truth, GRID, month=0, sample_size=512, seed=3
    )

    rows = [
        [str(p.overrides), p.scores.trace_accuracy, p.scores.periodic_f1,
         p.scores.temporality_accuracy]
        for p in outcome.sweep
    ]
    write_csv(
        rows_to_csv(
            ["overrides", "trace_accuracy", "periodic_f1", "temporality_accuracy"],
            rows,
        ),
        results_dir / "calibration_sweep.csv",
    )
    lines = [
        f"month subset: {outcome.n_month_traces} labeled traces",
        f"best overrides: {outcome.best.overrides} "
        f"(accuracy {outcome.best.scores.trace_accuracy:.1%}, "
        f"periodic F1 {outcome.best.scores.periodic_f1:.2f})",
        f"year validation (512 samples): {outcome.validation.accuracy:.1%}",
    ] + [
        f"  {p.overrides}: acc {p.scores.trace_accuracy:.1%} "
        f"F1 {p.scores.periodic_f1:.2f}"
        for p in outcome.sweep[:6]
    ]
    report("ABL-THRESH: month calibration + year validation", lines)

    # the winning bandwidth is in the sane region (not the degenerate
    # extremes), and the strict paper rule or our calibrated group size
    # both sit on the plateau
    assert outcome.best.overrides["meanshift_bandwidth"] in (0.05, 0.15, 0.5)
    # month-calibrated thresholds generalize: year accuracy in the
    # paper's band
    assert outcome.validation.accuracy > 0.85

    benchmark.pedantic(
        lambda: score_config(
            month_subset(traces, 0)[:80], truth, DEFAULT_CONFIG
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="calibration")
def test_threshold_plateau_is_wide(benchmark, corpus, pipeline):
    """Two-part sensitivity story that makes the paper's hand
    calibration workable:

    1. corpus *accuracy* is flat across the sane bandwidth range (most
       traces have too few segments for a bad bandwidth to hurt);
    2. the bandwidth still matters where the paper says it does —
       "until periodic operations were correctly identified": resolving
       *distinct* periodic operations.  An alternating big/small
       checkpoint train must yield two Mean Shift groups at sane
       bandwidths, one conflated group when the bandwidth is huge, and
       lose detection when it is far too tight (jittered segments stop
       being comparable).
    """
    import numpy as np

    from repro.core import detect_periodicity
    from repro.darshan.trace import OperationArray

    traces = pipeline.preprocess.selected[:250]
    truth = corpus.truth

    def accuracy_at(bandwidth: float) -> float:
        cfg = DEFAULT_CONFIG.with_overrides(meanshift_bandwidth=bandwidth)
        return score_config(traces, truth, cfg).trace_accuracy

    sane = [accuracy_at(b) for b in (0.08, 0.15, 0.3)]

    GB = 1024**3
    rng = np.random.default_rng(4)
    big = [(k * 600.0 + rng.normal(0, 18.0), 0.0, 9 * GB) for k in range(20)]
    small = [(300.0 + k * 600.0 + rng.normal(0, 18.0), 0.0, 0.3 * GB) for k in range(20)]
    rows = [(max(s, 0.0), max(s, 0.0) + 6.0, v) for s, _, v in big + small]
    ops = OperationArray.from_tuples(rows)

    def occupancy_at(bandwidth: float) -> list[int]:
        cfg = DEFAULT_CONFIG.with_overrides(meanshift_bandwidth=bandwidth)
        det = detect_periodicity(ops, 12000.0, "write", cfg)
        return sorted((g.n_occurrences for g in det.groups), reverse=True)

    resolution = {b: occupancy_at(b) for b in (0.002, 0.08, 0.15, 0.3, 5.0)}
    report(
        "ABL-THRESH: bandwidth sensitivity",
        [
            f"corpus accuracy at bandwidth 0.08/0.15/0.30: "
            f"{[f'{a:.1%}' for a in sane]} (flat plateau)",
            "group occupancies on an alternating big/small checkpoint "
            "train (truth: two trains of 20): "
            + ", ".join(f"bw={b}: {g}" for b, g in resolution.items()),
        ],
    )
    assert max(sane) - min(sane) < 0.05  # accuracy plateau
    # sane bandwidths: both 20-event trains recovered as two well-filled
    # groups
    for b in (0.08, 0.15, 0.3):
        occ = resolution[b]
        assert len(occ) == 2 and occ[1] >= 15, (b, occ)
    # huge bandwidth conflates the two trains into one group
    assert len(resolution[5.0]) == 1 and resolution[5.0][0] >= 35
    # tiny bandwidth splinters: no group captures a train anymore
    assert all(n < 15 for n in resolution[0.002])

    benchmark.pedantic(lambda: occupancy_at(0.15), rounds=5, iterations=1)
