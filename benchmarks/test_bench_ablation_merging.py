"""ABL-MERGE — event fusion ablation (design choice #1 in DESIGN.md).

MOSAIC merges concurrent and neighboring operations *before* segmenting
(paper §III-B2: "manage process desynchronization ... clarify the trace
to enable the detection of periodic behavior").  The ablation removes
fusion and measures periodicity detection on desynchronized
checkpointing traces: without fusion, every checkpoint splinters into
per-rank shards and the segment features turn to noise.
"""

import numpy as np
import pytest

from repro.core import DEFAULT_CONFIG, detect_periodicity
from repro.merge import preprocess_operations
from repro.synth import PeriodicPhase, PhaseContext
from repro.viz import rows_to_csv, write_csv

from _paper import report


def desynced_checkpointer(desync: float, seed: int):
    """Write stream of a 16-rank checkpointer with the given desync."""
    rng = np.random.default_rng(seed)
    ctx = PhaseContext(rng=rng, run_time=12000.0, nprocs=16, volume_scale=1.0)
    phase = PeriodicPhase(
        direction="write",
        period=600.0,
        event_volume=2e9,
        event_duration=15.0,
        n_ranks=16,
        desync=desync,
    )
    records = phase.emit(ctx)
    starts, ends, vols = [], [], []
    for r in records:
        starts.append(r.write_start)
        ends.append(r.write_end)
        vols.append(float(r.bytes_written))
    from repro.darshan.trace import OperationArray

    return OperationArray(np.array(starts), np.array(ends), np.array(vols))


def detection_rate(desync: float, merged: bool, n: int = 10) -> float:
    hits = 0
    for seed in range(n):
        ops = desynced_checkpointer(desync, seed)
        if merged:
            ops = preprocess_operations(ops, 12000.0, DEFAULT_CONFIG.merge).ops
        det = detect_periodicity(ops, 12000.0, "write", DEFAULT_CONFIG)
        ok = det.periodic and abs(det.dominant.period - 600.0) / 600.0 < 0.2
        hits += ok
    return hits / n


@pytest.mark.benchmark(group="ablation-merging")
def test_merging_enables_periodicity_under_desync(benchmark, results_dir):
    desyncs = [0.0, 2.0, 10.0, 30.0]
    rows = []
    for d in desyncs:
        with_merge = detection_rate(d, merged=True)
        without = detection_rate(d, merged=False)
        rows.append([d, with_merge, without])

    write_csv(
        rows_to_csv(["desync_s", "with_merging", "without_merging"], rows),
        results_dir / "ablation_merging.csv",
    )
    report(
        "ABL-MERGE: periodic detection rate vs rank desynchronization",
        [f"desync {d:5.1f}s: with merging {w:.0%}, without {wo:.0%}"
         for d, w, wo in rows],
    )

    # with fusion, detection survives every desync level
    assert all(w == 1.0 for _, w, _ in rows)
    # without fusion, detection collapses once the desync noise floods
    # the segment feature space (tiny inter-rank segments dominate the
    # Mean Shift modes); sub-bandwidth desync survives by luck, which the
    # CSV records rather than hides
    assert all(wo < 0.5 for d, _, wo in rows if d >= 10.0)

    benchmark.pedantic(
        lambda: detection_rate(10.0, merged=True, n=4), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="ablation-merging")
def test_merging_reduction_ratio(benchmark):
    """Fusion must collapse per-rank shards by ~the rank count."""
    ops = desynced_checkpointer(5.0, seed=0)

    def run():
        return preprocess_operations(ops, 12000.0, DEFAULT_CONFIG.merge)

    result = benchmark(run)
    assert result.reduction_ratio == pytest.approx(16.0, rel=0.2)
