"""SCHED — category-aware scheduling under PFS contention (paper §V).

The paper's conclusion: "two jobs categorized as reading large volumes
of data at the start of execution could be scheduled so as not to
overlap."  This extension experiment quantifies that claim: a burst of
queued jobs (input-stage readers, end-writers, periodic checkpointers,
steady streamers) is released under three policies — everything at once,
random staggering, and MOSAIC-category-aware demand packing — and
evaluated with the contention simulator against the jobs' *true*
trace-derived profiles.  The category-aware policy only sees what MOSAIC
outputs (categories, chunk sums, periods).
"""

import numpy as np
import pytest

from repro.core import Category, categorize_trace
from repro.interference import (
    IOProfile,
    evaluate_schedule,
    profile_from_result,
    profile_from_trace,
    schedule_category_aware,
    schedule_random,
    schedule_together,
)
from repro.synth import (
    AppSpec,
    BurstPhase,
    GroundTruth,
    KeptOpenPhase,
    PeriodicPhase,
    generate_run,
)
from repro.viz import rows_to_csv, write_csv

from _paper import report

GB = 1024**3


def _spec(name, phases, truth_read, truth_write, runtime=(3300.0, 3900.0)):
    return AppSpec(
        name=name, cohort="sched-bench", uid=1, exe=f"{name}.exe",
        nprocs=32, runtime_lo=runtime[0], runtime_hi=runtime[1],
        phases=tuple(phases),
        truth=GroundTruth(read_temporality=truth_read, write_temporality=truth_write),
    )


def _queue_specs(rng):
    """A bursty submission queue of hour-scale jobs whose input reads
    happen right at launch — the paper's canonical conflict."""
    specs = []
    for i in range(6):  # heavy input-stage readers
        vol = float(rng.uniform(60, 160)) * GB
        specs.append(_spec(
            f"reader{i}",
            [BurstPhase("read", position=0.012, volume=vol, duration=40.0,
                        n_ranks=8, desync=2.0),
             BurstPhase("write", position=0.97, volume=vol / 8, duration=30.0,
                        n_ranks=8, desync=2.0)],
            Category.READ_ON_START, Category.WRITE_ON_END,
        ))
    for i in range(3):  # final-result writers
        vol = float(rng.uniform(40, 120)) * GB
        specs.append(_spec(
            f"writer{i}",
            [BurstPhase("write", position=0.97, volume=vol, duration=40.0,
                        n_ranks=8, desync=2.0)],
            Category.READ_INSIGNIFICANT, Category.WRITE_ON_END,
        ))
    for i in range(3):  # checkpointers
        specs.append(_spec(
            f"ckpt{i}",
            [PeriodicPhase("write", period=220.0, event_volume=12 * GB,
                           event_duration=12.0, n_ranks=4)],
            Category.READ_INSIGNIFICANT, Category.WRITE_STEADY,
        ))
    for i in range(2):  # steady streamers
        specs.append(_spec(
            f"stream{i}",
            [KeptOpenPhase(direction="read", volume=80 * GB)],
            Category.READ_STEADY, Category.WRITE_INSIGNIFICANT,
        ))
    return specs


@pytest.fixture(scope="module")
def fleet_profiles():
    rng = np.random.default_rng(11)
    true_profiles: list[IOProfile] = []
    predicted: list[IOProfile] = []
    for i, spec in enumerate(_queue_specs(rng)):
        trace = generate_run(spec, 7000 + i, rng, force_nominal=True)
        result = categorize_trace(trace)
        truth = profile_from_trace(trace)
        pred = profile_from_result(result, trace.meta.run_time)
        true_profiles.append(
            IOProfile(name=spec.name, run_time=truth.run_time, phases=truth.phases)
        )
        predicted.append(
            IOProfile(name=spec.name, run_time=pred.run_time, phases=pred.phases)
        )
    return true_profiles, predicted


@pytest.mark.benchmark(group="interference-scheduling")
def test_category_aware_scheduling_reduces_interference(
    benchmark, fleet_profiles, results_dir
):
    true_profiles, predicted = fleet_profiles
    # PFS sized at a quarter of the launch burst's aggregate read demand
    peak = max(
        sum(p.demand_at(t) for p in true_profiles) for t in (20.0, 45.0, 60.0)
    )
    bandwidth = max(peak / 4.0, 1 * GB)
    window = 1800.0

    schedules = {
        "together": schedule_together(true_profiles),
        "random": schedule_random(true_profiles, window, seed=5),
        "category_aware": schedule_category_aware(predicted, window),
    }
    rows = []
    lines = [f"PFS bandwidth {bandwidth / GB:.1f} GB/s, launch window {window:.0f}s"]
    results = {}
    for policy, sched in schedules.items():
        res = evaluate_schedule(sched, true_profiles, bandwidth)
        results[policy] = res
        rows.append(
            [policy, res.mean_stretch, res.max_stretch, res.congested_time, res.makespan]
        )
        lines.append(
            f"{policy:15s} mean stretch {res.mean_stretch:.3f}  "
            f"max {res.max_stretch:.3f}  congested {res.congested_time:.0f}s  "
            f"makespan {res.makespan:.0f}s"
        )
    write_csv(
        rows_to_csv(
            ["policy", "mean_stretch", "max_stretch", "congested_s", "makespan_s"],
            rows,
        ),
        results_dir / "interference_scheduling.csv",
    )
    report("SCHED: scheduling policies under contention", lines)

    together = results["together"]
    aware = results["category_aware"]
    # the launch burst must actually contend, otherwise the experiment
    # is vacuous
    assert together.congested_time > 60.0
    assert together.mean_stretch > 1.01
    # the category-aware policy strictly reduces interference
    assert aware.mean_stretch < together.mean_stretch
    assert aware.congested_time < together.congested_time

    benchmark.pedantic(
        lambda: evaluate_schedule(
            schedules["category_aware"], true_profiles, bandwidth
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="interference-scheduling")
def test_predicted_profiles_track_true_demand(benchmark, fleet_profiles):
    """The category-derived profile must be a usable surrogate for the
    true demand: coarse (eighth-of-runtime) volume profiles should be
    highly similar."""
    true_profiles, predicted = fleet_profiles

    def similarities():
        out = []
        for t, p in zip(true_profiles, predicted):
            width_t = t.run_time / 8
            a = t.demand_series(8) * width_t           # bytes per eighth
            b = p.demand_series(8) * (p.run_time / 8)
            na, nb = np.linalg.norm(a), np.linalg.norm(b)
            if na == 0 or nb == 0:
                continue
            out.append(float(np.dot(a, b) / (na * nb)))
        return out

    sims = benchmark.pedantic(similarities, rounds=3, iterations=1)
    report(
        "SCHED: predicted-vs-true coarse volume-profile cosine",
        [f"median {np.median(sims):.2f}, min {min(sims):.2f}, n={len(sims)}"],
    )
    assert np.median(sims) > 0.8
