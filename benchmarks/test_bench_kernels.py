"""KERNELS — reference vs vectorized per-trace kernel costs.

Times every kernel pair of :mod:`repro.kernels` on seeded synthetic
inputs at 1k/10k/100k operations and emits ``BENCH_kernels.json``
(schema in ``docs/BENCHMARKS.md``) to seed the perf trajectory.  The
test doubles as the CI smoke gate: it fails if the vectorized backend is
slower than the pure-Python reference on any kernel at any size (subject
to the per-kernel ``NOT_SLOWER_BAND`` — see its note on the shared-FFT
``dft_comb_scan``), and it requires the headline ≥ 5× speedups on the
neighbor-merge and ACF peak-scan kernels at 10k ops.

Environment:

``MOSAIC_BENCH_KERNEL_SIZES``
    Comma-separated op counts (default ``1000,10000,100000``).  CI smoke
    runs ``1000,10000`` to stay fast.
``MOSAIC_BENCH_KERNEL_OUT``
    Output path for the JSON artifact (default ``BENCH_kernels.json``
    at the repository root).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.kernels import get_backend

DEFAULT_SIZES = (1_000, 10_000, 100_000)
#: Kernels whose 10k-op speedup is a hard acceptance floor.
HEADLINE_SPEEDUP = {"neighbor_merge": 5.0, "acf_peak_scan": 5.0}
HEADLINE_SIZE = 10_000
#: Per-kernel not-slower floors.  The default is a flat 1.0 (vectorized
#: must never lose to the reference), but ``dft_comb_scan`` shares its
#: FFT — the dominant cost — with the reference twin, so its measured
#: ratio hovers near parity and timing jitter on shared CI runners trips
#: a flat gate.  The band says "within 15% of parity is a tie, not a
#: regression"; real regressions (a Python loop sneaking back in) land
#: far below it.
NOT_SLOWER_BAND = {"dft_comb_scan": 0.85}
MEANSHIFT_SEEDS = 8
ACTIVITY_BINS = 4096


def _sizes() -> list[int]:
    raw = os.environ.get("MOSAIC_BENCH_KERNEL_SIZES")
    if not raw:
        return list(DEFAULT_SIZES)
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _out_path() -> Path:
    raw = os.environ.get("MOSAIC_BENCH_KERNEL_OUT")
    if raw:
        return Path(raw)
    return Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


# ---------------------------------------------------------------------------
# Input builders: one seeded workload per kernel and size.  Each returns a
# zero-argument closure over a backend module so both implementations time
# the identical arrays.


def _ops_arrays(rng: np.random.Generator, n: int):
    gaps = rng.exponential(1.0, n)
    durations = rng.exponential(2.0, n)
    starts = np.cumsum(gaps + np.concatenate(([0.0], durations[:-1])))
    ends = starts + durations
    volumes = rng.lognormal(10.0, 2.0, n)
    return starts, ends, volumes


def _bench_neighbor(backend, rng, n):
    starts, ends, volumes = _ops_arrays(rng, n)
    return lambda: backend.neighbor_pass(starts, ends, volumes, 0.5, 0.01)


def _bench_concurrent(backend, rng, n):
    starts = np.sort(rng.uniform(0.0, n / 4.0, n))
    ends = starts + rng.exponential(2.0, n)
    volumes = rng.lognormal(10.0, 2.0, n)

    def run():
        groups = backend.overlap_groups(starts, ends)
        return backend.coalesce_groups(starts, ends, volumes, groups)

    return run


def _bench_segment(backend, rng, n):
    starts, ends, volumes = _ops_arrays(rng, n)
    run_time = float(ends[-1]) * 1.1
    return lambda: backend.segment(starts, ends, volumes, run_time)


def _bench_meanshift(backend, rng, n):
    X = rng.normal(0.0, 1.0, (n, 2))
    seeds = X[:MEANSHIFT_SEEDS].copy()
    return lambda: backend.shift_step(seeds, X, 0.15, "flat")


def _bench_acf(backend, rng, n):
    # Damped oscillation whose peaks all sit under the floor: both
    # implementations scan the full lag range (the reference cannot
    # short-circuit), which is the honest worst-case comparison.
    t = np.linspace(0.0, 3.0, n)
    acf = np.cos(40.0 * t) * np.exp(-t)
    return lambda: backend.acf_peak_scan(acf, n // 3, 0.95)


def _bench_dft(backend, rng, n):
    power = rng.random(n)
    k_peak = n // 50
    candidates = np.asarray(
        [k_peak / m for m in range(1, 5) if k_peak // m >= 1], dtype=np.float64
    )
    return lambda: backend.dft_comb_scores(power, candidates, 12)


def _bench_bin_activity(backend, rng, n):
    starts, ends, volumes = _ops_arrays(rng, n)
    run_time = float(ends[-1]) * 1.05
    return lambda: backend.bin_activity(
        starts, ends, volumes, run_time, ACTIVITY_BINS
    )


BENCHES = {
    "neighbor_merge": _bench_neighbor,
    "concurrent_fusion": _bench_concurrent,
    "segmentation": _bench_segment,
    "meanshift_step": _bench_meanshift,
    "acf_peak_scan": _bench_acf,
    "dft_comb_scan": _bench_dft,
    "activity_binning": _bench_bin_activity,
}


def _best_seconds(run) -> float:
    """Best-of-3 wall time, batching fast calls to ~20 ms per sample."""
    t0 = time.perf_counter()
    run()
    first = time.perf_counter() - t0
    if first > 1.0:
        # Slow reference kernel: one more sample is all we can afford.
        t0 = time.perf_counter()
        run()
        return min(first, time.perf_counter() - t0)
    loops = max(1, min(1000, int(0.02 / max(first, 1e-9))))
    best = first
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(loops):
            run()
        best = min(best, (time.perf_counter() - t0) / loops)
    return best


def run_kernel_bench(sizes: list[int]) -> dict:
    reference = get_backend("reference")
    vectorized = get_backend("vectorized")
    kernels: dict[str, dict[str, dict[str, float]]] = {}
    for name, build in BENCHES.items():
        kernels[name] = {}
        for n in sizes:
            rng = np.random.default_rng(20260806 + n)
            ref_s = _best_seconds(build(reference, rng, n))
            rng = np.random.default_rng(20260806 + n)
            vec_s = _best_seconds(build(vectorized, rng, n))
            kernels[name][str(n)] = {
                "reference_ns_per_op": ref_s / n * 1e9,
                "vectorized_ns_per_op": vec_s / n * 1e9,
                "speedup": ref_s / vec_s,
            }
    return {
        "schema": "mosaic-kernel-bench/1",
        "unit": "ns_per_op",
        "sizes": sizes,
        "meanshift_seeds": MEANSHIFT_SEEDS,
        "activity_bins": ACTIVITY_BINS,
        "not_slower_band": dict(NOT_SLOWER_BAND),
        "kernels": kernels,
    }


def test_kernel_speedups():
    sizes = _sizes()
    result = run_kernel_bench(sizes)
    out = _out_path()
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    failures = []
    for name, by_size in result["kernels"].items():
        band = NOT_SLOWER_BAND.get(name, 1.0)
        for n, row in by_size.items():
            if row["speedup"] < band:
                failures.append(
                    f"{name}@{n}: vectorized slower than reference "
                    f"(speedup {row['speedup']:.2f}x, floor {band:.2f}x)"
                )
        floor = HEADLINE_SPEEDUP.get(name)
        key = str(HEADLINE_SIZE)
        if floor is not None and key in by_size:
            if by_size[key]["speedup"] < floor:
                failures.append(
                    f"{name}@{key}: speedup {by_size[key]['speedup']:.2f}x "
                    f"below the {floor:.0f}x acceptance floor"
                )
    assert not failures, "\n".join(failures)


if __name__ == "__main__":
    payload = run_kernel_bench(_sizes())
    _out_path().write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for kernel, by_size in payload["kernels"].items():
        row = ", ".join(
            f"{n}: {v['speedup']:.1f}x" for n, v in sorted(by_size.items(), key=lambda kv: int(kv[0]))
        )
        print(f"{kernel:18s} {row}")
