"""FIG2 — single-trace processing example (paper Fig. 2).

The paper's figure walks one trace through the workflow: raw operations,
operations after pre-processing, periodicity detection result, temporal
chunk byte sums, and the metadata request timeline.  The bench times the
per-trace workflow on exactly that kind of trace (a desynchronized
checkpointing application) and emits the panel data as CSV plus the
ASCII rendering.
"""

import numpy as np
import pytest

from repro.core import DEFAULT_CONFIG, Category, categorize_trace
from repro.merge import preprocess_trace
from repro.synth import cohort_by_name, generate_run
from repro.viz import render_trace_anatomy, rows_to_csv, write_csv

from _paper import report


@pytest.fixture(scope="module")
def example_trace():
    rng = np.random.default_rng(20190410)  # the paper's Fig. 2 is from 2019-04-10
    spec = cohort_by_name("rcw_ckpt_periodic").build(1, rng)
    return generate_run(spec, 9807799, rng, force_nominal=True), spec


@pytest.mark.benchmark(group="fig2-example")
def test_fig2_trace_anatomy(benchmark, example_trace, results_dir):
    trace, spec = example_trace
    result = benchmark.pedantic(
        categorize_trace, args=(trace,), rounds=5, iterations=1
    )

    read = preprocess_trace(trace, "read")
    write = preprocess_trace(trace, "write")
    write_csv(
        rows_to_csv(
            ["panel", "value"],
            [
                ["raw_read_ops", read.n_raw],
                ["merged_read_ops", read.n_after_neighbor],
                ["raw_write_ops", write.n_raw],
                ["merged_write_ops", write.n_after_neighbor],
                ["detected_write_period_s",
                 result.periodic_groups["write"][0].period
                 if result.periodic_groups.get("write") else ""],
                ["chunk_read_bytes", result.chunk_volumes.get("read")],
                ["chunk_write_bytes", result.chunk_volumes.get("write")],
                ["metadata_peak_rate", result.metadata_peak_rate],
            ],
        ),
        results_dir / "fig2_example.csv",
    )
    report("Fig. 2 trace processing example", [render_trace_anatomy(trace)])

    # the figure's qualitative content:
    # 1. fusion collapses desynchronized per-rank ops into few logical ops
    assert write.n_raw > 2 * write.n_after_neighbor
    # 2. periodicity detection finds the checkpoint cadence
    assert Category.PERIODIC_WRITE in result.categories
    g = result.periodic_groups["write"][0]
    assert g.n_occurrences >= 10
    # 3. the read burst concentrates in the first temporal chunk
    chunks = result.chunk_volumes["read"]
    assert chunks[0] > 2 * max(chunks[1:])
    # 4. metadata requests show up as a measurable per-second rate
    assert result.metadata_peak_rate > DEFAULT_CONFIG.high_spike_rate
