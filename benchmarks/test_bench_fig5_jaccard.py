"""FIG5 — matrix of relevant Jaccard indices (paper Fig. 5).

The paper renders the category×category Jaccard heatmap keeping pairs
above 1%.  The bench times the matrix computation, exports the full
matrix as CSV, renders the pruned ASCII heatmap, and checks the pairs
the paper's correlations imply must surface.
"""

import pytest

from repro.analysis import jaccard_matrix
from repro.core import Category
from repro.viz import matrix_to_csv, render_jaccard, write_csv

from _paper import report


@pytest.mark.benchmark(group="fig5-jaccard")
def test_fig5_jaccard_heatmap(benchmark, pipeline, results_dir):
    matrix = benchmark.pedantic(
        jaccard_matrix, args=(pipeline.results,), rounds=3, iterations=1
    )
    write_csv(
        matrix_to_csv(
            matrix.values,
            [c.value for c in matrix.categories],
            [c.value for c in matrix.categories],
        ),
        results_dir / "fig5_jaccard.csv",
    )
    pairs = matrix.relevant_pairs(0.01)
    report(
        "Fig. 5 Jaccard heatmap (pairs > 1%)",
        [render_jaccard(matrix)]
        + [f"{a.value} ~ {b.value}: {v:.2f}" for a, b, v in pairs[:12]],
    )

    pair_set = {frozenset((a, b)) for a, b, _ in pairs}
    # the read-compute-write pattern must be a visible pair
    assert frozenset((Category.READ_ON_START, Category.WRITE_ON_END)) in pair_set
    # silent applications: read & write insignificance co-occur strongly
    j_insig = matrix.get(Category.READ_INSIGNIFICANT, Category.WRITE_INSIGNIFICANT)
    assert j_insig > 0.7
    # periodic writes co-occur with write_steady (checkpoints spread
    # evenly across the runtime)
    j_per = matrix.get(Category.PERIODIC_WRITE, Category.WRITE_STEADY)
    assert j_per > 0.01
    # metadata density co-occurs with read_on_start (the dense cohorts
    # read their inputs at startup)
    j_dense = matrix.get(Category.METADATA_HIGH_DENSITY, Category.READ_ON_START)
    assert j_dense > 0.01
    # temporality labels within one direction are mutually exclusive
    assert matrix.get(Category.READ_ON_START, Category.READ_STEADY) == 0.0
