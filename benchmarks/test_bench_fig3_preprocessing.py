"""FIG3 — pre-processing funnel (paper Fig. 3).

Paper: 462,502 input traces → 32% corrupted and evicted → 8% of valid
traces are unique executions → 24,606 retained.  The bench times the
validity + dedup stage over the calibrated corpus and checks both stage
proportions.
"""

import pytest

from repro.analysis import funnel_report
from repro.core import preprocess_corpus
from repro.viz import rows_to_csv, write_csv

from _paper import PAPER, report


@pytest.mark.benchmark(group="fig3-preprocessing")
def test_fig3_preprocessing_funnel(benchmark, corpus, results_dir):
    pre = benchmark.pedantic(
        preprocess_corpus, args=(corpus.traces,), rounds=3, iterations=1
    )
    rep = funnel_report(pre)

    rows = [
        ("input_traces", pre.n_input),
        ("valid_traces", pre.n_valid),
        ("selected_for_categorization", pre.n_selected),
    ]
    write_csv(
        rows_to_csv(["stage", "count"], [list(r) for r in rows]),
        results_dir / "fig3_funnel.csv",
    )
    report(
        "Fig. 3 pre-processing funnel",
        [f"{name}: {count}" for name, count in rows]
        + [
            f"corrupted fraction: measured {rep.corrupted_fraction:.1%} "
            f"(paper {PAPER['corrupted_fraction']:.0%})",
            f"unique fraction:    measured {rep.unique_fraction:.1%} "
            f"(paper {PAPER['unique_fraction']:.0%})",
            "corruption causes: "
            + ", ".join(f"{k}={v}" for k, v in rep.corruption_causes.items()),
        ],
    )

    assert rep.corrupted_fraction == pytest.approx(
        PAPER["corrupted_fraction"], abs=0.03
    )
    assert rep.unique_fraction == pytest.approx(
        PAPER["unique_fraction"], abs=0.015
    )
    # every corruption cause in the taxonomy is exercised
    assert len(rep.corruption_causes) >= 4


@pytest.mark.benchmark(group="fig3-preprocessing")
def test_fig3_repair_extension(benchmark, corpus, results_dir):
    """Extension: how much of the 32% eviction is mechanically
    recoverable by the conservative repair heuristics?

    MOSAIC chose eviction (a repaired record is a guess); this measures
    what that choice costs in corpus coverage.
    """
    from repro.darshan import is_valid, repair_trace

    bad = [t for t in corpus.traces if not is_valid(t)][:400]

    def run_repair():
        outcomes = [repair_trace(t) for t in bad]
        return sum(o.repaired for o in outcomes)

    n_recovered = benchmark.pedantic(run_repair, rounds=1, iterations=1)
    rate = n_recovered / len(bad)
    write_csv(
        rows_to_csv(
            ["metric", "value"],
            [["n_corrupted_sampled", len(bad)],
             ["n_recovered", n_recovered],
             ["recovery_rate", rate]],
        ),
        results_dir / "fig3_repair.csv",
    )
    report(
        "Fig. 3 extension: corruption repair",
        [f"recovered {n_recovered}/{len(bad)} corrupted traces ({rate:.0%}); "
         "header-level corruption stays unrepairable"],
    )
    # most corruption classes are recoverable; header corruption is not
    assert 0.5 < rate < 1.0
