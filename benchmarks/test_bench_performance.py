"""PERF — workflow performance (paper §IV-E).

Paper: the full dataset (462k traces, 300 GB RAM) processes in 165
minutes on a 64-core EPYC with Dispy.  Absolute numbers are not
comparable (different substrate, scaled corpus, this machine); the bench
measures what transfers: per-trace categorization cost, stage breakdown,
corpus throughput, and the serial-vs-pool comparison of the execution
engine.
"""

import time

import pytest

from repro.core import DEFAULT_CONFIG, categorize_trace, run_pipeline, run_pipeline_stream
from repro.darshan import DirectorySource, save_binary
from repro.parallel import ParallelConfig
from repro.viz import rows_to_csv, write_csv

from _paper import report


@pytest.mark.benchmark(group="performance")
def test_per_trace_categorization_cost(benchmark, pipeline):
    # the heaviest selected traces dominate the corpus wall-clock (the
    # paper notes 2 pathological files dominating load time)
    heavy = sorted(
        pipeline.preprocess.selected, key=lambda t: -len(t.records)
    )[:20]

    def categorize_heavy():
        return [categorize_trace(t, DEFAULT_CONFIG) for t in heavy]

    benchmark(categorize_heavy)


@pytest.mark.benchmark(group="performance")
def test_corpus_throughput(benchmark, corpus, results_dir):
    t0 = time.perf_counter()
    result = run_pipeline(corpus.traces)
    elapsed = time.perf_counter() - t0
    throughput = corpus.n_input / elapsed

    rows = [
        ["n_input_traces", corpus.n_input],
        ["n_categorized", result.n_categorized],
        ["preprocess_s", result.timings["preprocess_s"]],
        ["categorize_s", result.timings["categorize_s"]],
        ["total_s", result.timings["total_s"]],
        ["traces_per_second", throughput],
    ]
    write_csv(
        rows_to_csv(["metric", "value"], rows), results_dir / "performance.csv"
    )
    paper_throughput = 462_502 / (165 * 60)
    report(
        "SIV-E performance",
        [f"{k}: {v:.2f}" if isinstance(v, float) else f"{k}: {v}" for k, v in rows]
        + [
            f"paper: 462502 traces / 165 min on 64 cores "
            f"= {paper_throughput:.1f} traces/s",
            "validity+dedup and categorization dominate; see stage split above",
        ],
    )

    # time a single pipeline pass for the benchmark table
    benchmark.pedantic(
        run_pipeline, args=(corpus.traces,), rounds=1, iterations=1
    )
    # sanity: the scaled corpus processes orders of magnitude faster than
    # wall-clock-relevant limits; categorization should dominate
    # pre-processing for this workload mix
    assert result.timings["categorize_s"] > 0
    assert throughput > 10.0


@pytest.mark.benchmark(group="performance")
def test_streaming_vs_batch(benchmark, corpus, results_dir, tmp_path_factory):
    """The out-of-core path must match the batch pipeline's output on
    the same corpus while keeping only a bounded trace window resident;
    the bench records its throughput and stage split next to batch."""
    corpus_dir = tmp_path_factory.mktemp("stream-corpus")
    sample = corpus.traces[: min(len(corpus.traces), 2000)]
    for trace in sample:
        save_binary(trace, corpus_dir / f"job{trace.meta.job_id:08d}.mosd")

    t0 = time.perf_counter()
    streamed = run_pipeline_stream(DirectorySource(corpus_dir))
    t_stream = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch = run_pipeline(sample)
    t_batch = time.perf_counter() - t0

    assert streamed.preprocess.funnel() == batch.preprocess.funnel()
    assert [r.job_id for r in streamed.results] == [r.job_id for r in batch.results]
    for a, b in zip(streamed.results, batch.results):
        assert a.categories == b.categories
    # bounded memory: serial streaming keeps one selected trace in flight
    assert streamed.metrics["peak_inflight_traces"] <= 1

    rows = [
        ["n_traces", len(sample)],
        ["stream_total_s", t_stream],
        ["stream_scan_s", streamed.timings["scan_s"]],
        ["stream_categorize_s", streamed.timings["categorize_s"]],
        ["stream_mb_read", streamed.metrics["scan_bytes_read"] / 1e6],
        ["batch_total_s", t_batch],
        ["peak_inflight_traces", streamed.metrics["peak_inflight_traces"]],
    ]
    write_csv(
        rows_to_csv(["metric", "value"], rows),
        results_dir / "performance_streaming.csv",
    )
    report(
        "streaming (out-of-core) vs batch pipeline",
        [f"{k}: {v:.2f}" if isinstance(v, float) else f"{k}: {v}" for k, v in rows]
        + ["identical funnel and categorizations: yes"],
    )
    benchmark.pedantic(
        run_pipeline_stream,
        args=(DirectorySource(corpus_dir),),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="performance")
def test_engine_serial_vs_pool(benchmark, pipeline):
    """Dispy-substitute check: the process pool must produce identical
    results; on this single-core machine it may be slower (fork+pickle
    overhead), which the bench records rather than hides."""
    sample = pipeline.preprocess.selected[:60]

    t0 = time.perf_counter()
    serial = run_pipeline(sample, parallel=ParallelConfig(max_workers=0))
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_pipeline(sample, parallel=ParallelConfig(max_workers=2))
    t_pool = time.perf_counter() - t0

    assert len(serial.results) == len(pooled.results)
    for a, b in zip(serial.results, pooled.results):
        assert a.categories == b.categories

    report(
        "execution engine: serial vs 2-worker pool (60 traces)",
        [
            f"serial: {t_serial:.2f}s",
            f"pool:   {t_pool:.2f}s",
            "identical categorizations: yes",
        ],
    )
    benchmark.pedantic(
        run_pipeline,
        args=(sample,),
        kwargs={"parallel": ParallelConfig(max_workers=0)},
        rounds=3,
        iterations=1,
    )
