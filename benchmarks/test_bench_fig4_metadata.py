"""FIG4 — category distribution for metadata access (paper Fig. 4).

Paper (all runs): metadata_high_spike ≈ 60%, metadata_multiple_spikes ≈
45.9%, metadata_high_density ≈ 13%; the single-run shares are far lower
("a small number of applications with a large number of executions are
metadata-intensive").
"""

import pytest

from repro.analysis import metadata_table
from repro.core import DEFAULT_CONFIG, classify_metadata
from repro.viz import render_shares_table, shares_to_csv, write_csv

from _paper import PAPER, report


@pytest.mark.benchmark(group="fig4-metadata")
def test_fig4_metadata_distribution(benchmark, pipeline, results_dir):
    sample = pipeline.preprocess.selected[:300]

    def run_metadata():
        return [classify_metadata(t, DEFAULT_CONFIG) for t in sample]

    benchmark.pedantic(run_metadata, rounds=3, iterations=1)

    table = metadata_table(pipeline.results, pipeline.run_weights())
    write_csv(shares_to_csv(table), results_dir / "fig4_metadata.csv")

    lines = [render_shares_table(table, title="measured")]
    for cat, expected in PAPER["metadata_all"].items():
        lines.append(
            f"all_runs.{cat}: measured {table['all_runs'][cat]:.1%} "
            f"(paper {expected:.1%})"
        )
    report("Fig. 4 metadata categories", lines)

    for cat, expected in PAPER["metadata_all"].items():
        assert table["all_runs"][cat] == pytest.approx(expected, abs=0.07), cat

    # structural claims from §IV-C:
    # high_spike dominates; density is the rarest significant label
    allr = table["all_runs"]
    assert allr["metadata_high_spike"] > allr["metadata_multiple_spikes"]
    assert allr["metadata_multiple_spikes"] > allr["metadata_high_density"]
    # the single-run shares are far below the all-runs shares (few
    # metadata-intensive applications run very often)
    single = table["single_run"]
    assert single["metadata_high_spike"] < 0.5 * allr["metadata_high_spike"]
    assert single["metadata_multiple_spikes"] < 0.5 * allr["metadata_multiple_spikes"]
    # multiple_spikes tracks the estimated periodic-writer population
    # (paper: 8% detected periodic + 37% write_steady)
    assert 0.3 < allr["metadata_multiple_spikes"] < 0.6
