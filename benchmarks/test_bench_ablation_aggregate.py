"""ABL-AGG — aggregate-statistics baseline comparison (design choice #3;
paper §II-B: aggregate categorization "does not provide temporal
information").

Measures how much of MOSAIC's taxonomy the aggregate baseline can
recover: traces that MOSAIC separates into different temporality
categories collapse into identical aggregate classes.
"""

from collections import defaultdict

import pytest

from repro.baselines import categorize_aggregate
from repro.core import TEMPORALITY_READ, TEMPORALITY_WRITE, Category
from repro.viz import rows_to_csv, write_csv

from _paper import report


@pytest.mark.benchmark(group="ablation-aggregate")
def test_aggregate_baseline_loses_temporality(benchmark, corpus, pipeline, results_dir):
    selected = pipeline.preprocess.selected
    by_id = {t.meta.job_id: t for t in selected}

    def run_baseline():
        return {
            r.job_id: categorize_aggregate(by_id[r.job_id])
            for r in pipeline.results
            if r.job_id in by_id
        }

    aggregate = benchmark.pedantic(run_baseline, rounds=1, iterations=1)

    # Group MOSAIC's temporality labels by the baseline's class set: a
    # baseline class that maps to many MOSAIC categories cannot support
    # temporality-aware scheduling.
    collision: dict[frozenset, set] = defaultdict(set)
    for r in pipeline.results:
        agg = aggregate.get(r.job_id)
        if agg is None:
            continue
        temporal = (r.categories & (TEMPORALITY_READ | TEMPORALITY_WRITE))
        collision[agg.classes].add(frozenset(temporal))

    distinct_mosaic = len({
        frozenset(r.categories & (TEMPORALITY_READ | TEMPORALITY_WRITE))
        for r in pipeline.results
    })
    worst = max(len(v) for v in collision.values())
    rows = [
        ["aggregate_class_sets", len(collision)],
        ["distinct_mosaic_temporality_sets", distinct_mosaic],
        ["max_mosaic_sets_per_aggregate_class", worst],
    ]
    write_csv(
        rows_to_csv(["metric", "value"], rows),
        results_dir / "ablation_aggregate.csv",
    )
    report(
        "ABL-AGG aggregate baseline vs MOSAIC temporality",
        [f"{k}: {v}" for k, v in rows]
        + [
            "a single aggregate class covers many MOSAIC temporality "
            "patterns -> no temporal scheduling signal"
        ],
    )

    # MOSAIC distinguishes many temporal patterns ...
    assert distinct_mosaic >= 8
    # ... which collapse heavily under the aggregate baseline
    assert worst >= 4

    # concrete confusion: read_on_start vs read_on_end traces share
    # aggregate classes whenever their volumes are comparable
    starts = [r for r in pipeline.results if Category.READ_ON_START in r.categories]
    ends = [r for r in pipeline.results if Category.READ_ON_END in r.categories]
    if starts and ends:
        agg_start = {frozenset(aggregate[r.job_id].classes)
                     for r in starts if r.job_id in aggregate}
        agg_end = {frozenset(aggregate[r.job_id].classes)
                   for r in ends if r.job_id in aggregate}
        assert agg_start & agg_end, "baseline should confuse start/end readers"
