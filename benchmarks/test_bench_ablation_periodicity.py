"""ABL-PERIOD — periodicity detector comparison (design choice #2; paper
§II-B criticism of frequency methods and §V future work).

Compares MOSAIC's segmentation + Mean Shift against the DFT and
autocorrelation baselines on four scenarios:

1. clean checkpoint train — everyone should find the period;
2. jittered train — robustness to timing noise;
3. alternating volumes — two periodic operations with one cadence:
   Mean Shift resolves two groups, spectral methods see one;
4. interleaved cross-cadence mixture — the "intricate" case: the
   frequency methods degrade, and MOSAIC's segmentation only recovers
   the fast train (documented limitation).
"""

import numpy as np
import pytest

from repro.core import DEFAULT_CONFIG, detect_periodicity
from repro.darshan.trace import OperationArray
from repro.signalproc import (
    build_activity_signal,
    detect_periodicity_autocorr,
    detect_periodicity_dft,
)
from repro.viz import rows_to_csv, write_csv

from _paper import report

GB = 1024**3


def train(period, n, duration=8.0, volume=2 * GB, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for k in range(n):
        s = k * period + (rng.normal(0, jitter * period) if jitter else 0.0)
        rows.append((max(s, 0.0), max(s, 0.0) + duration, volume))
    return rows


def evaluate(ops_rows, run_time, true_periods):
    """Run all three detectors; return dict of (found, period_error)."""
    ops = OperationArray.from_tuples(ops_rows)
    out = {}

    det = detect_periodicity(ops, run_time, "write", DEFAULT_CONFIG)
    periods = [g.period for g in det.groups]
    out["mosaic"] = (len(periods), _best_err(periods, true_periods))

    sig = build_activity_signal(ops, run_time, n_bins=2048)
    dft = detect_periodicity_dft(sig)
    out["dft"] = (
        int(dft.periodic),
        _best_err([dft.period] if dft.periodic else [], true_periods),
    )
    ac = detect_periodicity_autocorr(sig)
    out["autocorr"] = (
        int(ac.periodic),
        _best_err([ac.period] if ac.periodic else [], true_periods),
    )
    return out


def _best_err(found, truths):
    if not found:
        return float("nan")
    return min(abs(f - t) / t for f in found for t in truths)


@pytest.mark.benchmark(group="ablation-periodicity")
def test_detector_comparison(benchmark, results_dir):
    scenarios = {
        "clean": (train(600.0, 20), 12000.0, [600.0]),
        "jittered_mild": (train(600.0, 20, jitter=0.02, seed=3), 12000.0, [600.0]),
        "jittered_strong": (train(600.0, 20, jitter=0.05, seed=3), 12000.0, [600.0]),
        "alternating_volumes": (
            train(600.0, 20, volume=8 * GB)
            + [(s + 300.0, e + 300.0, v) for s, e, v in
               train(600.0, 20, volume=0.25 * GB, duration=4.0)],
            12300.0,
            [600.0],
        ),
        "interleaved_mixture": (
            train(600.0, 20, volume=4 * GB) + train(97.0, 120, duration=2.0,
                                                    volume=0.5 * GB, seed=2),
            12000.0,
            [600.0, 97.0],
        ),
    }

    rows = []
    lines = []
    results = {}
    for name, (ops_rows, run_time, truths) in scenarios.items():
        res = evaluate(ops_rows, run_time, truths)
        results[name] = res
        for detector, (n_found, err) in res.items():
            rows.append([name, detector, n_found, err])
            lines.append(
                f"{name:22s} {detector:9s}: {n_found} period(s), "
                f"best rel. error {err if err == err else float('nan'):.3f}"
            )
    write_csv(
        rows_to_csv(["scenario", "detector", "n_periods", "best_rel_error"], rows),
        results_dir / "ablation_periodicity.csv",
    )
    report("ABL-PERIOD detector comparison", lines)

    # clean + mild jitter: every detector finds the period accurately
    for scen in ("clean", "jittered_mild"):
        for detector in ("mosaic", "dft", "autocorr"):
            n, err = results[scen][detector]
            assert n >= 1 and err < 0.15, (scen, detector)

    # strong jitter (5% of the period): MOSAIC's segmentation compares
    # op-to-op spacing directly and survives; both signal-based
    # detectors degrade (the DFT comb smears below its confidence floor,
    # the ACF peak drops below threshold or locks onto a multiple) —
    # timing-noise robustness is a real differentiator
    n, err = results["jittered_strong"]["mosaic"]
    assert n >= 1 and err < 0.15
    for detector in ("dft", "autocorr"):
        n, err = results["jittered_strong"][detector]
        assert n == 0 or err > 0.15, detector

    # alternating volumes: Mean Shift separates the two operations
    # (two groups); the spectral detectors fuse them into one cadence
    n_mosaic, _ = results["alternating_volumes"]["mosaic"]
    assert n_mosaic >= 2
    assert results["alternating_volumes"]["dft"][0] <= 1
    assert results["alternating_volumes"]["autocorr"][0] <= 1

    # interleaved mixture: the paper's "two intricate periodic
    # behaviors" case.  The single-output spectral detectors can at best
    # report ONE of the two true periods; MOSAIC recovers the fast
    # cadence accurately, and its slow train is masked by the
    # start-to-next-start segmentation — in MOSAIC proper the
    # multi-period case is resolved across directions (periodic read +
    # periodic write), which the corpus benches exercise
    def coverage(found_periods, truths, tol=0.15):
        return sum(
            any(abs(f - t) / t < tol for f in found_periods) for t in truths
        )

    ops = OperationArray.from_tuples(scenarios["interleaved_mixture"][0])
    det = detect_periodicity(ops, 12000.0, "write", DEFAULT_CONFIG)
    mosaic_periods = [g.period for g in det.groups]
    assert coverage(mosaic_periods, [97.0]) == 1
    for detector in ("dft", "autocorr"):
        n, err = results["interleaved_mixture"][detector]
        assert n <= 1  # structurally unable to report both behaviours

    benchmark.pedantic(
        lambda: evaluate(*scenarios["interleaved_mixture"]),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="ablation-periodicity")
def test_corpus_method_comparison(benchmark, corpus, pipeline, results_dir):
    """Periodic-write detection quality per method over the real corpus
    mix — including the §V hybrid that backs Mean Shift with the DFT."""
    from repro.core import Category, categorize_trace

    traces = pipeline.preprocess.selected
    truth = corpus.truth
    labeled = [t for t in traces if t.meta.job_id in truth][:500]

    def method_scores(method: str) -> tuple[float, float]:
        cfg = DEFAULT_CONFIG.with_overrides(periodicity_method=method)
        tp = fp = fn = 0
        for t in labeled:
            result = categorize_trace(t, cfg)
            predicted = Category.PERIODIC_WRITE in result.categories
            actual = truth[t.meta.job_id].periodic_write
            tp += predicted and actual
            fp += predicted and not actual
            fn += actual and not predicted
        precision = tp / (tp + fp) if (tp + fp) else 1.0
        recall = tp / (tp + fn) if (tp + fn) else 1.0
        return precision, recall

    rows = []
    lines = []
    scores = {}
    for method in ("meanshift", "dft", "autocorr", "hybrid"):
        p, r = method_scores(method)
        scores[method] = (p, r)
        rows.append([method, p, r])
        lines.append(f"{method:10s} precision {p:.2f}  recall {r:.2f}")
    write_csv(
        rows_to_csv(["method", "precision", "recall"], rows),
        results_dir / "ablation_periodicity_corpus.csv",
    )
    report("ABL-PERIOD: corpus-level periodic-write detection by method", lines)

    # the paper's method and the hybrid must both be strong on the
    # corpus (the hybrid can only add detections on top of Mean Shift)
    for method in ("meanshift", "hybrid"):
        p, r = scores[method]
        assert p > 0.9 and r > 0.9, method
    assert scores["hybrid"][1] >= scores["meanshift"][1]

    benchmark.pedantic(
        lambda: method_scores("meanshift"), rounds=1, iterations=1
    )
