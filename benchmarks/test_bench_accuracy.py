"""ACC — MOSAIC accuracy via 512-trace sampling (paper §IV-E).

Paper: 512 randomly selected traces manually validated; 42 wrong →
92% accuracy, errors "mainly because of a sub-optimal detection of
temporality in some cases where an operation is unequally spread across
multiple chunks".  Ground truth replaces manual validation here.
"""

import pytest

from repro.analysis import estimate_accuracy
from repro.viz import rows_to_csv, write_csv

from _paper import PAPER, report


@pytest.mark.benchmark(group="accuracy")
def test_accuracy_512_sample(benchmark, corpus, pipeline, results_dir):
    rep = benchmark.pedantic(
        estimate_accuracy,
        args=(pipeline.results, corpus.truth),
        kwargs={"sample_size": 512, "seed": 42},
        rounds=3,
        iterations=1,
    )
    write_csv(
        rows_to_csv(
            ["metric", "value"],
            [
                ["n_sampled", rep.n_sampled],
                ["n_incorrect", rep.n_incorrect],
                ["accuracy", rep.accuracy],
                ["ci_low", rep.ci_low],
                ["ci_high", rep.ci_high],
            ]
            + [[f"errors_{k}", v] for k, v in rep.errors_by_axis.items()],
        ),
        results_dir / "accuracy.csv",
    )
    report(
        "SIV-E accuracy (512-trace sample)",
        [
            f"measured {rep.accuracy:.1%} "
            f"[{rep.ci_low:.1%}, {rep.ci_high:.1%}] "
            f"(paper {PAPER['accuracy']:.0%}: 42/512 wrong)",
            f"incorrect: {rep.n_incorrect}/512",
            f"errors by axis: {rep.errors_by_axis}",
        ],
    )

    # the band: same story as the paper (roughly 9 in 10 traces right,
    # clearly below perfect)
    assert 0.85 <= rep.accuracy <= 0.99
    # and the same failure mode: temporality dominates the errors
    if rep.n_incorrect >= 5:
        axis = rep.dominant_error_axis()
        assert axis in ("read_temporality", "write_temporality")
        temporal = rep.errors_by_axis.get("read_temporality", 0) + rep.errors_by_axis.get(
            "write_temporality", 0
        )
        periodic = rep.errors_by_axis.get("periodic_read", 0) + rep.errors_by_axis.get(
            "periodic_write", 0
        )
        assert temporal > periodic


@pytest.mark.benchmark(group="accuracy")
def test_accuracy_stable_across_samples(pipeline, corpus, benchmark):
    """The 512-sample protocol should be reproducible: different sampling
    seeds give estimates within the Wilson interval of each other."""
    reps = [
        estimate_accuracy(pipeline.results, corpus.truth, sample_size=512, seed=s)
        for s in range(5)
    ]
    accs = [r.accuracy for r in reps]
    benchmark.pedantic(
        estimate_accuracy,
        args=(pipeline.results, corpus.truth),
        kwargs={"sample_size": 512, "seed": 99},
        rounds=3,
        iterations=1,
    )
    report(
        "accuracy stability across sampling seeds",
        [f"seed {s}: {a:.1%}" for s, a in enumerate(accs)],
    )
    assert max(accs) - min(accs) < 0.08
