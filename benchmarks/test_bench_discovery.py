"""DISC — automatic category discovery (paper §V extension).

"Category determination could be made more automatic using clustering
methods."  This bench clusters the corpus's chunk-share profiles with
the from-scratch k-means and measures how much of Table I's hand-built
temporality taxonomy emerges unsupervised: the dominant classes
(on_start / on_end / steady) should appear as high-purity clusters,
while rare classes merge — quantifying both the promise and the limit
of the idea.
"""

import pytest

from repro.core import Category
from repro.discovery import discover_temporality
from repro.viz import rows_to_csv, write_csv

from _paper import report


@pytest.mark.benchmark(group="discovery")
def test_discovered_clusters_match_taxonomy(benchmark, pipeline, results_dir):
    reports = {}
    for direction in ("read", "write"):
        reports[direction] = discover_temporality(
            pipeline.results, direction, seed=7
        )

    rows = []
    lines = []
    for direction, rep in reports.items():
        lines.append(
            f"{direction}: k={rep.k} over {rep.n_traces} significant traces, "
            f"purity {rep.overall_purity:.2f}, ARI {rep.ari:.2f}"
        )
        for c in rep.clusters:
            rows.append(
                [direction, c.cluster_id, c.size, c.majority_label.value,
                 c.purity] + list(c.centroid_shares)
            )
            lines.append(
                f"  cluster {c.cluster_id}: {c.size:4d} traces -> "
                f"{c.majority_label.value} (purity {c.purity:.2f}) "
                f"shares {[round(s, 2) for s in c.centroid_shares]}"
            )
    write_csv(
        rows_to_csv(
            ["direction", "cluster", "size", "majority_label", "purity",
             "share_c1", "share_c2", "share_c3", "share_c4"],
            rows,
        ),
        results_dir / "discovery.csv",
    )
    report("DISC: automatic temporality discovery", lines)

    read_rep, write_rep = reports["read"], reports["write"]
    # the dominant classes emerge unsupervised with decent purity
    assert Category.READ_ON_START in read_rep.labels_recovered()
    assert Category.WRITE_ON_END in write_rep.labels_recovered()
    assert read_rep.overall_purity > 0.6
    assert write_rep.overall_purity > 0.6
    # and the partitions agree with the rules well above chance
    assert read_rep.ari > 0.5
    assert write_rep.ari > 0.5
    # but rare labels (after_start, before_end, ...) do NOT all surface:
    # automatic discovery recovers fewer classes than Table I defines,
    # which is why the paper lists it as future work, not a replacement
    assert len(read_rep.labels_recovered()) < 7

    benchmark.pedantic(
        lambda: discover_temporality(pipeline.results, "write", seed=7),
        rounds=3,
        iterations=1,
    )
