"""TAB3 — detection of temporality (paper Table III).

Paper (single-run vs all-runs):
    read : insignificant 85/27, on_start 9/38, steady 2/30, others 4/5
    write: insignificant 87/47, on_end 8/14, steady 3/37, others 2/2

The bench times the temporality stage in isolation and checks every cell
of the reproduced table against the paper within a tolerance band.
"""

import pytest

from repro.analysis import temporality_table
from repro.core import DEFAULT_CONFIG, classify_temporality
from repro.merge import preprocess_trace
from repro.viz import render_shares_table, shares_to_csv, write_csv

from _paper import PAPER, report

#: absolute tolerance (share points) per cell; the calibrated generator
#: plus MOSAIC's own misclassifications land within this band
TOL = 0.05


@pytest.mark.benchmark(group="table3-temporality")
def test_table3_temporality(benchmark, pipeline, results_dir):
    sample = pipeline.preprocess.selected[:300]

    def run_temporality():
        out = []
        for t in sample:
            for direction in ("read", "write"):
                merged = preprocess_trace(t, direction).ops
                out.append(
                    classify_temporality(
                        merged, t.meta.run_time, direction, DEFAULT_CONFIG
                    ).category
                )
        return out

    benchmark.pedantic(run_temporality, rounds=3, iterations=1)

    table = temporality_table(pipeline.results, pipeline.run_weights())
    write_csv(shares_to_csv(table), results_dir / "table3_temporality.csv")

    lines = [render_shares_table(table, title="measured")]
    for row_name in ("read_single", "read_all", "write_single", "write_all"):
        paper_row = PAPER[row_name]
        measured = table[row_name]
        for col, expected in paper_row.items():
            lines.append(
                f"{row_name}.{col}: measured {measured[col]:.1%} "
                f"(paper {expected:.0%})"
            )
    report("Table III temporality", lines)

    for row_name in ("read_single", "read_all", "write_single", "write_all"):
        for col, expected in PAPER[row_name].items():
            assert table[row_name][col] == pytest.approx(expected, abs=TOL), (
                f"{row_name}.{col}"
            )

    # the paper's headline observations hold structurally:
    # reads happen at the start or steadily; writes steadily or at the end
    assert table["read_all"]["read_on_start"] > table["read_all"]["others"]
    assert table["write_all"]["write_steady"] > table["write_all"]["write_on_end"]
    # ~95% of executions are described by 6 categories (3 read + 3 write)
    six = (
        sum(v for k, v in table["read_all"].items() if k != "others")
        + sum(v for k, v in table["write_all"].items() if k != "others")
    ) / 2.0
    assert six > 0.9
