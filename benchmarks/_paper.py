"""Paper-reported reference values and reporting helpers shared by the
benchmark harness."""

from __future__ import annotations

#: Values reported in the paper's evaluation (§IV).
PAPER = {
    "corrupted_fraction": 0.32,
    "unique_fraction": 0.08,
    "periodic_write_single": 0.02,
    "periodic_write_all": 0.08,
    "read_single": {"read_insignificant": 0.85, "read_on_start": 0.09,
                    "read_steady": 0.02, "others": 0.04},
    "read_all": {"read_insignificant": 0.27, "read_on_start": 0.38,
                 "read_steady": 0.30, "others": 0.05},
    "write_single": {"write_insignificant": 0.87, "write_on_end": 0.08,
                     "write_steady": 0.03, "others": 0.02},
    "write_all": {"write_insignificant": 0.47, "write_on_end": 0.14,
                  "write_steady": 0.37, "others": 0.02},
    "metadata_all": {"metadata_high_spike": 0.60,
                     "metadata_multiple_spikes": 0.459,
                     "metadata_high_density": 0.13},
    "corr_insig": 0.95,
    "corr_rcw": 0.66,
    "corr_periodic_low_busy": 0.96,
    "accuracy": 0.92,
}


def report(title: str, lines: list[str]) -> None:
    """Print a paper-vs-measured block (visible with pytest -s)."""
    print(f"\n=== {title} ===")
    for line in lines:
        print(f"  {line}")
