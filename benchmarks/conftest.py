"""Shared corpus and pipeline fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure from the same
calibrated corpus.  The corpus scale is controlled by the
``MOSAIC_REPRO_SCALE`` environment variable (number of unique
applications; default 1200 ≈ 1:20 of the paper's 24,606).  Generation
and the pipeline run once per session; individual benchmarks time their
own stage and assert the paper's *shape* (who wins, by what rough
factor) rather than exact values.

CSV artifacts for every table/figure are written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import run_pipeline
from repro.synth import FleetConfig, generate_fleet

RESULTS_DIR = Path(__file__).parent / "results"


def corpus_scale() -> int:
    return int(os.environ.get("MOSAIC_REPRO_SCALE", "1200"))


@pytest.fixture(scope="session")
def corpus():
    """The calibrated synthetic Blue Waters corpus."""
    return generate_fleet(
        FleetConfig(n_apps=corpus_scale(), mean_runs=12.5, seed=20190101)
    )


@pytest.fixture(scope="session")
def pipeline(corpus):
    """Full MOSAIC pipeline output over the corpus."""
    return run_pipeline(corpus.traces)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
