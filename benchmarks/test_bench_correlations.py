"""CORR — noteworthy correlations (paper §IV-D).

Paper statements measured here:
  * 95% of applications with no significant reads also have no
    significant writes;
  * 66% of applications reading on start write on end;
  * 96% of traces with periodic writes spend < 25% of the time writing;
  * dense/spiky metadata apps are more likely to read on start and/or
    write on end.
"""

import pytest

from repro.analysis import mine_correlations, paper_correlations
from repro.viz import rows_to_csv, write_csv

from _paper import PAPER, report


@pytest.mark.benchmark(group="correlations")
def test_paper_correlations(benchmark, pipeline, results_dir):
    rep = benchmark.pedantic(
        paper_correlations, args=(pipeline.results,), rounds=3, iterations=1
    )
    rows = [
        ["P(write insig | read insig)", rep.insig_read_implies_insig_write,
         PAPER["corr_insig"]],
        ["P(write on end | read on start)", rep.read_start_implies_write_end,
         PAPER["corr_rcw"]],
        ["periodic writers < 25% busy", rep.periodic_writes_low_busy,
         PAPER["corr_periodic_low_busy"]],
        ["P(start/end | dense metadata)",
         rep.dense_metadata_reads_start_or_writes_end, None],
    ]
    write_csv(
        rows_to_csv(["correlation", "measured", "paper"], rows),
        results_dir / "correlations.csv",
    )
    report(
        "SIV-D noteworthy correlations",
        [
            f"{name}: measured {value:.1%}"
            + (f" (paper {ref:.0%})" if ref else "")
            for name, value, ref in rows
        ],
    )

    assert rep.insig_read_implies_insig_write == pytest.approx(
        PAPER["corr_insig"], abs=0.04
    )
    assert rep.read_start_implies_write_end == pytest.approx(
        PAPER["corr_rcw"], abs=0.08
    )
    assert rep.periodic_writes_low_busy == pytest.approx(
        PAPER["corr_periodic_low_busy"], abs=0.08
    )
    # the directional claim: dense-metadata apps skew toward the
    # read-on-start / write-on-end pattern
    assert rep.dense_metadata_reads_start_or_writes_end > 0.8


@pytest.mark.benchmark(group="correlations")
def test_generic_miner_surfaces_scheduler_signals(benchmark, pipeline):
    found = benchmark.pedantic(
        mine_correlations,
        args=(pipeline.results,),
        kwargs={"min_jaccard": 0.05, "min_conditional": 0.6},
        rounds=3,
        iterations=1,
    )
    report(
        "mined correlations (J > 0.05, P > 0.6)",
        [f"P({t.value} | {g.value}) = {p:.0%}  [J={j:.2f}]"
         for g, t, p, j in found[:10]],
    )
    pairs = {frozenset((g.value, t.value)) for g, t, _, _ in found}
    assert frozenset(("read_on_start", "write_on_end")) in pairs
    assert frozenset(("read_insignificant", "write_insignificant")) in pairs
