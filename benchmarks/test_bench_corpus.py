"""CORPUS — store-backed batch path vs the per-trace streaming path.

Times the full categorize stage twice over one synthetic fleet: the
per-trace path (``run_pipeline_stream`` parsing binary payloads from a
directory, the way a live Darshan drop-box is consumed) and the
store-backed fast path (``run_pipeline_store`` over a ``.mosc`` store
compiled once from the same directory).  Emits ``BENCH_corpus.json``
(schema in ``docs/BENCHMARKS.md``) and enforces two gates:

* both paths must produce **identical** categorization results — the
  zero-copy batch path is only allowed to be fast because it is
  indistinguishable;
* the store-backed path must clear the configured traces/sec speedup
  floor (default 10×; the compile pass is reported separately because
  it is paid once per corpus, not once per analysis).

The fleet defaults to ~48 runs per application — the paper's corpus
ratio (1,181,788 runs over 24,606 applications, §IV) — because run
multiplicity is exactly what the store amortizes: pass ① re-parses
every payload on every streaming run but touches only the compiled
index here.

Environment:

``MOSAIC_BENCH_CORPUS_APPS``
    Number of applications in the fleet (default ``100``).  CI smoke
    runs a reduced fleet.
``MOSAIC_BENCH_CORPUS_MEAN_RUNS``
    Mean runs per application (default ``48``).
``MOSAIC_BENCH_CORPUS_MIN_SPEEDUP``
    Acceptance floor for the store/stream traces-per-second ratio
    (default ``10``; CI smoke gates at ``1`` — merely *not slower* —
    because shared runners make large ratios flaky).
``MOSAIC_BENCH_CORPUS_OUT``
    Output path for the JSON artifact (default ``BENCH_corpus.json`` at
    the repository root).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.columnar import compile_corpus
from repro.core import run_pipeline_store, run_pipeline_stream
from repro.darshan.io_binary import save_binary
from repro.darshan.source import DirectorySource
from repro.synth import FleetConfig, generate_fleet

SEED = 20190101
REPS = 3


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, str(default)))


def _out_path() -> Path:
    raw = os.environ.get("MOSAIC_BENCH_CORPUS_OUT")
    if raw:
        return Path(raw)
    return Path(__file__).resolve().parent.parent / "BENCH_corpus.json"


def _best(fn) -> tuple[float, object]:
    """Best-of-REPS wall time plus the last run's return value."""
    best = float("inf")
    value = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def run_corpus_bench(n_apps: int, mean_runs: float) -> dict:
    fleet = generate_fleet(
        FleetConfig(n_apps=n_apps, mean_runs=mean_runs, seed=SEED)
    )
    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = os.path.join(tmp, "traces")
        os.makedirs(trace_dir)
        for trace in fleet.traces:
            save_binary(
                trace,
                os.path.join(trace_dir, f"job{trace.meta.job_id:08d}.mosd"),
            )
        store_path = os.path.join(tmp, "corpus.mosc")

        t0 = time.perf_counter()
        report = compile_corpus(DirectorySource(trace_dir), store_path)
        compile_s = time.perf_counter() - t0

        stream_s, stream_res = _best(
            lambda: run_pipeline_stream(DirectorySource(trace_dir))
        )
        store_s, store_res = _best(lambda: run_pipeline_store(store_path))

    identical = [r.to_dict() for r in stream_res.results] == [
        r.to_dict() for r in store_res.results
    ]
    n = report.n_traces
    return {
        "schema": "mosaic-corpus-bench/1",
        "fleet": {
            "n_apps": n_apps,
            "mean_runs": mean_runs,
            "seed": SEED,
            "n_traces": n,
            "n_selected": len(store_res.results),
        },
        "compile": {
            "seconds": compile_s,
            "traces_per_s": n / compile_s,
            "store_bytes": report.n_bytes,
        },
        "categorize": {
            "stream_seconds": stream_s,
            "store_seconds": store_s,
            "stream_traces_per_s": n / stream_s,
            "store_traces_per_s": n / store_s,
            "speedup": stream_s / store_s,
        },
        "results_identical": identical,
    }


def test_store_backed_speedup():
    n_apps = _env_int("MOSAIC_BENCH_CORPUS_APPS", 100)
    mean_runs = _env_float("MOSAIC_BENCH_CORPUS_MEAN_RUNS", 48.0)
    floor = _env_float("MOSAIC_BENCH_CORPUS_MIN_SPEEDUP", 10.0)

    result = run_corpus_bench(n_apps, mean_runs)
    out = _out_path()
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    assert result["results_identical"], (
        "store-backed pipeline diverged from the per-trace path"
    )
    speedup = result["categorize"]["speedup"]
    assert speedup >= floor, (
        f"store-backed path {speedup:.1f}x over per-trace path, below the "
        f"{floor:.0f}x acceptance floor "
        f"({result['categorize']['store_traces_per_s']:.0f} vs "
        f"{result['categorize']['stream_traces_per_s']:.0f} traces/s)"
    )


if __name__ == "__main__":
    payload = run_corpus_bench(
        _env_int("MOSAIC_BENCH_CORPUS_APPS", 100),
        _env_float("MOSAIC_BENCH_CORPUS_MEAN_RUNS", 48.0),
    )
    _out_path().write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    cat = payload["categorize"]
    print(
        f"{payload['fleet']['n_traces']} traces: "
        f"stream {cat['stream_traces_per_s']:.0f} tr/s, "
        f"store {cat['store_traces_per_s']:.0f} tr/s, "
        f"{cat['speedup']:.1f}x (identical={payload['results_identical']})"
    )
