"""TAB2 — detection of periodic write operations (paper Table II).

Paper: 2% of unique applications and 8% of all executions carry periodic
writes, with periods between a few minutes and a few hours.  The bench
times periodicity detection over the significant writers and checks the
shares and the magnitude mix.
"""

import pytest

from repro.analysis import periodicity_table
from repro.core import DEFAULT_CONFIG, Category, detect_periodicity
from repro.merge import preprocess_trace
from repro.viz import render_shares_table, shares_to_csv, write_csv

from _paper import PAPER, report


@pytest.mark.benchmark(group="table2-periodicity")
def test_table2_periodic_writes(benchmark, corpus, pipeline, results_dir):
    # Time the periodicity stage in isolation on the significant writers
    # of the selected corpus (the expensive part: segmentation + Mean
    # Shift per trace).
    writers = [
        t for t in pipeline.preprocess.selected
        if t.total_bytes_written >= DEFAULT_CONFIG.insignificant_bytes
    ][:200]

    def run_periodicity():
        hits = 0
        for t in writers:
            merged = preprocess_trace(t, "write").ops
            det = detect_periodicity(merged, t.meta.run_time, "write", DEFAULT_CONFIG)
            hits += det.periodic
        return hits

    benchmark.pedantic(run_periodicity, rounds=3, iterations=1)

    table = periodicity_table(pipeline.results, pipeline.run_weights(), "write")
    write_csv(shares_to_csv(table), results_dir / "table2_periodicity.csv")
    report(
        "Table II periodic writes",
        [
            render_shares_table(table),
            f"single-run periodic: measured {table['single_run']['periodic']:.1%} "
            f"(paper {PAPER['periodic_write_single']:.0%})",
            f"all-runs periodic:   measured {table['all_runs']['periodic']:.1%} "
            f"(paper {PAPER['periodic_write_all']:.0%})",
        ],
    )

    assert table["single_run"]["periodic"] == pytest.approx(
        PAPER["periodic_write_single"], abs=0.015
    )
    assert table["all_runs"]["periodic"] == pytest.approx(
        PAPER["periodic_write_all"], abs=0.03
    )
    # paper §IV-A: write periods fluctuate between minutes and hours;
    # minute-scale dominates, second-scale periodic *writes* are absent
    assert table["all_runs"]["periodic_minute"] > table["all_runs"]["periodic_hour"]
    assert table["all_runs"]["periodic_minute"] > 0.0
    assert table["all_runs"]["periodic_hour"] > 0.0
    assert table["all_runs"]["periodic_second"] == 0.0


@pytest.mark.benchmark(group="table2-periodicity")
def test_table2_periodic_reads_smaller_and_faster(benchmark, corpus, pipeline):
    """Paper §IV-A: periodic reads are <2% of executions with periods an
    order of magnitude below write periods (seconds to minutes)."""
    table = benchmark.pedantic(
        periodicity_table,
        args=(pipeline.results, pipeline.run_weights(), "read"),
        rounds=3,
        iterations=1,
    )
    assert table["all_runs"]["periodic"] < 0.02 + 0.01

    read_periods = [
        g.period
        for r in pipeline.results
        for g in r.periodic_groups.get("read", [])
    ]
    write_periods = [
        g.period
        for r in pipeline.results
        for g in r.periodic_groups.get("write", [])
    ]
    assert read_periods, "corpus should contain periodic readers"
    mean_read = sum(read_periods) / len(read_periods)
    mean_write = sum(write_periods) / len(write_periods)
    report(
        "Table II companion: read vs write periods",
        [
            f"mean read period  {mean_read:7.0f}s (paper: seconds-minutes)",
            f"mean write period {mean_write:7.0f}s (paper: minutes-hours)",
        ],
    )
    assert mean_read * 2 < mean_write
