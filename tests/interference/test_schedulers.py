"""Unit tests for scheduling policies and their evaluation."""

import pytest

from repro.interference import (
    IOPhase,
    IOProfile,
    evaluate_schedule,
    schedule_category_aware,
    schedule_random,
    schedule_together,
)

GB = 1024**3


def start_reader(name, volume=100 * GB, run_time=3600.0):
    return IOProfile(
        name=name, run_time=run_time,
        phases=(IOPhase(0.0, 60.0, volume, "read"),),
    )


@pytest.fixture
def burst_fleet():
    return [start_reader(f"j{i}") for i in range(6)]


class TestPolicies:
    def test_together_all_zero(self, burst_fleet):
        sched = schedule_together(burst_fleet)
        assert all(v == 0.0 for v in sched.offsets.values())

    def test_random_within_window(self, burst_fleet):
        sched = schedule_random(burst_fleet, window=500.0, seed=1)
        assert all(0.0 <= v <= 500.0 for v in sched.offsets.values())
        assert len(set(sched.offsets.values())) > 1

    def test_random_deterministic_per_seed(self, burst_fleet):
        a = schedule_random(burst_fleet, 500.0, seed=2)
        b = schedule_random(burst_fleet, 500.0, seed=2)
        assert a.offsets == b.offsets

    def test_category_aware_staggers_conflicting_bursts(self, burst_fleet):
        sched = schedule_category_aware(burst_fleet, window=1200.0)
        offsets = sorted(sched.offsets.values())
        # identical start-burst jobs must not pile on one offset
        assert len(set(offsets)) >= 4

    def test_category_aware_coschedules_disjoint_jobs(self):
        reader = start_reader("r")
        writer = IOProfile(
            name="w", run_time=3600.0,
            phases=(IOPhase(3540.0, 3600.0, 100 * GB, "write"),),
        )
        sched = schedule_category_aware([reader, writer], window=1200.0)
        # no predicted overlap: both can take the earliest offset
        assert sched.offsets["r"] == sched.offsets["w"] == 0.0


class TestEvaluation:
    def test_category_aware_beats_together_under_contention(self, burst_fleet):
        bw = 2 * GB  # six 1.7 GB/s bursts vs 2 GB/s capacity
        together = evaluate_schedule(schedule_together(burst_fleet), burst_fleet, bw)
        aware = evaluate_schedule(
            schedule_category_aware(burst_fleet, window=1200.0), burst_fleet, bw
        )
        assert together.mean_stretch > 1.01
        assert aware.mean_stretch < together.mean_stretch
        assert aware.congested_time < together.congested_time

    def test_unknown_job_defaults_to_zero_offset(self, burst_fleet):
        sched = schedule_together(burst_fleet[:2])
        result = evaluate_schedule(sched, burst_fleet, bandwidth=100 * GB)
        assert len(result.completion) == len(burst_fleet)
