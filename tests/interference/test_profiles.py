"""Unit tests for I/O demand profiles."""

import numpy as np
import pytest

from repro.core import categorize_trace
from repro.interference import (
    IOPhase,
    IOProfile,
    profile_from_result,
    profile_from_trace,
)

from tests.conftest import make_record, make_trace

GB = 1024**3
SIG = 5 * GB


class TestIOPhase:
    def test_rate(self):
        p = IOPhase(0.0, 10.0, 100.0, "read")
        assert p.rate == 10.0
        assert p.duration == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            IOPhase(5.0, 5.0, 1.0, "read")
        with pytest.raises(ValueError):
            IOPhase(0.0, 1.0, -1.0, "write")


class TestIOProfile:
    def test_phases_sorted(self):
        prof = IOProfile(
            name="j",
            run_time=100.0,
            phases=(
                IOPhase(50.0, 60.0, 1.0, "write"),
                IOPhase(0.0, 10.0, 2.0, "read"),
            ),
        )
        assert prof.phases[0].start == 0.0
        assert prof.total_volume == 3.0

    def test_demand_at(self):
        prof = IOProfile(
            name="j", run_time=100.0,
            phases=(IOPhase(0.0, 10.0, 100.0, "read"),
                    IOPhase(5.0, 15.0, 50.0, "write")),
        )
        assert prof.demand_at(7.0) == pytest.approx(15.0)
        assert prof.demand_at(12.0) == pytest.approx(5.0)
        assert prof.demand_at(50.0) == 0.0

    def test_demand_series_conserves_rate_mass(self):
        prof = IOProfile(
            name="j", run_time=100.0,
            phases=(IOPhase(0.0, 50.0, 1000.0, "read"),),
        )
        series = prof.demand_series(n_bins=100)
        # rate 20 B/s over half the bins
        assert series[:50].sum() == pytest.approx(20.0 * 50)
        assert series[60:].sum() == 0.0


class TestProfileFromResult:
    def test_on_start_reader_predicts_start_phase(self):
        trace = make_trace([make_record(1, 0, read=(5.0, 40.0, SIG))], nprocs=2)
        result = categorize_trace(trace)
        prof = profile_from_result(result)
        assert len(prof.phases) == 1
        p = prof.phases[0]
        assert p.kind == "read"
        assert p.start == 0.0
        assert p.end <= 0.1 * trace.meta.run_time
        assert p.volume == pytest.approx(SIG, rel=0.01)

    def test_on_end_writer_predicts_end_phase(self):
        trace = make_trace([make_record(1, 0, write=(960.0, 995.0, SIG))], nprocs=2)
        prof = profile_from_result(categorize_trace(trace))
        p = prof.phases[0]
        assert p.kind == "write"
        assert p.end == pytest.approx(1000.0)

    def test_steady_spans_runtime(self):
        trace = make_trace([make_record(1, 0, read=(0.0, 1000.0, SIG))], nprocs=2)
        prof = profile_from_result(categorize_trace(trace))
        assert prof.phases[0].duration == pytest.approx(1000.0)

    def test_periodic_writer_predicts_event_train(self):
        recs = [
            make_record(k, 0, write=(100.0 + 600.0 * k, 115.0 + 600.0 * k, SIG))
            for k in range(16)
        ]
        trace = make_trace(recs, run_time=10000.0, nprocs=2)
        prof = profile_from_result(categorize_trace(trace))
        writes = [p for p in prof.phases if p.kind == "write"]
        assert len(writes) >= 10
        starts = [p.start for p in writes]
        spacing = np.diff(sorted(starts))
        assert np.median(spacing) == pytest.approx(600.0, rel=0.2)

    def test_insignificant_direction_has_no_phases(self):
        trace = make_trace([make_record(1, 0, read=(0.0, 10.0, 1024))])
        prof = profile_from_result(categorize_trace(trace))
        assert prof.phases == ()


class TestProfileFromTrace:
    def test_reflects_merged_operations(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(0.0, 10.0, SIG)),
                make_record(2, 1, read=(2.0, 12.0, SIG)),
                make_record(3, 2, write=(500.0, 520.0, SIG)),
            ]
        )
        prof = profile_from_trace(trace)
        assert len(prof.phases) == 2  # reads merged
        assert prof.total_volume == pytest.approx(3 * SIG)

    def test_prediction_close_to_truth_for_clean_patterns(self):
        trace = make_trace([make_record(1, 0, read=(5.0, 40.0, SIG))], nprocs=2)
        truth = profile_from_trace(trace)
        pred = profile_from_result(categorize_trace(trace))
        assert pred.total_volume == pytest.approx(truth.total_volume, rel=0.01)
