"""Unit tests for the PFS contention simulator."""

import pytest

from repro.interference import IOPhase, IOProfile, SimJob, simulate
from repro.interference.simulator import _fair_share

GB = 1024**3


def job(name, run_time, phases, start=0.0):
    return SimJob.from_profile(
        IOProfile(name=name, run_time=run_time, phases=tuple(phases)), start
    )


class TestFairShare:
    def test_under_capacity_everyone_satisfied(self):
        assert _fair_share([1.0, 2.0], 10.0) == [1.0, 2.0]

    def test_over_capacity_equal_split(self):
        alloc = _fair_share([10.0, 10.0], 10.0)
        assert alloc == [5.0, 5.0]

    def test_maxmin_small_demand_fully_served(self):
        alloc = _fair_share([1.0, 100.0], 10.0)
        assert alloc[0] == pytest.approx(1.0)
        assert alloc[1] == pytest.approx(9.0)

    def test_empty(self):
        assert _fair_share([], 10.0) == []


class TestSimulate:
    def test_single_job_runs_at_nominal_duration(self):
        j = job("a", 1000.0, [IOPhase(100.0, 200.0, 100 * GB, "read")])
        result = simulate([j], bandwidth=10 * GB)
        assert result.completion["a"] == pytest.approx(1000.0, rel=1e-6)
        assert result.stretch["a"] == pytest.approx(1.0, abs=1e-6)
        assert result.congested_time == 0.0

    def test_contention_stretches_jobs(self):
        # two jobs each demanding 1 GB/s for 100 s; PFS holds 1 GB/s total
        phases = [IOPhase(0.0, 100.0, 100 * GB, "read")]
        a, b = job("a", 200.0, phases), job("b", 200.0, phases)
        result = simulate([a, b], bandwidth=1 * GB)
        # each gets 0.5 GB/s -> the I/O takes 200 s instead of 100 s
        assert result.completion["a"] == pytest.approx(300.0, rel=0.01)
        assert result.stretch["a"] == pytest.approx(300.0 / 200.0, rel=0.01)
        assert result.congested_time == pytest.approx(200.0, rel=0.05)

    def test_staggering_removes_contention(self):
        phases = [IOPhase(0.0, 100.0, 100 * GB, "read")]
        a = job("a", 200.0, phases, start=0.0)
        b = job("b", 200.0, phases, start=100.0)
        result = simulate([a, b], bandwidth=1 * GB)
        assert result.mean_stretch == pytest.approx(1.0, abs=0.01)

    def test_delayed_start_respected(self):
        j = job("a", 100.0, [], start=500.0)
        result = simulate([j], bandwidth=GB)
        assert result.completion["a"] == pytest.approx(600.0, rel=1e-6)

    def test_io_delay_shifts_later_phases(self):
        # first phase stretched by contention delays the second phase
        phases = [
            IOPhase(0.0, 100.0, 100 * GB, "read"),
            IOPhase(500.0, 600.0, 50 * GB, "write"),
        ]
        a, b = job("a", 1000.0, phases), job("b", 1000.0, phases)
        result = simulate([a, b], bandwidth=1 * GB)
        assert result.completion["a"] > 1000.0
        assert result.stretch["a"] > 1.0

    def test_compute_only_jobs(self):
        j = job("a", 750.0, [])
        result = simulate([j], bandwidth=GB)
        assert result.completion["a"] == pytest.approx(750.0, rel=1e-6)

    def test_makespan(self):
        a = job("a", 100.0, [], start=0.0)
        b = job("b", 100.0, [], start=400.0)
        result = simulate([a, b], bandwidth=GB)
        assert result.makespan == pytest.approx(500.0, rel=1e-6)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            simulate([], bandwidth=0.0)

    def test_overlapping_phases_merged_within_job(self):
        j = job(
            "a",
            1000.0,
            [
                IOPhase(0.0, 100.0, 10 * GB, "read"),
                IOPhase(50.0, 150.0, 10 * GB, "write"),
            ],
        )
        assert len([s for s in j.segments if s.volume > 0]) == 1
        result = simulate([j], bandwidth=10 * GB)
        assert result.stretch["a"] == pytest.approx(1.0, abs=0.01)
