"""Tests for the threshold calibration workflow."""

import pytest

from repro.calibration import (
    calibrate_and_validate,
    month_subset,
    score_config,
    sweep_thresholds,
)
from repro.core import DEFAULT_CONFIG, preprocess_corpus


@pytest.fixture(scope="module")
def labeled_corpus(small_fleet):
    pre = preprocess_corpus(small_fleet.traces)
    return pre.selected, small_fleet.truth


class TestMonthSubset:
    def test_partition_covers_year(self, small_fleet):
        total = sum(
            len(month_subset(small_fleet.traces, m)) for m in range(12)
        )
        # starts are drawn within 360 days; everything falls in some month
        assert total == len(small_fleet.traces)

    def test_disjoint_months(self, small_fleet):
        a = {t.meta.job_id for t in month_subset(small_fleet.traces, 0)}
        b = {t.meta.job_id for t in month_subset(small_fleet.traces, 1)}
        assert not a & b

    def test_validation(self):
        with pytest.raises(ValueError):
            month_subset([], 12)

    def test_empty_input(self):
        assert month_subset([], 0) == []


class TestScoreConfig:
    def test_default_config_scores_high(self, labeled_corpus):
        traces, truth = labeled_corpus
        scores = score_config(traces, truth, DEFAULT_CONFIG)
        assert scores.trace_accuracy > 0.85
        assert scores.periodic_f1 > 0.8
        assert scores.temporality_accuracy >= scores.trace_accuracy

    def test_absurd_bandwidth_scores_lower(self, labeled_corpus):
        traces, truth = labeled_corpus
        default = score_config(traces, truth, DEFAULT_CONFIG)
        # a huge comparability bandwidth groups everything together:
        # spurious periodicity everywhere
        loose = score_config(
            traces, truth, DEFAULT_CONFIG.with_overrides(meanshift_bandwidth=5.0)
        )
        assert loose.periodic_precision <= default.periodic_precision
        assert loose.trace_accuracy <= default.trace_accuracy

    def test_empty_truth(self, labeled_corpus):
        traces, _ = labeled_corpus
        scores = score_config(traces[:3], {}, DEFAULT_CONFIG)
        assert scores.trace_accuracy == 0.0


class TestSweep:
    def test_sorted_by_accuracy(self, labeled_corpus):
        traces, truth = labeled_corpus
        points = sweep_thresholds(
            traces[:60], truth, {"meanshift_bandwidth": [0.15, 5.0]}
        )
        accs = [p.scores.trace_accuracy for p in points]
        assert accs == sorted(accs, reverse=True)

    def test_grid_product(self, labeled_corpus):
        traces, truth = labeled_corpus
        points = sweep_thresholds(
            traces[:20],
            truth,
            {"meanshift_bandwidth": [0.1, 0.2], "min_group_size": [2, 3]},
        )
        assert len(points) == 4
        assert {tuple(sorted(p.overrides)) for p in points} == {
            ("meanshift_bandwidth", "min_group_size")
        }

    def test_empty_grid_rejected(self, labeled_corpus):
        traces, truth = labeled_corpus
        with pytest.raises(ValueError):
            sweep_thresholds(traces, truth, {})


class TestCalibrateAndValidate:
    def test_full_workflow(self, labeled_corpus):
        traces, truth = labeled_corpus
        outcome = calibrate_and_validate(
            traces,
            truth,
            {"meanshift_bandwidth": [0.15, 2.0]},
            month=0,
            sample_size=128,
        )
        assert outcome.n_month_traces > 0
        assert outcome.best.scores.trace_accuracy >= outcome.sweep[-1].scores.trace_accuracy
        assert 0.0 < outcome.validation.accuracy <= 1.0
        # the sane bandwidth must win over the degenerate one
        assert outcome.best.overrides["meanshift_bandwidth"] == 0.15

    def test_month_without_traces_rejected(self, labeled_corpus):
        traces, truth = labeled_corpus
        few = traces[:2]
        # pick a month beyond these jobs' start window
        with pytest.raises(ValueError):
            calibrate_and_validate(
                few, {}, {"meanshift_bandwidth": [0.15]}, month=11
            )
