"""End-to-end backend equivalence on the synthetic fleet.

The differential oracle holds each kernel pair equivalent in isolation;
this suite closes the loop at the system level: categorizing the same
synthetic corpus with ``kernel_backend="reference"`` and
``kernel_backend="vectorized"`` must produce identical categories for
every trace, under the paper's Mean Shift method and under both
signal-processing baselines (which exercise the activity-binning and
peak-scan kernels).
"""

import dataclasses

import pytest

from repro.core import DEFAULT_CONFIG, categorize_trace
from repro.darshan import is_valid
from repro.synth import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def fleet_traces():
    fleet = generate_fleet(FleetConfig(n_apps=36, mean_runs=2.0, seed=20260806))
    traces = [t for t in fleet.traces if is_valid(t)]
    assert len(traces) >= 30
    return traces


def _categories(traces, config):
    return [
        (trace.meta.job_id, sorted(c.value for c in categorize_trace(trace, config).categories))
        for trace in traces
    ]


@pytest.mark.parametrize("method", ["meanshift", "dft", "autocorr", "hybrid"])
def test_categories_identical_across_backends(fleet_traces, method):
    base = dataclasses.replace(DEFAULT_CONFIG, periodicity_method=method)
    reference = dataclasses.replace(base, kernel_backend="reference")
    vectorized = dataclasses.replace(base, kernel_backend="vectorized")
    got_ref = _categories(fleet_traces, reference)
    got_vec = _categories(fleet_traces, vectorized)
    assert got_ref == got_vec


def test_periods_identical_across_backends(fleet_traces):
    # Stronger than category equality: the detected period groups of the
    # Mean Shift path must agree per direction in count and numerically
    # on the period estimates.
    reference = dataclasses.replace(DEFAULT_CONFIG, kernel_backend="reference")
    vectorized = dataclasses.replace(DEFAULT_CONFIG, kernel_backend="vectorized")
    for trace in fleet_traces:
        res_ref = categorize_trace(trace, reference)
        res_vec = categorize_trace(trace, vectorized)
        assert set(res_ref.periodic_groups) == set(res_vec.periodic_groups)
        for direction, groups_ref in res_ref.periodic_groups.items():
            groups_vec = res_vec.periodic_groups[direction]
            assert len(groups_ref) == len(groups_vec)
            for g_ref, g_vec in zip(groups_ref, groups_vec):
                assert g_ref.period == pytest.approx(g_vec.period, rel=1e-9, abs=1e-12)
