"""Differential oracle: every candidate backend ≡ the pure-Python reference.

Each kernel pair is hammered with seeded adversarial cases drawn from
the profile families in :mod:`repro.testing.differential`
(zero-duration bursts, overlapping and contained operations,
heavy-tailed volumes, constant/zero/pulse-train signals, ...), once per
candidate backend (``vectorized`` and the segmented ``batched`` twins).
The ``segmented_*`` kernels additionally hold one batched dispatch over
many concatenated traces equal to a per-trace reference loop — segment
walls must be hard.  Any divergence is a bug in one of the twins — the
report carries the seed and profile so the case replays exactly.
"""

import pytest

from repro.testing import run_differential
from repro.testing.differential import CANDIDATE_BACKENDS, KERNEL_PAIRS

N_CASES = 1000
#: The segmented checks run a per-trace reference loop over up to six
#: traces per case, so they get a smaller (still multi-hundred) sweep.
N_CASES_SEGMENTED = 300
SEED = 20260806


def _explain(report):
    lines = [report.summary()]
    for div in report.divergences[:5]:
        lines.append(
            f"  case={div.case} seed={div.seed} profile={div.profile}"
            f" backend={div.backend}: {div.message}"
        )
    return "\n".join(lines)


@pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
@pytest.mark.parametrize("kernel", sorted(KERNEL_PAIRS))
def test_candidate_matches_reference(kernel, backend):
    if kernel.startswith("segmented_"):
        if backend != "batched":
            pytest.skip("segmented checks always exercise the batched twins")
        n_cases = N_CASES_SEGMENTED
    else:
        n_cases = N_CASES
    report = run_differential(kernel, n_cases=n_cases, seed=SEED, backend=backend)
    assert report.n_cases >= n_cases
    assert report.backend == backend
    assert report.ok, _explain(report)


def test_every_kernel_pair_is_covered():
    # The oracle must track the backend registry: a kernel added to the
    # backends without a differential checker would ship unverified.
    from repro.kernels import available_backends, get_backend

    assert set(CANDIDATE_BACKENDS) == set(available_backends()) - {"reference"}

    backend_fields = {
        name
        for name in get_backend("reference").__dataclass_fields__
        if name != "name"
    }
    covered = {
        "neighbor_merge": "neighbor_pass",
        "concurrent_fusion": "overlap_groups",  # + coalesce_groups
        "segmentation": "segment",
        "meanshift_step": "shift_step",
        "acf_peak_scan": "acf_peak_scan",
        "dft_comb_scan": "dft_comb_scores",
        "activity_binning": "bin_activity",
        # cross-trace (segmented) twins of repro.kernels.batched
        "segmented_neighbor_merge": "neighbor_pass_segmented",
        "segmented_concurrent_fusion": "overlap_groups_segmented",
        "segmented_segmentation": "segment_segmented",
        "segmented_event_binning": "bin_events_segmented",
    }
    assert set(covered) == set(KERNEL_PAIRS)
    assert backend_fields <= set(covered.values()) | {"coalesce_groups"}

    # ... and every segmented kernel exported by the batched module must
    # have a segmented differential entry.
    from repro.kernels import batched

    segmented_exports = {
        n for n in batched.__all__ if n.endswith("_segmented")
    }
    assert segmented_exports == {
        covered[k] for k in KERNEL_PAIRS if k.startswith("segmented_")
    }


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError, match="no_such_kernel"):
        run_differential("no_such_kernel", n_cases=1)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="no_such_backend"):
        run_differential("neighbor_merge", n_cases=1, backend="no_such_backend")
