"""Differential oracle: vectorized kernels ≡ pure-Python references.

Each kernel pair is hammered with ≥ 1000 seeded adversarial cases drawn
from the profile families in :mod:`repro.testing.differential`
(zero-duration bursts, overlapping and contained operations,
heavy-tailed volumes, constant/zero/pulse-train signals, ...).  Any
divergence is a bug in one of the twins — the report carries the seed
and profile so the case replays exactly.
"""

import pytest

from repro.testing import run_differential
from repro.testing.differential import KERNEL_PAIRS

N_CASES = 1000
SEED = 20260806


def _explain(report):
    lines = [report.summary()]
    for div in report.divergences[:5]:
        lines.append(
            f"  case={div.case} seed={div.seed} profile={div.profile}: {div.message}"
        )
    return "\n".join(lines)


@pytest.mark.parametrize("kernel", sorted(KERNEL_PAIRS))
def test_vectorized_matches_reference(kernel):
    report = run_differential(kernel, n_cases=N_CASES, seed=SEED)
    assert report.n_cases >= N_CASES
    assert report.ok, _explain(report)


def test_every_kernel_pair_is_covered():
    # The oracle must track the backend registry: a kernel added to the
    # backends without a differential checker would ship unverified.
    from repro.kernels import get_backend

    backend_fields = {
        name
        for name in get_backend("reference").__dataclass_fields__
        if name != "name"
    }
    covered = {
        "neighbor_merge": "neighbor_pass",
        "concurrent_fusion": "overlap_groups",  # + coalesce_groups
        "segmentation": "segment",
        "meanshift_step": "shift_step",
        "acf_peak_scan": "acf_peak_scan",
        "dft_comb_scan": "dft_comb_scores",
        "activity_binning": "bin_activity",
    }
    assert set(covered) == set(KERNEL_PAIRS)
    assert backend_fields <= set(covered.values()) | {"coalesce_groups"}


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError, match="no_such_kernel"):
        run_differential("no_such_kernel", n_cases=1)
