"""Unit tests for the kernel backend registry and its config wiring."""

import dataclasses

import numpy as np
import pytest

from repro.core import MosaicConfig
from repro.kernels import (
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    get_backend,
)
from repro.kernels import reference as ref
from repro.kernels import vectorized as vec


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(available_backends()) == {
            "reference",
            "vectorized",
            "batched",
        }

    def test_default_is_vectorized(self):
        assert DEFAULT_BACKEND == "vectorized"
        assert get_backend().name == "vectorized"
        assert get_backend(None).name == "vectorized"

    def test_named_lookup(self):
        assert get_backend("reference").name == "reference"
        assert get_backend("vectorized").name == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="numba"):
            get_backend("numba")

    def test_backends_are_frozen(self):
        backend = get_backend("reference")
        with pytest.raises(dataclasses.FrozenInstanceError):
            backend.name = "other"

    def test_reference_backend_binds_reference_functions(self):
        backend = get_backend("reference")
        assert backend.neighbor_pass is ref.neighbor_pass
        assert backend.bin_activity is ref.bin_activity

    def test_vectorized_backend_binds_vectorized_functions(self):
        backend = get_backend("vectorized")
        assert backend.neighbor_pass is vec.neighbor_pass
        assert backend.bin_activity is vec.bin_activity


class TestConfigWiring:
    def test_default_config_uses_vectorized(self):
        assert MosaicConfig().kernel_backend == "vectorized"

    def test_reference_backend_accepted(self):
        assert MosaicConfig(kernel_backend="reference").kernel_backend == "reference"

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MosaicConfig(kernel_backend="gpu")


class TestShiftStepKernels:
    """The Mean Shift step must reject unknown kernels in both backends."""

    def test_unknown_kernel_name(self):
        seeds = np.zeros((2, 2))
        X = np.ones((3, 2))
        for backend in ("reference", "vectorized"):
            with pytest.raises(ValueError, match="triweight"):
                get_backend(backend).shift_step(seeds, X, 1.0, "triweight")

    def test_gaussian_agrees_across_backends(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 2))
        seeds = X[:7].copy()
        a = get_backend("reference").shift_step(seeds, X, 0.8, "gaussian")
        b = get_backend("vectorized").shift_step(seeds, X, 0.8, "gaussian")
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)


def test_backend_dataclass_shape():
    # Every slot of the backend record is a callable kernel (or the name).
    fields = dataclasses.fields(KernelBackend)
    names = {f.name for f in fields}
    assert "name" in names
    backend = get_backend()
    for f in fields:
        if f.name == "name":
            continue
        assert callable(getattr(backend, f.name))
