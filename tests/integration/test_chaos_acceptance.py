"""Chaos acceptance: the ISSUE's fault-tolerance scenario end to end.

A pooled corpus run with injected worker crashes, one hung trace, and
transient read errors must (a) complete, (b) categorize every healthy
trace, (c) quarantine the hung trace as TIMEOUT and the crashing trace
as POISON, (d) surface retry/rebuild counts in the metrics, and (e) be
resumable from its journal to byte-identical results after a mid-run
kill.
"""

import functools
import json

import pytest

from repro.core import run_pipeline_stream, save_results_jsonl
from repro.core.pipeline import PipelineContext
from repro.darshan import DirectorySource, save_binary
from repro.parallel import ParallelConfig
from repro.parallel.retry import FailureKind
from repro.synth import FleetConfig, generate_fleet
from repro.testing import ChaosInjector


def _chaos(fn, *, crash_key, hang_key, flaky_key, state_dir):
    return ChaosInjector(
        inner=fn,
        crash_keys=frozenset({crash_key}),
        hang_keys=frozenset({hang_key}),
        flaky_keys=frozenset({flaky_key}),
        hang_seconds=60.0,
        state_dir=state_dir,
    )


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=25, mean_runs=2.0, seed=5))
    for trace in fleet.traces:
        save_binary(trace, path / f"job{trace.meta.job_id:08d}.mosd")
    return path


@pytest.fixture(scope="module")
def clean_job_ids(corpus_dir):
    result = run_pipeline_stream(
        DirectorySource(corpus_dir), parallel=ParallelConfig(max_workers=0)
    )
    return [r.job_id for r in result.results]


def _context(args_state_dir, crash_id, hang_id, flaky_id):
    return PipelineContext(
        parallel=ParallelConfig(
            max_workers=2, task_timeout_s=3.0, max_pool_rebuilds=10
        ),
        wrap_worker=functools.partial(
            _chaos,
            crash_key=f"job:{crash_id}",
            hang_key=f"job:{hang_id}",
            flaky_key=f"job:{flaky_id}",
            state_dir=args_state_dir,
        ),
    )


class TestChaosAcceptance:
    @pytest.fixture(scope="class")
    def chaos_run(self, corpus_dir, clean_job_ids, tmp_path_factory):
        assert len(clean_job_ids) >= 6
        crash_id, hang_id, flaky_id = clean_job_ids[:3]
        tmp = tmp_path_factory.mktemp("chaos-run")
        journal = tmp / "run.jsonl"
        ctx = _context(str(tmp / "state"), crash_id, hang_id, flaky_id)
        (tmp / "state").mkdir()
        result = run_pipeline_stream(
            DirectorySource(corpus_dir),
            parallel=ctx.parallel,
            context=ctx,
            journal_path=journal,
        )
        return {
            "result": result,
            "journal": journal,
            "tmp": tmp,
            "crash_id": crash_id,
            "hang_id": hang_id,
            "flaky_id": flaky_id,
        }

    def test_healthy_traces_all_categorized(self, chaos_run, clean_job_ids):
        healthy = set(clean_job_ids) - {
            chaos_run["crash_id"],
            chaos_run["hang_id"],
        }
        categorized = {r.job_id for r in chaos_run["result"].results}
        assert categorized == healthy

    def test_hung_trace_timed_out_and_crasher_poisoned(self, chaos_run):
        journal_state = {}
        with open(chaos_run["journal"], encoding="utf-8") as fh:
            for line in fh:
                entry = json.loads(line)
                if entry["kind"] == "failure":
                    journal_state[entry["job_id"]] = entry["failure_kind"]
        assert journal_state[chaos_run["hang_id"]] == FailureKind.TIMEOUT.value
        assert journal_state[chaos_run["crash_id"]] == FailureKind.POISON.value

    def test_recovery_counters_in_metrics(self, chaos_run):
        m = chaos_run["result"].metrics
        assert m["n_retries"] >= 1  # the flaky trace recovered
        assert m["n_timeouts"] == 1
        assert m["n_poisoned"] == 1
        assert m["n_crash_events"] >= 1
        assert m["n_pool_rebuilds"] >= 2  # crash recovery + hang recycle
        assert m["n_quarantined"] == 2
        assert m["n_failures"] == 2

    def test_quarantine_manifest_lists_both_victims(self, chaos_run):
        with open(f"{chaos_run['journal']}.quarantine.json", encoding="utf-8") as fh:
            manifest = json.load(fh)
        assert manifest["n_quarantined"] == 2
        assert {e["job_id"] for e in manifest["quarantined"]} == {
            chaos_run["crash_id"],
            chaos_run["hang_id"],
        }
        assert all(e["trace_key"] for e in manifest["quarantined"])

    def test_killed_chaos_run_resumes_to_identical_results(
        self, chaos_run, corpus_dir
    ):
        tmp = chaos_run["tmp"]
        baseline_path = tmp / "baseline.jsonl"
        save_results_jsonl(chaos_run["result"].results, str(baseline_path))

        # kill the run after 4 journaled outcomes
        killed = tmp / "killed.jsonl"
        with open(chaos_run["journal"], encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(killed, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:5])

        ctx = _context(
            str(tmp / "state"),  # flaky markers persist: already recovered
            chaos_run["crash_id"],
            chaos_run["hang_id"],
            chaos_run["flaky_id"],
        )
        resumed = run_pipeline_stream(
            DirectorySource(corpus_dir),
            parallel=ctx.parallel,
            context=ctx,
            journal_path=killed,
            resume=True,
        )
        assert resumed.metrics["n_resumed"] == 4
        resumed_path = tmp / "resumed.jsonl"
        save_results_jsonl(resumed.results, str(resumed_path))
        assert resumed_path.read_bytes() == baseline_path.read_bytes()
