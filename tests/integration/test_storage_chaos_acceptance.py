"""Storage-chaos acceptance: ≥1000 scripted fault cases, one invariant.

Every persistence site is swept with every fault kind at every VFS
primitive it performs (the op census is the case generator), and each
case must resolve into exactly one of the allowed outcomes:

* the operation **succeeds** (a transient fault was retried) and the
  artifact is byte-complete;
* the operation fails with a **typed** :class:`StorageError` (or the
  site's documented swallow) and the final path is absent-or-complete —
  never torn;
* a **power cut** interrupts it, and the post-cut durable state is
  absent-or-complete; a cut store that *is* visible passes
  ``verify_store`` or is salvageable.

The full sweep is the CI gate (the ``storage-chaos`` job); set
``MOSAIC_STORAGE_CHAOS_CASES=N`` to stride-sample roughly N cases for a
quick local run (the ≥1000 floor is only asserted on the full sweep).
A machine-readable summary lands at ``MOSAIC_CHAOS_REPORT`` (or
``<tmp>/chaos-report.json``) for CI artifact upload.
"""

import errno
import json
import os
import shutil

import pytest

from repro.columnar import compile_corpus, verify_store
from repro.darshan.source import InMemorySource
from repro.io import StorageError, scoped_io
from repro.lint.baseline import Baseline
from repro.parallel.journal import (
    JournalState,
    JournalWriter,
    write_quarantine_manifest,
)
from repro.synth import FleetConfig, generate_fleet
from repro.testing import (
    FAULT_POWER_CUT,
    FAULT_SHORT_WRITE,
    PowerCut,
    StorageChaos,
)
from repro.viz.export import write_csv

FAULTS = (
    errno.ENOSPC,
    errno.EDQUOT,
    errno.EIO,
    errno.EINTR,
    errno.EROFS,
    FAULT_SHORT_WRITE,
    FAULT_POWER_CUT,
)

_FLEET = None


def _fleet():
    global _FLEET
    if _FLEET is None:
        _FLEET = generate_fleet(
            FleetConfig(n_apps=24, mean_runs=1.5, seed=13)
        ).traces
    return _FLEET


# -- sites -------------------------------------------------------------
def _site_compile(root):
    compile_corpus(InMemorySource(_fleet()), str(root / "corpus.mosc"))


def _site_journal(root):
    with JournalWriter(str(root / "run.jsonl"), sync_interval=5) as journal:
        journal.write_header(n_selected=30)
        for job in range(30):
            journal.record_result(job, {"job_id": job, "categories": ["a"]})


def _site_journal_sync1(root):
    # fsync-per-line (the pipeline default): every op is a case
    with JournalWriter(str(root / "sync1.jsonl")) as journal:
        journal.write_header(n_selected=9)
        for job in range(9):
            journal.record_result(job, {"job_id": job})


def _site_journal_resume(root):
    path = str(root / "resume.jsonl")
    if not os.path.exists(path):
        # seed a prior run outside the fault window
        with JournalWriter(path) as journal:
            journal.write_header(n_selected=8)
            journal.record_result(0, {"job_id": 0})
    with JournalWriter(path, append=True, sync_interval=2) as journal:
        for job in range(1, 8):
            journal.record_result(job, {"job_id": job})


def _site_quarantine(root):
    write_quarantine_manifest(
        str(root / "run.jsonl"),
        [{"job_id": j, "failure_kind": "timeout"} for j in range(4)],
    )


def _site_baseline(root):
    Baseline.from_findings([]).save(str(root / "baseline.json"))


def _site_csv(root):
    write_csv("a,b\n" + "\n".join(f"{i},{i}" for i in range(50)), str(root / "t.csv"))


SITES = {
    "compile": (_site_compile, "corpus.mosc"),
    "journal": (_site_journal, "run.jsonl"),
    "journal-sync1": (_site_journal_sync1, "sync1.jsonl"),
    "journal-resume": (_site_journal_resume, "resume.jsonl"),
    "quarantine": (_site_quarantine, "run.jsonl.quarantine.json"),
    "baseline": (_site_baseline, "baseline.json"),
    "csv": (_site_csv, "t.csv"),
}


def _per_op_indexes(census):
    seen = {}
    out = []
    for op, _path in census:
        idx = seen.get(op, 0)
        seen[op] = idx + 1
        out.append((op, idx))
    return out


def _reset(root):
    if root.exists():
        shutil.rmtree(root)
    root.mkdir()
    return root


def _check_artifact(site, root, artifact, complete):
    """Absent-or-complete, and loadable by the artifact's own reader."""
    path = root / artifact
    content = path.read_bytes() if path.exists() else None
    if content is None:
        return "absent"
    if site in ("journal", "journal-sync1", "journal-resume"):
        state = JournalState.load(path)  # parses whatever survived
        assert len(state.completed) <= 30
        return "complete" if content == complete else "prefix"
    assert content == complete, f"torn {artifact} at {site}"
    if site == "compile":
        assert verify_store(str(path)).clean
    return "complete"


def test_storage_chaos_acceptance(tmp_path):
    budget = int(os.environ.get("MOSAIC_STORAGE_CHAOS_CASES", "0"))
    cases = []
    for site, (action, artifact) in SITES.items():
        root = _reset(tmp_path / site)
        with scoped_io(StorageChaos(root)) as chaos:
            action(root)
            census = list(chaos.ops_log)
        complete = (root / artifact).read_bytes()
        for op, idx in _per_op_indexes(census):
            for fault in FAULTS:
                cases.append((site, action, artifact, complete, op, idx, fault))

    if budget:
        stride = max(1, len(cases) // budget)
        cases = cases[::stride]
    else:
        assert len(cases) >= 1000, (
            f"acceptance sweep shrank to {len(cases)} cases — persistence "
            "sites lost VFS coverage"
        )

    outcomes = {"retried": 0, "typed-error": 0, "power-cut": 0}
    per_site = {site: 0 for site in SITES}
    for site, action, artifact, complete, op, idx, fault in cases:
        root = _reset(tmp_path / site)
        chaos = StorageChaos(root, script={(op, idx): fault})
        try:
            with scoped_io(chaos):
                action(root)
        except StorageError as exc:
            assert exc.op and exc.path, f"untyped failure at {site}:{op}#{idx}"
            outcomes["typed-error"] += 1
        except PowerCut:
            chaos.power_cut()
            outcomes["power-cut"] += 1
        else:
            outcomes["retried"] += 1
        assert chaos.injected, f"fault never fired at {site}:{op}#{idx}"
        _check_artifact(site, root, artifact, complete)
        per_site[site] += 1

    report_path = os.environ.get(
        "MOSAIC_CHAOS_REPORT", str(tmp_path / "chaos-report.json")
    )
    payload = {
        "n_cases": len(cases),
        "fault_kinds": [str(f) for f in FAULTS],
        "outcomes": outcomes,
        "per_site": per_site,
    }
    with open(report_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    assert sum(outcomes.values()) == len(cases)
    # sanity: all three outcome classes actually occur in a full sweep
    if not budget:
        assert all(outcomes.values()), outcomes


def test_killed_compile_then_salvage_reports_losses(tmp_path):
    """The end-to-end salvage story: a power cut mid-compile leaves
    either nothing or a complete store; bit rot afterwards is then
    localized and salvaged with an accurate loss report."""
    from repro.columnar import salvage_store

    root = _reset(tmp_path / "e2e")
    out = root / "corpus.mosc"
    chaos = StorageChaos(root, script={("fsync", 0): FAULT_POWER_CUT})
    with scoped_io(chaos):
        with pytest.raises(PowerCut):
            _site_compile(root)
    chaos.power_cut()
    assert not out.exists()  # never half-visible

    _site_compile(root)  # clean retry
    report = verify_store(str(out))
    assert report.clean

    # bit-rot one records byte, then salvage
    with open(out, "r+b") as fh:
        header_raw = fh.read(4096)
    from repro.columnar.format import HEADER_SIZE, unpack_header

    header = unpack_header(header_raw[:HEADER_SIZE])
    offset, _nbytes, _crc = header["sections"]["records"]
    with open(out, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))

    salvaged = root / "salvaged.mosc"
    salvage = salvage_store(str(out), str(salvaged))
    assert salvage.n_lost >= 1
    assert salvage.n_recovered == salvage.n_rows - salvage.n_lost
    assert verify_store(str(salvaged)).clean
