"""Corpus-level integration tests over the shared small fleet."""

import pytest

from repro.analysis import (
    estimate_accuracy,
    funnel_report,
    jaccard_matrix,
    paper_correlations,
    temporality_table,
)
from repro.core import Category


class TestPipelineOverFleet:
    def test_funnel_proportions(self, small_fleet, small_pipeline):
        rep = funnel_report(small_pipeline.preprocess)
        assert rep.corrupted_fraction == pytest.approx(0.32, abs=0.03)
        assert rep.unique_fraction == pytest.approx(
            150 / small_fleet.n_valid, rel=0.05
        )

    def test_every_unique_app_categorized(self, small_fleet, small_pipeline):
        assert small_pipeline.n_categorized == 150
        assert small_pipeline.n_failures == 0

    def test_no_corrupted_trace_categorized(self, small_fleet, small_pipeline):
        for r in small_pipeline.results:
            assert r.job_id in small_fleet.truth

    def test_every_result_has_temporality_for_both_directions(self, small_pipeline):
        from repro.core import TEMPORALITY_READ, TEMPORALITY_WRITE

        for r in small_pipeline.results:
            assert len(r.categories & TEMPORALITY_READ) == 1
            assert len(r.categories & TEMPORALITY_WRITE) == 1

    def test_accuracy_in_paper_band(self, small_fleet, small_pipeline):
        rep = estimate_accuracy(
            small_pipeline.results, small_fleet.truth, sample_size=150, seed=3
        )
        # paper: 92%; the calibrated generator lands in a band around it
        assert 0.85 <= rep.accuracy <= 0.99

    def test_errors_dominated_by_temporality(self, small_fleet, small_pipeline):
        # paper §IV-E: misclassifications come "mainly" from temporality
        rep = estimate_accuracy(
            small_pipeline.results, small_fleet.truth, sample_size=512, seed=3
        )
        if rep.n_incorrect:
            axis = rep.dominant_error_axis()
            assert axis in ("read_temporality", "write_temporality")

    def test_run_weights_match_fleet_manifest(self, small_fleet, small_pipeline):
        assert sum(small_pipeline.run_weights()) == small_fleet.n_valid

    def test_correlations_have_paper_shape(self, small_pipeline):
        rep = paper_correlations(small_pipeline.results)
        assert rep.insig_read_implies_insig_write > 0.85   # paper: 95%
        assert 0.45 <= rep.read_start_implies_write_end <= 0.85  # paper: 66%
        # paper: 96%; at this corpus scale only a handful of apps are
        # periodic, so one high-busy app moves the share a lot — the
        # TAB-CORR benchmark checks this at full scale with a tighter band
        assert rep.periodic_writes_low_busy >= 0.7

    def test_jaccard_surfaces_rcw_pair(self, small_pipeline):
        m = jaccard_matrix(small_pipeline.results)
        pairs = {
            frozenset((a.value, b.value)) for a, b, _ in m.relevant_pairs(0.05)
        }
        assert frozenset(("read_on_start", "write_on_end")) in pairs

    def test_temporality_rows_sum_to_one(self, small_pipeline):
        table = temporality_table(
            small_pipeline.results, small_pipeline.run_weights()
        )
        for row in table.values():
            assert sum(row.values()) == pytest.approx(1.0, abs=1e-9)

    def test_hidden_periodic_categorized_steady(self, small_fleet, small_pipeline):
        # Darshan's kept-open flattening: hidden periodic apps must come
        # out steady, not periodic (paper §IV-A)
        hidden = [
            r for r in small_pipeline.results
            if small_fleet.truth[r.job_id].hidden_periodic
        ]
        assert hidden, "fleet should contain hidden-periodic apps"
        for r in hidden:
            assert Category.PERIODIC_WRITE not in r.categories
            assert Category.WRITE_STEADY in r.categories
