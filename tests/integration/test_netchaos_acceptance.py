"""Network-chaos acceptance: the resilient client converges through a
scripted hostile network.

A real ``MosaicServer`` sits behind a :class:`NetChaosProxy`; a
:class:`MosaicClient` submits, watches, and fetches results through it,
round after round, under fresh seeded fault schedules.  The acceptance
bar (ISSUE): at least ``MOSAIC_NETCHAOS_CASES`` scripted per-connection
fault decisions (default 500), every round converging to results
byte-identical to a direct, un-proxied read — chaos may change how long
convergence takes, never whether or what bytes arrive.

On any failure the full chaos script is dumped as JSON (path printed),
which CI uploads as an artifact; feeding it back through
``NetChaosSchedule(scripts=...)`` replays the failing run exactly.
"""

import json
import os
import threading
import time

import asyncio

import pytest

from repro.columnar import compile_corpus
from repro.darshan import DirectorySource, save_binary
from repro.service import MosaicServer
from repro.service.client import (
    CircuitBreaker,
    ClientRetryPolicy,
    MosaicClient,
)
from repro.synth import FleetConfig, generate_fleet
from repro.testing.netchaos import NetChaosProxy, NetChaosSchedule

#: The acceptance bar: scripted fault decisions to accumulate.  CI's
#: smoke job reduces it; the default is the ISSUE's floor.
TARGET_CASES = int(os.environ.get("MOSAIC_NETCHAOS_CASES", "500"))

#: Every round must finish inside this envelope or the run counts as a
#: hang — the other half of the acceptance criterion.
ROUND_DEADLINE_S = 120.0


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    base = tmp_path_factory.mktemp("netchaos-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.0, seed=51))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    return str(store_path)


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    server = MosaicServer(tmp_path_factory.mktemp("netchaos-srv"), port=0)
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run()), daemon=True
    )
    thread.start()
    endpoint_path = os.path.join(server.data_dir, "server.json")
    deadline = time.monotonic() + 30
    endpoint = None
    while time.monotonic() < deadline:
        try:
            with open(endpoint_path, encoding="utf-8") as fh:
                candidate = json.load(fh)
            if candidate.get("pid") == os.getpid():
                endpoint = candidate
                break
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.02)
    assert endpoint is not None, "server never published server.json"
    yield server, endpoint
    loop = server._loop
    if loop is not None and not loop.is_closed():
        loop.call_soon_threadsafe(server.request_stop)
    thread.join(timeout=30)
    assert not thread.is_alive()


def _chaos_client(proxy):
    """Aggressive-but-bounded client so chaotic rounds stay fast."""
    return MosaicClient(
        proxy.host,
        proxy.port,
        retry=ClientRetryPolicy(
            max_attempts=10, backoff_base_s=0.01, backoff_cap_s=0.25
        ),
        # the breaker is covered by its own unit tests; here it must
        # never fail-fast a round the retry ladder would have saved
        breaker=CircuitBreaker(failure_threshold=10_000),
        timeout_s=10.0,
    )


def _direct_client(endpoint):
    return MosaicClient(endpoint["host"], endpoint["port"], timeout_s=30.0)


def test_client_converges_through_scripted_network_chaos(
    live, store, tmp_path
):
    _server, endpoint = live
    direct = _direct_client(endpoint)
    # CI sets MOSAIC_NETCHAOS_ARTIFACT to a workspace path it uploads
    artifact_path = os.environ.get(
        "MOSAIC_NETCHAOS_ARTIFACT", str(tmp_path / "netchaos-script.json")
    )

    cases = 0
    rounds = 0
    totals = {"faulted": 0, "clean": 0}
    while cases < TARGET_CASES:
        schedule = NetChaosSchedule(
            seed=1000 + rounds, fault_rate=0.6, clean_every=3, stall_s=0.2
        )
        proxy = NetChaosProxy(
            endpoint["host"], endpoint["port"], schedule=schedule
        )
        with proxy:
            client = _chaos_client(proxy)
            started = time.monotonic()
            try:
                # every 20th round forces a fresh execution (unique
                # key); the rest resubmit identical work and must dedup
                key = f"netchaos-round-{rounds}" if rounds % 20 == 0 else None
                submitted = client.submit(store=store, idempotency_key=key)
                job_id = submitted["job_id"]
                final = client.watch(job_id, timeout_s=ROUND_DEADLINE_S)
                assert final["status"] == "done", final
                chaotic_bytes = client.results(job_id)
                oracle = direct.results(job_id)
                assert chaotic_bytes == oracle, (
                    f"round {rounds}: results diverged through chaos "
                    f"({len(chaotic_bytes)} vs {len(oracle)} bytes)"
                )
                assert chaotic_bytes.count(b"\n") == (
                    final["n_results"] + final["n_failures"]
                )
            except BaseException:
                with open(artifact_path, "w", encoding="utf-8") as fh:
                    fh.write(proxy.dump_script())
                print(f"chaos script saved to {artifact_path}")
                raise
            elapsed = time.monotonic() - started
            assert elapsed < ROUND_DEADLINE_S, (
                f"round {rounds} took {elapsed:.1f}s — that is a hang, "
                f"not convergence"
            )
            for decision in proxy.applied:
                totals[
                    "clean" if decision["kind"] == "none" else "faulted"
                ] += 1
            cases += len(proxy.applied)
        rounds += 1

    assert cases >= TARGET_CASES
    # the schedule actually exercised faults — a proxy that went clean
    # 500 times proves nothing
    assert totals["faulted"] >= TARGET_CASES // 10, totals
    print(
        f"netchaos: {cases} connection cases over {rounds} rounds "
        f"({totals['faulted']} faulted, {totals['clean']} clean)"
    )
