"""Chaos acceptance for the store-backed fast path's mmap seam.

Pool rebuilds and ``--resume`` must *re-open* the store read-only in
every worker process — never inherit a parent mapping through fork, and
never a writable view.  The per-process attach cache is keyed by pid
and file identity exactly so this seam cannot regress silently; this
module drives it end to end: a crashing slice forces pool rebuilds, the
rebuilt workers reattach and finish the corpus, and a killed journal
resumes to byte-identical results on fresh worker processes.
"""

import concurrent.futures
import functools
import json
import os

import pytest

from repro.columnar import attach, compile_corpus, plan_slices, scan_store
from repro.core import DEFAULT_CONFIG, run_pipeline_store, save_results_jsonl
from repro.core.pipeline import PipelineContext
from repro.darshan import DirectorySource, save_binary
from repro.parallel import ParallelConfig
from repro.parallel.retry import FailureKind
from repro.synth import FleetConfig, generate_fleet
from repro.testing import ChaosInjector, item_key

#: Small slice budget so the 25-app corpus plans several slices — the
#: chaos faults need distinct victim slices and survivors.
SLICE_OPS = 500


def _probe_attach(store_path: str) -> tuple[int, bool, bool]:
    """Worker-side probe: attach and report
    (pid, mapping-is-read-only, cache-was-rekeyed-to-this-pid)."""
    from repro.columnar import store as store_mod

    store = attach(store_path)
    try:
        store._mmap[0:1] = b"\x00"
        read_only = False
    except TypeError:  # "mmap can't modify a readonly memory map"
        read_only = True
    cached = store_mod._ATTACHED.get(os.path.abspath(store_path))
    rekeyed = cached is not None and cached[0] == os.getpid()
    return os.getpid(), read_only, rekeyed


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    base = tmp_path_factory.mktemp("store-chaos")
    fleet = generate_fleet(FleetConfig(n_apps=25, mean_runs=2.0, seed=17))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    out = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), out)
    return str(out)


@pytest.fixture(scope="module")
def planned_slices(store_path):
    """The same slice plan ``run_pipeline_store`` will compute, so a
    chaos fault can target one slice by its stable item key."""
    store = attach(store_path)
    plan = scan_store(store)
    rows = [int(entry.ref.key) for entry in plan.selected]
    slices = plan_slices(
        store, rows, budget=DEFAULT_CONFIG.budget, target_ops=SLICE_OPS
    )
    assert len(slices) >= 2, "corpus too small to plan multiple slices"
    return store, plan, slices


class TestWorkerReattachment:
    def test_workers_reopen_read_only_with_fresh_pids(self, store_path):
        # warm the parent cache first: children must not reuse it
        parent_store = attach(store_path)
        assert parent_store is attach(store_path)
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            probes = list(
                pool.map(_probe_attach, [store_path] * 4, chunksize=1)
            )
        for pid, read_only, rekeyed in probes:
            assert pid != os.getpid()
            assert read_only, "worker mapping must be ACCESS_READ"
            assert rekeyed, (
                "worker must re-open the store, not inherit the "
                "parent's cached mapping through fork"
            )


class TestStoreChaos:
    @pytest.fixture(scope="class")
    def chaos_run(self, store_path, planned_slices, tmp_path_factory):
        _store, _plan, slices = planned_slices
        crash_slice, flaky_slice = slices[0], slices[1]
        tmp = tmp_path_factory.mktemp("chaos-run")
        state = tmp / "state"
        state.mkdir()
        journal = tmp / "run.jsonl"
        ctx = PipelineContext(
            parallel=ParallelConfig(
                max_workers=2, task_timeout_s=10.0, max_pool_rebuilds=10
            ),
            wrap_worker=functools.partial(
                ChaosInjector,
                crash_keys=frozenset({item_key(crash_slice)}),
                flaky_keys=frozenset({item_key(flaky_slice)}),
                state_dir=str(state),
            ),
        )
        result = run_pipeline_store(
            store_path,
            parallel=ctx.parallel,
            context=ctx,
            journal_path=journal,
            slice_ops=SLICE_OPS,
        )
        return {
            "result": result,
            "journal": journal,
            "tmp": tmp,
            "crash_rows": set(crash_slice.rows),
            "flaky_rows": set(flaky_slice.rows),
        }

    def test_rebuilt_pool_finishes_the_corpus(
        self, chaos_run, planned_slices
    ):
        _store, plan, _slices = planned_slices
        result = chaos_run["result"]
        # every trace outside the crashing slice is categorized —
        # including the flaky slice, whose retry ran on a worker that
        # had to reattach the store
        assert len(result.results) == plan.n_selected - len(
            chaos_run["crash_rows"]
        )
        assert result.metrics["n_pool_rebuilds"] >= 1
        # the flaky slice recovered — either its injected OSError
        # surfaced (journaled retry) or a pool crash swallowed the
        # first attempt and the re-dispatch found the recovery marker;
        # both paths ran on a worker that had to reattach
        assert (
            result.metrics.get("n_retries", 0)
            + result.metrics.get("n_crash_events", 0)
        ) >= 1

    def test_crashed_slice_quarantined_per_trace(self, chaos_run):
        result = chaos_run["result"]
        assert result.n_failures == len(chaos_run["crash_rows"])
        assert result.metrics["n_quarantined"] == len(
            chaos_run["crash_rows"]
        )
        with open(
            f"{chaos_run['journal']}.quarantine.json", encoding="utf-8"
        ) as fh:
            manifest = json.load(fh)
        assert manifest["n_quarantined"] == len(chaos_run["crash_rows"])
        rows = {
            int(e["trace_key"].rpartition("#")[2])
            for e in manifest["quarantined"]
        }
        assert rows == chaos_run["crash_rows"]
        kinds = {e["failure_kind"] for e in manifest["quarantined"]}
        assert kinds == {FailureKind.POISON.value}

    def test_killed_run_resumes_byte_identical_on_fresh_workers(
        self, chaos_run, store_path
    ):
        """Keep the header, every failure record, and the first three
        results — then resume pooled: the re-opened store must replay
        the healthy remainder to byte-identical output while the
        quarantined slice stays quarantined."""
        tmp = chaos_run["tmp"]
        baseline = tmp / "baseline.jsonl"
        save_results_jsonl(chaos_run["result"].results, str(baseline))

        with open(chaos_run["journal"], encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh.readlines()]
        header = [e for e in lines if e["kind"] == "header"]
        failures = [e for e in lines if e["kind"] == "failure"]
        results = [e for e in lines if e["kind"] == "result"][:3]
        killed = tmp / "killed.jsonl"
        with open(killed, "w", encoding="utf-8") as fh:
            for entry in header + failures + results:
                fh.write(json.dumps(entry) + "\n")

        resumed = run_pipeline_store(
            store_path,
            parallel=ParallelConfig(max_workers=2),
            journal_path=killed,
            resume=True,
            slice_ops=SLICE_OPS,
        )
        assert resumed.metrics["n_resumed"] == len(failures) + len(results)
        resumed_path = tmp / "resumed.jsonl"
        save_results_jsonl(resumed.results, str(resumed_path))
        assert resumed_path.read_bytes() == baseline.read_bytes()
