"""Unit tests for the from-scratch k-means."""

import numpy as np
import pytest

from repro.discovery import kmeans, select_k


def blobs(rng, centers, n_per, spread=0.05):
    return np.vstack([rng.normal(c, spread, size=(n_per, len(c))) for c in centers])


class TestKMeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(0)
        X = blobs(rng, [(0, 0), (5, 5), (10, 0)], 20)
        fit = kmeans(X, 3, seed=1)
        assert fit.k == 3
        assert sorted(fit.cluster_sizes().tolist()) == [20, 20, 20]

    def test_centers_near_truth(self):
        rng = np.random.default_rng(1)
        X = blobs(rng, [(0, 0), (8, 8)], 30)
        fit = kmeans(X, 2, seed=1)
        xs = sorted(fit.centers[:, 0].tolist())
        assert xs[0] == pytest.approx(0.0, abs=0.2)
        assert xs[1] == pytest.approx(8.0, abs=0.2)

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(60, 2))
        inertias = [kmeans(X, k, seed=3).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_k_equals_n_gives_zero_inertia(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(5, 2))
        assert kmeans(X, 5, seed=0).inertia == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_per_seed(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(40, 3))
        a = kmeans(X, 3, seed=9)
        b = kmeans(X, 3, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_validation(self):
        X = np.zeros((4, 2))
        with pytest.raises(ValueError):
            kmeans(X, 0)
        with pytest.raises(ValueError):
            kmeans(X, 5)
        with pytest.raises(ValueError):
            kmeans(np.zeros(4), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 1)

    def test_identical_points(self):
        X = np.ones((10, 2))
        fit = kmeans(X, 2, seed=0)
        assert fit.inertia == pytest.approx(0.0, abs=1e-12)


class TestSelectK:
    def test_finds_true_cluster_count(self):
        rng = np.random.default_rng(5)
        X = blobs(rng, [(0, 0), (10, 0), (0, 10)], 25, spread=0.2)
        assert select_k(X, k_max=8, seed=1) == 3

    def test_single_blob_gives_small_k(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(50, 2))
        assert select_k(X, k_max=8, seed=1) <= 3

    def test_tiny_dataset(self):
        assert select_k(np.zeros((1, 2))) == 1
