"""Unit tests for automatic temporality discovery."""

import pytest

from repro.core import CategorizationResult, Category
from repro.discovery import (
    FeatureSpec,
    discover_temporality,
    feature_names,
    temporality_features,
)


def result(job_id, read_label, chunks, total=1e9):
    shares = [c * total for c in chunks]
    return CategorizationResult(
        job_id=job_id, uid=job_id, exe=f"a{job_id}", nprocs=4, run_time=1000.0,
        categories=frozenset({read_label, Category.WRITE_INSIGNIFICANT}),
        chunk_volumes={"read": shares, "write": None},
    )


def corpus():
    rs = []
    jid = 0
    for _ in range(20):
        jid += 1
        rs.append(result(jid, Category.READ_ON_START, [1.0, 0.0, 0.0, 0.0]))
    for _ in range(15):
        jid += 1
        rs.append(result(jid, Category.READ_STEADY, [0.25, 0.25, 0.25, 0.25]))
    for _ in range(10):
        jid += 1
        rs.append(result(jid, Category.READ_ON_END, [0.0, 0.0, 0.0, 1.0]))
    return rs


class TestFeatures:
    def test_shares_normalized(self):
        X, kept = temporality_features(corpus(), "read", FeatureSpec(log_volume=False))
        assert X.shape == (45, 4)
        assert len(kept) == 45
        assert X[:, :4].sum(axis=1) == pytest.approx(1.0)

    def test_insignificant_traces_excluded(self):
        rs = corpus()
        rs.append(
            CategorizationResult(
                job_id=999, uid=999, exe="x", nprocs=1, run_time=1.0,
                categories=frozenset({Category.READ_INSIGNIFICANT}),
                chunk_volumes={"read": None},
            )
        )
        X, kept = temporality_features(rs, "read")
        assert 999 not in [rs[i].job_id for i in kept]

    def test_feature_names_align_with_columns(self):
        spec = FeatureSpec(log_volume=True, periodicity=True)
        X, _ = temporality_features(corpus(), "read", spec)
        assert X.shape[1] == len(feature_names("read", spec))

    def test_empty_corpus(self):
        X, kept = temporality_features([], "read")
        assert len(kept) == 0 and X.shape[0] == 0


class TestDiscovery:
    def test_recovers_three_classes(self):
        rep = discover_temporality(corpus(), "read", k=3, seed=1)
        assert rep.k == 3
        assert rep.overall_purity == pytest.approx(1.0)
        assert rep.ari == pytest.approx(1.0)
        assert rep.labels_recovered() == {
            Category.READ_ON_START, Category.READ_STEADY, Category.READ_ON_END,
        }

    def test_auto_k_close_to_truth(self):
        rep = discover_temporality(corpus(), "read", seed=1)
        assert 2 <= rep.k <= 4
        assert rep.overall_purity > 0.8

    def test_cluster_sizes_match(self):
        rep = discover_temporality(corpus(), "read", k=3, seed=1)
        assert sorted(c.size for c in rep.clusters) == [10, 15, 20]

    def test_centroids_are_share_profiles(self):
        rep = discover_temporality(corpus(), "read", k=3, seed=1)
        largest = rep.clusters[0]
        assert largest.majority_label is Category.READ_ON_START
        assert largest.centroid_shares[0] == pytest.approx(1.0, abs=0.01)

    def test_degenerate_corpus(self):
        rep = discover_temporality([], "read")
        assert rep.k == 0 and rep.clusters == ()
