"""Unit tests for clustering quality metrics."""

import numpy as np
import pytest

from repro.cluster import (
    adjusted_rand_index,
    pair_confusion,
    silhouette_mean,
    within_cluster_spread,
)


class TestWithinClusterSpread:
    def test_zero_for_point_clusters(self):
        X = np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 5.0]])
        labels = np.array([0, 0, 1])
        assert within_cluster_spread(X, labels) == pytest.approx(0.0)

    def test_positive_for_spread_cluster(self):
        X = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert within_cluster_spread(X, np.array([0, 0])) > 0.0

    def test_empty(self):
        assert within_cluster_spread(np.empty((0, 2)), np.empty(0)) == 0.0


class TestSilhouette:
    def test_well_separated_clusters_score_high(self):
        rng = np.random.default_rng(0)
        X = np.vstack([
            rng.normal((0, 0), 0.1, size=(10, 2)),
            rng.normal((10, 10), 0.1, size=(10, 2)),
        ])
        labels = np.array([0] * 10 + [1] * 10)
        assert silhouette_mean(X, labels) > 0.9

    def test_single_cluster_undefined_returns_zero(self):
        X = np.random.default_rng(1).normal(size=(10, 2))
        assert silhouette_mean(X, np.zeros(10)) == 0.0

    def test_bad_clustering_scores_low(self):
        rng = np.random.default_rng(2)
        X = np.vstack([
            rng.normal((0, 0), 0.1, size=(10, 2)),
            rng.normal((10, 10), 0.1, size=(10, 2)),
        ])
        labels = np.array([0, 1] * 10)  # interleaved: wrong
        assert silhouette_mean(X, labels) < 0.0


class TestPairMetrics:
    def test_pair_confusion_identity(self):
        labels = np.array([0, 0, 1, 1, 2])
        tp, fp, fn, tn = pair_confusion(labels, labels)
        assert fp == 0 and fn == 0
        assert tp == 2  # (0,1) and (2,3)
        assert tn == 8

    def test_pair_confusion_length_mismatch(self):
        with pytest.raises(ValueError):
            pair_confusion(np.array([0, 1]), np.array([0]))

    def test_ari_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_ari_permuted_labels_still_perfect(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 3, 3])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_ari_disagreement_below_one(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert adjusted_rand_index(a, b) < 0.5
