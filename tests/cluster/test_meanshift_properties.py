"""Property-based tests on Mean Shift invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster import mean_shift

points = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 40), st.just(2)),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


class TestMeanShiftProperties:
    @given(points, st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_every_point_labelled(self, X, bandwidth):
        result = mean_shift(X, bandwidth=bandwidth)
        assert len(result.labels) == len(X)
        assert np.all(result.labels >= 0)
        assert np.all(result.labels < result.n_clusters)

    @given(points, st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_sizes_sum_to_n(self, X, bandwidth):
        result = mean_shift(X, bandwidth=bandwidth)
        assert result.cluster_sizes().sum() == len(X)

    @given(points, st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_sizes_non_increasing(self, X, bandwidth):
        sizes = mean_shift(X, bandwidth=bandwidth).cluster_sizes()
        assert np.all(np.diff(sizes) <= 0)

    @given(points, st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_modes_inside_data_hull_box(self, X, bandwidth):
        result = mean_shift(X, bandwidth=bandwidth)
        lo, hi = X.min(axis=0), X.max(axis=0)
        assert np.all(result.modes >= lo - 1e-9)
        assert np.all(result.modes <= hi + 1e-9)

    @given(points)
    @settings(max_examples=40, deadline=None)
    def test_huge_bandwidth_single_cluster(self, X):
        result = mean_shift(X, bandwidth=1e6)
        assert result.n_clusters == 1

    @given(points, st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, X, bandwidth):
        a = mean_shift(X, bandwidth=bandwidth)
        b = mean_shift(X, bandwidth=bandwidth)
        assert np.array_equal(a.labels, b.labels)
