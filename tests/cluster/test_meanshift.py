"""Unit tests for the from-scratch Mean Shift implementation."""

import numpy as np
import pytest

from repro.cluster import estimate_bandwidth, mean_shift


def blobs(rng, centers, n_per, spread=0.05):
    pts = []
    for c in centers:
        pts.append(rng.normal(c, spread, size=(n_per, len(c))))
    return np.vstack(pts)


class TestMeanShift:
    def test_separates_well_spaced_blobs(self):
        rng = np.random.default_rng(0)
        X = blobs(rng, [(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)], 20)
        result = mean_shift(X, bandwidth=1.0)
        assert result.n_clusters == 3
        assert sorted(result.cluster_sizes().tolist()) == [20, 20, 20]

    def test_blob_members_share_labels(self):
        rng = np.random.default_rng(1)
        X = blobs(rng, [(0.0, 0.0), (8.0, 8.0)], 15)
        result = mean_shift(X, bandwidth=1.0)
        assert len(set(result.labels[:15])) == 1
        assert len(set(result.labels[15:])) == 1
        assert result.labels[0] != result.labels[20]

    def test_single_cluster_for_tight_data(self):
        rng = np.random.default_rng(2)
        X = rng.normal(3.0, 0.01, size=(30, 2))
        assert mean_shift(X, bandwidth=1.0).n_clusters == 1

    def test_modes_near_true_centers(self):
        rng = np.random.default_rng(3)
        X = blobs(rng, [(0.0, 0.0), (6.0, 0.0)], 25)
        result = mean_shift(X, bandwidth=1.5)
        modes = sorted(result.modes[:, 0].tolist())
        assert modes[0] == pytest.approx(0.0, abs=0.3)
        assert modes[1] == pytest.approx(6.0, abs=0.3)

    def test_gaussian_kernel(self):
        rng = np.random.default_rng(4)
        X = blobs(rng, [(0.0, 0.0), (10.0, 10.0)], 20)
        result = mean_shift(X, bandwidth=1.0, kernel="gaussian")
        assert result.n_clusters == 2

    def test_clusters_ordered_by_size(self):
        rng = np.random.default_rng(5)
        X = np.vstack([
            rng.normal((0, 0), 0.05, size=(30, 2)),
            rng.normal((9, 9), 0.05, size=(5, 2)),
        ])
        result = mean_shift(X, bandwidth=1.0)
        sizes = result.cluster_sizes()
        assert sizes[0] == 30 and sizes[1] == 5

    def test_members(self):
        rng = np.random.default_rng(6)
        X = blobs(rng, [(0.0, 0.0), (9.0, 9.0)], 10)
        result = mean_shift(X, bandwidth=1.0)
        m0 = result.members(0)
        assert set(result.labels[m0]) == {0}

    def test_empty_and_singleton(self):
        empty = mean_shift(np.empty((0, 2)))
        assert empty.n_clusters == 0 and len(empty.labels) == 0
        single = mean_shift(np.array([[1.0, 2.0]]))
        assert single.n_clusters == 1 and single.labels.tolist() == [0]

    def test_degenerate_identical_points(self):
        X = np.ones((10, 2))
        result = mean_shift(X)  # estimated bandwidth will be 0
        assert result.n_clusters == 1

    def test_1d_input_promoted(self):
        X = np.array([0.0, 0.1, 5.0, 5.1])
        result = mean_shift(X, bandwidth=0.5)
        assert result.n_clusters == 2

    def test_isolated_point_becomes_singleton_cluster(self):
        rng = np.random.default_rng(7)
        X = np.vstack([rng.normal((0, 0), 0.05, size=(10, 2)), [[50.0, 50.0]]])
        result = mean_shift(X, bandwidth=1.0)
        assert result.n_clusters == 2
        assert result.cluster_sizes().tolist() == [10, 1]


class TestBandwidth:
    def test_estimate_positive_for_spread_data(self):
        rng = np.random.default_rng(8)
        X = rng.normal(0, 1, size=(50, 2))
        assert estimate_bandwidth(X) > 0.0

    def test_degenerate_inputs(self):
        assert estimate_bandwidth(np.empty((0, 2))) == 0.0
        assert estimate_bandwidth(np.ones((1, 2))) == 0.0
        assert estimate_bandwidth(np.ones((20, 2))) == 0.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            estimate_bandwidth(np.random.default_rng(0).normal(size=(10, 2)), quantile=0.0)

    def test_subsampling_is_deterministic(self):
        rng = np.random.default_rng(9)
        X = rng.normal(0, 1, size=(800, 2))
        assert estimate_bandwidth(X, max_samples=100) == estimate_bandwidth(X, max_samples=100)
