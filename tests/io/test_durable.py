"""Unit tests for the durability policies: atomic writes and appends.

Every claim docs/ROBUSTNESS.md makes about the write path is pinned
here against scripted faults: crash-atomicity of the temp + fsync +
rename sequence, bounded transient retry, short-write replay without a
doubled prefix, and the appender's fsync-checkpoint cadence.
"""

import errno
import json
import os

import pytest

from repro.io import (
    DEFAULT_RETRY,
    DurableAppender,
    FaultableIO,
    IORetryPolicy,
    StorageError,
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    durable_append,
    get_io,
    scoped_io,
    set_io,
)
from repro.testing import FAULT_SHORT_WRITE, PowerCut, StorageChaos


def _no_stray_tmp(directory):
    return [n for n in os.listdir(directory) if ".tmp." in n] == []


class TestAtomicWrite:
    def test_publishes_payload(self, tmp_path):
        out = tmp_path / "artifact.bin"
        atomic_write_bytes(out, b"payload")
        assert out.read_bytes() == b"payload"
        assert _no_stray_tmp(tmp_path)

    def test_replaces_existing_content(self, tmp_path):
        out = tmp_path / "artifact.bin"
        out.write_bytes(b"old")
        atomic_write_bytes(out, b"new content, longer than old")
        assert out.read_bytes() == b"new content, longer than old"

    def test_text_form_is_bytes_exact(self, tmp_path):
        out = tmp_path / "report.txt"
        atomic_write_text(out, "line\nline\n")
        # no newline translation, matching open(..., newline="")
        assert out.read_bytes() == b"line\nline\n"

    def test_context_manager_text_and_binary(self, tmp_path):
        with atomic_write(tmp_path / "t.txt", "w") as fh:
            fh.write("hello")
        with atomic_write(tmp_path / "b.bin", "wb") as fh:
            fh.write(b"\x00\x01")
        assert (tmp_path / "t.txt").read_text() == "hello"
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"

    def test_context_manager_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_write(tmp_path / "x", "rb"):
                pass

    def test_body_exception_writes_nothing(self, tmp_path):
        out = tmp_path / "x.json"
        with pytest.raises(RuntimeError):
            with atomic_write(out, "w") as fh:
                fh.write("partial")
                raise RuntimeError("builder failed")
        assert not out.exists()
        assert _no_stray_tmp(tmp_path)


class TestAtomicWriteUnderFaults:
    def test_enospc_is_typed_and_leaves_old_artifact(self, tmp_path):
        out = tmp_path / "a.bin"
        out.write_bytes(b"old")
        chaos = StorageChaos(tmp_path, script={("write", 0): errno.ENOSPC})
        with pytest.raises(StorageError) as exc_info:
            atomic_write_bytes(out, b"new", io=chaos)
        err = exc_info.value
        assert err.op == "write"
        assert err.errno == errno.ENOSPC
        assert out.read_bytes() == b"old"
        assert _no_stray_tmp(tmp_path)

    def test_enospc_on_fresh_path_leaves_nothing(self, tmp_path):
        out = tmp_path / "fresh.bin"
        chaos = StorageChaos(tmp_path, script={("fsync", 0): errno.ENOSPC})
        with pytest.raises(StorageError):
            atomic_write_bytes(out, b"new", io=chaos)
        assert not out.exists()
        assert _no_stray_tmp(tmp_path)

    def test_transient_eio_is_retried_to_success(self, tmp_path):
        out = tmp_path / "a.bin"
        chaos = StorageChaos(tmp_path, script={("write", 0): errno.EIO})
        atomic_write_bytes(out, b"payload", io=chaos)
        assert out.read_bytes() == b"payload"
        assert ("write", 0, errno.EIO) in chaos.injected

    def test_short_write_retry_never_doubles_prefix(self, tmp_path):
        out = tmp_path / "a.bin"
        payload = b"0123456789" * 20
        chaos = StorageChaos(tmp_path, script={("write", 0): FAULT_SHORT_WRITE})
        atomic_write_bytes(out, payload, io=chaos)
        assert out.read_bytes() == payload

    def test_persistent_transient_fault_exhausts_retries(self, tmp_path):
        out = tmp_path / "a.bin"
        n = DEFAULT_RETRY.max_attempts
        chaos = StorageChaos(
            tmp_path, script={("write", i): errno.EINTR for i in range(n)}
        )
        with pytest.raises(StorageError, match="transient fault persisted"):
            atomic_write_bytes(out, b"x", io=chaos)
        assert not out.exists()

    def test_power_cut_before_rename_leaves_old_artifact(self, tmp_path):
        out = tmp_path / "a.bin"
        out.write_bytes(b"old")
        chaos = StorageChaos(tmp_path, script={("replace", 0): "power-cut"})
        with pytest.raises(PowerCut):
            atomic_write_bytes(out, b"new", io=chaos)
        chaos.power_cut()
        # the contract is about the final path only: a resurrected tmp
        # file (its content was fsynced pre-cut) is deletable noise
        assert out.read_bytes() == b"old"

    def test_torn_rename_window_restores_old_content(self, tmp_path):
        # replace happened but the directory entry was never fsynced:
        # the rename is real now, gone after the power cut.
        out = tmp_path / "a.bin"
        out.write_bytes(b"old")
        chaos = StorageChaos(tmp_path, script={("fsync_dir", 0): "power-cut"})
        with pytest.raises(PowerCut):
            atomic_write_bytes(out, b"new", io=chaos)
        assert out.read_bytes() == b"new"  # visible pre-cut
        chaos.power_cut()
        assert out.read_bytes() == b"old"  # durable truth

    def test_fsync_dir_failure_still_leaves_complete_new_artifact(
        self, tmp_path
    ):
        # the rename already landed; only its *durability* is unconfirmed,
        # so the error is raised but the artifact is complete, not torn.
        out = tmp_path / "a.bin"
        out.write_bytes(b"old")
        chaos = StorageChaos(tmp_path, script={("fsync_dir", 0): errno.EROFS})
        with pytest.raises(StorageError):
            atomic_write_bytes(out, b"new", io=chaos)
        assert out.read_bytes() == b"new"


class TestRetryPolicy:
    def test_backoff_doubles_deterministically(self):
        p = IORetryPolicy(max_attempts=5, backoff_base_s=0.01)
        assert [p.backoff_s(a) for a in range(3)] == [0.01, 0.02, 0.04]

    def test_validation(self):
        with pytest.raises(ValueError):
            IORetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            IORetryPolicy(backoff_base_s=-1.0)

    def test_tighter_policy_fails_sooner(self, tmp_path):
        chaos = StorageChaos(
            tmp_path, script={("write", i): errno.EIO for i in range(2)}
        )
        with pytest.raises(StorageError):
            atomic_write_bytes(
                tmp_path / "a",
                b"x",
                io=chaos,
                policy=IORetryPolicy(max_attempts=1, backoff_base_s=0.0),
            )


class TestDurableAppender:
    def test_lines_land_and_are_newline_terminated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with durable_append(path) as app:
            app.append_line('{"n": 1}')
            app.append_line('{"n": 2}\n')  # already terminated
        lines = path.read_text().splitlines()
        assert [json.loads(l)["n"] for l in lines] == [1, 2]

    def test_append_mode_preserves_existing_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("first\n")
        with durable_append(path, append=True) as app:
            app.append_line("second")
        assert path.read_text().splitlines() == ["first", "second"]

    def test_fsync_cadence_follows_sync_interval(self, tmp_path):
        chaos = StorageChaos(tmp_path)
        app = DurableAppender(tmp_path / "l.jsonl", sync_interval=3, io=chaos)
        for i in range(7):
            app.append_line(f'{{"i": {i}}}')
        assert chaos.counts["fsync"] == 2  # after lines 3 and 6
        app.close()  # one settled line remains -> close checkpoints
        assert chaos.counts["fsync"] == 3

    def test_sync_interval_zero_syncs_only_on_close(self, tmp_path):
        chaos = StorageChaos(tmp_path)
        app = DurableAppender(tmp_path / "l.jsonl", sync_interval=0, io=chaos)
        app.append_line("a")
        app.append_line("b")
        assert chaos.counts["fsync"] == 0
        app.close()
        assert chaos.counts["fsync"] == 1

    def test_negative_sync_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DurableAppender(tmp_path / "l", sync_interval=-1)

    def test_append_after_close_raises(self, tmp_path):
        app = durable_append(tmp_path / "l.jsonl")
        app.close()
        assert app.closed
        with pytest.raises(ValueError):
            app.append_line("late")
        app.close()  # idempotent

    def test_torn_fragment_is_terminated_before_retry(self, tmp_path):
        # a short write tears the line; the appender newline-terminates
        # the fragment and rewrites the whole line, so the loader sees
        # one malformed fragment and one complete retried entry.
        path = tmp_path / "l.jsonl"
        chaos = StorageChaos(tmp_path, script={("write", 1): FAULT_SHORT_WRITE})
        with DurableAppender(path, io=chaos) as app:
            app.append_line('{"n": 1}')
            app.append_line('{"n": 2}')
        lines = path.read_text().splitlines()
        assert lines[0] == '{"n": 1}'
        assert lines[-1] == '{"n": 2}'
        complete = [l for l in lines if l in ('{"n": 1}', '{"n": 2}')]
        assert len(complete) == 2

    def test_enospc_append_is_typed(self, tmp_path):
        chaos = StorageChaos(tmp_path, script={("write", 0): errno.ENOSPC})
        app = DurableAppender(tmp_path / "l.jsonl", io=chaos)
        with pytest.raises(StorageError) as exc_info:
            app.append_line("x")
        assert exc_info.value.op == "append"
        assert exc_info.value.errno == errno.ENOSPC

    def test_settled_lines_survive_power_cut(self, tmp_path):
        path = tmp_path / "l.jsonl"
        chaos = StorageChaos(tmp_path, script={("write", 2): "power-cut"})
        app = DurableAppender(path, io=chaos)  # sync_interval=1
        app.append_line('{"n": 1}')
        app.append_line('{"n": 2}')
        with pytest.raises(PowerCut):
            app.append_line('{"n": 3}')
        chaos.power_cut()
        assert path.read_text().splitlines() == ['{"n": 1}', '{"n": 2}']


class TestVfsSeam:
    def test_scoped_io_installs_and_restores(self, tmp_path):
        default = get_io()
        chaos = StorageChaos(tmp_path)
        with scoped_io(chaos) as active:
            assert active is chaos
            assert get_io() is chaos
        assert get_io() is default

    def test_scoped_io_restores_on_exception(self, tmp_path):
        default = get_io()
        with pytest.raises(RuntimeError):
            with scoped_io(StorageChaos(tmp_path)):
                raise RuntimeError
        assert get_io() is default

    def test_set_io_none_restores_default(self, tmp_path):
        chaos = StorageChaos(tmp_path)
        set_io(chaos)
        try:
            assert get_io() is chaos
        finally:
            set_io(None)
        assert isinstance(get_io(), FaultableIO)
        assert not isinstance(get_io(), StorageChaos)

    def test_helpers_use_the_active_io_by_default(self, tmp_path):
        chaos = StorageChaos(tmp_path)
        with scoped_io(chaos):
            atomic_write_bytes(tmp_path / "a.bin", b"x")
        assert chaos.counts["write"] == 1
        assert chaos.counts["replace"] == 1
