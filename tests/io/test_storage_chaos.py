"""Unit tests for the StorageChaos fault model itself.

The chaos injector is test infrastructure, but its durable model *is*
the crash-consistency oracle for every suite built on it — so its
semantics (what survives a power cut, when faults fire, determinism of
seeded rates) are pinned here first.
"""

import errno
import os

import pytest

from repro.testing import (
    FAULT_POWER_CUT,
    FAULT_SHORT_WRITE,
    PowerCut,
    StorageChaos,
    op_census,
)


class TestScriptValidation:
    def test_unknown_op_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown op"):
            StorageChaos(tmp_path, script={("chmod", 0): errno.EIO})

    def test_negative_index_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="negative call index"):
            StorageChaos(tmp_path, script={("write", -1): errno.EIO})

    def test_unknown_fault_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fault"):
            StorageChaos(tmp_path, script={("write", 0): "gamma-ray"})

    def test_rate_bounds(self, tmp_path):
        with pytest.raises(ValueError, match="enospc_rate"):
            StorageChaos(tmp_path, enospc_rate=1.5)
        with pytest.raises(ValueError, match="eio_rate"):
            StorageChaos(tmp_path, eio_rate=-0.1)


class TestDurableModel:
    def test_write_without_fsync_is_volatile(self, tmp_path):
        chaos = StorageChaos(tmp_path)
        p = str(tmp_path / "f")
        fh = chaos.open(p, "w", encoding="utf-8")
        chaos.write(fh, "volatile")
        chaos.flush(fh)
        fh.close()
        chaos.power_cut()
        # creation itself was never made durable: the file vanishes
        assert not os.path.exists(p)

    def test_fsync_makes_content_durable(self, tmp_path):
        chaos = StorageChaos(tmp_path)
        p = str(tmp_path / "f")
        fh = chaos.open(p, "w", encoding="utf-8")
        chaos.write(fh, "settled")
        chaos.fsync(fh)
        chaos.write(fh, " volatile-tail")
        chaos.flush(fh)
        fh.close()
        assert chaos.durable_content(p) == b"settled"
        chaos.power_cut()
        assert open(p).read() == "settled"

    def test_replace_is_volatile_until_dir_fsync(self, tmp_path):
        chaos = StorageChaos(tmp_path)
        old, new = str(tmp_path / "out"), str(tmp_path / "out.tmp")
        with open(old, "w") as fh:
            fh.write("old")
        with open(new, "w") as fh:
            fh.write("new")
        chaos._track(old)  # baseline before mutation, as the seam would
        chaos.replace(new, old)
        assert open(old).read() == "new"  # real effect now
        assert chaos.durable_content(old) == b"old"  # not durable yet
        chaos.fsync_dir(str(tmp_path))
        assert chaos.durable_content(old) == b"new"
        chaos.power_cut()
        assert open(old).read() == "new"

    def test_untracked_paths_pass_through(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("chaos-root")
        outside = tmp_path_factory.mktemp("outside") / "f"
        chaos = StorageChaos(root, script={("write", 0): errno.EIO})
        outside.write_text("content")
        # untracked: durable_content reports current on-disk state,
        # power_cut leaves it alone
        assert chaos.durable_content(outside) == b"content"
        chaos.power_cut()
        assert outside.read_text() == "content"


class TestFaultEngine:
    def test_scripted_errno_fires_at_exact_index(self, tmp_path):
        chaos = StorageChaos(tmp_path, script={("write", 1): errno.ENOSPC})
        fh = chaos.open(str(tmp_path / "f"), "wb")
        chaos.write(fh, b"first")  # index 0: clean
        with pytest.raises(OSError) as exc_info:
            chaos.write(fh, b"second")  # index 1: fault
        fh.close()
        assert exc_info.value.errno == errno.ENOSPC
        assert chaos.injected == [("write", 1, errno.ENOSPC)]

    def test_short_write_leaves_half_and_raises_eio(self, tmp_path):
        chaos = StorageChaos(tmp_path, script={("write", 0): FAULT_SHORT_WRITE})
        p = str(tmp_path / "f")
        fh = chaos.open(p, "wb")
        with pytest.raises(OSError) as exc_info:
            chaos.write(fh, b"0123456789")
        fh.close()
        assert exc_info.value.errno == errno.EIO  # transient: retryable
        assert open(p, "rb").read() == b"01234"

    def test_power_cut_is_not_an_exception(self, tmp_path):
        chaos = StorageChaos(tmp_path, script={("write", 0): FAULT_POWER_CUT})
        fh = chaos.open(str(tmp_path / "f"), "wb")
        # PowerCut derives from BaseException: except Exception cannot
        # swallow the simulated loss of power.
        with pytest.raises(BaseException) as exc_info:
            try:
                chaos.write(fh, b"x")
            except Exception:  # pragma: no cover - must not trigger
                pytest.fail("PowerCut was swallowed by `except Exception`")
        fh.close()
        assert isinstance(exc_info.value, PowerCut)
        assert not issubclass(PowerCut, Exception)

    def test_read_mode_open_is_not_counted(self, tmp_path):
        p = tmp_path / "f"
        p.write_text("x")
        chaos = StorageChaos(tmp_path, script={("open", 0): errno.EIO})
        chaos.open(str(p), "r", encoding="utf-8").close()  # reads pass
        assert chaos.counts["open"] == 0
        with pytest.raises(OSError):
            chaos.open(str(p), "a", encoding="utf-8")

    def test_seeded_rates_are_deterministic(self, tmp_path):
        def run(seed):
            chaos = StorageChaos(tmp_path, seed=seed, eio_rate=0.3)
            fh = open(str(tmp_path / "f"), "wb")  # the writes draw faults
            fired = []
            for i in range(40):
                try:
                    chaos.write(fh, b"x")
                except OSError:
                    fired.append(i)
            fh.close()
            return fired

        a, b = run(seed=11), run(seed=11)
        assert a == b and a  # same seed, same faults; some fired
        assert run(seed=12) != a  # another seed, another schedule

    def test_sleep_is_a_noop(self, tmp_path):
        StorageChaos(tmp_path).sleep(3600)  # returns immediately


class TestOpCensus:
    def test_census_is_chronological_and_complete(self, tmp_path):
        def action(io):
            fh = io.open(str(tmp_path / "f"), "wb")
            io.write(fh, b"x")
            io.fsync(fh)
            fh.close()
            io.replace(str(tmp_path / "f"), str(tmp_path / "g"))
            io.fsync_dir(str(tmp_path))

        census = op_census(tmp_path, action)
        assert [op for op, _path in census] == [
            "open",
            "write",
            "fsync",
            "replace",
            "fsync_dir",
        ]
