"""Exhaustive ENOSPC sweep over every persistence site.

For each artifact the system writes, :func:`repro.testing.op_census`
enumerates every VFS primitive the site performs fault-free, then each
test re-runs the site with ``ENOSPC`` scripted at each primitive in
turn and asserts the storage contract (docs/ROBUSTNESS.md):

* the failure is a typed :class:`StorageError` naming op and path —
  never a silent truncation (the lint cache, which deliberately trades
  its artifact for availability, must swallow it instead);
* the final path is *absent or complete*: either untouched (old
  content or nothing) or the entire new artifact (the ``fsync_dir``
  case — the rename already landed, only its durability report failed);
* append-only journals stay loadable: whatever survives parses and
  reports only outcomes that were actually settled.
"""

import errno
import json
import shutil

import pytest

from repro.columnar import compile_corpus
from repro.core.result import save_results_jsonl
from repro.darshan.source import InMemorySource
from repro.io import StorageError, scoped_io
from repro.lint.baseline import Baseline
from repro.lint.cache import LintCache
from repro.parallel.journal import (
    JournalState,
    JournalWriter,
    write_quarantine_manifest,
)
from repro.synth import FleetConfig, generate_fleet
from repro.testing import StorageChaos
from repro.viz.export import write_csv


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(FleetConfig(n_apps=24, mean_runs=1.5, seed=5)).traces


def _site_compile(fleet):
    def run(root):
        compile_corpus(InMemorySource(fleet), str(root / "corpus.mosc"))

    return run, ["corpus.mosc"]


def _site_journal(root):
    with JournalWriter(str(root / "run.jsonl")) as journal:
        journal.write_header(n_selected=2)
        journal.record_result(1, {"job_id": 1, "categories": ["a"]})
        journal.record_failure(
            2,
            failure_kind="timeout",
            error_type="TaskTimeout",
            message="deadline",
            attempts=1,
        )


def _site_quarantine(root):
    write_quarantine_manifest(
        str(root / "run.jsonl"),
        [{"job_id": 7, "failure_kind": "poison", "error_type": "X"}],
    )


def _site_lint_cache(root):
    cache = LintCache(str(root / "lint.cache.json"), key="k")
    cache.store_project("k", [], 0)
    cache.save()


def _site_baseline(root):
    Baseline.from_findings([]).save(str(root / "baseline.json"))


def _site_csv(root):
    write_csv("a,b\n1,2\n", str(root / "table.csv"))


def _site_results(root):
    save_results_jsonl([], str(root / "results.jsonl"))


def _per_op_indexes(census):
    """Chronological census -> [(op, per-op call index), ...]."""
    seen = {}
    out = []
    for op, _path in census:
        idx = seen.get(op, 0)
        seen[op] = idx + 1
        out.append((op, idx))
    return out


def _reset(root):
    if root.exists():
        shutil.rmtree(root)
    root.mkdir()
    return root


def _sweep(tmp_path, action, artifacts, *, swallows=False, check=None):
    """Inject ENOSPC at every primitive the site performs; assert the
    absent-or-complete contract at each artifact path."""
    root = _reset(tmp_path / "site")
    with scoped_io(StorageChaos(root)) as chaos:
        action(root)
        census = list(chaos.ops_log)
    assert census, "site performed no VFS primitives: seam not routed"
    expected = {
        name: (root / name).read_bytes() if (root / name).exists() else None
        for name in artifacts
    }

    for op, idx in _per_op_indexes(census):
        root = _reset(tmp_path / "site")
        chaos = StorageChaos(root, script={(op, idx): errno.ENOSPC})
        with scoped_io(chaos):
            if swallows:
                action(root)  # must not leak the failure to the caller
            else:
                with pytest.raises(StorageError) as exc_info:
                    action(root)
                assert exc_info.value.errno == errno.ENOSPC
                assert exc_info.value.op
                assert exc_info.value.path
        assert chaos.injected, f"scripted fault at ({op}, {idx}) never fired"
        for name in artifacts:
            path = root / name
            content = path.read_bytes() if path.exists() else None
            if check is not None:
                check(name, content, expected[name], (op, idx))
            else:
                assert content in (None, expected[name]), (
                    f"torn artifact {name} after ENOSPC at ({op}, {idx})"
                )


class TestAtomicSites:
    def test_compile_store(self, tmp_path, small_fleet):
        run, artifacts = _site_compile(small_fleet)
        _sweep(tmp_path, run, artifacts)

    def test_quarantine_manifest(self, tmp_path):
        def check(name, content, complete, locus):
            assert content in (None, complete), f"torn manifest at {locus}"
            if content is not None:
                json.loads(content)  # parseable, with the full entry set

        _sweep(
            tmp_path,
            _site_quarantine,
            ["run.jsonl.quarantine.json"],
            check=check,
        )

    def test_lint_baseline(self, tmp_path):
        _sweep(tmp_path, _site_baseline, ["baseline.json"])

    def test_csv_export(self, tmp_path):
        _sweep(tmp_path, _site_csv, ["table.csv"])

    def test_results_jsonl(self, tmp_path):
        _sweep(tmp_path, _site_results, ["results.jsonl"])

    def test_lint_cache_swallows_but_never_tears(self, tmp_path):
        # the cache is a performance artifact: losing it must not fail
        # the lint run, but a torn cache on disk is still forbidden
        _sweep(
            tmp_path, _site_lint_cache, ["lint.cache.json"], swallows=True
        )


class TestJournalSite:
    def test_every_op_leaves_a_loadable_journal(self, tmp_path):
        def check(name, content, complete, locus):
            if content is None:
                return  # nothing visible: fault before creation
            state = JournalState.load(
                tmp_path / "site" / name
            )
            # only settled outcomes, never invented ones
            assert set(state.completed) <= {1}
            assert set(state.quarantined) <= {2}

        _sweep(tmp_path, _site_journal, ["run.jsonl"], check=check)
