"""Fuzz harness tests: the guard detects every finding class, case
generation is deterministic, and the committed regression corpus stays
green forever."""

import os
import time

import pytest

from repro.darshan.errors import TraceFormatError
from repro.fuzz import (
    FORMATS,
    MUTATIONS,
    generate_cases,
    load_corpus,
    replay_corpus,
    run_fuzz,
    seed_payloads,
)
from repro.fuzz.harness import _run_guarded, run_case
from repro.fuzz.mutators import mutations_for, rebuild_case

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


class TestRunGuarded:
    def test_clean_parse(self):
        payload = seed_payloads("binary", 0)[0]
        outcome, etype, _ = _run_guarded(FORMATS["binary"], payload, 5.0, 0)
        assert outcome == "parsed" and etype == ""

    def test_clean_rejection(self):
        outcome, etype, _ = _run_guarded(FORMATS["binary"], b"garbage", 5.0, 0)
        assert outcome == "rejected" and etype == "TraceFormatError"

    def test_crash_detected(self):
        def boom(data: bytes) -> None:
            raise KeyError("planted")

        outcome, etype, msg = _run_guarded(boom, b"", 5.0, 0)
        assert outcome == "crash" and etype == "KeyError" and "planted" in msg

    def test_trace_format_error_is_not_a_crash(self):
        def refuse(data: bytes) -> None:
            raise TraceFormatError("nope")

        outcome, _, _ = _run_guarded(refuse, b"", 5.0, 0)
        assert outcome == "rejected"

    def test_hang_detected(self):
        def stall(data: bytes) -> None:
            time.sleep(5.0)

        outcome, etype, _ = _run_guarded(stall, b"", 0.2, 0)
        assert outcome == "hang" and etype == "DeadlineExceeded"

    def test_allocation_bomb_detected(self):
        def bomb(data: bytes) -> None:
            _ = bytearray(32 * 1024 * 1024)

        outcome, etype, _ = _run_guarded(bomb, b"", 5.0, 1024 * 1024)
        assert outcome == "alloc" and etype == "AllocationBudget"

    def test_zero_budgets_disable_the_guards(self):
        def slowish(data: bytes) -> None:
            _ = bytearray(4 * 1024 * 1024)

        outcome, _, _ = _run_guarded(slowish, b"", 0.0, 0)
        assert outcome == "parsed"

    def test_guards_leave_no_process_state_behind(self):
        """tracemalloc must not stay enabled after a guarded run: it slows
        every later allocation in this process and in forked workers."""
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        payload = seed_payloads("binary", 0)[0]
        _run_guarded(FORMATS["binary"], payload, 5.0, 64 * 1024 * 1024)

        def bomb(data: bytes) -> None:
            _ = bytearray(32 * 1024 * 1024)

        _run_guarded(bomb, b"", 5.0, 1024 * 1024)

        def boom(data: bytes) -> None:
            raise KeyError("planted")

        _run_guarded(boom, b"", 5.0, 1024 * 1024)
        assert tracemalloc.is_tracing() == was_tracing


class TestCaseGeneration:
    @pytest.mark.parametrize("fmt", sorted(FORMATS))
    def test_deterministic(self, fmt):
        a = [c.data for c in generate_cases(fmt, 60, seed=7)]
        b = [c.data for c in generate_cases(fmt, 60, seed=7)]
        assert a == b

    @pytest.mark.parametrize("fmt", sorted(FORMATS))
    def test_seed_changes_cases(self, fmt):
        a = [c.data for c in generate_cases(fmt, 60, seed=7)]
        b = [c.data for c in generate_cases(fmt, 60, seed=8)]
        assert a != b

    def test_reproducer_triple_rebuilds_payload(self):
        for case in generate_cases("binary", 40, seed=3):
            again = rebuild_case(case.fmt, 3, case.seed)
            assert again.data == case.data and again.mutation == case.mutation

    def test_every_mutation_scheduled(self):
        seen = {c.mutation for c in generate_cases("json", 200, seed=1)}
        base_names = {m.split("+")[0] for m in seen}
        assert base_names == set(mutations_for("json"))

    def test_format_only_mutations_stay_in_format(self):
        assert "lie_counts" in mutations_for("binary")
        assert "lie_counts" not in mutations_for("text")
        assert set(mutations_for("binary")) <= set(MUTATIONS)


class TestRunFuzz:
    def test_smoke_run_is_finding_free(self):
        report = run_fuzz(n_cases=50, seed=20190101)
        assert report.ok, report.summary()
        assert report.n_cases == 150
        assert report.n_parsed + report.n_rejected == report.n_cases

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="xml"):
            run_fuzz(formats=("xml",), n_cases=1)

    def test_run_case_returns_finding_for_planted_crash(self, monkeypatch):
        def boom(data: bytes) -> None:
            raise RuntimeError("planted")

        monkeypatch.setitem(FORMATS, "binary", boom)
        case = next(iter(generate_cases("binary", 1, seed=0)))
        finding = run_case(case)
        assert finding is not None and finding.kind == "crash"
        assert finding.data == case.data


class TestCommittedCorpus:
    def test_corpus_is_nonempty_per_format(self):
        by_fmt = {}
        for fmt, _, _ in load_corpus(CORPUS):
            by_fmt[fmt] = by_fmt.get(fmt, 0) + 1
        assert set(by_fmt) == set(FORMATS)
        assert all(n >= 3 for n in by_fmt.values())

    def test_replay_stays_green(self):
        report = replay_corpus(load_corpus(CORPUS))
        assert report.ok, report.summary()
        assert report.n_cases >= 15
