"""Corpus management tests: minimization is deterministic and
path-preserving, filenames are stable, save/load round-trips."""

from repro.fuzz import (
    case_filename,
    load_corpus,
    minimize_case,
    save_corpus,
    seed_payloads,
)
from repro.fuzz.corpus import error_template, outcome_class
from repro.fuzz.mutators import FuzzCase


class TestErrorTemplate:
    def test_literals_and_numbers_collapse(self):
        a = error_template("bad magic: b'\\x00\\x01ab' at offset 12")
        b = error_template("bad magic: b'ZZZZ' at offset 98")
        assert a == b

    def test_different_paths_stay_distinct(self):
        a = error_template("bad magic: b'XX'")
        b = error_template("record count 999 exceeds decode limit 50000")
        assert a != b


class TestOutcomeClass:
    def test_valid_payload_is_parsed(self):
        payload = seed_payloads("json", 0)[0]
        assert outcome_class("json", payload) == "parsed"

    def test_rejection_carries_its_template(self):
        cls = outcome_class("binary", b"not a mosd payload")
        assert cls.startswith("rejected:")


class TestMinimizeCase:
    def test_minimization_preserves_outcome_class(self):
        data = b"x" * 200 + seed_payloads("binary", 0)[0]
        target = outcome_class("binary", data)
        small = minimize_case("binary", data)
        assert outcome_class("binary", small) == target
        assert len(small) <= len(data)

    def test_minimization_is_deterministic(self):
        data = bytes(range(256)) * 4
        assert minimize_case("text", data) == minimize_case("text", data)

    def test_bad_magic_minimizes_below_original(self):
        data = b"JUNK" + b"\x00" * 500
        small = minimize_case("binary", data)
        assert len(small) < len(data)

    def test_custom_oracle_respected(self):
        # oracle: payload still contains the marker byte
        small = minimize_case(
            "text",
            b"a" * 100 + b"\xff" + b"b" * 100,
            oracle=lambda d: "yes" if b"\xff" in d else "no",
        )
        assert small == b"\xff"


class TestSaveLoad:
    def test_filename_is_stable_and_safe(self):
        name = case_filename("lie/binary counts", 42, b"data")
        assert name == case_filename("lie/binary counts", 42, b"data")
        assert "/" not in name and " " not in name
        assert name.endswith(".bin") and "__42__" in name

    def test_roundtrip(self, tmp_path):
        cases = [
            FuzzCase("binary", "m1", 1, b"\x01\x02"),
            FuzzCase("json", "m2", 2, b"{}"),
        ]
        written = save_corpus(cases, tmp_path)
        assert len(written) == 2
        loaded = list(load_corpus(tmp_path))
        assert [(f, d) for f, _, d in loaded] == [
            ("binary", b"\x01\x02"),
            ("json", b"{}"),
        ]

    def test_save_is_idempotent(self, tmp_path):
        cases = [FuzzCase("text", "m", 3, b"abc")]
        save_corpus(cases, tmp_path)
        save_corpus(cases, tmp_path)
        assert len(list(load_corpus(tmp_path))) == 1
