"""Regression tests for the autocorrelation peak-selection fixes.

Three defects are pinned here:

1. The peak scan used a plateau test (``acf[lag] >= acf[lag-1]``) that
   latches onto the trailing edge of a plateau on the ACF decay shoulder
   instead of a true local maximum further out.  The scan now requires a
   strict rise.
2. The reported strength was read at the integer lag even though the
   reported period came from the parabolically refined lag, so the
   (period, strength) pair described two different points of the ACF.
   The strength is now the interpolated peak value.
3. The refined period could drop below one bin (lag 1, delta -0.5);
   it is now clamped to ≥ 1 bin.
"""

import numpy as np
import pytest

from repro.kernels import get_backend
from repro.signalproc.activity import ActivitySignal
from repro.signalproc.autocorr import _autocorrelation, detect_periodicity_autocorr
from repro.testing.differential import SIGNAL_PROFILES, adversarial_signal

# A crafted ACF: the decay shoulder flattens into an exact plateau at
# lags 2-3, then the true periodicity peak sits at lag 6.
PLATEAU_ACF = np.array(
    [1.0, 0.8, 0.6, 0.6, 0.3, 0.5, 0.9, 0.4, 0.2, 0.1, 0.05, 0.0]
)


def _old_plateau_scan(acf, max_lag, min_strength):
    """The pre-fix selection rule (kept verbatim for the regression)."""
    n = len(acf)
    for lag in range(1, max_lag):
        left = acf[lag - 1]
        right = acf[lag + 1] if lag + 1 < n else -np.inf
        if acf[lag] >= left and acf[lag] > right and acf[lag] >= min_strength:
            return lag
    return -1


class TestPeakScanStrictRise:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_plateau_edge_is_not_a_peak(self, backend):
        scan = get_backend(backend).acf_peak_scan
        # The old rule latched the plateau edge at lag 3 (0.6 >= 0.6,
        # > 0.3) — mis-detecting the decay shoulder as a period.
        assert _old_plateau_scan(PLATEAU_ACF, 10, 0.2) == 3
        # The strict rule walks past the shoulder to the true peak.
        assert scan(PLATEAU_ACF, 10, 0.2) == 6

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_monotone_decay_has_no_peak(self, backend):
        scan = get_backend(backend).acf_peak_scan
        acf = np.array([1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3])
        assert scan(acf, 6, 0.2) == -1

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_strength_floor_enforced(self, backend):
        scan = get_backend(backend).acf_peak_scan
        acf = np.array([1.0, 0.0, 0.15, 0.0, 0.0, 0.0])
        assert scan(acf, 5, 0.2) == -1
        assert scan(acf, 5, 0.1) == 2


class TestRefinedStrengthAndClamp:
    def test_strength_reported_at_refined_peak(self):
        # An off-grid period (true peak between integer lags) forces a
        # non-zero parabolic offset: the interpolated peak strength must
        # be at least the integer-lag sample the old code reported.
        period_bins = 7.5
        n = 240
        t = np.arange(n)
        values = (np.sin(2 * np.pi * t / period_bins) > 0.6).astype(float)
        sig = ActivitySignal(values=values, bin_width=2.0)
        det = detect_periodicity_autocorr(sig)
        assert det.periodic
        acf = _autocorrelation(values)
        assert det.strength >= float(acf[det.lag]) - 1e-12
        assert det.period == pytest.approx(period_bins * sig.bin_width, rel=0.1)
        assert 0.0 <= det.strength <= 1.0

    def test_period_never_below_one_bin(self):
        # The clamp guard: across the adversarial signal families the
        # refined period must never undershoot the bin width (the old
        # unclamped refinement could report half a bin).
        for case, profile in enumerate(SIGNAL_PROFILES * 40):
            rng = np.random.default_rng(911 + case)
            values = adversarial_signal(rng, profile)
            sig = ActivitySignal(values=np.abs(values), bin_width=3.0)
            det = detect_periodicity_autocorr(sig)
            if det.periodic:
                assert det.period >= sig.bin_width - 1e-12
                assert 0.0 <= det.strength <= 1.0
