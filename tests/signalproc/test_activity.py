"""Unit tests for activity-signal construction and event binning."""

import numpy as np
import pytest

from repro.signalproc import bin_events, build_activity_signal

from tests.conftest import ops


class TestBuildActivitySignal:
    def test_volume_conserved(self):
        arr = ops((0.0, 100.0, 500.0), (400.0, 450.0, 100.0))
        sig = build_activity_signal(arr, 1000.0, n_bins=100)
        assert sig.total == pytest.approx(600.0)

    def test_uniform_spread(self):
        arr = ops((0.0, 1000.0, 1000.0))
        sig = build_activity_signal(arr, 1000.0, n_bins=10)
        assert np.allclose(sig.values, 100.0)

    def test_instantaneous_burst_lands_in_one_bin(self):
        arr = ops((550.0, 550.0, 42.0))
        sig = build_activity_signal(arr, 1000.0, n_bins=10)
        assert sig.values[5] == pytest.approx(42.0)
        assert np.count_nonzero(sig.values) == 1

    def test_bin_width_mode(self):
        arr = ops((0.0, 10.0, 10.0))
        sig = build_activity_signal(arr, 100.0, bin_width=1.0)
        assert len(sig) == 100
        assert sig.bin_width == pytest.approx(1.0)

    def test_times_are_bin_centers(self):
        sig = build_activity_signal(ops(), 100.0, n_bins=4)
        assert sig.times().tolist() == [12.5, 37.5, 62.5, 87.5]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_activity_signal(ops(), 0.0)
        with pytest.raises(ValueError):
            build_activity_signal(ops(), 10.0, n_bins=4, bin_width=1.0)
        with pytest.raises(ValueError):
            build_activity_signal(ops(), 10.0, bin_width=0.0)

    def test_empty_ops(self):
        sig = build_activity_signal(ops(), 100.0, n_bins=10)
        assert sig.total == 0.0


class TestBinEvents:
    def test_counts_per_second(self):
        times = np.array([0.5, 0.9, 1.5, 10.2])
        counts = np.array([3.0, 2.0, 1.0, 5.0])
        rate = bin_events(times, counts, 20.0, 1.0)
        assert rate[0] == pytest.approx(5.0)
        assert rate[1] == pytest.approx(1.0)
        assert rate[10] == pytest.approx(5.0)
        assert rate.sum() == pytest.approx(11.0)

    def test_events_beyond_runtime_clip_to_last_bin(self):
        rate = bin_events(np.array([99.9, 150.0]), np.array([1.0, 1.0]), 100.0, 1.0)
        assert rate[-1] == pytest.approx(2.0)

    def test_empty(self):
        rate = bin_events(np.empty(0), np.empty(0), 100.0)
        assert rate.sum() == 0.0
        assert len(rate) == 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            bin_events(np.empty(0), np.empty(0), -1.0)
        with pytest.raises(ValueError):
            bin_events(np.empty(0), np.empty(0), 10.0, 0.0)
