"""Unit tests for the DFT and autocorrelation periodicity detectors."""

import numpy as np
import pytest

from repro.darshan.trace import OperationArray
from repro.signalproc import (
    build_activity_signal,
    detect_periodicity_autocorr,
    detect_periodicity_dft,
)


def periodic_ops(period: float, n_events: int, duration: float = 2.0, volume: float = 100.0):
    rows = [(k * period, k * period + duration, volume) for k in range(n_events)]
    return OperationArray.from_tuples(rows), period * n_events


def make_signal(period=50.0, n_events=20, n_bins=1000):
    arr, run_time = periodic_ops(period, n_events)
    return build_activity_signal(arr, run_time, n_bins=n_bins)


class TestDft:
    def test_detects_clean_period(self):
        sig = make_signal(period=50.0, n_events=20)
        det = detect_periodicity_dft(sig)
        assert det.periodic
        assert det.period == pytest.approx(50.0, rel=0.15)

    def test_flat_signal_not_periodic(self):
        arr = OperationArray.from_tuples([(0.0, 1000.0, 100.0)])
        sig = build_activity_signal(arr, 1000.0, n_bins=512)
        assert not detect_periodicity_dft(sig).periodic

    def test_empty_signal_not_periodic(self):
        arr = OperationArray.from_tuples([])
        sig = build_activity_signal(arr, 1000.0, n_bins=128)
        det = detect_periodicity_dft(sig)
        assert not det.periodic
        assert np.isnan(det.period)

    def test_single_burst_not_periodic(self):
        arr = OperationArray.from_tuples([(100.0, 110.0, 50.0)])
        sig = build_activity_signal(arr, 1000.0, n_bins=512)
        assert not detect_periodicity_dft(sig).periodic

    def test_confidence_in_unit_interval(self):
        det = detect_periodicity_dft(make_signal())
        assert 0.0 < det.confidence <= 1.0

    def test_cannot_separate_intricate_mixture(self):
        # The paper's criticism of frequency techniques (§II-B): two
        # interleaved periodic behaviours of similar energy pollute each
        # other's combs.  The detector either abstains or reports a
        # single (possibly spurious) period — it never recovers both.
        a, _ = periodic_ops(50.0, 40, volume=100.0)
        b, _ = periodic_ops(173.0, 11, volume=400.0)
        both = OperationArray.from_tuples(list(a) + list(b))
        sig = build_activity_signal(both, 2000.0, n_bins=2048)
        det = detect_periodicity_dft(sig)
        # single scalar output by construction; on this mixture the
        # confidence collapses far below the clean-train level (~0.99)
        clean = build_activity_signal(a, 2000.0, n_bins=2048)
        clean_conf = detect_periodicity_dft(clean).confidence
        assert det.confidence < 0.5 * clean_conf


class TestAutocorr:
    def test_detects_clean_period(self):
        sig = make_signal(period=50.0, n_events=20)
        det = detect_periodicity_autocorr(sig)
        assert det.periodic
        assert det.period == pytest.approx(50.0, rel=0.15)

    def test_flat_signal_not_periodic(self):
        arr = OperationArray.from_tuples([(0.0, 1000.0, 100.0)])
        sig = build_activity_signal(arr, 1000.0, n_bins=512)
        assert not detect_periodicity_autocorr(sig).periodic

    def test_empty_signal(self):
        arr = OperationArray.from_tuples([])
        sig = build_activity_signal(arr, 1000.0, n_bins=64)
        assert not detect_periodicity_autocorr(sig).periodic

    def test_strength_in_unit_interval(self):
        det = detect_periodicity_autocorr(make_signal())
        assert 0.0 < det.strength <= 1.0 + 1e-9

    def test_robust_to_duty_cycle(self):
        # short bursts, long idle: ACF should still find the period
        arr, run_time = periodic_ops(100.0, 15, duration=1.0)
        sig = build_activity_signal(arr, run_time, n_bins=1500)
        det = detect_periodicity_autocorr(sig)
        assert det.periodic
        assert det.period == pytest.approx(100.0, rel=0.15)
