"""Unit tests for metadata impact classification (paper §III-B3c)."""


from repro.core import DEFAULT_CONFIG, Category, classify_metadata
from repro.darshan import FileRecord

from tests.conftest import make_record, make_trace


def storm_record(file_id: int, t0: float, t1: float, n_requests: int) -> FileRecord:
    half = n_requests // 2
    return FileRecord(
        file_id=file_id,
        file_name=f"storm{file_id}",
        rank=-1,
        opens=half,
        closes=half,
        open_start=t0,
        close_end=t1,
    )


class TestInsignificantLoad:
    def test_fewer_ops_than_ranks(self):
        # paper rule: fewer metadata operations than the number of ranks
        trace = make_trace([make_record(1, 0, read=(0.0, 1.0, 10), opens=1)], nprocs=64)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert det.categories == {Category.METADATA_INSIGNIFICANT_LOAD}
        assert not det.significant

    def test_ops_equal_to_ranks_is_significant(self):
        recs = [make_record(i, i, read=(0.0, 1.0, 10), opens=1, seeks=0) for i in range(4)]
        for r in recs:
            r.closes = 0
            r.seeks = 0
        trace = make_trace(recs, nprocs=4)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert Category.METADATA_INSIGNIFICANT_LOAD not in det.categories


class TestSpikes:
    def test_high_spike_over_250_per_second(self):
        trace = make_trace([storm_record(1, 10.0, 11.0, 600)], nprocs=4)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert Category.METADATA_HIGH_SPIKE in det.categories
        assert det.peak_rate > 250.0

    def test_no_high_spike_at_low_rate(self):
        trace = make_trace([storm_record(1, 0.0, 100.0, 600)], nprocs=4)  # 6/s
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert Category.METADATA_HIGH_SPIKE not in det.categories

    def test_multiple_spikes_needs_five(self):
        recs = [storm_record(i, 100.0 * i, 100.0 * i + 1.0, 120) for i in range(5)]
        trace = make_trace(recs, nprocs=4)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert Category.METADATA_MULTIPLE_SPIKES in det.categories
        assert det.n_spikes >= 5

    def test_four_spikes_not_enough(self):
        recs = [storm_record(i, 100.0 * i, 100.0 * i + 1.0, 120) for i in range(4)]
        trace = make_trace(recs, nprocs=4)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert Category.METADATA_MULTIPLE_SPIKES not in det.categories


class TestDensity:
    def test_high_density_needs_spikes_and_average(self):
        # 60 req/s sustained across the whole execution
        trace = make_trace([storm_record(1, 0.0, 1000.0, 60000)], run_time=1000.0, nprocs=4)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert Category.METADATA_HIGH_DENSITY in det.categories
        assert Category.METADATA_MULTIPLE_SPIKES in det.categories
        assert det.mean_rate >= 50.0

    def test_spikes_without_average_not_dense(self):
        recs = [storm_record(i, 100.0 * i, 100.0 * i + 1.0, 120) for i in range(6)]
        trace = make_trace(recs, run_time=1000.0, nprocs=4)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert Category.METADATA_HIGH_DENSITY not in det.categories

    def test_categories_non_exclusive(self):
        recs = [storm_record(1, 0.0, 1000.0, 60000),
                storm_record(2, 500.0, 501.0, 600)]
        trace = make_trace(recs, run_time=1000.0, nprocs=4)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert {
            Category.METADATA_HIGH_SPIKE,
            Category.METADATA_MULTIPLE_SPIKES,
            Category.METADATA_HIGH_DENSITY,
        } <= det.categories


class TestMeasurements:
    def test_total_requests_reported(self):
        trace = make_trace([storm_record(1, 0.0, 1.0, 100)], nprocs=2)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert det.total_requests == 100

    def test_no_categories_for_moderate_load(self):
        # significant (>= nprocs ops) but no spikes and low average
        trace = make_trace([storm_record(1, 0.0, 500.0, 200)], run_time=1000.0, nprocs=4)
        det = classify_metadata(trace, DEFAULT_CONFIG)
        assert det.categories == frozenset()
        assert det.significant
