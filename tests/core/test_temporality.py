"""Unit tests for temporality classification (paper §III-B3b)."""


from repro.core import DEFAULT_CONFIG, Category, classify_temporality

from tests.conftest import ops

MB = 1024 * 1024
SIG = 500 * MB  # comfortably above the 100 MB threshold


def classify(arr, direction="read", run_time=1000.0, config=DEFAULT_CONFIG):
    return classify_temporality(arr, run_time, direction, config)


class TestInsignificance:
    def test_below_100mb_is_insignificant(self):
        det = classify(ops((0.0, 10.0, 50 * MB)))
        assert det.category is Category.READ_INSIGNIFICANT
        assert det.profile is None

    def test_exactly_at_threshold_is_significant(self):
        det = classify(ops((0.0, 10.0, 100 * MB)))
        assert det.category is not Category.READ_INSIGNIFICANT

    def test_empty_direction_is_insignificant(self):
        det = classify(ops(), direction="write")
        assert det.category is Category.WRITE_INSIGNIFICANT

    def test_threshold_is_configurable(self):
        cfg = DEFAULT_CONFIG.with_overrides(insignificant_bytes=1)
        det = classify(ops((0.0, 1.0, 10)), config=cfg)
        assert det.category is not Category.READ_INSIGNIFICANT


class TestDominanceRules:
    def test_on_start(self):
        det = classify(ops((10.0, 50.0, SIG)))
        assert det.category is Category.READ_ON_START
        assert not det.weak_evidence

    def test_on_end(self):
        det = classify(ops((950.0, 990.0, SIG)), direction="write")
        assert det.category is Category.WRITE_ON_END

    def test_after_start(self):
        det = classify(ops((300.0, 400.0, SIG)))
        assert det.category is Category.READ_AFTER_START

    def test_before_end(self):
        det = classify(ops((550.0, 700.0, SIG)))
        assert det.category is Category.READ_BEFORE_END

    def test_paper_rule_first_chunk_more_than_twice_others(self):
        # c1 = 2.1x each other chunk -> on_start
        arr = ops((0.0, 250.0, 2.1 * SIG), (250.0, 500.0, SIG),
                  (500.0, 750.0, SIG), (750.0, 1000.0, SIG))
        assert classify(arr).category is Category.READ_ON_START

    def test_twice_is_not_enough(self):
        # exactly 2x is NOT "more than twice"
        arr = ops((0.0, 250.0, 2.0 * SIG), (250.0, 500.0, SIG),
                  (500.0, 750.0, SIG), (750.0, 1000.0, SIG))
        det = classify(arr)
        assert det.category is not Category.READ_ON_START or det.weak_evidence


class TestSteady:
    def test_uniform_volume_is_steady(self):
        det = classify(ops((0.0, 1000.0, SIG)))
        assert det.category is Category.READ_STEADY

    def test_cv_just_below_threshold_is_steady(self):
        # chunks 1.3/0.9/0.9/0.9 -> CV ~ 0.177 < 0.25
        arr = ops((0.0, 250.0, 1.3 * SIG), (250.0, 500.0, 0.9 * SIG),
                  (500.0, 750.0, 0.9 * SIG), (750.0, 1000.0, 0.9 * SIG))
        assert classify(arr).category is Category.READ_STEADY

    def test_checkpoint_train_is_steady(self):
        events = [(50.0 * k, 50.0 * k + 5.0, SIG / 20) for k in range(20)]
        det = classify(ops(*events))
        assert det.category is Category.READ_STEADY


class TestMiddleAndFallback:
    def test_after_start_before_end(self):
        det = classify(ops((300.0, 700.0, SIG)))
        assert det.category is Category.READ_AFTER_START_BEFORE_END

    def test_weak_fallback_flags_itself(self):
        # two adjacent chunks 55/45: no dominance, CV too high, no middle
        arr = ops((0.0, 250.0, 0.55 * SIG), (250.0, 500.0, 0.45 * SIG))
        det = classify(arr)
        assert det.weak_evidence
        assert det.category is Category.READ_ON_START  # largest chunk

    def test_fallback_on_end(self):
        arr = ops((500.0, 750.0, 0.45 * SIG), (750.0, 1000.0, 0.55 * SIG))
        det = classify(arr, direction="write")
        assert det.weak_evidence
        assert det.category is Category.WRITE_ON_END


class TestChunkGeneralization:
    def test_eight_chunks_still_maps_positions(self):
        cfg = DEFAULT_CONFIG.with_overrides(n_chunks=8)
        det = classify(ops((0.0, 100.0, SIG)), config=cfg)
        assert det.category is Category.READ_ON_START
        det = classify(ops((900.0, 1000.0, SIG)), config=cfg)
        assert det.category is Category.READ_ON_END
