"""Unit tests for the MOSAIC configuration."""

import pytest

from repro.core import DEFAULT_CONFIG, MosaicConfig


class TestDefaults:
    def test_paper_values(self):
        cfg = DEFAULT_CONFIG
        assert cfg.insignificant_bytes == 100 * 1024 * 1024  # 100 MB
        assert cfg.n_chunks == 4                              # 25% chunks
        assert cfg.dominance_factor == 2.0                    # "more than twice"
        assert cfg.steady_cv == 0.25                          # CV under 25%
        assert cfg.high_spike_rate == 250.0                   # req/s
        assert cfg.spike_rate == 50.0
        assert cfg.min_spikes == 5
        assert cfg.density_rate == 50.0
        assert cfg.merge.runtime_fraction == 0.001            # 0.1% of runtime
        assert cfg.merge.op_fraction == 0.01                  # 1% of op duration
        assert cfg.busy_time_threshold == 0.25

    def test_period_magnitude_boundaries_increase(self):
        cfg = DEFAULT_CONFIG
        assert cfg.period_second_max < cfg.period_minute_max < cfg.period_hour_max


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"insignificant_bytes": -1},
            {"n_chunks": 1},
            {"dominance_factor": 1.0},
            {"steady_cv": 0.0},
            {"steady_cv": 1.0},
            {"meanshift_bandwidth": 0.0},
            {"min_group_size": 1},
            {"busy_time_threshold": 1.5},
            {"spike_rate": 500.0},  # above high_spike_rate
            {"min_spikes": 0},
            {"metadata_bin_seconds": 0.0},
            {"period_second_max": 10_000_000.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MosaicConfig(**kwargs)

    def test_with_overrides_returns_new_config(self):
        cfg = DEFAULT_CONFIG.with_overrides(insignificant_bytes=1)
        assert cfg.insignificant_bytes == 1
        assert DEFAULT_CONFIG.insignificant_bytes == 100 * 1024 * 1024

    def test_paper_strict_group_size_allowed(self):
        # the paper's "strictly greater than 1" rule remains expressible
        cfg = MosaicConfig(min_group_size=2)
        assert cfg.min_group_size == 2

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.n_chunks = 8  # type: ignore[misc]


class TestRobustnessKnobs:
    def test_defaults(self):
        assert DEFAULT_CONFIG.task_timeout_s == 0.0  # deadlines off offline
        assert DEFAULT_CONFIG.max_retries == 2
        assert DEFAULT_CONFIG.backoff_base_s == 0.05
        assert DEFAULT_CONFIG.max_pool_rebuilds == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout_s": -1.0},
            {"max_retries": -1},
            {"backoff_base_s": -0.01},
            {"max_pool_rebuilds": -1},
        ],
    )
    def test_invalid_robustness_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MosaicConfig(**kwargs)

    def test_overridable(self):
        cfg = DEFAULT_CONFIG.with_overrides(task_timeout_s=30.0, max_retries=0)
        assert cfg.task_timeout_s == 30.0
        assert cfg.max_retries == 0
