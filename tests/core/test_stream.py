"""Tests for the incremental application catalog."""

import pytest

from repro.core import preprocess_corpus
from repro.core.stream import ApplicationCatalog

from tests.conftest import make_record, make_trace

SIG = 500 * 1024 * 1024


def run(job_id, uid=1, exe="a", nbytes=SIG):
    return make_trace(
        [make_record(1, 0, read=(0.0, 30.0, nbytes))],
        job_id=job_id, uid=uid, exe=exe,
    )


def corrupted(job_id):
    t = make_trace([], job_id=job_id)
    t.meta.end_time = t.meta.start_time - 1.0
    return t


class TestApplicationCatalog:
    def test_first_run_creates_entry(self):
        catalog = ApplicationCatalog()
        entry = catalog.ingest(run(1))
        assert entry is not None
        assert len(catalog) == 1
        assert entry.n_runs == 1

    def test_lookup(self):
        catalog = ApplicationCatalog()
        catalog.ingest(run(1, uid=7, exe="sim"))
        assert catalog.lookup(7, "sim") is not None
        assert catalog.lookup(7, "other") is None

    def test_heavier_run_replaces_reference(self):
        catalog = ApplicationCatalog()
        catalog.ingest(run(1, nbytes=SIG))
        entry = catalog.ingest(run(2, nbytes=4 * SIG))
        assert entry.weight == pytest.approx(4 * SIG + entry.result.metadata_total, rel=0.1)
        assert entry.result.job_id == 2

    def test_lighter_run_keeps_reference(self):
        catalog = ApplicationCatalog()
        catalog.ingest(run(1, nbytes=4 * SIG))
        entry = catalog.ingest(run(2, nbytes=SIG))
        assert entry.result.job_id == 1
        assert entry.n_runs == 2

    def test_corrupted_traces_rejected_not_raised(self):
        catalog = ApplicationCatalog()
        assert catalog.ingest(corrupted(1)) is None
        assert catalog.n_rejected == 1
        assert len(catalog) == 0

    def test_stability_tracks_agreement(self):
        catalog = ApplicationCatalog()
        catalog.ingest(run(1))
        catalog.ingest(run(2))          # same behaviour
        entry = catalog.ingest(run(3, nbytes=10))  # deviant tiny run
        assert entry.n_runs == 3
        assert entry.n_agreeing == 2
        assert entry.stability == pytest.approx(2 / 3)

    def test_matches_batch_pipeline(self, small_fleet):
        """Streaming ingestion must converge to the batch result."""
        catalog = ApplicationCatalog()
        for trace in small_fleet.traces:
            catalog.ingest(trace)

        batch = preprocess_corpus(small_fleet.traces)
        assert len(catalog) == batch.n_selected
        assert catalog.n_rejected == batch.n_corrupted
        assert catalog.run_weights() == [
            batch.runs_per_app[k] for k in sorted(batch.runs_per_app)
        ]
        # the reference job per app is the heaviest — identical to batch
        batch_jobs = {t.meta.app_key: t.meta.job_id for t in batch.selected}
        for entry in catalog.entries():
            key = entry.result.app_key
            assert entry.result.job_id == batch_jobs[key]

    def test_results_consumable_by_analysis(self, small_fleet):
        from repro.analysis import category_shares

        catalog = ApplicationCatalog()
        for trace in small_fleet.traces:
            catalog.ingest(trace)
        shares = category_shares(catalog.results(), catalog.run_weights())
        assert shares.n_apps == len(catalog)


class TestCatalogFaultIsolation:
    @pytest.fixture
    def broken_categorizer(self, monkeypatch):
        import repro.core.stream as stream_mod

        def boom(trace, config):
            raise RuntimeError("categorizer bug")

        monkeypatch.setattr(stream_mod, "categorize_trace", boom)

    def test_failing_categorization_dropped_not_raised(self, broken_categorizer):
        catalog = ApplicationCatalog()
        assert catalog.ingest(run(1)) is None
        assert catalog.n_failed == 1
        assert len(catalog) == 0

    def test_repeat_offender_quarantined(self, broken_categorizer):
        catalog = ApplicationCatalog(max_app_failures=2)
        catalog.ingest(run(1))
        catalog.ingest(run(2))
        assert catalog.n_quarantined == 1
        assert catalog.quarantined_apps() == [(1, "a")]
        # quarantined app is rejected at the door from now on
        rejected_before = catalog.n_rejected
        assert catalog.ingest(run(3)) is None
        assert catalog.n_rejected == rejected_before + 1
        assert catalog.n_failed == 2  # door rejection is not a new failure

    def test_failure_on_recategorize_keeps_reference(self, monkeypatch):
        import repro.core.stream as stream_mod

        catalog = ApplicationCatalog()
        entry = catalog.ingest(run(1))
        assert entry is not None
        reference = entry.result

        def boom(trace, config):
            raise RuntimeError("categorizer bug")

        monkeypatch.setattr(stream_mod, "categorize_trace", boom)
        # a heavier run fails: the catalog keeps serving the old answer
        again = catalog.ingest(run(2, nbytes=2 * SIG))
        assert again is entry
        assert entry.result is reference
        assert catalog.n_failed == 1
