"""Property-based tests on categorizer invariants.

Generates arbitrary (valid) traces and checks the structural contract of
``categorize_trace``: exactly one temporality label per direction, no
periodicity labels on insignificant directions, consistent metadata
labels, and a lossless result JSON round trip.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    METADATA,
    TEMPORALITY_READ,
    TEMPORALITY_WRITE,
    CategorizationResult,
    Category,
    categorize_trace,
)
from repro.darshan import FileRecord, JobMeta, Trace

MB = 1024 * 1024


@st.composite
def traces(draw) -> Trace:
    run_time = draw(st.floats(min_value=60.0, max_value=100_000.0))
    nprocs = draw(st.integers(min_value=1, max_value=256))
    n_records = draw(st.integers(min_value=0, max_value=25))
    records = []
    for i in range(n_records):
        s = draw(st.floats(min_value=0.0, max_value=run_time * 0.98))
        d = draw(st.floats(min_value=0.0, max_value=run_time - s))
        direction = draw(st.sampled_from(["read", "write", "both"]))
        nbytes = draw(st.integers(min_value=0, max_value=400 * MB))
        rec = FileRecord(
            file_id=i,
            file_name=f"f{i}",
            rank=draw(st.integers(min_value=-1, max_value=nprocs - 1)),
            opens=draw(st.integers(min_value=0, max_value=200)),
            seeks=draw(st.integers(min_value=0, max_value=50)),
        )
        rec.closes = rec.opens
        if rec.opens:
            rec.open_start, rec.close_end = s, s + d
        if direction in ("read", "both") and nbytes:
            rec.reads = max(nbytes // MB, 1)
            rec.bytes_read = nbytes
            rec.read_start, rec.read_end = s, s + d
        if direction in ("write", "both") and nbytes:
            rec.writes = max(nbytes // MB, 1)
            rec.bytes_written = nbytes
            rec.write_start, rec.write_end = s, s + d
        records.append(rec)
    start = 1_546_300_800.0
    meta = JobMeta(
        job_id=draw(st.integers(min_value=1, max_value=10**9)),
        uid=1,
        exe="prop.exe",
        nprocs=nprocs,
        start_time=start,
        end_time=start + run_time,
    )
    return Trace(meta=meta, records=records)


class TestCategorizerInvariants:
    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_exactly_one_temporality_label_per_direction(self, trace):
        result = categorize_trace(trace)
        assert len(result.categories & TEMPORALITY_READ) == 1
        assert len(result.categories & TEMPORALITY_WRITE) == 1

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_insignificant_directions_never_periodic(self, trace):
        result = categorize_trace(trace)
        if Category.READ_INSIGNIFICANT in result.categories:
            assert Category.PERIODIC_READ not in result.categories
        if Category.WRITE_INSIGNIFICANT in result.categories:
            assert Category.PERIODIC_WRITE not in result.categories

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_periodic_umbrella_consistency(self, trace):
        result = categorize_trace(trace)
        directional = {Category.PERIODIC_READ, Category.PERIODIC_WRITE}
        has_directional = bool(result.categories & directional)
        assert (Category.PERIODIC in result.categories) == has_directional
        # magnitude/busy labels never appear without the umbrella
        detail = {
            Category.PERIODIC_SECOND, Category.PERIODIC_MINUTE,
            Category.PERIODIC_HOUR, Category.PERIODIC_DAY_OR_MORE,
            Category.PERIODIC_LOW_BUSY_TIME, Category.PERIODIC_HIGH_BUSY_TIME,
        }
        if result.categories & detail:
            assert Category.PERIODIC in result.categories

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_metadata_labels_consistent(self, trace):
        result = categorize_trace(trace)
        meta = result.categories & METADATA
        if Category.METADATA_INSIGNIFICANT_LOAD in meta:
            assert meta == {Category.METADATA_INSIGNIFICANT_LOAD}
        if Category.METADATA_HIGH_DENSITY in meta:
            assert Category.METADATA_MULTIPLE_SPIKES in meta

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_result_json_roundtrip(self, trace):
        result = categorize_trace(trace)
        again = CategorizationResult.from_dict(result.to_dict())
        assert again.categories == result.categories
        assert again.job_id == result.job_id

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, trace):
        a = categorize_trace(trace)
        b = categorize_trace(trace)
        assert a.categories == b.categories
