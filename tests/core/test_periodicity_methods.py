"""Tests for the pluggable periodicity methods (paper §V future work)."""

import pytest

from repro.core import DEFAULT_CONFIG, Category, categorize_trace, detect_periodicity
from repro.darshan.trace import OperationArray

from tests.conftest import make_record, make_trace

MB = 1024 * 1024


def checkpoint_ops(period=600.0, n=20, duration=5.0, volume=200 * MB):
    return OperationArray.from_tuples(
        [(k * period, k * period + duration, volume) for k in range(n)]
    )


class TestMethodDispatch:
    @pytest.mark.parametrize("method", ["meanshift", "dft", "autocorr", "hybrid"])
    def test_all_methods_detect_clean_train(self, method):
        cfg = DEFAULT_CONFIG.with_overrides(periodicity_method=method)
        det = detect_periodicity(checkpoint_ops(), 12000.0, "write", cfg)
        assert det.periodic, method
        assert det.dominant.period == pytest.approx(600.0, rel=0.15), method

    @pytest.mark.parametrize("method", ["meanshift", "dft", "autocorr", "hybrid"])
    def test_no_method_invents_periodicity(self, method):
        cfg = DEFAULT_CONFIG.with_overrides(periodicity_method=method)
        single = OperationArray.from_tuples([(100.0, 200.0, 500 * MB)])
        assert not detect_periodicity(single, 1000.0, "write", cfg).periodic

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_overrides(periodicity_method="fourier")

    def test_signal_methods_report_single_group(self):
        cfg = DEFAULT_CONFIG.with_overrides(periodicity_method="dft")
        det = detect_periodicity(checkpoint_ops(), 12000.0, "write", cfg)
        assert len(det.groups) == 1
        g = det.groups[0]
        assert g.n_occurrences == pytest.approx(20, abs=2)
        assert g.busy_fraction < 0.25

    def test_hybrid_prefers_meanshift_groups(self):
        # alternating big/small checkpoints: Mean Shift resolves 2 groups
        big = [(k * 600.0, k * 600.0 + 5.0, 900 * MB) for k in range(20)]
        small = [(300.0 + k * 600.0, 305.0 + k * 600.0, 30 * MB) for k in range(20)]
        ops = OperationArray.from_tuples(big + small)
        cfg = DEFAULT_CONFIG.with_overrides(periodicity_method="hybrid")
        det = detect_periodicity(ops, 12000.0, "write", cfg)
        assert len(det.groups) == 2

    def test_hybrid_falls_back_to_dft(self):
        # too few segments for the Mean Shift group-size rule, but a
        # clean cadence the DFT resolves from the binned signal
        cfg = DEFAULT_CONFIG.with_overrides(
            periodicity_method="hybrid", min_group_size=30
        )
        det = detect_periodicity(checkpoint_ops(n=20), 12000.0, "write", cfg)
        assert det.periodic
        assert det.dominant.period == pytest.approx(600.0, rel=0.15)


class TestEndToEndWithMethods:
    def test_categorizer_respects_method(self):
        recs = [
            make_record(k, 0, write=(100.0 + 600.0 * k, 110.0 + 600.0 * k, 500 * MB))
            for k in range(16)
        ]
        trace = make_trace(recs, run_time=10000.0, nprocs=2)
        for method in ("meanshift", "dft", "hybrid"):
            cfg = DEFAULT_CONFIG.with_overrides(periodicity_method=method)
            result = categorize_trace(trace, cfg)
            assert Category.PERIODIC_WRITE in result.categories, method
            assert Category.PERIODIC_MINUTE in result.categories, method
