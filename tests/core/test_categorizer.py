"""Unit tests for the per-trace categorizer (workflow steps ② + ③)."""

import pytest

from repro.core import DEFAULT_CONFIG, Category, categorize_trace

from tests.conftest import make_record, make_trace

MB = 1024 * 1024
SIG = 500 * MB


class TestCategorizeTrace:
    def test_read_compute_write_pattern(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(10.0, 40.0, SIG)),
                make_record(2, 0, write=(950.0, 990.0, SIG)),
            ],
            nprocs=2,
        )
        result = categorize_trace(trace)
        assert Category.READ_ON_START in result.categories
        assert Category.WRITE_ON_END in result.categories
        assert Category.PERIODIC not in result.categories

    def test_desynchronized_checkpointer(self):
        # 16 checkpoints, 4 ranks each, ~2s desync: fusion must collapse
        # each checkpoint into one op before segmentation
        recs = []
        fid = 0
        for k in range(16):
            t0 = 100.0 + k * 600.0
            for rank in range(4):
                fid += 1
                recs.append(
                    make_record(fid, rank, write=(t0 + 0.5 * rank, t0 + 10.0 + 0.5 * rank, SIG // 32))
                )
        trace = make_trace(recs, run_time=10000.0, nprocs=4)
        result = categorize_trace(trace)
        assert Category.PERIODIC_WRITE in result.categories
        assert Category.PERIODIC_MINUTE in result.categories
        assert Category.WRITE_STEADY in result.categories
        groups = result.periodic_groups["write"]
        assert groups[0].period == pytest.approx(600.0, rel=0.15)

    def test_insignificant_direction_skips_periodicity(self):
        # periodic but tiny writes: excluded from characterization
        recs = [
            make_record(k, 0, write=(100.0 + 600.0 * k, 110.0 + 600.0 * k, 1 * MB))
            for k in range(16)
        ]
        trace = make_trace(recs, run_time=10000.0, nprocs=2)
        result = categorize_trace(trace)
        assert Category.WRITE_INSIGNIFICANT in result.categories
        assert Category.PERIODIC_WRITE not in result.categories

    def test_read_and_write_independent(self):
        # paper: "MOSAIC handles read and write operations independently"
        trace = make_trace(
            [make_record(1, 0, read=(0.0, 1000.0, SIG), write=(950.0, 1000.0, SIG))],
            nprocs=2,
        )
        result = categorize_trace(trace)
        assert Category.READ_STEADY in result.categories
        assert Category.WRITE_ON_END in result.categories

    def test_result_carries_job_identity(self):
        trace = make_trace([], job_id=42, uid=7, exe="x.exe", nprocs=3)
        result = categorize_trace(trace)
        assert result.job_id == 42
        assert result.uid == 7
        assert result.exe == "x.exe"
        assert result.app_key == (7, "x.exe")

    def test_empty_trace_fully_insignificant(self):
        result = categorize_trace(make_trace([]))
        assert Category.READ_INSIGNIFICANT in result.categories
        assert Category.WRITE_INSIGNIFICANT in result.categories
        assert Category.METADATA_INSIGNIFICANT_LOAD in result.categories

    def test_chunk_volumes_recorded_for_significant_directions(self):
        trace = make_trace([make_record(1, 0, read=(0.0, 100.0, SIG))], nprocs=2)
        result = categorize_trace(trace)
        assert result.chunk_volumes["read"] is not None
        assert len(result.chunk_volumes["read"]) == 4
        assert result.chunk_volumes["write"] is None

    def test_custom_config_respected(self):
        cfg = DEFAULT_CONFIG.with_overrides(insignificant_bytes=10 * MB)
        trace = make_trace([make_record(1, 0, read=(0.0, 10.0, 50 * MB))], nprocs=2)
        assert Category.READ_INSIGNIFICANT in categorize_trace(trace).categories
        assert Category.READ_ON_START in categorize_trace(trace, cfg).categories
