"""Checkpoint/resume tests: a killed corpus run, resumed from its
journal, must produce byte-identical output to an uninterrupted run."""

import json

import pytest

from repro.core import (
    DEFAULT_CONFIG,
    DegradationLevel,
    ResourceBudget,
    run_pipeline_stream,
    save_results_jsonl,
)
from repro.darshan import DirectorySource, save_binary
from repro.parallel import ParallelConfig
from repro.synth import FleetConfig, generate_fleet

SERIAL = ParallelConfig(max_workers=0)
POOLED = ParallelConfig(max_workers=2)


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("resume-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=30, mean_runs=2.0, seed=11))
    for trace in fleet.traces:
        save_binary(trace, path / f"job{trace.meta.job_id:08d}.mosd")
    return path


def _results_bytes(results, path):
    save_results_jsonl(results, str(path))
    with open(path, "rb") as fh:
        return fh.read()


def _truncate_journal(src, dst, n_outcomes):
    """Simulate a kill -9 partway through: header + first n outcomes."""
    with open(src, encoding="utf-8") as fh:
        lines = fh.readlines()
    with open(dst, "w", encoding="utf-8") as fh:
        fh.writelines(lines[: 1 + n_outcomes])


class TestJournalWriting:
    def test_fresh_run_journals_every_outcome(self, corpus_dir, tmp_path):
        journal = tmp_path / "run.jsonl"
        result = run_pipeline_stream(
            DirectorySource(corpus_dir), parallel=SERIAL, journal_path=journal
        )
        with open(journal, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        assert lines[0]["kind"] == "header"
        assert lines[0]["n_selected"] == len(result.results)
        assert len(lines) == 1 + len(result.results)

    def test_empty_quarantine_manifest_written(self, corpus_dir, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_pipeline_stream(
            DirectorySource(corpus_dir), parallel=SERIAL, journal_path=journal
        )
        with open(f"{journal}.quarantine.json", encoding="utf-8") as fh:
            assert json.load(fh)["n_quarantined"] == 0


class TestResumeEquivalence:
    @pytest.mark.parametrize("parallel", [SERIAL, POOLED], ids=["serial", "pooled"])
    def test_killed_run_resumes_to_identical_output(
        self, corpus_dir, tmp_path, parallel
    ):
        full_journal = tmp_path / "full.jsonl"
        uninterrupted = run_pipeline_stream(
            DirectorySource(corpus_dir), parallel=parallel, journal_path=full_journal
        )
        baseline = _results_bytes(uninterrupted.results, tmp_path / "baseline.jsonl")

        # "kill" the run after 5 journaled outcomes, then resume
        killed_journal = tmp_path / f"killed-{parallel.max_workers}.jsonl"
        _truncate_journal(full_journal, killed_journal, n_outcomes=5)
        resumed = run_pipeline_stream(
            DirectorySource(corpus_dir),
            parallel=parallel,
            journal_path=killed_journal,
            resume=True,
        )
        assert resumed.metrics["n_resumed"] == 5
        assert (
            _results_bytes(resumed.results, tmp_path / "resumed.jsonl") == baseline
        )

    def test_resume_after_torn_final_write(self, corpus_dir, tmp_path):
        full_journal = tmp_path / "full.jsonl"
        uninterrupted = run_pipeline_stream(
            DirectorySource(corpus_dir), parallel=SERIAL, journal_path=full_journal
        )
        baseline = _results_bytes(uninterrupted.results, tmp_path / "baseline.jsonl")

        torn = tmp_path / "torn.jsonl"
        _truncate_journal(full_journal, torn, n_outcomes=3)
        with open(torn, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "result", "job_id": 1, "res')  # mid-write kill
        resumed = run_pipeline_stream(
            DirectorySource(corpus_dir),
            parallel=SERIAL,
            journal_path=torn,
            resume=True,
        )
        assert resumed.metrics["n_resumed"] == 3
        assert resumed.metrics["n_journal_malformed"] == 1
        assert (
            _results_bytes(resumed.results, tmp_path / "resumed.jsonl") == baseline
        )

    def test_fully_complete_journal_resumes_without_recompute(
        self, corpus_dir, tmp_path
    ):
        journal = tmp_path / "full.jsonl"
        first = run_pipeline_stream(
            DirectorySource(corpus_dir), parallel=SERIAL, journal_path=journal
        )
        resumed = run_pipeline_stream(
            DirectorySource(corpus_dir),
            parallel=SERIAL,
            journal_path=journal,
            resume=True,
        )
        assert resumed.metrics["n_resumed"] == len(first.results)
        # pass 2 reloaded nothing: all categorize-stage reads were skipped
        assert resumed.metrics["categorize_bytes_read"] == 0
        assert (
            _results_bytes(resumed.results, tmp_path / "a.jsonl")
            == _results_bytes(first.results, tmp_path / "b.jsonl")
        )


class TestResumeGuards:
    def test_corpus_change_refused(self, corpus_dir, tmp_path):
        journal = tmp_path / "run.jsonl"
        with open(journal, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "header", "version": 1, "n_selected": 9999}\n')
        with pytest.raises(ValueError, match="refusing to resume"):
            run_pipeline_stream(
                DirectorySource(corpus_dir),
                parallel=SERIAL,
                journal_path=journal,
                resume=True,
            )

    def test_governed_run_resumes_degraded_entries_byte_identically(
        self, corpus_dir, tmp_path
    ):
        """A budget tight enough to degrade most traces must survive the
        kill/resume cycle: degradation level and budget violations ride
        the journal like every other result field."""
        cfg = DEFAULT_CONFIG.with_overrides(budget=ResourceBudget(max_ops=8))
        full_journal = tmp_path / "full.jsonl"
        uninterrupted = run_pipeline_stream(
            DirectorySource(corpus_dir),
            config=cfg,
            parallel=SERIAL,
            journal_path=full_journal,
        )
        degraded = [
            r
            for r in uninterrupted.results
            if r.degradation is not DegradationLevel.FULL
        ]
        assert degraded, "budget should have degraded at least one trace"
        baseline = _results_bytes(uninterrupted.results, tmp_path / "baseline.jsonl")

        killed = tmp_path / "killed.jsonl"
        _truncate_journal(full_journal, killed, n_outcomes=5)
        resumed = run_pipeline_stream(
            DirectorySource(corpus_dir),
            config=cfg,
            parallel=SERIAL,
            journal_path=killed,
            resume=True,
        )
        assert resumed.metrics["n_resumed"] == 5
        assert (
            _results_bytes(resumed.results, tmp_path / "resumed.jsonl") == baseline
        )

    def test_quarantined_traces_stay_quarantined(self, corpus_dir, tmp_path):
        full_journal = tmp_path / "full.jsonl"
        full = run_pipeline_stream(
            DirectorySource(corpus_dir), parallel=SERIAL, journal_path=full_journal
        )
        victim = full.results[0].job_id
        # hand-craft a journal where the victim trace timed out
        journal = tmp_path / "quarantined.jsonl"
        with open(full_journal, encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(journal, "w", encoding="utf-8") as fh:
            fh.write(lines[0])
            fh.write(
                json.dumps(
                    {
                        "kind": "failure",
                        "job_id": victim,
                        "failure_kind": "timeout",
                        "error_type": "TaskTimeout",
                        "message": "exceeded deadline",
                        "trace_key": "",
                        "attempts": 1,
                    }
                )
                + "\n"
            )
        resumed = run_pipeline_stream(
            DirectorySource(corpus_dir),
            parallel=SERIAL,
            journal_path=journal,
            resume=True,
        )
        assert victim not in {r.job_id for r in resumed.results}
        assert resumed.n_failures == 1
        assert len(resumed.results) == len(full.results) - 1
        with open(f"{journal}.quarantine.json", encoding="utf-8") as fh:
            manifest = json.load(fh)
        assert [e["job_id"] for e in manifest["quarantined"]] == [victim]
