"""Integration tests for the out-of-core streaming pipeline.

The acceptance bar: a disk corpus categorized through
``run_pipeline_stream`` must (a) never hold the whole corpus in memory —
peak resident ``Trace`` count stays far below corpus size — and (b)
produce a funnel and categorization results identical to the batch
``run_pipeline`` over the same traces.
"""

import gc

import pytest

from repro.core import (
    PipelineContext,
    run_pipeline,
    run_pipeline_stream,
    scan_corpus,
)
from repro.darshan import (
    DirectorySource,
    InMemorySource,
    Trace,
    TraceSource,
    dumps_binary,
    save_binary,
    save_json,
)
from repro.darshan.validate import Violation
from repro.parallel import ParallelConfig
from repro.synth import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(FleetConfig(n_apps=40, mean_runs=3.0, seed=21))


@pytest.fixture(scope="module")
def corpus_dir(fleet, tmp_path_factory):
    path = tmp_path_factory.mktemp("stream-corpus")
    for trace in fleet.traces:
        save_binary(trace, path / f"job{trace.meta.job_id:08d}.mosd")
    return path


@pytest.fixture(scope="module")
def batch_result(fleet):
    return run_pipeline(fleet.traces)


class ProbedSource(TraceSource):
    """Delegating source that records loads and the peak number of live
    ``Trace`` objects (above a caller-set baseline) at load time."""

    def __init__(self, inner: TraceSource):
        self.inner = inner
        self.n_loads = 0
        self.peak_live = 0
        self.baseline = 0

    @staticmethod
    def live_traces() -> int:
        return sum(1 for o in gc.get_objects() if isinstance(o, Trace))

    def refs(self):
        return self.inner.refs()

    def load(self, ref):
        self.n_loads += 1
        self.peak_live = max(self.peak_live, self.live_traces() - self.baseline)
        return self.inner.load(ref)

    @property
    def bytes_read(self):
        return self.inner.bytes_read


class TestStreamMatchesBatch:
    def test_funnel_identical(self, corpus_dir, batch_result):
        streamed = run_pipeline_stream(DirectorySource(corpus_dir))
        assert streamed.preprocess.funnel() == batch_result.preprocess.funnel()
        assert (
            streamed.preprocess.corruption_histogram
            == batch_result.preprocess.corruption_histogram
        )
        assert streamed.preprocess.runs_per_app == batch_result.preprocess.runs_per_app

    def test_results_identical(self, corpus_dir, batch_result):
        streamed = run_pipeline_stream(DirectorySource(corpus_dir))
        assert [r.job_id for r in streamed.results] == [
            r.job_id for r in batch_result.results
        ]
        for a, b in zip(streamed.results, batch_result.results):
            assert (a.app_key, a.categories) == (b.app_key, b.categories)
        assert streamed.run_weights() == batch_result.run_weights()
        assert streamed.n_failures == batch_result.n_failures == 0

    def test_repair_parity(self, corpus_dir, fleet):
        streamed = run_pipeline_stream(DirectorySource(corpus_dir), repair=True)
        batch = run_pipeline(fleet.traces, repair=True)
        assert streamed.preprocess.n_repaired == batch.preprocess.n_repaired
        assert streamed.preprocess.funnel() == batch.preprocess.funnel()
        assert [r.job_id for r in streamed.results] == [
            r.job_id for r in batch.results
        ]

    def test_pool_matches_serial(self, corpus_dir):
        serial = run_pipeline_stream(DirectorySource(corpus_dir))
        pooled = run_pipeline_stream(
            DirectorySource(corpus_dir), parallel=ParallelConfig(max_workers=2)
        )
        assert [r.job_id for r in pooled.results] == [
            r.job_id for r in serial.results
        ]
        for a, b in zip(pooled.results, serial.results):
            assert a.categories == b.categories


class TestBoundedMemory:
    def test_peak_resident_traces_below_corpus_size(self, corpus_dir, fleet):
        source = ProbedSource(DirectorySource(corpus_dir))
        gc.collect()
        source.baseline = ProbedSource.live_traces()

        result = run_pipeline_stream(source)

        assert result.results
        # the whole point: the corpus was never resident at once
        assert source.peak_live < fleet.n_input
        # serial streaming holds O(1) traces: the one being loaded plus
        # at most a couple awaiting hand-off in the generator chain
        assert source.peak_live <= 4
        assert result.metrics["peak_inflight_traces"] <= 1

    def test_two_pass_load_accounting(self, corpus_dir, fleet):
        source = ProbedSource(DirectorySource(corpus_dir))
        result = run_pipeline_stream(source)
        # pass 1 decodes every trace once; pass 2 reloads only selected
        assert source.n_loads == fleet.n_input + result.n_categorized

    def test_bytes_read_split_by_stage(self, corpus_dir):
        source = DirectorySource(corpus_dir)
        total = sum(r.size_bytes for r in source.refs())
        selected_bytes = {
            r.key: r.size_bytes for r in source.refs()
        }
        result = run_pipeline_stream(source)
        assert result.metrics["scan_bytes_read"] == total
        assert 0 < result.metrics["categorize_bytes_read"] < total
        assert source.bytes_read == (
            result.metrics["scan_bytes_read"]
            + result.metrics["categorize_bytes_read"]
        )
        assert selected_bytes  # fixture sanity


class TestUnreadablePayloads:
    @pytest.fixture()
    def dirty_dir(self, fleet, tmp_path):
        sample = fleet.traces[:12]
        for trace in sample:
            save_binary(trace, tmp_path / f"job{trace.meta.job_id:08d}.mosd")
        # three flavors of on-disk corruption, none decodable
        payload = dumps_binary(sample[0])
        (tmp_path / "zz-truncated.mosd").write_bytes(payload[: len(payload) // 2])
        (tmp_path / "zz-badmagic.mosd").write_bytes(b"NOPE" + payload[4:])
        (tmp_path / "zz-garbage.json").write_text("{not json")
        return tmp_path, sample

    def test_scan_counts_unreadable_without_crashing(self, dirty_dir):
        path, sample = dirty_dir
        plan = scan_corpus(DirectorySource(path))
        assert plan.n_input == len(sample) + 3
        assert plan.n_unreadable == 3
        assert plan.corruption_histogram[Violation.UNREADABLE] == 3
        assert plan.n_corrupted >= 3

    def test_pipeline_results_unaffected_by_unreadable_files(self, dirty_dir):
        path, sample = dirty_dir
        dirty = run_pipeline_stream(DirectorySource(path))
        clean = run_pipeline(list(sample))
        assert dirty.metrics["n_unreadable"] == 3
        assert [r.job_id for r in dirty.results] == [
            r.job_id for r in clean.results
        ]
        for a, b in zip(dirty.results, clean.results):
            assert a.categories == b.categories


class TestPipelineContext:
    def test_rejects_unknown_error_policy(self):
        with pytest.raises(ValueError, match="error_policy"):
            PipelineContext(error_policy="ignore")

    def test_custom_context_collects_metrics(self, corpus_dir):
        ctx = PipelineContext()
        result = run_pipeline_stream(DirectorySource(corpus_dir), context=ctx)
        for key in (
            "traces_scanned",
            "n_corrupted",
            "n_selected",
            "scan_bytes_read",
            "peak_inflight_traces",
            "dedup_state_size",
        ):
            assert key in result.metrics, key
        for key in ("scan_s", "categorize_s", "total_s", "preprocess_s"):
            assert key in result.timings, key
        assert ctx.counters == result.metrics

    def test_batch_wrapper_equals_in_memory_stream(self, fleet):
        """run_pipeline(traces) is a wrapper over the same machinery as
        streaming an InMemorySource — spot-check they agree."""
        batch = run_pipeline(fleet.traces)
        streamed = run_pipeline_stream(InMemorySource(fleet.traces))
        assert batch.preprocess.funnel() == streamed.preprocess.funnel()
        assert [r.job_id for r in batch.results] == [
            r.job_id for r in streamed.results
        ]
