"""Unit tests for periodicity detection (paper §III-B3a)."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_CONFIG,
    Category,
    detect_periodicity,
    period_magnitude,
)
from repro.darshan.trace import OperationArray

MB = 1024 * 1024


def checkpoint_ops(period: float, n: int, duration: float = 5.0,
                   volume: float = 200 * MB, jitter: float = 0.0, seed: int = 0):
    rng = np.random.default_rng(seed)
    rows = []
    for k in range(n):
        s = k * period + (rng.normal(0, jitter * period) if jitter else 0.0)
        rows.append((s, s + duration, volume * float(np.exp(rng.normal(0, 0.02)))))
    return OperationArray.from_tuples(rows)


def detect(arr, run_time, direction="write", config=DEFAULT_CONFIG):
    return detect_periodicity(arr, run_time, direction, config)


class TestDetection:
    def test_clean_checkpoint_train_detected(self):
        arr = checkpoint_ops(600.0, 20)
        det = detect(arr, 12000.0)
        assert det.periodic
        g = det.dominant
        assert g.period == pytest.approx(600.0, rel=0.1)
        assert g.n_occurrences >= 18
        assert g.direction == "write"

    def test_jittered_train_still_detected(self):
        arr = checkpoint_ops(600.0, 20, jitter=0.04)
        assert detect(arr, 12000.0).periodic

    def test_single_burst_not_periodic(self):
        arr = OperationArray.from_tuples([(100.0, 200.0, 500 * MB)])
        assert not detect(arr, 1000.0).periodic

    def test_two_unrelated_bursts_not_periodic(self):
        arr = OperationArray.from_tuples(
            [(10.0, 20.0, 500 * MB), (600.0, 900.0, 5 * MB)]
        )
        assert not detect(arr, 1000.0).periodic

    def test_empty_not_periodic(self):
        det = detect(OperationArray.from_tuples([]), 1000.0)
        assert not det.periodic and det.n_segments == 0

    def test_interleaved_trains_fast_one_wins(self):
        # Two interleaved periodic trains in the SAME direction: the
        # start-to-next-start segmentation cuts the slow train's segments
        # at the fast train's events, so only the fast train's period is
        # recovered.  This is a faithful limitation of the paper's
        # segmentation (its multi-period example pairs a periodic *read*
        # with a periodic *write*; see test_categorizer for that case)
        # and part of why the paper lists frequency techniques as future
        # work for intricate mixtures.
        a = checkpoint_ops(600.0, 20, volume=900 * MB)
        b = checkpoint_ops(97.0, 120, duration=1.0, volume=30 * MB, seed=1)
        both = OperationArray.from_tuples(list(a) + list(b))
        det = detect(both, 12000.0)
        assert det.periodic
        assert det.dominant.period == pytest.approx(97.0, rel=0.25)
        assert all(g.period < 300.0 for g in det.groups)

    def test_alternating_checkpoint_types_give_two_groups(self):
        # Alternating large/small checkpoints every 300s: two Mean Shift
        # modes separated by volume, same cadence — several periodic
        # operations within a single application (paper §III-B3a).
        big = [(k * 600.0, k * 600.0 + 5.0, 900 * MB) for k in range(20)]
        small = [(300.0 + k * 600.0, 305.0 + k * 600.0, 30 * MB) for k in range(20)]
        det = detect(OperationArray.from_tuples(big + small), 12000.0)
        assert len(det.groups) == 2
        volumes = sorted(g.mean_volume for g in det.groups)
        assert volumes[0] == pytest.approx(30 * MB, rel=0.1)
        assert volumes[1] == pytest.approx(900 * MB, rel=0.1)

    def test_min_group_size_respected(self):
        arr = checkpoint_ops(600.0, 3)
        cfg = DEFAULT_CONFIG.with_overrides(min_group_size=5)
        assert not detect(arr, 12000.0, config=cfg).periodic

    def test_paper_strict_rule_detects_pairs(self):
        arr = checkpoint_ops(600.0, 2)
        cfg = DEFAULT_CONFIG.with_overrides(min_group_size=2)
        # two identical segments form a group of 2 under the strict rule
        det = detect(arr, 1200.0, config=cfg)
        assert det.periodic

    def test_sub_second_segments_rejected(self):
        arr = checkpoint_ops(0.5, 30, duration=0.1)
        det = detect(arr, 15.0)
        assert not det.periodic  # min_period filters clock noise


class TestBusyTime:
    def test_low_busy_label(self):
        arr = checkpoint_ops(600.0, 20, duration=10.0)  # 1.7% busy
        g = detect(arr, 12000.0).dominant
        assert g.busy_fraction < 0.25
        assert g.busy_label(DEFAULT_CONFIG) is Category.PERIODIC_LOW_BUSY_TIME

    def test_high_busy_label(self):
        arr = checkpoint_ops(600.0, 20, duration=350.0)  # ~58% busy
        g = detect(arr, 12000.0).dominant
        assert g.busy_label(DEFAULT_CONFIG) is Category.PERIODIC_HIGH_BUSY_TIME


class TestMagnitudes:
    @pytest.mark.parametrize(
        "period,expected",
        [
            (10.0, Category.PERIODIC_SECOND),
            (60.0, Category.PERIODIC_SECOND),
            (61.0, Category.PERIODIC_MINUTE),
            (3600.0, Category.PERIODIC_MINUTE),
            (5000.0, Category.PERIODIC_HOUR),
            (86400.0, Category.PERIODIC_HOUR),
            (200000.0, Category.PERIODIC_DAY_OR_MORE),
        ],
    )
    def test_magnitude_boundaries(self, period, expected):
        assert period_magnitude(period, DEFAULT_CONFIG) is expected


class TestCategories:
    def test_categories_of_periodic_write(self):
        arr = checkpoint_ops(600.0, 20)
        det = detect(arr, 12000.0, direction="write")
        cats = det.categories(DEFAULT_CONFIG)
        assert Category.PERIODIC in cats
        assert Category.PERIODIC_WRITE in cats
        assert Category.PERIODIC_MINUTE in cats
        assert Category.PERIODIC_LOW_BUSY_TIME in cats
        assert Category.PERIODIC_READ not in cats

    def test_categories_empty_when_not_periodic(self):
        det = detect(OperationArray.from_tuples([]), 100.0)
        assert det.categories(DEFAULT_CONFIG) == frozenset()
