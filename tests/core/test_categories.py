"""Unit tests for the category taxonomy."""

import pytest

from repro.core import (
    METADATA,
    PERIODICITY,
    TEMPORALITY_READ,
    TEMPORALITY_WRITE,
    Axis,
    Category,
    axis_of,
    parse_categories,
)


class TestTaxonomy:
    def test_axis_partition_is_complete_and_disjoint(self):
        union = TEMPORALITY_READ | TEMPORALITY_WRITE | PERIODICITY | METADATA
        assert union == frozenset(Category)
        assert not (TEMPORALITY_READ & TEMPORALITY_WRITE)
        assert not (PERIODICITY & METADATA)
        assert not ((TEMPORALITY_READ | TEMPORALITY_WRITE) & PERIODICITY)

    def test_paper_table1_temporality_labels_present(self):
        # Table I row 1: {read_, write_} x the seven temporal labels
        for stem in ("on_start", "on_end", "after_start", "before_end",
                     "after_start_before_end", "steady", "insignificant"):
            assert Category(f"read_{stem}") in TEMPORALITY_READ
            assert Category(f"write_{stem}") in TEMPORALITY_WRITE

    def test_paper_table1_periodicity_labels_present(self):
        for name in ("periodic", "periodic_second", "periodic_minute",
                     "periodic_hour", "periodic_day_or_more",
                     "periodic_low_busy_time", "periodic_high_busy_time"):
            assert Category(name) in PERIODICITY

    def test_paper_table1_metadata_labels_present(self):
        for name in ("metadata_high_spike", "metadata_high_density",
                     "metadata_multiple_spikes", "metadata_insignificant_load"):
            assert Category(name) in METADATA

    def test_axis_of(self):
        assert axis_of(Category.READ_ON_START) is Axis.TEMPORALITY
        assert axis_of(Category.WRITE_STEADY) is Axis.TEMPORALITY
        assert axis_of(Category.PERIODIC_MINUTE) is Axis.PERIODICITY
        assert axis_of(Category.METADATA_HIGH_SPIKE) is Axis.METADATA

    def test_parse_categories_roundtrip(self):
        cats = frozenset({Category.READ_ON_START, Category.PERIODIC})
        names = [c.value for c in cats]
        assert parse_categories(names) == cats

    def test_parse_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            parse_categories(["read_on_start", "not_a_category"])

    def test_str_is_value(self):
        assert str(Category.READ_STEADY) == "read_steady"
