"""Degradation-ladder tests: budget assessment, subsampling, governed
categorization at every rung, and journal round-trips of degraded
results."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_CONFIG,
    CategorizationResult,
    DegradationLevel,
    Governor,
    ResourceBudget,
    categorize_trace,
    estimate_trace_cost,
    load_results_jsonl,
    save_results_jsonl,
    subsample_ops,
)
from repro.core.governor import LADDER, OP_WORKING_SET_BYTES
from repro.darshan import Violation
from repro.synth import FleetConfig, flood_trace, generate_fleet

from tests.conftest import make_record, make_trace


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(
        FleetConfig(n_apps=20, mean_runs=2.0, corruption_fraction=0.0, seed=9)
    )


@pytest.fixture(scope="module")
def valid_trace(fleet):
    return next(t for t in fleet.traces if t.meta.job_id in fleet.truth)


def _config_for_level(trace, level):
    """A config whose budget lands ``trace`` exactly on ``level``."""
    n_ops, _ = estimate_trace_cost(trace)
    if level is DegradationLevel.FULL:
        return DEFAULT_CONFIG.with_overrides(budget=ResourceBudget(max_ops=n_ops))
    if level is DegradationLevel.COARSE:
        return DEFAULT_CONFIG.with_overrides(
            budget=ResourceBudget(max_ops=max(1, n_ops // 2))
        )
    if level is DegradationLevel.MINIMAL:
        return DEFAULT_CONFIG.with_overrides(
            budget=ResourceBudget(max_ops=max(1, n_ops // 16))
        )
    return DEFAULT_CONFIG.with_overrides(
        budget=ResourceBudget(max_ops=1, coarse_factor=1.2, minimal_factor=1.5)
    )


class TestResourceBudget:
    def test_default_is_unlimited(self):
        assert ResourceBudget().unlimited

    def test_assess_walks_the_ladder(self):
        budget = ResourceBudget(max_ops=100)
        assert budget.assess(100, 0) is DegradationLevel.FULL
        assert budget.assess(101, 0) is DegradationLevel.COARSE
        assert budget.assess(800, 0) is DegradationLevel.COARSE
        assert budget.assess(801, 0) is DegradationLevel.MINIMAL
        assert budget.assess(6400, 0) is DegradationLevel.MINIMAL
        assert budget.assess(6401, 0) is DegradationLevel.FLAGGED

    def test_byte_budget_alone_governs(self):
        budget = ResourceBudget(max_bytes=OP_WORKING_SET_BYTES)
        assert budget.assess(1, OP_WORKING_SET_BYTES) is DegradationLevel.FULL
        assert budget.assess(2, 2 * OP_WORKING_SET_BYTES) is not DegradationLevel.FULL

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(max_ops=-1)
        with pytest.raises(ValueError):
            ResourceBudget(coarse_factor=0.5)
        with pytest.raises(ValueError):
            ResourceBudget(coarse_factor=8.0, minimal_factor=4.0)

    def test_level_ordering(self):
        ranks = [level.rank for level in LADDER]
        assert ranks == sorted(ranks)
        assert DegradationLevel.MINIMAL.at_least(DegradationLevel.COARSE)
        assert not DegradationLevel.FULL.at_least(DegradationLevel.COARSE)


class TestSubsampleOps:
    def test_preserves_total_volume_exactly(self, valid_trace):
        ops = valid_trace.operations("read")
        if len(ops) < 4:
            pytest.skip("trace too small to subsample")
        target = max(2, len(ops) // 2)
        small = subsample_ops(ops, target)
        assert len(small) <= target
        assert int(small.volumes.sum()) == int(ops.volumes.sum())

    def test_noop_when_under_target(self, valid_trace):
        ops = valid_trace.operations("read")
        assert subsample_ops(ops, len(ops) + 10) is ops


class TestGovernedCategorization:
    @pytest.mark.parametrize("level", list(LADDER))
    def test_schema_complete_at_every_level(self, valid_trace, level):
        cfg = _config_for_level(valid_trace, level)
        result = categorize_trace(valid_trace, cfg)
        assert result.degradation is level
        full_keys = set(
            categorize_trace(valid_trace, DEFAULT_CONFIG).to_dict().keys()
        )
        assert set(result.to_dict().keys()) == full_keys

    def test_ungoverned_run_is_full_and_violation_free(self, valid_trace):
        result = categorize_trace(valid_trace, DEFAULT_CONFIG)
        assert result.degradation is DegradationLevel.FULL
        assert result.budget_violations == ()

    def test_coarse_categories_stay_close_to_full(self, fleet):
        """Subsampling preserves total volume exactly, so the volume-based
        significance categories must match the full run's; other axes may
        coarsen but never invent activity the full run found empty."""
        from repro.core import Category

        volume_axis = {
            Category.READ_INSIGNIFICANT,
            Category.WRITE_INSIGNIFICANT,
        }
        n_checked = 0
        for trace in fleet.traces:
            if trace.meta.job_id not in fleet.truth:
                continue
            full = categorize_trace(trace, DEFAULT_CONFIG)
            cfg = _config_for_level(trace, DegradationLevel.COARSE)
            coarse = categorize_trace(trace, cfg)
            if coarse.degradation is not DegradationLevel.COARSE:
                continue  # tiny trace: nothing to subsample
            n_checked += 1
            assert coarse.categories & volume_axis == full.categories & volume_axis
            assert coarse.run_time == full.run_time
        assert n_checked >= 5

    def test_flagged_result_is_identity_only(self, valid_trace):
        cfg = _config_for_level(valid_trace, DegradationLevel.FLAGGED)
        result = categorize_trace(valid_trace, cfg)
        assert result.degradation is DegradationLevel.FLAGGED
        assert result.categories == frozenset()
        assert result.budget_violations
        assert any(
            Violation.RESOURCE_BUDGET.value in v for v in result.budget_violations
        )

    def test_flood_preserves_categories_until_governed(self, valid_trace):
        rng = np.random.default_rng(0)
        flooded = flood_trace(valid_trace, rng, factor=8)
        full = categorize_trace(valid_trace, DEFAULT_CONFIG)
        assert categorize_trace(flooded, DEFAULT_CONFIG).categories == full.categories
        n_ops, _ = estimate_trace_cost(valid_trace)
        governed = categorize_trace(
            flooded,
            DEFAULT_CONFIG.with_overrides(budget=ResourceBudget(max_ops=n_ops)),
        )
        assert governed.degradation is not DegradationLevel.FULL


class TestGovernorDeadline:
    def test_deadline_overrun_escalates_to_minimal(self):
        gov = Governor(ResourceBudget(max_ops=10**9, stage_deadline_s=1e-9))
        gov.start_stage()
        for _ in range(1000):
            pass
        level = gov.check_deadline("merge")
        assert level is DegradationLevel.MINIMAL
        assert gov.violations

    def test_no_deadline_means_no_escalation(self):
        gov = Governor(ResourceBudget(max_ops=10**9))
        gov.start_stage()
        assert gov.check_deadline("merge") is DegradationLevel.FULL


class TestDegradedJournalRoundTrip:
    @pytest.mark.parametrize("level", list(LADDER))
    def test_dict_roundtrip_at_every_level(self, valid_trace, level):
        cfg = _config_for_level(valid_trace, level)
        result = categorize_trace(valid_trace, cfg)
        again = CategorizationResult.from_dict(result.to_dict())
        assert again == result
        assert again.degradation is level

    def test_jsonl_roundtrip_is_byte_identical(self, valid_trace, tmp_path):
        results = [
            categorize_trace(valid_trace, _config_for_level(valid_trace, level))
            for level in LADDER
        ]
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        save_results_jsonl(results, str(first))
        save_results_jsonl(list(load_results_jsonl(str(first))), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_legacy_dict_without_ladder_fields_loads_full(self, valid_trace):
        d = categorize_trace(valid_trace, DEFAULT_CONFIG).to_dict()
        d.pop("degradation")
        d.pop("budget_violations")
        legacy = CategorizationResult.from_dict(d)
        assert legacy.degradation is DegradationLevel.FULL
        assert legacy.budget_violations == ()
