"""Tests for the repair-enabled pre-processing mode."""

import numpy as np

from repro.core import preprocess_corpus
from repro.synth import corrupt_trace

from tests.conftest import make_record, make_trace


def valid(job_id, uid=1, exe="a"):
    return make_trace(
        [make_record(1, 0, read=(0.0, 50.0, 500_000_000))],
        job_id=job_id, uid=uid, exe=exe,
    )


class TestRepairMode:
    def test_repairable_traces_rescued(self):
        rng = np.random.default_rng(0)
        good = valid(1)
        bad = corrupt_trace(valid(2, exe="b"), rng, "inverted_window")
        off = preprocess_corpus([good, bad])
        on = preprocess_corpus([good, bad], repair=True)
        assert off.n_corrupted == 1 and off.n_selected == 1
        assert on.n_corrupted == 0 and on.n_selected == 2
        assert on.n_repaired == 1

    def test_unrepairable_traces_still_evicted(self):
        rng = np.random.default_rng(1)
        bad = corrupt_trace(valid(2, exe="b"), rng, "negative_runtime")
        on = preprocess_corpus([valid(1), bad], repair=True)
        assert on.n_corrupted == 1
        assert on.n_repaired == 0

    def test_default_mode_never_repairs(self):
        rng = np.random.default_rng(2)
        bad = corrupt_trace(valid(2, exe="b"), rng, "dealloc_before_end")
        off = preprocess_corpus([bad])
        assert off.n_corrupted == 1
        assert off.n_repaired == 0

    def test_repaired_traces_enter_dedup(self):
        rng = np.random.default_rng(3)
        light = valid(1)
        heavy = valid(2)
        heavy.records[0].bytes_read = 10_000_000_000
        broken_heavy = corrupt_trace(heavy, rng, "inverted_window")
        on = preprocess_corpus([light, broken_heavy], repair=True)
        # the repaired heavy run wins keep-heaviest
        assert on.n_selected == 1
        assert on.selected[0].meta.job_id == 2

    def test_fleet_recovery_at_scale(self, small_fleet):
        off = preprocess_corpus(small_fleet.traces)
        on = preprocess_corpus(small_fleet.traces, repair=True)
        # most of the 32% eviction is mechanically recoverable
        assert on.n_repaired > 0.5 * off.n_corrupted
        assert on.n_corrupted < 0.5 * off.n_corrupted
        assert on.n_valid > off.n_valid
