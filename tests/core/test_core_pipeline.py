"""Unit tests for the corpus pipeline (Fig. 1 end to end)."""


from repro.core import Category, run_pipeline
from repro.parallel import ParallelConfig

from tests.conftest import make_record, make_trace

SIG = 500 * 1024 * 1024


def app_runs(uid, exe, n_runs, nbytes=SIG):
    traces = []
    for k in range(n_runs):
        traces.append(
            make_trace(
                [make_record(1, 0, read=(0.0, 30.0, nbytes + k))],
                job_id=uid * 1000 + k,
                uid=uid,
                exe=exe,
            )
        )
    return traces


class TestRunPipeline:
    def test_pipeline_categorizes_unique_apps(self):
        traces = app_runs(1, "a", 5) + app_runs(2, "b", 3)
        result = run_pipeline(traces)
        assert result.n_categorized == 2
        assert result.preprocess.n_input == 8

    def test_run_weights_align_with_results(self):
        traces = app_runs(1, "a", 5) + app_runs(2, "b", 3)
        result = run_pipeline(traces)
        weights = dict(zip([r.exe for r in result.results], result.run_weights()))
        assert weights == {"a": 5, "b": 3}

    def test_corrupted_traces_do_not_reach_categorization(self):
        bad = make_trace([], job_id=999)
        bad.meta.end_time = bad.meta.start_time - 5.0
        result = run_pipeline(app_runs(1, "a", 2) + [bad])
        assert result.preprocess.n_corrupted == 1
        assert all(r.job_id != 999 for r in result.results)

    def test_timings_recorded(self):
        result = run_pipeline(app_runs(1, "a", 2))
        assert set(result.timings) == {"preprocess_s", "categorize_s", "total_s"}
        assert result.timings["total_s"] >= 0.0

    def test_parallel_matches_serial(self):
        traces = app_runs(1, "a", 3) + app_runs(2, "b", 3) + app_runs(3, "c", 3)
        serial = run_pipeline(traces)
        parallel = run_pipeline(traces, parallel=ParallelConfig(max_workers=2))
        assert len(serial.results) == len(parallel.results)
        for a, b in zip(serial.results, parallel.results):
            assert a.job_id == b.job_id
            assert a.categories == b.categories

    def test_empty_corpus(self):
        result = run_pipeline([])
        assert result.n_categorized == 0
        assert result.n_failures == 0

    def test_categories_present_in_results(self):
        result = run_pipeline(app_runs(1, "a", 1))
        assert Category.READ_ON_START in result.results[0].categories
