"""Unit tests for corpus pre-processing (paper §III-B1, Fig. 3)."""

import pytest

from repro.core import preprocess_corpus
from repro.darshan import Violation

from tests.conftest import make_record, make_trace


def run(job_id, uid, exe, nbytes, run_time=1000.0):
    return make_trace(
        [make_record(1, 0, read=(0.0, 10.0, nbytes))],
        job_id=job_id,
        uid=uid,
        exe=exe,
        run_time=run_time,
    )


def corrupted(job_id):
    trace = make_trace([], job_id=job_id)
    trace.meta.end_time = trace.meta.start_time - 1.0
    return trace


class TestValidityFiltering:
    def test_corrupted_traces_evicted(self):
        traces = [run(1, 1, "a", 100), corrupted(2), corrupted(3)]
        pre = preprocess_corpus(traces)
        assert pre.n_input == 3
        assert pre.n_corrupted == 2
        assert pre.n_valid == 1
        assert pre.corrupted_fraction == pytest.approx(2 / 3)

    def test_corruption_histogram(self):
        pre = preprocess_corpus([corrupted(1), corrupted(2)])
        assert pre.corruption_histogram[Violation.NEGATIVE_RUNTIME] == 2


class TestDeduplication:
    def test_keeps_heaviest_run_per_app(self):
        traces = [run(1, 7, "sim", 100), run(2, 7, "sim", 9999), run(3, 7, "sim", 50)]
        pre = preprocess_corpus(traces)
        assert pre.n_selected == 1
        assert pre.selected[0].meta.job_id == 2
        assert pre.runs_per_app[(7, "sim")] == 3

    def test_different_users_not_merged(self):
        traces = [run(1, 7, "sim", 100), run(2, 8, "sim", 100)]
        assert preprocess_corpus(traces).n_selected == 2

    def test_different_exes_not_merged(self):
        traces = [run(1, 7, "a", 100), run(2, 7, "b", 100)]
        assert preprocess_corpus(traces).n_selected == 2

    def test_tie_breaks_deterministically(self):
        traces = [run(5, 7, "sim", 100), run(2, 7, "sim", 100)]
        pre = preprocess_corpus(traces)
        assert pre.selected[0].meta.job_id == 2

    def test_unique_fraction(self):
        traces = [run(i, 7, "sim", 100) for i in range(1, 11)]
        pre = preprocess_corpus(traces)
        assert pre.unique_fraction == pytest.approx(0.1)

    def test_selected_sorted_by_job_id(self):
        traces = [run(9, 1, "c", 1), run(3, 2, "b", 1), run(5, 3, "a", 1)]
        ids = [t.meta.job_id for t in preprocess_corpus(traces).selected]
        assert ids == sorted(ids)


class TestFunnel:
    def test_funnel_stages(self):
        traces = [run(1, 7, "sim", 100), run(2, 7, "sim", 200), corrupted(3)]
        pre = preprocess_corpus(traces)
        stages = dict(pre.funnel())
        assert stages == {
            "input_traces": 3,
            "valid_traces": 2,
            "selected_for_categorization": 1,
        }

    def test_empty_corpus(self):
        pre = preprocess_corpus([])
        assert pre.n_input == 0
        assert pre.corrupted_fraction == 0.0
        assert pre.unique_fraction == 0.0
