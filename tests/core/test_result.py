"""Unit tests for the result model and its JSON-lines persistence."""

import pytest

from repro.core import (
    CategorizationResult,
    Category,
    categorize_trace,
    load_results_jsonl,
    save_results_jsonl,
)

from tests.conftest import make_record, make_trace

SIG = 500 * 1024 * 1024


@pytest.fixture
def results():
    traces = [
        make_trace([make_record(1, 0, read=(0.0, 30.0, SIG))], job_id=1, uid=1, exe="a"),
        make_trace(
            [make_record(k, 0, write=(100.0 + 600.0 * k, 110.0 + 600.0 * k, SIG // 8))
             for k in range(16)],
            run_time=10000.0,
            job_id=2,
            uid=2,
            exe="b",
        ),
    ]
    return [categorize_trace(t) for t in traces]


class TestResultModel:
    def test_has(self, results):
        assert results[0].has(Category.READ_ON_START)
        assert not results[0].has(Category.WRITE_ON_END)

    def test_dict_roundtrip_preserves_everything(self, results):
        for r in results:
            again = CategorizationResult.from_dict(r.to_dict())
            assert again.categories == r.categories
            assert again.job_id == r.job_id
            assert again.chunk_volumes == r.chunk_volumes
            assert again.weak_temporality == r.weak_temporality
            assert again.metadata_total == r.metadata_total
            assert len(again.periodic_groups.get("write", [])) == len(
                r.periodic_groups.get("write", [])
            )

    def test_periodic_group_values_survive_roundtrip(self, results):
        r = results[1]
        again = CategorizationResult.from_dict(r.to_dict())
        g0 = r.periodic_groups["write"][0]
        g1 = again.periodic_groups["write"][0]
        assert g1.period == pytest.approx(g0.period)
        assert g1.n_occurrences == g0.n_occurrences
        assert g1.busy_fraction == pytest.approx(g0.busy_fraction)


class TestJsonl:
    def test_save_and_load(self, results, tmp_path):
        path = tmp_path / "results.jsonl"
        n = save_results_jsonl(results, path)
        assert n == 2
        loaded = list(load_results_jsonl(path))
        assert [r.job_id for r in loaded] == [1, 2]
        assert loaded[0].categories == results[0].categories

    def test_blank_lines_skipped(self, results, tmp_path):
        path = tmp_path / "results.jsonl"
        save_results_jsonl(results, path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(list(load_results_jsonl(path))) == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_results_jsonl([], path)
        assert list(load_results_jsonl(path)) == []
