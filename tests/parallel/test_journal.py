"""Unit tests for the append-only run journal and quarantine manifest."""

import json
import os
import subprocess
import sys

import pytest

from repro.io import StorageError
from repro.parallel.journal import (
    JOURNAL_VERSION,
    JournalLockHeld,
    JournalState,
    JournalWriter,
    write_quarantine_manifest,
)


def _write_run(path, *, n_selected=3):
    with JournalWriter(path) as journal:
        journal.write_header(n_selected=n_selected)
        journal.record_result(10, {"job_id": 10, "categories": ["a"]})
        journal.record_failure(
            11,
            failure_kind="timeout",
            error_type="TaskTimeout",
            message="exceeded deadline",
            trace_key="/corpus/job11.mosd",
            attempts=1,
        )
        journal.record_failure(
            12,
            failure_kind="exception",
            error_type="ValueError",
            message="bad trace",
            attempts=3,
        )
    return path


class TestRoundTrip:
    def test_load_recovers_every_settled_outcome(self, tmp_path):
        path = _write_run(str(tmp_path / "run.jsonl"))
        state = JournalState.load(path)
        assert state.n_selected == 3
        assert state.completed == {10: {"job_id": 10, "categories": ["a"]}}
        assert set(state.quarantined) == {11}
        assert state.quarantined[11]["error_type"] == "TaskTimeout"
        assert state.n_malformed == 0

    def test_plain_exception_failures_are_rerun_on_resume(self, tmp_path):
        path = _write_run(str(tmp_path / "run.jsonl"))
        state = JournalState.load(path)
        # EXCEPTION failures are not settled: resume re-attempts them
        assert not state.is_settled(12)
        assert state.is_settled(10) and state.is_settled(11)
        assert [f["job_id"] for f in state.transient_failures] == [12]

    def test_append_mode_extends_existing_journal(self, tmp_path):
        path = _write_run(str(tmp_path / "run.jsonl"))
        with JournalWriter(path, append=True) as journal:
            journal.record_result(12, {"job_id": 12})
        state = JournalState.load(path)
        assert set(state.completed) == {10, 12}

    def test_writer_refuses_after_close(self, tmp_path):
        journal = JournalWriter(str(tmp_path / "run.jsonl"))
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.record_result(1, {})


class TestCrashTolerance:
    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = _write_run(str(tmp_path / "run.jsonl"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "result", "job_id": 99, "resu')  # kill -9
        state = JournalState.load(path)
        assert 99 not in state.completed
        assert state.n_malformed == 1

    def test_unknown_record_kinds_count_as_malformed(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "mystery"}\n[1, 2]\n')
        state = JournalState.load(path)
        assert state.n_malformed == 2

    def test_version_mismatch_refuses_to_load(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "header", "version": 999}) + "\n")
        with pytest.raises(ValueError, match="version"):
            JournalState.load(path)

    def test_headerless_journal_loads_with_unknown_selection(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "result", "job_id": 5, "result": {}}\n')
        state = JournalState.load(path)
        assert state.n_selected is None
        assert 5 in state.completed


class TestQuarantineManifest:
    def test_manifest_written_next_to_journal(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        entries = [
            {"job_id": 7, "failure_kind": "poison", "trace_key": "b.mosd"},
            {"job_id": 3, "failure_kind": "timeout", "trace_key": "a.mosd"},
        ]
        path = write_quarantine_manifest(journal, entries)
        assert path == journal + ".quarantine.json"
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["version"] == JOURNAL_VERSION
        assert payload["n_quarantined"] == 2
        # sorted by job_id: the operator's worklist is stable
        assert [e["job_id"] for e in payload["quarantined"]] == [3, 7]

    def test_empty_manifest_still_written(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        path = write_quarantine_manifest(journal, [])
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["n_quarantined"] == 0


class TestJournalLock:
    """The O_EXCL lock sidecar: one live writer per journal path."""

    def test_sidecar_exists_while_open_and_is_released_on_close(
        self, tmp_path
    ):
        path = str(tmp_path / "run.jsonl")
        writer = JournalWriter(path)
        lock = path + ".lock"
        assert os.path.exists(lock)
        with open(lock, "rb") as fh:
            assert int(fh.read()) == os.getpid()
        writer.close()
        assert not os.path.exists(lock)

    def test_second_writer_fails_fast_with_typed_error(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JournalWriter(path):
            with pytest.raises(JournalLockHeld):
                JournalWriter(path)
            # typed: the CLI's StorageError exit path applies
            with pytest.raises(StorageError):
                JournalWriter(path, append=True)
        # released: a later run proceeds normally
        JournalWriter(path, append=True).close()

    def test_contention_does_not_corrupt_the_journal(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JournalWriter(path) as journal:
            journal.write_header(n_selected=2)
            journal.record_result(0, {"job_id": 0})
            with pytest.raises(JournalLockHeld):
                JournalWriter(path)
            journal.record_result(1, {"job_id": 1})
        state = JournalState.load(path)
        assert sorted(state.completed) == [0, 1]
        assert state.n_malformed == 0

    def test_lock_held_by_live_foreign_process(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        # pid 1 is alive and not ours; os.kill(1, 0) raises
        # PermissionError, which must read as "live", not "stale"
        with open(path + ".lock", "wb") as fh:
            fh.write(b"1")
        with pytest.raises(JournalLockHeld) as exc_info:
            JournalWriter(path)
        assert exc_info.value.path == path + ".lock"

    def test_stale_lock_of_dead_pid_is_broken(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        # Spawn-and-reap a real process so the pid is guaranteed dead.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        with open(path + ".lock", "wb") as fh:
            fh.write(str(proc.pid).encode())
        with JournalWriter(path) as journal:
            journal.write_header(n_selected=0)
            with open(path + ".lock", "rb") as fh:
                assert int(fh.read()) == os.getpid()

    def test_garbled_lock_sidecar_counts_as_stale(self, tmp_path):
        # The previous owner died between the exclusive create and the
        # pid write: an empty/garbled sidecar must not wedge the path.
        path = str(tmp_path / "run.jsonl")
        with open(path + ".lock", "wb") as fh:
            fh.write(b"not-a-pid")
        JournalWriter(path).close()
        assert not os.path.exists(path + ".lock")

    def test_lock_released_when_appender_open_fails(self, tmp_path):
        # Journal path is a directory: DurableAppender cannot open it,
        # and the half-constructed writer must not leak the lock.
        path = str(tmp_path / "run.jsonl")
        os.mkdir(path)
        with pytest.raises(StorageError):
            JournalWriter(path)
        assert not os.path.exists(path + ".lock")
