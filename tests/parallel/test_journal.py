"""Unit tests for the append-only run journal and quarantine manifest."""

import json

import pytest

from repro.parallel.journal import (
    JOURNAL_VERSION,
    JournalState,
    JournalWriter,
    write_quarantine_manifest,
)


def _write_run(path, *, n_selected=3):
    with JournalWriter(path) as journal:
        journal.write_header(n_selected=n_selected)
        journal.record_result(10, {"job_id": 10, "categories": ["a"]})
        journal.record_failure(
            11,
            failure_kind="timeout",
            error_type="TaskTimeout",
            message="exceeded deadline",
            trace_key="/corpus/job11.mosd",
            attempts=1,
        )
        journal.record_failure(
            12,
            failure_kind="exception",
            error_type="ValueError",
            message="bad trace",
            attempts=3,
        )
    return path


class TestRoundTrip:
    def test_load_recovers_every_settled_outcome(self, tmp_path):
        path = _write_run(str(tmp_path / "run.jsonl"))
        state = JournalState.load(path)
        assert state.n_selected == 3
        assert state.completed == {10: {"job_id": 10, "categories": ["a"]}}
        assert set(state.quarantined) == {11}
        assert state.quarantined[11]["error_type"] == "TaskTimeout"
        assert state.n_malformed == 0

    def test_plain_exception_failures_are_rerun_on_resume(self, tmp_path):
        path = _write_run(str(tmp_path / "run.jsonl"))
        state = JournalState.load(path)
        # EXCEPTION failures are not settled: resume re-attempts them
        assert not state.is_settled(12)
        assert state.is_settled(10) and state.is_settled(11)
        assert [f["job_id"] for f in state.transient_failures] == [12]

    def test_append_mode_extends_existing_journal(self, tmp_path):
        path = _write_run(str(tmp_path / "run.jsonl"))
        with JournalWriter(path, append=True) as journal:
            journal.record_result(12, {"job_id": 12})
        state = JournalState.load(path)
        assert set(state.completed) == {10, 12}

    def test_writer_refuses_after_close(self, tmp_path):
        journal = JournalWriter(str(tmp_path / "run.jsonl"))
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.record_result(1, {})


class TestCrashTolerance:
    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = _write_run(str(tmp_path / "run.jsonl"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "result", "job_id": 99, "resu')  # kill -9
        state = JournalState.load(path)
        assert 99 not in state.completed
        assert state.n_malformed == 1

    def test_unknown_record_kinds_count_as_malformed(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "mystery"}\n[1, 2]\n')
        state = JournalState.load(path)
        assert state.n_malformed == 2

    def test_version_mismatch_refuses_to_load(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "header", "version": 999}) + "\n")
        with pytest.raises(ValueError, match="version"):
            JournalState.load(path)

    def test_headerless_journal_loads_with_unknown_selection(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "result", "job_id": 5, "result": {}}\n')
        state = JournalState.load(path)
        assert state.n_selected is None
        assert 5 in state.completed


class TestQuarantineManifest:
    def test_manifest_written_next_to_journal(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        entries = [
            {"job_id": 7, "failure_kind": "poison", "trace_key": "b.mosd"},
            {"job_id": 3, "failure_kind": "timeout", "trace_key": "a.mosd"},
        ]
        path = write_quarantine_manifest(journal, entries)
        assert path == journal + ".quarantine.json"
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["version"] == JOURNAL_VERSION
        assert payload["n_quarantined"] == 2
        # sorted by job_id: the operator's worklist is stable
        assert [e["job_id"] for e in payload["quarantined"]] == [3, 7]

    def test_empty_manifest_still_written(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        path = write_quarantine_manifest(journal, [])
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["n_quarantined"] == 0
