"""Unit tests for the failure taxonomy, retry policy, and backoff."""

import pytest

from repro.parallel.retry import (
    TRANSIENT_ERROR_TYPES,
    FailureKind,
    RetryPolicy,
    backoff_delay,
    is_transient,
)


class TestFailureKind:
    def test_taxonomy_members(self):
        assert {k.value for k in FailureKind} == {
            "exception",
            "timeout",
            "crash",
            "poison",
        }

    def test_round_trips_through_value(self):
        for kind in FailureKind:
            assert FailureKind(kind.value) is kind


class TestIsTransient:
    @pytest.mark.parametrize(
        "name", ["OSError", "TimeoutError", "BrokenPipeError", "TraceFormatError", "TraceReadError"]
    )
    def test_transient_classes(self, name):
        assert is_transient(name)

    @pytest.mark.parametrize(
        "name", ["ValueError", "KeyError", "TraceUnavailableError", "RuntimeError", ""]
    )
    def test_permanent_classes(self, name):
        assert not is_transient(name)

    def test_module_qualified_names_match_on_terminal(self):
        assert is_transient("repro.darshan.errors.TraceFormatError")
        assert not is_transient("repro.darshan.errors.TraceUnavailableError")

    def test_table_is_names_not_classes(self):
        assert all(isinstance(t, str) for t in TRANSIENT_ERROR_TYPES)


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        pol = RetryPolicy()
        assert pol.max_retries == 2
        assert pol.deadline_s is None  # 0 disables

    def test_deadline_property(self):
        assert RetryPolicy(task_timeout_s=7.5).deadline_s == 7.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout_s": -1.0},
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_cap_s": 0.0},
            {"max_pool_rebuilds": -1},
            {"max_item_crashes": 0},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoffDelay:
    def test_deterministic_for_same_key_and_attempt(self):
        pol = RetryPolicy(backoff_base_s=0.1)
        assert backoff_delay(1, pol, key=42) == backoff_delay(1, pol, key=42)

    def test_jitter_varies_with_key(self):
        pol = RetryPolicy(backoff_base_s=0.1)
        delays = {backoff_delay(1, pol, key=k) for k in range(16)}
        assert len(delays) > 1

    def test_grows_exponentially_until_cap(self):
        pol = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=100.0)
        # jitter is in [0.5, 1.0), so attempt n+1's floor (0.5 * 2x)
        # equals attempt n's ceiling: growth holds per-key
        d1 = backoff_delay(1, pol, key=7)
        d3 = backoff_delay(3, pol, key=7)
        assert d3 > d1

    def test_cap_bounds_delay(self):
        pol = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=2.0)
        assert backoff_delay(10, pol, key=0) <= 2.0

    def test_zero_base_disables_sleep(self):
        pol = RetryPolicy(backoff_base_s=0.0)
        assert backoff_delay(1, pol, key=0) == 0.0

    def test_jitter_keeps_half_to_full_band(self):
        pol = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=64.0)
        for key in range(32):
            d = backoff_delay(1, pol, key=key)
            assert 0.5 <= d < 1.0
