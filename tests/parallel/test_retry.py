"""Unit tests for the failure taxonomy, retry policy, and backoff."""

import pytest

from repro.darshan.errors import TraceReadError
from repro.parallel.executor import ParallelConfig, TaskFailure
from repro.parallel.resilient import resilient_imap
from repro.parallel.retry import (
    TRANSIENT_BUILTIN_TYPES,
    TRANSIENT_ERROR_TYPES,
    TRANSIENT_QUALIFIED_TYPES,
    FailureKind,
    RetryPolicy,
    backoff_delay,
    is_transient,
)


class TestFailureKind:
    def test_taxonomy_members(self):
        assert {k.value for k in FailureKind} == {
            "exception",
            "timeout",
            "crash",
            "poison",
        }

    def test_round_trips_through_value(self):
        for kind in FailureKind:
            assert FailureKind(kind.value) is kind


class TestIsTransient:
    @pytest.mark.parametrize(
        "name",
        ["OSError", "TimeoutError", "BrokenPipeError", "builtins.OSError"],
    )
    def test_transient_builtins_match_bare(self, name):
        assert is_transient(name)

    @pytest.mark.parametrize(
        "name",
        [
            "repro.darshan.errors.TraceFormatError",
            "repro.darshan.errors.TraceReadError",
        ],
    )
    def test_repro_internals_match_by_qualified_name(self, name):
        assert is_transient(name)

    @pytest.mark.parametrize(
        "name",
        ["ValueError", "KeyError", "TraceUnavailableError", "RuntimeError", ""],
    )
    def test_permanent_classes(self, name):
        assert not is_transient(name)

    def test_qualified_names_do_not_suffix_match(self):
        assert not is_transient("repro.darshan.errors.TraceUnavailableError")

    @pytest.mark.parametrize(
        "name",
        [
            # a third-party class shadowing a transient builtin name
            "somepkg.errors.ConnectionError",
            "somepkg.errors.OSError",
            # a third-party class shadowing a repro-internal name
            "somepkg.errors.TraceReadError",
            # bare repro-internal names are untrusted: only the
            # module-qualified spelling proves it is *our* class
            "TraceFormatError",
            "TraceReadError",
        ],
    )
    def test_shadowed_names_are_not_transient(self, name):
        assert not is_transient(name)

    def test_table_is_names_not_classes(self):
        assert all(isinstance(t, str) for t in TRANSIENT_ERROR_TYPES)

    def test_table_is_the_union_of_the_two_match_sets(self):
        assert (
            TRANSIENT_ERROR_TYPES
            == TRANSIENT_BUILTIN_TYPES | TRANSIENT_QUALIFIED_TYPES
        )


class _ShadowTraceReadError(Exception):
    """A class merely *named* like the transient repro error."""


_ShadowTraceReadError.__name__ = "TraceReadError"
_ShadowTraceReadError.__qualname__ = "TraceReadError"


_CALLS: dict[str, int] = {}


def _raise_shadow(item):
    _CALLS["shadow"] = _CALLS.get("shadow", 0) + 1
    raise _ShadowTraceReadError("pretends to be transient")


def _raise_genuine(item):
    _CALLS["genuine"] = _CALLS.get("genuine", 0) + 1
    raise TraceReadError("environmental hiccup")


class TestShadowedNameRetryBehaviour:
    """End-to-end: the executor classifies on the qualified name."""

    def _run_one(self, fn):
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.0)
        pairs = list(
            resilient_imap(
                fn, [object()], ParallelConfig(max_workers=0), policy=policy
            )
        )
        assert len(pairs) == 1
        failure = pairs[0][1]
        assert isinstance(failure, TaskFailure)
        return failure

    def test_shadowed_class_fails_immediately(self):
        _CALLS.clear()
        failure = self._run_one(_raise_shadow)
        assert failure.error_type == "TraceReadError"
        assert failure.qualname.endswith(".TraceReadError")
        assert "." in failure.qualname  # module-qualified, not bare
        assert _CALLS["shadow"] == 1  # never retried
        assert failure.attempts == 1

    def test_genuine_class_is_retried(self):
        _CALLS.clear()
        failure = self._run_one(_raise_genuine)
        assert failure.qualname == "repro.darshan.errors.TraceReadError"
        assert _CALLS["genuine"] == 3  # initial + max_retries
        assert failure.attempts == 3


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        pol = RetryPolicy()
        assert pol.max_retries == 2
        assert pol.deadline_s is None  # 0 disables

    def test_deadline_property(self):
        assert RetryPolicy(task_timeout_s=7.5).deadline_s == 7.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout_s": -1.0},
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_cap_s": 0.0},
            {"max_pool_rebuilds": -1},
            {"max_item_crashes": 0},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoffDelay:
    def test_deterministic_for_same_key_and_attempt(self):
        pol = RetryPolicy(backoff_base_s=0.1)
        assert backoff_delay(1, pol, key=42) == backoff_delay(1, pol, key=42)

    def test_jitter_varies_with_key(self):
        pol = RetryPolicy(backoff_base_s=0.1)
        delays = {backoff_delay(1, pol, key=k) for k in range(16)}
        assert len(delays) > 1

    def test_grows_exponentially_until_cap(self):
        pol = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=100.0)
        # jitter is in [0.5, 1.0), so attempt n+1's floor (0.5 * 2x)
        # equals attempt n's ceiling: growth holds per-key
        d1 = backoff_delay(1, pol, key=7)
        d3 = backoff_delay(3, pol, key=7)
        assert d3 > d1

    def test_cap_bounds_delay(self):
        pol = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=2.0)
        assert backoff_delay(10, pol, key=0) <= 2.0

    def test_zero_base_disables_sleep(self):
        pol = RetryPolicy(backoff_base_s=0.0)
        assert backoff_delay(1, pol, key=0) == 0.0

    def test_jitter_keeps_half_to_full_band(self):
        pol = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=64.0)
        for key in range(32):
            d = backoff_delay(1, pol, key=key)
            assert 0.5 <= d < 1.0
