"""Unit tests for cost-aware scheduling helpers."""

import pytest

from repro.parallel import chunk_evenly, lpt_order


class TestLptOrder:
    def test_sorts_by_cost_descending(self):
        items = [3.0, 10.0, 1.0, 7.0]
        assert lpt_order(items, lambda x: x) == [1, 3, 0, 2]

    def test_stable_for_equal_costs(self):
        items = ["a", "b", "c"]
        assert lpt_order(items, lambda _: 1.0) == [0, 1, 2]

    def test_empty(self):
        assert lpt_order([], lambda x: x) == []


class TestChunkEvenly:
    def test_even_split(self):
        chunks = chunk_evenly(10, 2)
        assert [list(c) for c in chunks] == [list(range(5)), list(range(5, 10))]

    def test_remainder_spread_over_first_chunks(self):
        sizes = [len(c) for c in chunk_evenly(10, 3)]
        assert sizes == [4, 3, 3]

    def test_more_chunks_than_items(self):
        chunks = chunk_evenly(2, 5)
        assert sum(len(c) for c in chunks) == 2
        assert len(chunks) == 2

    def test_covers_everything_once(self):
        chunks = chunk_evenly(17, 4)
        seen = [i for c in chunks for i in c]
        assert seen == list(range(17))

    def test_zero_items(self):
        chunks = chunk_evenly(0, 3)
        assert sum(len(c) for c in chunks) == 0

    def test_invalid_chunks(self):
        with pytest.raises(ValueError):
            chunk_evenly(5, 0)
