"""Tests for the crash-surviving resilient streaming map.

Faults are injected with the deterministic chaos harness
(:mod:`repro.testing.faults`): explicit key sets pin each item's fate,
and marker files under ``state_dir`` let flaky items recover on retry
even when the retry lands in a fresh worker process.
"""

import pytest

from repro.parallel import (
    ParallelConfig,
    PoolRebuildLimit,
    TaskFailure,
    resilient_imap,
)
from repro.parallel.retry import FailureKind, RetryPolicy
from repro.testing import ChaosInjector


def square(x: int) -> int:
    return x * x


def always_value_error(x: int) -> int:
    raise ValueError(f"permanent failure for {x}")


SERIAL = ParallelConfig(max_workers=0)
POOLED = ParallelConfig(max_workers=2)

#: Fast backoff so retry tests don't sleep for real.
FAST = RetryPolicy(backoff_base_s=0.0)


def _drain(stream):
    results, failures = {}, {}
    for index, outcome in stream:
        if isinstance(outcome, TaskFailure):
            failures[index] = outcome
        else:
            results[index] = outcome
    return results, failures


class TestNoFaultEquivalence:
    @pytest.mark.parametrize("config", [SERIAL, POOLED], ids=["serial", "pooled"])
    def test_matches_plain_map(self, config):
        items = list(range(8))
        results, failures = _drain(
            resilient_imap(square, items, config, policy=FAST)
        )
        assert failures == {}
        assert results == {i: i * i for i in items}

    def test_empty_input(self):
        assert _drain(resilient_imap(square, [], SERIAL, policy=FAST)) == ({}, {})


class TestTransientRetry:
    @pytest.mark.parametrize("config", [SERIAL, POOLED], ids=["serial", "pooled"])
    def test_flaky_item_recovers_on_retry(self, config, tmp_path):
        fn = ChaosInjector(
            inner=square,
            flaky_keys=frozenset({"val:3"}),
            state_dir=str(tmp_path),
        )
        counts = {}
        results, failures = _drain(
            resilient_imap(
                fn,
                list(range(6)),
                config,
                policy=FAST,
                on_count=lambda k, v: counts.__setitem__(k, counts.get(k, 0) + v),
            )
        )
        assert failures == {}
        assert results == {i: i * i for i in range(6)}
        assert counts["n_retries"] == 1

    @pytest.mark.parametrize("config", [SERIAL, POOLED], ids=["serial", "pooled"])
    def test_persistent_transient_error_exhausts_budget(self, config):
        # empty state_dir -> the injected OSError never recovers
        fn = ChaosInjector(inner=square, flaky_keys=frozenset({"val:1"}))
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.0)
        results, failures = _drain(
            resilient_imap(fn, [0, 1, 2], config, policy=policy)
        )
        assert set(results) == {0, 2}
        assert set(failures) == {1}
        assert failures[1].kind is FailureKind.EXCEPTION
        assert failures[1].error_type == "OSError"
        assert failures[1].attempts == 3  # 1 try + 2 retries

    @pytest.mark.parametrize("config", [SERIAL, POOLED], ids=["serial", "pooled"])
    def test_permanent_errors_fail_without_retry(self, config):
        counts = {}
        results, failures = _drain(
            resilient_imap(
                always_value_error,
                [0, 1],
                config,
                policy=FAST,
                on_count=lambda k, v: counts.__setitem__(k, counts.get(k, 0) + v),
            )
        )
        assert results == {}
        assert set(failures) == {0, 1}
        assert all(f.error_type == "ValueError" for f in failures.values())
        assert all(f.attempts == 1 for f in failures.values())
        assert counts.get("n_retries", 0) == 0


class TestCrashSurvival:
    def test_crashing_item_is_poisoned_and_rest_complete(self):
        fn = ChaosInjector(inner=square, crash_keys=frozenset({"val:3"}))
        counts = {}
        results, failures = _drain(
            resilient_imap(
                fn,
                list(range(6)),
                POOLED,
                policy=FAST,
                on_count=lambda k, v: counts.__setitem__(k, counts.get(k, 0) + v),
            )
        )
        # every healthy item survives the crash of item 3's workers
        assert results == {i: i * i for i in range(6) if i != 3}
        assert set(failures) == {3}
        assert failures[3].kind is FailureKind.POISON
        assert counts["n_poisoned"] == 1
        assert counts["n_crash_events"] >= 1
        assert counts["n_pool_rebuilds"] >= 1

    def test_rebuild_limit_aborts_the_run(self):
        # every item crashes its worker: the pool can never stay up
        fn = ChaosInjector(inner=square, crash_rate=1.0)
        policy = RetryPolicy(backoff_base_s=0.0, max_pool_rebuilds=1)
        with pytest.raises(PoolRebuildLimit, match="rebuilt"):
            _drain(resilient_imap(fn, list(range(8)), POOLED, policy=policy))


class TestTimeouts:
    def test_hung_item_quarantined_others_complete(self):
        fn = ChaosInjector(
            inner=square, hang_keys=frozenset({"val:2"}), hang_seconds=60.0
        )
        policy = RetryPolicy(task_timeout_s=1.0, backoff_base_s=0.0)
        counts = {}
        results, failures = _drain(
            resilient_imap(
                fn,
                list(range(5)),
                POOLED,
                policy=policy,
                on_count=lambda k, v: counts.__setitem__(k, counts.get(k, 0) + v),
            )
        )
        assert results == {i: i * i for i in range(5) if i != 2}
        assert set(failures) == {2}
        assert failures[2].kind is FailureKind.TIMEOUT
        assert failures[2].error_type == "TaskTimeout"
        assert counts["n_timeouts"] == 1
        assert counts["n_pool_rebuilds"] >= 1

    def test_no_deadline_means_no_timeout_machinery(self):
        results, failures = _drain(
            resilient_imap(square, list(range(4)), POOLED, policy=FAST)
        )
        assert failures == {}
        assert len(results) == 4
