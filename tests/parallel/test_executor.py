"""Unit tests for the fault-isolated parallel map and streaming imap."""

import multiprocessing
import time

import pytest

from repro.parallel import (
    FailureKind,
    RetryPolicy,
    MapOutcome,
    ParallelConfig,
    TaskFailure,
    parallel_imap,
    parallel_map,
)


def square(x: int) -> int:
    return x * x


def fail_on_odd(x: int) -> int:
    if x % 2 == 1:
        raise ValueError(f"odd input {x}")
    return x


def none_on_even(x: int):
    return None if x % 2 == 0 else x


class PickleCountingFn:
    """Module-level picklable callable that counts parent-side pickling."""

    pickled = 0

    def __call__(self, x: int) -> int:
        return x + 1

    def __getstate__(self):
        type(self).pickled += 1
        return {}

    def __setstate__(self, state):
        pass


class TestSerialMode:
    def test_results_in_input_order(self):
        out = parallel_map(square, [3, 1, 2], ParallelConfig(max_workers=0))
        assert out.results == [9, 1, 4]
        assert out.n_ok == 3

    def test_failures_captured_not_raised(self):
        out = parallel_map(fail_on_odd, [0, 1, 2, 3], ParallelConfig(max_workers=0))
        assert out.results[0] == 0 and out.results[2] == 2
        assert isinstance(out.results[1], TaskFailure)
        assert isinstance(out.results[3], TaskFailure)
        assert [out.ok(i) for i in range(4)] == [True, False, True, False]
        assert [f.index for f in out.failures] == [1, 3]
        assert out.failures[0].error_type == "ValueError"
        assert "odd input 1" in out.failures[0].message

    def test_successful_filters_failures(self):
        out = parallel_map(fail_on_odd, [0, 1, 2], ParallelConfig(max_workers=0))
        assert out.successful() == [0, 2]

    def test_legitimate_none_results_survive(self):
        # regression: None used to double as the failure sentinel, so a
        # mapped fn returning None was dropped by successful()
        out = parallel_map(none_on_even, [0, 1, 2], ParallelConfig(max_workers=0))
        assert out.results == [None, 1, None]
        assert out.n_ok == 3
        assert out.successful() == [None, 1, None]

    def test_raise_if_failed(self):
        out = parallel_map(fail_on_odd, [1], ParallelConfig(max_workers=0))
        with pytest.raises(RuntimeError, match="1 task"):
            out.raise_if_failed()
        ok = parallel_map(square, [1], ParallelConfig(max_workers=0))
        ok.raise_if_failed()  # no exception

    def test_empty_input(self):
        out = parallel_map(square, [], ParallelConfig(max_workers=0))
        assert out.results == [] and out.failures == []

    def test_lpt_ordering_does_not_scramble_results(self):
        cfg = ParallelConfig(max_workers=0, cost=lambda x: x)
        out = parallel_map(square, [1, 5, 3], cfg)
        assert out.results == [1, 25, 9]

    def test_lambda_allowed_in_serial_mode(self):
        out = parallel_map(lambda x: x + 1, [1, 2], ParallelConfig(max_workers=0))
        assert out.results == [2, 3]


class TestProcessPool:
    def test_parallel_results_match_serial(self):
        items = list(range(30))
        par = parallel_map(square, items, ParallelConfig(max_workers=2, chunksize=4))
        ser = parallel_map(square, items, ParallelConfig(max_workers=0))
        assert par.results == ser.results

    def test_parallel_failures_isolated(self):
        out = parallel_map(fail_on_odd, list(range(10)), ParallelConfig(max_workers=2))
        assert out.n_ok == 5
        assert [f.index for f in out.failures] == [1, 3, 5, 7, 9]

    def test_traceback_captured(self):
        out = parallel_map(fail_on_odd, [1, 2], ParallelConfig(max_workers=2))
        assert "ValueError" in out.failures[0].traceback_text

    def test_fn_pickled_at_most_once_per_worker(self):
        # regression: fn used to travel inside every task tuple, so it
        # was re-pickled per submitted chunk; with the pool initializer
        # it ships once per worker process.
        fn = PickleCountingFn()
        PickleCountingFn.pickled = 0
        out = parallel_map(
            fn, list(range(64)), ParallelConfig(max_workers=2, chunksize=4)
        )
        assert out.n_ok == 64
        assert out.results == [x + 1 for x in range(64)]
        # <= workers (0 under the fork start method, where initargs are
        # inherited); the old per-task scheme pickled ~items/chunksize
        # times regardless of start method
        assert PickleCountingFn.pickled <= 2

    def test_none_results_survive_pool(self):
        out = parallel_map(none_on_even, [0, 1, 2, 3], ParallelConfig(max_workers=2))
        assert out.n_ok == 4
        assert out.successful() == [None, 1, None, 3]


class TestParallelImap:
    def test_serial_streams_in_order(self):
        pairs = list(parallel_imap(square, iter([3, 1, 2]), ParallelConfig(max_workers=0)))
        assert pairs == [(0, 9), (1, 1), (2, 4)]

    def test_serial_is_lazy(self):
        pulled = []

        def gen():
            for i in range(100):
                pulled.append(i)
                yield i

        stream = parallel_imap(square, gen(), ParallelConfig(max_workers=0))
        assert next(stream) == (0, 0)
        assert next(stream) == (1, 1)
        # only as many items drawn as results consumed (plus none ahead)
        assert len(pulled) == 2
        stream.close()

    def test_serial_failures_yield_taskfailure(self):
        pairs = list(parallel_imap(fail_on_odd, [0, 1, 2], ParallelConfig(max_workers=0)))
        assert pairs[0] == (0, 0) and pairs[2] == (2, 2)
        assert isinstance(pairs[1][1], TaskFailure)
        assert pairs[1][0] == 1

    def test_pool_results_complete_and_indexed(self):
        items = list(range(40))
        pairs = list(
            parallel_imap(square, iter(items), ParallelConfig(max_workers=2, chunksize=2))
        )
        assert sorted(i for i, _ in pairs) == items
        for i, r in pairs:
            assert r == i * i

    def test_pool_backpressure_bounds_draw_ahead(self):
        drawn = []

        def gen():
            for i in range(50):
                drawn.append(i)
                yield i

        cfg = ParallelConfig(max_workers=2, chunksize=2, max_pending=3)
        stream = parallel_imap(square, gen(), cfg)
        first = next(stream)
        assert first[1] == first[0] ** 2
        # window of 3 plus the one being refilled — never all 50
        assert len(drawn) <= 8
        stream.close()

    def test_pool_failures_isolated(self):
        pairs = list(
            parallel_imap(fail_on_odd, range(10), ParallelConfig(max_workers=2))
        )
        fails = [i for i, r in pairs if isinstance(r, TaskFailure)]
        assert sorted(fails) == [1, 3, 5, 7, 9]

    def test_empty_iterable(self):
        assert list(parallel_imap(square, [], ParallelConfig(max_workers=0))) == []
        assert list(parallel_imap(square, [], ParallelConfig(max_workers=2))) == []


class TestConfig:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(max_workers=-1).resolved_workers()

    def test_none_resolves_to_cpu_count(self):
        assert ParallelConfig(max_workers=None).resolved_workers() >= 1

    def test_bad_max_pending_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(max_workers=2, max_pending=0).resolved_pending()

    def test_default_pending_window(self):
        cfg = ParallelConfig(max_workers=3, chunksize=4)
        assert cfg.resolved_pending() == 12


class CustomError(Exception):
    pass


def fail_custom(x: int) -> int:
    raise CustomError(f"custom failure {x}")


def slow_square(x: int) -> int:
    time.sleep(0.2)
    return x * x


class TestFailureTaxonomy:
    def test_builtin_errors_keep_bare_qualname(self):
        out = parallel_map(fail_on_odd, [1], ParallelConfig(max_workers=0))
        failure = out.failures[0]
        assert failure.error_type == "ValueError"
        assert failure.qualname == "ValueError"
        assert failure.kind is FailureKind.EXCEPTION
        assert failure.attempts == 1

    def test_custom_errors_carry_module_qualified_name(self):
        out = parallel_map(fail_custom, [1], ParallelConfig(max_workers=0))
        failure = out.failures[0]
        assert failure.error_type == "CustomError"
        assert "." in failure.qualname
        assert failure.qualname.endswith(".CustomError")

    def test_str_includes_kind_and_attempts(self):
        failure = TaskFailure(
            index=3,
            error_type="OSError",
            message="disk gone",
            traceback_text="",
            kind=FailureKind.TIMEOUT,
            attempts=4,
        )
        text = str(failure)
        assert "[timeout]" in text and "after 4 attempts" in text

    def test_kind_counts_and_breakdown_message(self):
        failures = [
            TaskFailure(0, "A", "m", "", kind=FailureKind.CRASH),
            TaskFailure(1, "B", "m", "", kind=FailureKind.CRASH),
            TaskFailure(2, "C", "m", "", kind=FailureKind.TIMEOUT),
        ]
        out = MapOutcome(results=list(failures), failures=failures)
        assert out.kind_counts() == {FailureKind.TIMEOUT: 1, FailureKind.CRASH: 2}
        with pytest.raises(RuntimeError, match=r"1 TIMEOUT, 2 CRASH"):
            out.raise_if_failed()


class TestImapAbandonment:
    def test_breaking_midstream_leaves_no_orphaned_workers(self):
        # regression: abandoning the generator used to leave the pool
        # draining its whole pending window before shutdown
        before = {p.pid for p in multiprocessing.active_children()}
        stream = parallel_imap(
            slow_square, range(64), ParallelConfig(max_workers=2, max_pending=8)
        )
        for _index, _result in stream:
            break  # consumer walks away mid-stream
        stream.close()  # triggers the generator's finally
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            orphans = {
                p.pid for p in multiprocessing.active_children()
            } - before
            if not orphans:
                break
            time.sleep(0.05)
        assert not orphans, f"pool workers outlived the consumer: {orphans}"

    def test_full_consumption_still_shuts_down_cleanly(self):
        before = {p.pid for p in multiprocessing.active_children()}
        pairs = list(
            parallel_imap(square, range(6), ParallelConfig(max_workers=2))
        )
        assert len(pairs) == 6
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not ({p.pid for p in multiprocessing.active_children()} - before):
                return
            time.sleep(0.05)
        raise AssertionError("pool did not shut down after full consumption")


class TestResilienceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout_s": -1.0},
            {"max_retries": -1},
            {"backoff_base_s": -0.5},
            {"backoff_cap_s": -1.0},
            {"max_pool_rebuilds": -1},
            {"max_item_crashes": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ParallelConfig(**kwargs)

    def test_unset_fields_inherit_from_base_policy(self):
        base = RetryPolicy(task_timeout_s=60.0, max_retries=5)
        policy = ParallelConfig().retry_policy(base)
        assert policy == base

    def test_set_fields_override_base_policy(self):
        base = RetryPolicy(task_timeout_s=60.0, max_retries=5)
        cfg = ParallelConfig(task_timeout_s=2.0, max_item_crashes=4)
        policy = cfg.retry_policy(base)
        assert policy.task_timeout_s == 2.0
        assert policy.max_item_crashes == 4
        assert policy.max_retries == 5  # inherited

    def test_no_base_uses_policy_defaults(self):
        assert ParallelConfig().retry_policy() == RetryPolicy()
