"""Unit tests for the fault-isolated parallel map."""

import pytest

from repro.parallel import MapOutcome, ParallelConfig, parallel_map


def square(x: int) -> int:
    return x * x


def fail_on_odd(x: int) -> int:
    if x % 2 == 1:
        raise ValueError(f"odd input {x}")
    return x


class TestSerialMode:
    def test_results_in_input_order(self):
        out = parallel_map(square, [3, 1, 2], ParallelConfig(max_workers=0))
        assert out.results == [9, 1, 4]
        assert out.n_ok == 3

    def test_failures_captured_not_raised(self):
        out = parallel_map(fail_on_odd, [0, 1, 2, 3], ParallelConfig(max_workers=0))
        assert out.results == [0, None, 2, None]
        assert [f.index for f in out.failures] == [1, 3]
        assert out.failures[0].error_type == "ValueError"
        assert "odd input 1" in out.failures[0].message

    def test_successful_filters_failures(self):
        out = parallel_map(fail_on_odd, [0, 1, 2], ParallelConfig(max_workers=0))
        assert out.successful() == [0, 2]

    def test_raise_if_failed(self):
        out = parallel_map(fail_on_odd, [1], ParallelConfig(max_workers=0))
        with pytest.raises(RuntimeError, match="1 task"):
            out.raise_if_failed()
        ok = parallel_map(square, [1], ParallelConfig(max_workers=0))
        ok.raise_if_failed()  # no exception

    def test_empty_input(self):
        out = parallel_map(square, [], ParallelConfig(max_workers=0))
        assert out.results == [] and out.failures == []

    def test_lpt_ordering_does_not_scramble_results(self):
        cfg = ParallelConfig(max_workers=0, cost=lambda x: x)
        out = parallel_map(square, [1, 5, 3], cfg)
        assert out.results == [1, 25, 9]

    def test_lambda_allowed_in_serial_mode(self):
        out = parallel_map(lambda x: x + 1, [1, 2], ParallelConfig(max_workers=0))
        assert out.results == [2, 3]


class TestProcessPool:
    def test_parallel_results_match_serial(self):
        items = list(range(30))
        par = parallel_map(square, items, ParallelConfig(max_workers=2, chunksize=4))
        ser = parallel_map(square, items, ParallelConfig(max_workers=0))
        assert par.results == ser.results

    def test_parallel_failures_isolated(self):
        out = parallel_map(fail_on_odd, list(range(10)), ParallelConfig(max_workers=2))
        assert out.n_ok == 5
        assert [f.index for f in out.failures] == [1, 3, 5, 7, 9]

    def test_traceback_captured(self):
        out = parallel_map(fail_on_odd, [1], ParallelConfig(max_workers=2))
        assert "ValueError" in out.failures[0].traceback_text


class TestConfig:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(max_workers=-1).resolved_workers()

    def test_none_resolves_to_cpu_count(self):
        assert ParallelConfig(max_workers=None).resolved_workers() >= 1
