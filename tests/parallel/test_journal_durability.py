"""Crash-durability regressions for the run journal.

The journal is the resume contract: an outcome the writer reported as
settled must survive a power cut (the pre-seam writer buffered lines in
the stdlib file object — a cut could lose *every* settled outcome of
the run).  These tests pin the fsync-per-line fix and the torn-tail
tolerance it composes with.
"""

import json
import os

import pytest

from repro.io import scoped_io
from repro.parallel.journal import (
    JournalState,
    JournalWriter,
    write_quarantine_manifest,
)
from repro.testing import PowerCut, StorageChaos


def _entries(path):
    return [json.loads(l) for l in open(path) if l.strip()]


class TestSettledMeansDurable:
    def test_every_recorded_outcome_survives_a_power_cut(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        chaos = StorageChaos(tmp_path)
        with scoped_io(chaos):
            journal = JournalWriter(path)
            journal.write_header(n_selected=3)
            journal.record_result(10, {"job_id": 10, "categories": ["a"]})
            journal.record_failure(
                11,
                failure_kind="timeout",
                error_type="TaskTimeout",
                message="deadline",
                attempts=2,
            )
            # no close(): the cut arrives mid-run
        chaos.power_cut()
        state = JournalState.load(path)
        assert state.n_selected == 3
        assert state.completed == {10: {"job_id": 10, "categories": ["a"]}}
        assert set(state.quarantined) == {11}
        assert state.n_malformed == 0

    def test_lost_sync_regression_interval_zero_loses_the_tail(self, tmp_path):
        # sync_interval=0 is the old buffered behavior made explicit:
        # nothing is durable until close.  A cut mid-run loses the run —
        # which is why JournalWriter defaults to fsync-per-line.
        path = str(tmp_path / "run.jsonl")
        chaos = StorageChaos(tmp_path)
        with scoped_io(chaos):
            journal = JournalWriter(path, sync_interval=0)
            journal.write_header(n_selected=1)
            journal.record_result(10, {"job_id": 10})
        chaos.power_cut()
        # file creation itself was never fsynced: the journal vanishes
        assert not os.path.exists(path)

    def test_checkpoint_is_the_durability_boundary(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        chaos = StorageChaos(tmp_path)
        with scoped_io(chaos):
            journal = JournalWriter(path, sync_interval=0)
            journal.write_header(n_selected=2)
            journal.record_result(10, {"job_id": 10})
            journal.checkpoint()
            journal.record_result(11, {"job_id": 11})  # volatile tail
        chaos.power_cut()
        state = JournalState.load(path)
        assert set(state.completed) == {10}


class TestTornTail:
    def test_resume_after_torn_trailing_line(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JournalWriter(path) as journal:
            journal.write_header(n_selected=3)
            journal.record_result(10, {"job_id": 10})
        # tear the tail mid-line, as a cut between write and fsync would
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw + b'{"kind": "result", "job_id": 1')

        state = JournalState.load(path)
        assert set(state.completed) == {10}
        assert state.n_malformed == 1

        # resume appends after the torn fragment; the retried outcome
        # and the old settled ones all load
        with JournalWriter(path, append=True) as journal:
            journal.record_result(11, {"job_id": 11})
        state = JournalState.load(path)
        assert set(state.completed) == {10, 11}

    def test_resume_bytes_are_identical_to_an_uninterrupted_run(
        self, tmp_path
    ):
        # a run that dies after settling job 10 and resumes to settle 11
        # leaves the same settled lines as one that never died
        torn = str(tmp_path / "torn.jsonl")
        with JournalWriter(torn) as journal:
            journal.write_header(n_selected=2)
            journal.record_result(10, {"job_id": 10})
        with JournalWriter(torn, append=True) as journal:
            journal.record_result(11, {"job_id": 11})

        straight = str(tmp_path / "straight.jsonl")
        with JournalWriter(straight) as journal:
            journal.write_header(n_selected=2)
            journal.record_result(10, {"job_id": 10})
            journal.record_result(11, {"job_id": 11})

        assert _entries(torn) == _entries(straight)


class TestQuarantineManifest:
    def test_power_cut_mid_write_leaves_no_torn_manifest(self, tmp_path):
        jpath = str(tmp_path / "run.jsonl")
        chaos = StorageChaos(tmp_path, script={("fsync", 0): "power-cut"})
        with scoped_io(chaos):
            with pytest.raises(PowerCut):
                write_quarantine_manifest(jpath, [{"job_id": 1}])
        chaos.power_cut()
        assert not os.path.exists(jpath + ".quarantine.json")

    def test_manifest_replaces_previous_run_atomically(self, tmp_path):
        jpath = str(tmp_path / "run.jsonl")
        old = write_quarantine_manifest(jpath, [{"job_id": 1}])
        chaos = StorageChaos(tmp_path, script={("fsync_dir", 0): "power-cut"})
        with scoped_io(chaos):
            with pytest.raises(PowerCut):
                write_quarantine_manifest(jpath, [{"job_id": 2}])
        chaos.power_cut()
        payload = json.loads(open(old).read())
        assert [e["job_id"] for e in payload["quarantined"]] == [1]
