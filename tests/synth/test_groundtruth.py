"""Unit tests for ground-truth labels and matching."""


from repro.core import CategorizationResult, Category
from repro.synth import GroundTruth, mismatch_axes, trace_matches


def result_with(categories):
    return CategorizationResult(
        job_id=1, uid=1, exe="a", nprocs=4, run_time=100.0,
        categories=frozenset(categories),
    )


RCW = GroundTruth(
    read_temporality=Category.READ_ON_START,
    write_temporality=Category.WRITE_ON_END,
)


class TestMatching:
    def test_exact_match(self):
        res = result_with({Category.READ_ON_START, Category.WRITE_ON_END})
        assert trace_matches(res, RCW)
        assert mismatch_axes(res, RCW) == []

    def test_wrong_read_temporality(self):
        res = result_with({Category.READ_AFTER_START, Category.WRITE_ON_END})
        assert mismatch_axes(res, RCW) == ["read_temporality"]

    def test_missing_periodicity_detected(self):
        truth = GroundTruth(
            read_temporality=Category.READ_INSIGNIFICANT,
            write_temporality=Category.WRITE_STEADY,
            periodic_write=True,
        )
        res = result_with({Category.READ_INSIGNIFICANT, Category.WRITE_STEADY})
        assert mismatch_axes(res, truth) == ["periodic_write"]

    def test_spurious_periodicity_detected(self):
        res = result_with(
            {Category.READ_ON_START, Category.WRITE_ON_END, Category.PERIODIC_WRITE}
        )
        assert mismatch_axes(res, RCW) == ["periodic_write"]

    def test_extra_metadata_labels_do_not_fail_matching(self):
        res = result_with(
            {Category.READ_ON_START, Category.WRITE_ON_END, Category.METADATA_HIGH_SPIKE}
        )
        assert trace_matches(res, RCW)

    def test_hidden_periodic_expects_steady_not_periodic(self):
        truth = GroundTruth(
            read_temporality=Category.READ_INSIGNIFICANT,
            write_temporality=Category.WRITE_STEADY,
            hidden_periodic=True,
        )
        res = result_with({Category.READ_INSIGNIFICANT, Category.WRITE_STEADY})
        assert trace_matches(res, truth)


class TestExpectedCategories:
    def test_periodic_truth_expands_labels(self):
        truth = GroundTruth(
            read_temporality=Category.READ_STEADY,
            write_temporality=Category.WRITE_STEADY,
            periodic_write=True,
            period_magnitudes=frozenset({Category.PERIODIC_MINUTE}),
            busy_label=Category.PERIODIC_LOW_BUSY_TIME,
        )
        cats = truth.expected_categories()
        assert Category.PERIODIC in cats
        assert Category.PERIODIC_WRITE in cats
        assert Category.PERIODIC_MINUTE in cats
        assert Category.PERIODIC_LOW_BUSY_TIME in cats
        assert Category.PERIODIC_READ not in cats

    def test_dict_roundtrip(self):
        truth = GroundTruth(
            read_temporality=Category.READ_ON_START,
            write_temporality=Category.WRITE_STEADY,
            periodic_write=True,
            period_magnitudes=frozenset({Category.PERIODIC_HOUR}),
            busy_label=Category.PERIODIC_LOW_BUSY_TIME,
            metadata=frozenset({Category.METADATA_HIGH_SPIKE}),
            hidden_periodic=False,
            tags=("x", "y"),
        )
        assert GroundTruth.from_dict(truth.to_dict()) == truth
