"""Unit tests for the synthetic phase building blocks."""

import numpy as np
import pytest

from repro.synth import (
    BurstPhase,
    KeptOpenPhase,
    MetadataBurstPhase,
    MetadataLoadPhase,
    PeriodicPhase,
    PhaseContext,
)


@pytest.fixture
def ctx():
    return PhaseContext(
        rng=np.random.default_rng(0),
        run_time=10000.0,
        nprocs=16,
        volume_scale=1.0,
    )


class TestBurstPhase:
    def test_one_record_per_rank(self, ctx):
        phase = BurstPhase(direction="read", position=0.5, volume=800.0, duration=10.0, n_ranks=4)
        recs = phase.emit(ctx)
        assert len(recs) == 4
        assert {r.rank for r in recs} == {0, 1, 2, 3}
        assert sum(r.bytes_read for r in recs) == pytest.approx(800.0, abs=4)

    def test_ranks_capped_at_nprocs(self, ctx):
        ctx.nprocs = 2
        recs = BurstPhase("write", 0.5, 100.0, 5.0, n_ranks=64).emit(ctx)
        assert len(recs) == 2

    def test_desync_shifts_windows(self, ctx):
        phase = BurstPhase("write", 0.5, 100.0, 10.0, n_ranks=8, desync=20.0)
        recs = phase.emit(ctx)
        starts = {r.write_start for r in recs}
        assert len(starts) > 1  # jitter applied

    def test_windows_clipped_to_runtime(self, ctx):
        recs = BurstPhase("read", 0.999, 100.0, 100.0, n_ranks=2).emit(ctx)
        for r in recs:
            assert 0.0 <= r.read_start <= ctx.run_time
            assert r.read_end <= ctx.run_time

    def test_volume_scale_applied(self, ctx):
        ctx.volume_scale = 2.0
        recs = BurstPhase("read", 0.5, 100.0, 5.0, n_ranks=1).emit(ctx)
        assert recs[0].bytes_read == 200

    def test_metadata_counters_set(self, ctx):
        recs = BurstPhase("read", 0.5, 100.0, 5.0, n_ranks=1, opens_per_rank=3).emit(ctx)
        assert recs[0].opens == 3
        assert recs[0].metadata_ops == 9  # opens + closes + seeks


class TestKeptOpenPhase:
    def test_single_wide_window(self, ctx):
        recs = KeptOpenPhase(direction="write", volume=1000.0, start=0.1, end=0.9).emit(ctx)
        assert len(recs) == 1
        r = recs[0]
        assert r.write_start == pytest.approx(1000.0)
        assert r.write_end == pytest.approx(9000.0)
        assert r.opens == 1

    def test_flattens_any_internal_structure(self, ctx):
        # the whole point: one record, no per-event information
        recs = KeptOpenPhase(direction="write", volume=1000.0).emit(ctx)
        assert recs[0].writes >= 1
        assert len(recs) == 1


class TestPeriodicPhase:
    def test_events_cover_phase_window(self, ctx):
        phase = PeriodicPhase("write", period=500.0, event_volume=100.0,
                              event_duration=10.0, n_ranks=1, jitter=0.0)
        recs = phase.emit(ctx)
        assert len(recs) == 19  # floor(0.96*10000 / 500)
        starts = sorted(r.write_start for r in recs)
        # spread across the window, including the final quarter
        assert starts[-1] > 0.75 * ctx.run_time

    def test_event_spacing_close_to_period(self, ctx):
        phase = PeriodicPhase("write", period=500.0, event_volume=100.0,
                              event_duration=10.0, n_ranks=1, jitter=0.0)
        starts = np.array(sorted(r.write_start for r in phase.emit(ctx)))
        spacing = np.diff(starts)
        assert np.allclose(spacing, spacing.mean(), rtol=0.05)
        assert spacing.mean() >= 500.0

    def test_no_events_when_period_exceeds_window(self, ctx):
        phase = PeriodicPhase("write", period=50000.0, event_volume=1.0, event_duration=1.0)
        assert phase.emit(ctx) == []

    def test_per_rank_records(self, ctx):
        phase = PeriodicPhase("read", period=2000.0, event_volume=100.0,
                              event_duration=5.0, n_ranks=4)
        recs = phase.emit(ctx)
        assert len(recs) % 4 == 0
        assert {r.rank for r in recs} == {0, 1, 2, 3}


class TestMetadataPhases:
    def test_burst_total_requests(self, ctx):
        recs = MetadataBurstPhase(position=0.5, n_requests=600, duration=1.0).emit(ctx)
        assert len(recs) == 1
        assert recs[0].metadata_ops == 600

    def test_load_rate_scales_with_span(self, ctx):
        recs = MetadataLoadPhase(rate=60.0, start=0.0, end=1.0).emit(ctx)
        assert recs[0].metadata_ops == pytest.approx(60.0 * ctx.run_time, rel=0.01)

    def test_load_empty_for_zero_span(self, ctx):
        assert MetadataLoadPhase(rate=60.0, start=0.5, end=0.5).emit(ctx) == []


class TestPhaseContext:
    def test_file_ids_unique(self, ctx):
        ids = [ctx.new_file_id() for _ in range(100)]
        assert len(set(ids)) == 100
