"""Unit tests for corruption injection."""

import numpy as np
import pytest

from repro.darshan import is_valid, validate_trace
from repro.synth import CORRUPTION_KINDS, corrupt_trace

from tests.conftest import make_record, make_trace


@pytest.fixture
def clean_trace():
    return make_trace(
        [
            make_record(1, 0, read=(0.0, 100.0, 500_000_000)),
            make_record(2, 1, write=(500.0, 600.0, 200_000_000)),
        ]
    )


class TestCorruptTrace:
    @pytest.mark.parametrize("kind", sorted(CORRUPTION_KINDS))
    def test_every_kind_invalidates(self, clean_trace, kind):
        rng = np.random.default_rng(0)
        bad = corrupt_trace(clean_trace, rng, kind)
        assert not is_valid(bad)

    def test_original_untouched(self, clean_trace):
        rng = np.random.default_rng(1)
        corrupt_trace(clean_trace, rng)
        assert is_valid(clean_trace)

    def test_random_kind_always_invalidates(self, clean_trace):
        rng = np.random.default_rng(2)
        for _ in range(30):
            assert not is_valid(corrupt_trace(clean_trace, rng))

    def test_unknown_kind_rejected(self, clean_trace):
        with pytest.raises(ValueError):
            corrupt_trace(clean_trace, np.random.default_rng(0), "nope")

    def test_recordless_trace_falls_back_to_runtime_corruption(self):
        rng = np.random.default_rng(3)
        bad = corrupt_trace(make_trace([]), rng, "inverted_window")
        assert not is_valid(bad)

    def test_dealloc_kind_produces_paper_violation(self, clean_trace):
        from repro.darshan import Violation

        rng = np.random.default_rng(4)
        bad = corrupt_trace(clean_trace, rng, "dealloc_before_end")
        cats = validate_trace(bad).categories()
        assert Violation.DEALLOC_BEFORE_END in cats
