"""Unit tests for corruption injection."""

import numpy as np
import pytest

from repro.darshan import is_valid, validate_trace
from repro.synth import CORRUPTION_KINDS, corrupt_trace

from tests.conftest import make_record, make_trace


@pytest.fixture
def clean_trace():
    return make_trace(
        [
            make_record(1, 0, read=(0.0, 100.0, 500_000_000)),
            make_record(2, 1, write=(500.0, 600.0, 200_000_000)),
        ]
    )


class TestCorruptTrace:
    @pytest.mark.parametrize("kind", sorted(CORRUPTION_KINDS))
    def test_every_kind_invalidates(self, clean_trace, kind):
        rng = np.random.default_rng(0)
        bad = corrupt_trace(clean_trace, rng, kind)
        assert not is_valid(bad)

    def test_original_untouched(self, clean_trace):
        rng = np.random.default_rng(1)
        corrupt_trace(clean_trace, rng)
        assert is_valid(clean_trace)

    def test_random_kind_always_invalidates(self, clean_trace):
        rng = np.random.default_rng(2)
        for _ in range(30):
            assert not is_valid(corrupt_trace(clean_trace, rng))

    def test_unknown_kind_rejected(self, clean_trace):
        with pytest.raises(ValueError):
            corrupt_trace(clean_trace, np.random.default_rng(0), "nope")

    def test_recordless_trace_falls_back_to_runtime_corruption(self):
        rng = np.random.default_rng(3)
        bad = corrupt_trace(make_trace([]), rng, "inverted_window")
        assert not is_valid(bad)

    def test_dealloc_kind_produces_paper_violation(self, clean_trace):
        from repro.darshan import Violation

        rng = np.random.default_rng(4)
        bad = corrupt_trace(clean_trace, rng, "dealloc_before_end")
        cats = validate_trace(bad).categories()
        assert Violation.DEALLOC_BEFORE_END in cats


class TestAdversarialPayload:
    @pytest.fixture
    def payload(self, clean_trace):
        from repro.darshan import dumps_binary

        return dumps_binary(clean_trace)

    @pytest.mark.parametrize("kind", ["truncate", "length_lie", "depth_bomb"])
    def test_structural_damage_is_rejected(self, payload, kind):
        from repro.darshan.errors import TraceFormatError
        from repro.darshan.io_binary import loads_binary
        from repro.synth import adversarial_payload

        rng = np.random.default_rng(0)
        with pytest.raises(TraceFormatError):
            loads_binary(adversarial_payload(payload, rng, kind))

    def test_bit_rot_never_crashes_the_reader(self, payload):
        from repro.darshan.errors import TraceFormatError
        from repro.darshan.io_binary import loads_binary
        from repro.synth import adversarial_payload

        rng = np.random.default_rng(1)
        for _ in range(50):
            bad = adversarial_payload(payload, rng, "bit_rot")
            try:
                loads_binary(bad)
            except TraceFormatError:
                pass  # clean refusal is the expected outcome

    def test_length_lie_targets_the_count_header(self, payload):
        from repro.synth import adversarial_payload

        rng = np.random.default_rng(2)
        bad = adversarial_payload(payload, rng, "length_lie")
        assert len(bad) == len(payload)  # in-place overwrite, no growth

    def test_unknown_kind_rejected(self, payload):
        from repro.synth import adversarial_payload

        with pytest.raises(ValueError):
            adversarial_payload(payload, np.random.default_rng(0), "nope")

    def test_random_kind_is_deterministic(self, payload):
        from repro.synth import adversarial_payload

        a = adversarial_payload(payload, np.random.default_rng(3))
        b = adversarial_payload(payload, np.random.default_rng(3))
        assert a == b


class TestFloodTrace:
    def test_flood_is_valid_and_bigger(self, clean_trace):
        from repro.synth import flood_trace

        rng = np.random.default_rng(0)
        big = flood_trace(clean_trace, rng, factor=8)
        assert is_valid(big)
        assert len(big.records) == 8 * len(clean_trace.records)

    def test_totals_preserved_exactly(self, clean_trace):
        from repro.synth import flood_trace

        rng = np.random.default_rng(1)
        big = flood_trace(clean_trace, rng, factor=16)
        for attr in ("bytes_read", "bytes_written", "opens", "reads", "writes"):
            assert sum(getattr(r, attr) for r in big.records) == sum(
                getattr(r, attr) for r in clean_trace.records
            )

    def test_original_untouched(self, clean_trace):
        from repro.synth import flood_trace

        before = len(clean_trace.records)
        flood_trace(clean_trace, np.random.default_rng(2), factor=4)
        assert len(clean_trace.records) == before

    def test_file_ids_stay_unique(self, clean_trace):
        from repro.synth import flood_trace

        big = flood_trace(clean_trace, np.random.default_rng(3), factor=8)
        ids = [r.file_id for r in big.records]
        assert len(ids) == len(set(ids))

    def test_small_factor_rejected(self, clean_trace):
        from repro.synth import flood_trace

        with pytest.raises(ValueError):
            flood_trace(clean_trace, np.random.default_rng(0), factor=1)
