"""Unit tests for the application model and run generation."""

import numpy as np
import pytest

from repro.core import Category
from repro.darshan import is_valid
from repro.synth import AppSpec, BurstPhase, GroundTruth, generate_run


def spec(deviant_prob=0.0, runtime=(1000.0, 2000.0)):
    return AppSpec(
        name="t",
        cohort="test",
        uid=7,
        exe="t.exe",
        nprocs=8,
        runtime_lo=runtime[0],
        runtime_hi=runtime[1],
        phases=(BurstPhase("read", 0.05, 500e6, 20.0, n_ranks=4),),
        truth=GroundTruth(
            read_temporality=Category.READ_ON_START,
            write_temporality=Category.WRITE_INSIGNIFICANT,
        ),
        deviant_prob=deviant_prob,
    )


class TestGenerateRun:
    def test_trace_is_valid(self):
        rng = np.random.default_rng(0)
        trace = generate_run(spec(), 1, rng)
        assert is_valid(trace)

    def test_runtime_within_range(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            trace = generate_run(spec(), 1, rng)
            assert 1000.0 <= trace.meta.run_time <= 2000.0

    def test_identity_propagated(self):
        rng = np.random.default_rng(2)
        trace = generate_run(spec(), 42, rng)
        assert trace.meta.job_id == 42
        assert trace.meta.uid == 7
        assert trace.meta.exe == "t.exe"
        assert trace.meta.nprocs == 8

    def test_runs_vary(self):
        rng = np.random.default_rng(3)
        a = generate_run(spec(), 1, rng)
        b = generate_run(spec(), 2, rng)
        assert a.meta.run_time != b.meta.run_time
        assert a.total_bytes_read != b.total_bytes_read

    def test_deviant_runs_shrink(self):
        rng = np.random.default_rng(4)
        full = generate_run(spec(deviant_prob=0.0), 1, rng)
        rng = np.random.default_rng(4)
        deviant = generate_run(spec(deviant_prob=1.0), 1, rng)
        assert deviant.meta.run_time < full.meta.run_time
        assert deviant.total_bytes_read < full.total_bytes_read / 100

    def test_force_nominal_disables_deviance(self):
        rng = np.random.default_rng(5)
        trace = generate_run(spec(deviant_prob=1.0), 1, rng, force_nominal=True)
        assert trace.total_bytes_read > 100e6

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AppSpec(
                name="x", cohort="c", uid=1, exe="x", nprocs=0,
                runtime_lo=1.0, runtime_hi=2.0, phases=(),
                truth=GroundTruth(
                    read_temporality=Category.READ_INSIGNIFICANT,
                    write_temporality=Category.WRITE_INSIGNIFICANT,
                ),
            )
        with pytest.raises(ValueError):
            AppSpec(
                name="x", cohort="c", uid=1, exe="x", nprocs=1,
                runtime_lo=10.0, runtime_hi=5.0, phases=(),
                truth=GroundTruth(
                    read_temporality=Category.READ_INSIGNIFICANT,
                    write_temporality=Category.WRITE_INSIGNIFICANT,
                ),
            )
