"""Unit tests for fleet generation."""

import pytest

from repro.darshan import is_valid
from repro.synth import FleetConfig, apportion, generate_fleet


class TestApportion:
    def test_sums_to_total(self):
        assert sum(apportion([50.0, 30.0, 20.0], 10)) == 10

    def test_proportions_respected(self):
        counts = apportion([80.0, 20.0], 100)
        assert counts == [80, 20]

    def test_positive_shares_get_at_least_one(self):
        counts = apportion([99.0, 0.5, 0.5], 10)
        assert all(c >= 1 for c in counts)
        assert sum(counts) == 10

    def test_zero_share_gets_zero(self):
        counts = apportion([100.0, 0.0], 5)
        assert counts == [5, 0]

    def test_too_few_items_rejected(self):
        with pytest.raises(ValueError):
            apportion([1.0, 1.0, 1.0], 2)

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            apportion([1.0, -1.0], 10)


class TestGenerateFleet:
    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_fleet(FleetConfig(n_apps=80, mean_runs=8.0, seed=5))

    def test_counts_consistent(self, fleet):
        assert fleet.n_input == fleet.n_valid + fleet.n_corrupted
        assert len(fleet.traces) == fleet.n_input

    def test_corruption_fraction_matches_config(self, fleet):
        assert fleet.n_corrupted / fleet.n_input == pytest.approx(0.32, abs=0.02)

    def test_valid_traces_have_truth(self, fleet):
        valid_ids = {t.meta.job_id for t in fleet.traces if is_valid(t)}
        # every valid trace has a ground-truth entry
        assert valid_ids <= set(fleet.truth)

    def test_corrupted_traces_have_no_truth(self, fleet):
        for trace in fleet.traces:
            if trace.meta.job_id not in fleet.truth:
                assert not is_valid(trace)

    def test_job_ids_unique(self, fleet):
        ids = [t.meta.job_id for t in fleet.traces]
        assert len(set(ids)) == len(ids)

    def test_manifest_covers_all_cohorts_at_scale(self, fleet):
        assert len(fleet.manifest) == 18
        total_apps = sum(a for a, _ in fleet.manifest.values())
        assert total_apps == 80

    def test_run_counts_sum_to_valid(self, fleet):
        total_runs = sum(r for _, r in fleet.manifest.values())
        assert total_runs == fleet.n_valid

    def test_deterministic_given_seed(self):
        a = generate_fleet(FleetConfig(n_apps=30, mean_runs=4.0, seed=11))
        b = generate_fleet(FleetConfig(n_apps=30, mean_runs=4.0, seed=11))
        assert [t.meta.job_id for t in a.traces] == [t.meta.job_id for t in b.traces]
        assert a.traces[0].meta.run_time == b.traces[0].meta.run_time

    def test_seed_changes_corpus(self):
        a = generate_fleet(FleetConfig(n_apps=30, mean_runs=4.0, seed=11))
        b = generate_fleet(FleetConfig(n_apps=30, mean_runs=4.0, seed=12))
        assert a.traces[0].meta.run_time != b.traces[0].meta.run_time

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n_apps=0)
        with pytest.raises(ValueError):
            FleetConfig(mean_runs=0.5)
        with pytest.raises(ValueError):
            FleetConfig(corruption_fraction=1.0)

    def test_zero_corruption(self):
        fleet = generate_fleet(FleetConfig(n_apps=25, mean_runs=2.0, seed=1,
                                           corruption_fraction=0.0))
        assert fleet.n_corrupted == 0
        assert all(is_valid(t) for t in fleet.traces)


class TestFloodedFleet:
    @pytest.fixture(scope="class")
    def flooded_fleet(self):
        return generate_fleet(
            FleetConfig(n_apps=20, mean_runs=2.0, flood_fraction=0.2, seed=13)
        )

    def test_flood_count_matches_config(self, flooded_fleet):
        assert flooded_fleet.n_flooded > 0
        assert flooded_fleet.n_valid > flooded_fleet.n_flooded

    def test_floods_carry_ground_truth(self, flooded_fleet):
        # every trace with truth must be valid — floods included
        from repro.darshan import is_valid

        with_truth = [
            t for t in flooded_fleet.traces if t.meta.job_id in flooded_fleet.truth
        ]
        assert len(with_truth) == flooded_fleet.n_valid
        assert all(is_valid(t) for t in with_truth)

    def test_flood_config_validated(self):
        with pytest.raises(ValueError):
            FleetConfig(flood_fraction=1.5)
        with pytest.raises(ValueError):
            FleetConfig(flood_factor=1)

    def test_deterministic(self, flooded_fleet):
        again = generate_fleet(
            FleetConfig(n_apps=20, mean_runs=2.0, flood_fraction=0.2, seed=13)
        )
        assert [t.meta.job_id for t in again.traces] == [
            t.meta.job_id for t in flooded_fleet.traces
        ]
