"""Calibration arithmetic and per-cohort behaviour of the population
profile.

The share identities checked here are exactly the constraints solved in
``repro/synth/cohorts.py`` to match the paper's Tables II/III, Fig. 4 and
the §IV-D correlations.
"""

import numpy as np
import pytest

from repro.core import Category, categorize_trace
from repro.synth import BLUE_WATERS_2019, cohort_by_name, generate_run
from repro.synth.groundtruth import trace_matches

APP = {c.name: c.app_share for c in BLUE_WATERS_2019}
RUN = {c.name: c.run_share for c in BLUE_WATERS_2019}


def app_sum(names):
    return sum(APP[n] for n in names)


def run_sum(names):
    return sum(RUN[n] for n in names)


READ_ON_START = ["rcw", "r_only", "rcw_ckpt_periodic", "rcw_ckpt_hidden"]
READ_STEADY = ["r_steady_only", "r_steady_w_end", "sim_per_rw", "sim_per_w", "sim_hidden"]
READ_OTHERS = ["r_others_only", "sim_others_periodic", "sim_others_hidden", "rw_others"]
WRITE_ON_END = ["rcw", "r_steady_w_end", "w_only_end"]
WRITE_STEADY = [
    "rcw_ckpt_periodic", "rcw_ckpt_hidden", "sim_per_rw", "sim_per_w",
    "sim_hidden", "sim_others_periodic", "sim_others_hidden",
    "w_steady_per_hour", "w_steady_hidden",
]
WRITE_OTHERS = ["w_only_others", "rw_others"]
PERIODIC_W = ["rcw_ckpt_periodic", "sim_per_rw", "sim_per_w", "sim_others_periodic", "w_steady_per_hour"]


class TestShareArithmetic:
    def test_totals_are_100(self):
        assert sum(APP.values()) == pytest.approx(100.0, abs=0.5)
        assert sum(RUN.values()) == pytest.approx(100.0, abs=0.5)

    # -- Table III app marginals (single run): 85/9/2/4 and 87/8/3/2
    def test_read_app_marginals(self):
        assert app_sum(READ_ON_START) == pytest.approx(9.0, abs=0.3)
        assert app_sum(READ_STEADY) == pytest.approx(2.0, abs=0.3)
        assert app_sum(READ_OTHERS) == pytest.approx(4.0, abs=0.3)

    def test_write_app_marginals(self):
        assert app_sum(WRITE_ON_END) == pytest.approx(8.0, abs=0.3)
        assert app_sum(WRITE_STEADY) == pytest.approx(3.0, abs=0.3)
        assert app_sum(WRITE_OTHERS) == pytest.approx(2.0, abs=0.3)

    # -- Table III run marginals (all runs): 27/38/30/5 and 47/14/37/2
    def test_read_run_marginals(self):
        assert run_sum(READ_ON_START) == pytest.approx(38.0, abs=1.0)
        assert run_sum(READ_STEADY) == pytest.approx(30.0, abs=1.0)
        assert run_sum(READ_OTHERS) == pytest.approx(5.0, abs=1.0)

    def test_write_run_marginals(self):
        assert run_sum(WRITE_ON_END) == pytest.approx(14.0, abs=1.0)
        assert run_sum(WRITE_STEADY) == pytest.approx(37.0, abs=1.0)
        assert run_sum(WRITE_OTHERS) == pytest.approx(2.0, abs=1.0)

    # -- Table II: 2% of apps, 8% of runs are periodic writers
    def test_periodic_write_shares(self):
        assert app_sum(PERIODIC_W) == pytest.approx(2.0, abs=0.3)
        assert run_sum(PERIODIC_W) == pytest.approx(8.0, abs=0.5)

    # -- §IV-D: 95% of read-insignificant apps are write-insignificant
    def test_insignificance_correlation(self):
        read_insig = 100.0 - app_sum(READ_ON_START + READ_STEADY + READ_OTHERS)
        both = APP["silent"]
        assert both / read_insig == pytest.approx(0.95, abs=0.02)

    # -- §IV-D: 66% of read-on-start apps write on end.  The *truth-level*
    # share is calibrated slightly above 66% because the detected
    # denominator also collects near-threshold silent apps whose heaviest
    # run crosses 100 MB — the measured (detected) value lands at the
    # paper's 66%, which the CORR benchmark asserts.
    def test_rcw_correlation(self):
        assert APP["rcw"] / app_sum(READ_ON_START) == pytest.approx(0.71, abs=0.03)

    def test_heavy_tail_exists(self):
        # the LAMMPS-like effect: some cohorts run far more than average
        factors = [c.mean_runs_factor for c in BLUE_WATERS_2019]
        assert max(factors) > 10.0


class TestCohortBehaviour:
    @pytest.mark.parametrize("name", sorted(APP))
    def test_nominal_trace_matches_ground_truth(self, name):
        """A clean (seed-stable, nominal) trace of every cohort must be
        categorized as its ground truth — ambiguous sub-variants are
        excluded by the seeds chosen here only when the cohort has none."""
        rng = np.random.default_rng(1234)
        hits = 0
        n = 8
        for i in range(n):
            spec = cohort_by_name(name).build(i, rng)
            trace = generate_run(spec, i, rng, force_nominal=True)
            if trace_matches(categorize_trace(trace), spec.truth):
                hits += 1
        # cohorts carrying deliberate boundary/threshold ambiguity (the
        # paper's error sources) may miss a few; everything else must be
        # near-perfect
        ambiguous = {
            "silent", "rcw", "r_others_only", "w_only_others", "rw_others",
            "sim_others_periodic", "sim_others_hidden",
        }
        assert hits >= (n - 3 if name in ambiguous else n - 1)

    def test_cohort_by_name_unknown(self):
        with pytest.raises(KeyError):
            cohort_by_name("nope")

    def test_hidden_cohorts_marked(self):
        rng = np.random.default_rng(0)
        spec = cohort_by_name("sim_hidden").build(1, rng)
        assert spec.truth.hidden_periodic
        assert spec.truth.write_temporality is Category.WRITE_STEADY
        assert not spec.truth.periodic_write
