"""Unit tests for operation segmentation (paper §III-B3a)."""

import numpy as np
import pytest

from repro.segment import segment_operations

from tests.conftest import ops


class TestSegmentOperations:
    def test_segment_spans_to_next_operation_start(self):
        arr = ops((0.0, 10.0, 1.0), (100.0, 110.0, 2.0), (250.0, 260.0, 3.0))
        segs = segment_operations(arr, 1000.0)
        assert segs.durations.tolist() == [100.0, 150.0, 750.0]
        assert segs.starts.tolist() == [0.0, 100.0, 250.0]

    def test_last_segment_closed_by_runtime(self):
        arr = ops((0.0, 10.0, 1.0))
        segs = segment_operations(arr, 500.0)
        assert segs.durations[0] == pytest.approx(500.0)

    def test_last_segment_never_shorter_than_operation(self):
        # operation outlives the nominal runtime (Darshan flush slack)
        arr = ops((0.0, 600.0, 1.0))
        segs = segment_operations(arr, 500.0)
        assert segs.durations[0] == pytest.approx(600.0)

    def test_volumes_follow_opening_operation(self):
        arr = ops((0.0, 1.0, 11.0), (10.0, 11.0, 22.0))
        segs = segment_operations(arr, 100.0)
        assert segs.volumes.tolist() == [11.0, 22.0]

    def test_busy_clipped_to_segment(self):
        # overlapping input (not merged): op 0 outlives segment 0
        arr = ops((0.0, 50.0, 1.0), (10.0, 20.0, 1.0))
        segs = segment_operations(arr, 100.0)
        assert segs.busy[0] == pytest.approx(10.0)

    def test_activity_rates_bounded(self):
        arr = ops((0.0, 5.0, 1.0), (10.0, 60.0, 1.0))
        rates = segment_operations(arr, 100.0).activity_rates
        assert np.all(rates >= 0.0) and np.all(rates <= 1.0)
        assert rates[0] == pytest.approx(0.5)

    def test_features_matrix_shape(self):
        arr = ops((0.0, 1.0, 5.0), (10.0, 11.0, 6.0))
        feats = segment_operations(arr, 100.0).features()
        assert feats.shape == (2, 2)
        assert feats[0, 0] == pytest.approx(10.0)  # duration
        assert feats[0, 1] == pytest.approx(5.0)   # volume

    def test_empty(self):
        segs = segment_operations(ops(), 100.0)
        assert segs.is_empty()
        assert len(segs.activity_rates) == 0
