"""Unit tests for temporal chunking (paper §III-B3b)."""

import numpy as np
import pytest

from repro.segment import chunk_volumes

from tests.conftest import ops


class TestChunkVolumes:
    def test_operation_fully_inside_one_chunk(self):
        arr = ops((10.0, 20.0, 100.0))
        profile = chunk_volumes(arr, 1000.0)
        assert profile.volumes.tolist() == [100.0, 0.0, 0.0, 0.0]

    def test_boundary_spanning_operation_splits_pro_rata(self):
        # op covers [200, 300] of a 1000s run; boundary at 250
        arr = ops((200.0, 300.0, 100.0))
        profile = chunk_volumes(arr, 1000.0)
        assert profile.volumes[0] == pytest.approx(50.0)
        assert profile.volumes[1] == pytest.approx(50.0)

    def test_uniform_operation_spreads_evenly(self):
        arr = ops((0.0, 1000.0, 400.0))
        profile = chunk_volumes(arr, 1000.0)
        assert np.allclose(profile.volumes, 100.0)
        assert profile.coefficient_of_variation() == pytest.approx(0.0)

    def test_zero_duration_burst_lands_in_containing_chunk(self):
        arr = ops((600.0, 600.0, 42.0))
        profile = chunk_volumes(arr, 1000.0)
        assert profile.volumes[2] == pytest.approx(42.0)

    def test_burst_at_exact_end_of_run(self):
        arr = ops((1000.0, 1000.0, 7.0))
        profile = chunk_volumes(arr, 1000.0)
        assert profile.volumes[3] == pytest.approx(7.0)

    def test_volume_conserved(self):
        arr = ops((0.0, 300.0, 100.0), (100.0, 900.0, 50.0), (990.0, 1000.0, 25.0))
        profile = chunk_volumes(arr, 1000.0)
        assert profile.total == pytest.approx(175.0)

    def test_custom_chunk_count(self):
        arr = ops((0.0, 1000.0, 100.0))
        profile = chunk_volumes(arr, 1000.0, n_chunks=10)
        assert len(profile.volumes) == 10
        assert np.allclose(profile.volumes, 10.0)

    def test_normalized_shares(self):
        arr = ops((0.0, 250.0, 30.0), (750.0, 1000.0, 10.0))
        shares = chunk_volumes(arr, 1000.0).normalized()
        assert shares.sum() == pytest.approx(1.0)
        assert shares[0] == pytest.approx(0.75)

    def test_empty_profile(self):
        profile = chunk_volumes(ops(), 1000.0)
        assert profile.total == 0.0
        assert profile.coefficient_of_variation() == 0.0
        assert profile.normalized().tolist() == [0.0] * 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_volumes(ops(), 1000.0, n_chunks=0)
        with pytest.raises(ValueError):
            chunk_volumes(ops(), 0.0)
