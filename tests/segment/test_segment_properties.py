"""Property-based tests on segmentation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.darshan.trace import OperationArray
from repro.merge import merge_concurrent
from repro.segment import chunk_volumes, segment_operations


@st.composite
def disjoint_ops(draw):
    """Disjoint sorted operations inside a [0, run_time] window."""
    run_time = draw(st.floats(min_value=10.0, max_value=1e5, allow_nan=False))
    n = draw(st.integers(min_value=0, max_value=25))
    rows = []
    for _ in range(n):
        s = draw(st.floats(min_value=0.0, max_value=run_time, allow_nan=False))
        d = draw(st.floats(min_value=0.0, max_value=run_time / 4, allow_nan=False))
        v = draw(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
        rows.append((s, min(s + d, run_time), v))
    arr = merge_concurrent(OperationArray.from_tuples(rows)).ops
    return arr, run_time


class TestChunkProperties:
    @given(disjoint_ops(), st.integers(min_value=2, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_volume_conserved_across_chunking(self, data, n_chunks):
        arr, run_time = data
        profile = chunk_volumes(arr, run_time, n_chunks)
        assert profile.total == pytest.approx(arr.total_volume, rel=1e-6, abs=1e-6)

    @given(disjoint_ops())
    @settings(max_examples=80, deadline=None)
    def test_chunks_non_negative(self, data):
        arr, run_time = data
        profile = chunk_volumes(arr, run_time)
        assert np.all(profile.volumes >= 0.0)

    @given(disjoint_ops())
    @settings(max_examples=80, deadline=None)
    def test_edges_cover_runtime(self, data):
        arr, run_time = data
        profile = chunk_volumes(arr, run_time)
        assert profile.edges[0] == 0.0
        assert profile.edges[-1] == pytest.approx(run_time)


class TestSegmentProperties:
    @given(disjoint_ops())
    @settings(max_examples=80, deadline=None)
    def test_segment_count_equals_op_count(self, data):
        arr, run_time = data
        assert len(segment_operations(arr, run_time)) == len(arr)

    @given(disjoint_ops())
    @settings(max_examples=80, deadline=None)
    def test_segments_tile_from_first_op_to_end(self, data):
        arr, run_time = data
        segs = segment_operations(arr, run_time)
        if len(segs) == 0:
            return
        end = max(run_time, float(arr.ends[-1]))
        assert segs.durations.sum() == pytest.approx(end - segs.starts[0], rel=1e-9)

    @given(disjoint_ops())
    @settings(max_examples=80, deadline=None)
    def test_durations_positive(self, data):
        arr, run_time = data
        segs = segment_operations(arr, run_time)
        assert np.all(segs.durations >= 0.0)
