"""Property tests: a damaged store file must never attach.

Reuses the adversarial-payload damage model from
:mod:`repro.synth.corruption` (truncation, bit rot) against compiled
``.mosc`` bytes: every mutation must surface as ``TraceFormatError`` at
attach time — never a clean open over silently wrong data, never a
non-``TraceFormatError`` crash.
"""

import numpy as np
import pytest

from repro.columnar import compile_corpus
from repro.columnar.format import HEADER_SIZE, unpack_header
from repro.columnar.store import CorpusStore
from repro.darshan import DirectorySource, save_binary
from repro.darshan.errors import TraceFormatError
from repro.synth import FleetConfig, generate_fleet
from repro.synth.corruption import adversarial_payload


@pytest.fixture(scope="module")
def store_bytes(tmp_path_factory):
    base = tmp_path_factory.mktemp("corruption")
    fleet = generate_fleet(FleetConfig(n_apps=25, mean_runs=2.0, seed=13))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    return store_path.read_bytes()


def _expect_rejected(tmp_path, payload: bytes, label: str):
    victim = tmp_path / f"{label}.mosc"
    victim.write_bytes(payload)
    with pytest.raises(TraceFormatError):
        CorpusStore(str(victim), verify=True)


class TestTruncation:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_truncation_rejected(self, store_bytes, tmp_path, seed):
        """Any prefix of a store is invalid: either the header itself is
        cut, or some section extends past EOF."""
        rng = np.random.default_rng(seed)
        mangled = adversarial_payload(store_bytes, rng, kind="truncate")
        assert len(mangled) < len(store_bytes)
        _expect_rejected(tmp_path, mangled, f"trunc{seed}")

    def test_one_byte_short_rejected(self, store_bytes, tmp_path):
        _expect_rejected(tmp_path, store_bytes[:-1], "short1")

    def test_sub_header_rejected(self, store_bytes, tmp_path):
        _expect_rejected(tmp_path, store_bytes[: HEADER_SIZE - 1], "subhdr")

    def test_empty_file_rejected(self, tmp_path):
        _expect_rejected(tmp_path, b"", "empty")


class TestBitRot:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_bit_rot_in_sections_rejected(
        self, store_bytes, tmp_path, seed
    ):
        """Flips targeted inside CRC-covered extents (header or section
        payloads; alignment padding is dead bytes) must fail the sweep."""
        header = unpack_header(store_bytes[:HEADER_SIZE])
        covered = [(0, HEADER_SIZE)] + [
            (off, nbytes)
            for off, nbytes, _crc in header["sections"].values()
            if nbytes > 0
        ]
        rng = np.random.default_rng(seed)
        buf = bytearray(store_bytes)
        for _ in range(4):
            off, nbytes = covered[int(rng.integers(0, len(covered)))]
            buf[off + int(rng.integers(0, nbytes))] ^= 1 << int(
                rng.integers(0, 8)
            )
        _expect_rejected(tmp_path, bytes(buf), f"rot{seed}")

    def test_magic_rot_rejected(self, store_bytes, tmp_path):
        buf = bytearray(store_bytes)
        buf[0] ^= 0xFF
        _expect_rejected(tmp_path, bytes(buf), "magic")

    def test_blanket_bit_rot_rejected(self, store_bytes, tmp_path):
        """The generic fuzz mutator (~1 flip per 256 bytes, anywhere in
        the file) — at that density some flip always lands in a covered
        extent."""
        rng = np.random.default_rng(20260808)
        mangled = adversarial_payload(store_bytes, rng, kind="bit_rot")
        _expect_rejected(tmp_path, mangled, "blanket")


class TestUnverifiedOpenStaysStructurallySafe:
    def test_geometry_lies_rejected_even_without_crc_sweep(
        self, store_bytes, tmp_path
    ):
        """verify=False skips the CRC sweep, not the structural checks:
        a header lying about its trace count must still be rejected."""
        header = unpack_header(store_bytes[:HEADER_SIZE])
        buf = bytearray(store_bytes)
        # n_traces lives after magic+version+flags in the fixed header;
        # rewrite it via pack_header to keep the header CRC consistent
        from repro.columnar.format import SECTION_NAMES, pack_header

        lied = pack_header(
            flags=header["flags"],
            n_traces=header["n_traces"] + 1_000_000,
            n_records=header["n_records"],
            n_ops=header["n_ops"],
            heap_len=header["heap_len"],
            n_unreadable=header["n_unreadable"],
            sections=[header["sections"][n] for n in SECTION_NAMES],
        )
        buf[: len(lied)] = lied
        victim = tmp_path / "lie.mosc"
        victim.write_bytes(bytes(buf))
        with pytest.raises(TraceFormatError):
            CorpusStore(str(victim), verify=False)
