"""The store-backed pipeline is indistinguishable from the stream path.

``run_pipeline_store`` is only allowed to be fast because nothing it
emits differs from ``run_pipeline_stream`` over the same corpus: same
results (bitwise, via the serialized form), same funnel counters, and
the same journal contract — a journal written by one path resumes on
the other, byte-identically.
"""

import pytest

from repro.columnar import compile_corpus
from repro.core import (
    run_pipeline_store,
    run_pipeline_stream,
    save_results_jsonl,
)
from repro.darshan import DirectorySource, save_binary
from repro.parallel import ParallelConfig
from repro.synth import FleetConfig, generate_fleet

SERIAL = ParallelConfig(max_workers=0)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    base = tmp_path_factory.mktemp("equivalence")
    fleet = generate_fleet(FleetConfig(n_apps=30, mean_runs=2.0, seed=11))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    return trace_dir, store_path


def _results_bytes(results, path):
    save_results_jsonl(results, str(path))
    with open(path, "rb") as fh:
        return fh.read()


def _truncate_journal(src, dst, n_outcomes):
    """Simulate a kill -9 partway through: header + first n outcomes."""
    with open(src, encoding="utf-8") as fh:
        lines = fh.readlines()
    with open(dst, "w", encoding="utf-8") as fh:
        fh.writelines(lines[: 1 + n_outcomes])


class TestStoreStreamEquivalence:
    def test_results_byte_identical(self, corpus, tmp_path):
        trace_dir, store_path = corpus
        stream = run_pipeline_stream(DirectorySource(trace_dir), parallel=SERIAL)
        store = run_pipeline_store(store_path, parallel=SERIAL)
        assert _results_bytes(stream.results, tmp_path / "a.jsonl") == (
            _results_bytes(store.results, tmp_path / "b.jsonl")
        )

    def test_funnel_counters_identical(self, corpus):
        trace_dir, store_path = corpus
        stream = run_pipeline_stream(DirectorySource(trace_dir), parallel=SERIAL)
        store = run_pipeline_store(store_path, parallel=SERIAL)
        for field in ("n_input", "n_corrupted", "n_repaired"):
            assert getattr(store.preprocess, field) == (
                getattr(stream.preprocess, field)
            ), field
        assert store.preprocess.n_selected == stream.preprocess.n_selected
        assert store.n_failures == stream.n_failures == 0


class TestStorePathResume:
    def test_killed_store_run_resumes_byte_identical(self, corpus, tmp_path):
        _trace_dir, store_path = corpus
        full_journal = tmp_path / "full.jsonl"
        uninterrupted = run_pipeline_store(
            store_path, parallel=SERIAL, journal_path=full_journal
        )
        baseline = _results_bytes(
            uninterrupted.results, tmp_path / "baseline.jsonl"
        )

        killed = tmp_path / "killed.jsonl"
        _truncate_journal(full_journal, killed, n_outcomes=5)
        resumed = run_pipeline_store(
            store_path, parallel=SERIAL, journal_path=killed, resume=True
        )
        assert resumed.metrics["n_resumed"] == 5
        assert (
            _results_bytes(resumed.results, tmp_path / "resumed.jsonl")
            == baseline
        )

    def test_stream_journal_resumes_on_store_path(self, corpus, tmp_path):
        """The journal contract is path-agnostic: kill a *stream* run,
        resume it on the *store* fast path, get the same bytes."""
        trace_dir, store_path = corpus
        full_journal = tmp_path / "full.jsonl"
        uninterrupted = run_pipeline_stream(
            DirectorySource(trace_dir),
            parallel=SERIAL,
            journal_path=full_journal,
        )
        baseline = _results_bytes(
            uninterrupted.results, tmp_path / "baseline.jsonl"
        )

        killed = tmp_path / "killed.jsonl"
        _truncate_journal(full_journal, killed, n_outcomes=7)
        resumed = run_pipeline_store(
            store_path, parallel=SERIAL, journal_path=killed, resume=True
        )
        assert resumed.metrics["n_resumed"] == 7
        assert (
            _results_bytes(resumed.results, tmp_path / "resumed.jsonl")
            == baseline
        )
