"""Property tests: compile → reattach → decode is bit-for-bit lossless.

The columnar store is only allowed to exist because nothing survives the
round trip changed: every decodable input trace must come back from
``decode_trace`` with identical metadata, records, operation arrays and
(derived) metadata event streams — over both the calibrated synthetic
fleet and whatever decodable payloads survive the adversarial fuzz
corpus under ``tests/fuzz/corpus/``.
"""

import os
import pathlib
import shutil
import struct

import numpy as np
import pytest

from repro.columnar import attach, compile_corpus
from repro.columnar.format import header_size, unpack_header
from repro.darshan import DirectorySource, save_binary
from repro.darshan.errors import TraceFormatError
from repro.synth import FleetConfig, generate_fleet

FUZZ_CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "fuzz" / "corpus"


def _assert_traces_identical(decoded, original):
    assert decoded.meta == original.meta
    assert decoded.records == original.records
    for direction in ("read", "write"):
        got = decoded.operations(direction)
        want = original.operations(direction)
        # bitwise, not approx: the store maps the original float slabs
        assert np.array_equal(got.starts, want.starts)
        assert np.array_equal(got.ends, want.ends)
        assert np.array_equal(got.volumes, want.volumes)


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    """Synthetic fleet (with its corrupted tail) compiled to a store."""
    base = tmp_path_factory.mktemp("roundtrip")
    fleet = generate_fleet(FleetConfig(n_apps=40, mean_runs=3.0, seed=7))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    report = compile_corpus(DirectorySource(trace_dir), store_path)
    return DirectorySource(trace_dir), store_path, report


class TestSyntheticRoundtrip:
    def test_compile_accounting(self, fleet_store):
        source, _path, report = fleet_store
        refs = list(source.refs())
        assert report.n_input == len(refs)
        assert report.n_unreadable == 0
        assert report.n_traces == len(refs)

    def test_reattach_hits_process_cache(self, fleet_store):
        _source, path, _report = fleet_store
        assert attach(path, verify=True) is attach(path, verify=True)

    def test_in_place_rewrite_same_second_invalidates_cache(self, tmp_path):
        """Regression: the attach cache must key on ``st_mtime_ns``.

        A same-size in-place rewrite landing within one wall-clock
        second of the original leaves inode, size, and whole-second
        ``st_mtime`` unchanged — only the nanosecond field moves.  A
        cache keyed on whole seconds serves the warm worker a stale
        mapping; the ns key must miss and reattach.
        """
        fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.0, seed=11))
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        for trace in fleet.traces:
            save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
        path = str(tmp_path / "corpus.mosc")
        compile_corpus(DirectorySource(trace_dir), path)

        # Pin a known whole-second timestamp, then warm the cache.
        base_ns = 1_700_000_000 * 10**9
        os.utime(path, ns=(base_ns, base_ns))
        store = attach(path, verify=False)
        assert attach(path, verify=False) is store  # cache is warm

        # Rewrite one ops_volumes float in place: same inode, same size.
        with open(path, "rb") as fh:
            header = unpack_header(fh.read(header_size()))
        vol_off, vol_nbytes, _crc = header["sections"]["ops_volumes"]
        assert vol_nbytes >= 8, "fleet store must contain operations"
        with open(path, "r+b") as fh:
            fh.seek(vol_off)
            (old_vol,) = struct.unpack("<d", fh.read(8))
            fh.seek(vol_off)
            fh.write(struct.pack("<d", old_vol + 1.0))
        # Same whole second as the original mtime, one nanosecond later:
        # exactly the window a seconds-granular key cannot see.
        os.utime(path, ns=(base_ns, base_ns + 1))
        st = os.stat(path)
        assert int(st.st_mtime) == base_ns // 10**9

        fresh = attach(path, verify=False)
        assert fresh is not store, "stale mapping served after rewrite"
        assert float(fresh.ops_volumes[0]) == old_vol + 1.0

    def test_decode_bit_for_bit(self, fleet_store):
        source, path, _report = fleet_store
        store = attach(path, verify=True)
        for row, ref in enumerate(source.refs()):
            _assert_traces_identical(store.decode_trace(row), source.load(ref))

    def test_metadata_events_match_decoded_trace(self, fleet_store):
        _source, path, _report = fleet_store
        store = attach(path, verify=True)
        for row in range(store.n_traces):
            times, counts = store.metadata_events(row)
            want_t, want_c = store.decode_trace(row).metadata_events()
            assert np.array_equal(times, want_t)
            assert np.array_equal(counts, want_c)

    def test_metadata_events_batch_matches_per_row(self, fleet_store):
        _source, path, _report = fleet_store
        store = attach(path, verify=True)
        rows = list(range(store.n_traces))
        times, counts, offsets = store.metadata_events_batch(rows)
        assert len(offsets) == len(rows) + 1
        assert offsets[-1] == len(times) == len(counts)
        for i, row in enumerate(rows):
            want_t, want_c = store.metadata_events(row)
            assert np.array_equal(times[offsets[i] : offsets[i + 1]], want_t)
            assert np.array_equal(counts[offsets[i] : offsets[i + 1]], want_c)


class TestFuzzCorpusSurvivors:
    """The adversarial fuzz corpus, compiled like any other drop-box.

    Most payloads are intentionally unreadable — those must be *counted*
    (``n_unreadable``), and every payload that does decode must survive
    the store round trip bit-for-bit, however mangled its contents.
    """

    # fuzz corpus files are stored suffix-less; map each modality onto
    # the suffix DirectorySource dispatches on
    MODALITIES = {"binary": ".mosd", "json": ".json", "text": ".darshan.txt"}

    @pytest.fixture(scope="class")
    def fuzz_store(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("fuzz-roundtrip")
        trace_dir = base / "traces"
        trace_dir.mkdir()
        n_files = 0
        for modality, suffix in self.MODALITIES.items():
            for src in sorted((FUZZ_CORPUS_DIR / modality).iterdir()):
                shutil.copy(src, trace_dir / f"{modality}__{src.stem}{suffix}")
                n_files += 1
        assert n_files > 0, "fuzz corpus is empty — nothing to test"
        # salt the hostile drop-box with known-good traces so the
        # survivor round trip is never vacuously empty
        fleet = generate_fleet(FleetConfig(n_apps=20, mean_runs=1.0, seed=5))
        for trace in fleet.traces:
            save_binary(trace, trace_dir / f"ok{trace.meta.job_id:08d}.mosd")
            n_files += 1
        source = DirectorySource(trace_dir)
        store_path = base / "fuzz.mosc"
        report = compile_corpus(source, store_path)
        return source, store_path, report, n_files

    def _survivors(self, source):
        out = []
        for ref in source.refs():
            try:
                out.append(source.load(ref))
            except TraceFormatError:
                continue
        return out

    def test_unreadables_counted_not_stored(self, fuzz_store):
        source, _path, report, n_files = fuzz_store
        survivors = self._survivors(source)
        assert report.n_input == n_files
        assert report.n_traces == len(survivors)
        assert report.n_unreadable == n_files - len(survivors)
        assert report.n_unreadable > 0, (
            "adversarial corpus unexpectedly decoded in full"
        )

    def test_survivors_roundtrip_bit_for_bit(self, fuzz_store):
        source, path, _report, _n = fuzz_store
        survivors = self._survivors(source)
        assert survivors, "expected at least the salted-in valid traces"
        store = attach(path, verify=True)
        assert store.n_traces == len(survivors)
        for row, original in enumerate(survivors):
            _assert_traces_identical(store.decode_trace(row), original)


class TestDegenerateCorpora:
    def test_zero_survivor_corpus_still_attaches(self, tmp_path):
        """A drop-box where *nothing* decodes must still compile to a
        valid (empty) store — the empty tail sections once left the file
        shorter than its declared geometry."""
        (tmp_path / "junk.mosd").write_bytes(b"\x00" * 64)
        store_path = tmp_path / "empty.mosc"
        report = compile_corpus(DirectorySource(tmp_path), store_path)
        assert report.n_traces == 0
        assert report.n_unreadable == 1
        store = attach(store_path, verify=True)
        assert store.n_traces == 0
        assert store.n_unreadable == 1
