"""Truncation-under-mmap: every accessor fails typed, never SIGBUS.

A ``.mosc`` store is read through one long-lived mmap; if another
process truncates (or replaces) the file, touching pages past the new
EOF delivers SIGBUS and kills the worker with no Python frame to blame.
The store therefore re-validates the file's size (via a dup'd fd)
before every section access and on every :func:`attach` cache hit, and
converts the hazard into :class:`TraceFormatError` — a quarantinable
per-trace failure, not a dead process.
"""

import os

import pytest

from repro.columnar import CorpusStore, attach, compile_corpus, detach_all
from repro.darshan.errors import TraceFormatError
from repro.darshan.source import InMemorySource
from repro.synth import FleetConfig, generate_fleet


@pytest.fixture()
def store_path(tmp_path):
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.5, seed=3))
    path = str(tmp_path / "corpus.mosc")
    compile_corpus(InMemorySource(fleet.traces), path)
    return path


def _truncate(path, keep=256):
    os.truncate(path, keep)


class TestGuardedAccessors:
    def test_accessors_raise_typed_after_truncation(self, store_path):
        store = CorpusStore(store_path)
        try:
            store.decode_trace(0)  # healthy first
            _truncate(store_path)
            for access in (
                lambda: store.decode_trace(0),
                lambda: store.operations(0, "read"),
                lambda: store.violations(0),
                lambda: store.app_key(0),
                lambda: store.job_meta(0),
                lambda: store.metadata_events(0),
            ):
                with pytest.raises(TraceFormatError, match="truncated"):
                    access()
        finally:
            store.close()

    def test_unlinked_inode_stays_readable(self, store_path):
        store = CorpusStore(store_path)
        try:
            os.unlink(store_path)
            # fstat of the dup'd fd still answers (the inode lives while
            # mapped); a subsequent truncate through a new handle is the
            # dangerous case and cannot happen to an unlinked inode —
            # reads remain safe and must keep working.
            store.decode_trace(0)
        finally:
            store.close()

    def test_closed_store_raises_typed(self, store_path):
        store = CorpusStore(store_path)
        store.close()
        with pytest.raises(TraceFormatError, match="closed"):
            store.decode_trace(0)


class TestAttachRevalidation:
    def test_cache_hit_revalidates_size(self, store_path):
        first = attach(store_path)
        assert attach(store_path) is first  # warm hit, still healthy
        _truncate(store_path)
        with pytest.raises(TraceFormatError):
            attach(store_path)
        detach_all()

    def test_cache_hit_detects_vanished_file(self, store_path):
        attach(store_path)
        os.unlink(store_path)
        with pytest.raises(TraceFormatError):
            attach(store_path)
        detach_all()

    def test_reattach_after_repair_recovers(self, store_path, tmp_path):
        # stat-identity invalidation: a truncated store replaced by a
        # healthy artifact must attach cleanly on the next call
        healthy = open(store_path, "rb").read()
        attach(store_path)
        _truncate(store_path)
        with pytest.raises(TraceFormatError):
            attach(store_path)
        with open(store_path, "wb") as fh:
            fh.write(healthy)
        store = attach(store_path)
        store.decode_trace(0)
        detach_all()
