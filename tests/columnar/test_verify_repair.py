"""``mosaic verify [--repair]``: CRC audit, damage localization, salvage.

The promise under test (docs/COLUMNAR.md, "Integrity and repair"): a
flipped bit anywhere in a version-2 store is localized to the exact
traces it touches, and every *other* trace is recoverable into a fresh
store whose funnel accounting still adds up.
"""

import struct
import zlib

import pytest

from repro.columnar import (
    CorpusStore,
    compile_corpus,
    salvage_store,
    verify_store,
)
from repro.columnar import format as fmt
from repro.darshan.errors import TraceFormatError
from repro.darshan.source import InMemorySource
from repro.io import StorageError
from repro.synth import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(FleetConfig(n_apps=24, mean_runs=1.5, seed=9)).traces


@pytest.fixture()
def store_path(tmp_path, fleet):
    path = str(tmp_path / "corpus.mosc")
    compile_corpus(InMemorySource(fleet), path)
    return path


def _flip_byte(path, offset):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


def _section(path, name):
    with open(path, "rb") as fh:
        header = fmt.unpack_header(fh.read(fmt.HEADER_SIZE))
    return header, header["sections"][name]


def _downgrade_to_v1(path):
    """Rewrite the header as version 1 (six sections, same offsets).

    The ``trace_crcs`` payload stays in the file as ignored trailing
    bytes — exactly what a reader sees when an old tool wrote the store.
    """
    header, _ = _section(path, "index")
    body = struct.pack(
        "<4sHHQQQQQ",
        fmt.MAGIC,
        1,
        header["flags"],
        header["n_traces"],
        header["n_records"],
        header["n_ops"],
        header["heap_len"],
        header["n_unreadable"],
    )
    for name in fmt.section_names(1):
        body += struct.pack("<QQI", *header["sections"][name])
    raw = body + struct.pack("<I", zlib.crc32(body))
    assert len(raw) == fmt.header_size(1)
    with open(path, "r+b") as fh:
        fh.write(raw.ljust(fmt.header_size(2), b"\x00"))


class TestCleanStore:
    def test_verify_reports_clean(self, store_path, fleet):
        report = verify_store(store_path)
        assert report.clean and not report.fatal
        assert report.version == 2
        assert report.n_traces == len(fleet)
        assert report.bad_rows == ()

    def test_missing_file_is_a_storage_error(self, tmp_path):
        with pytest.raises(StorageError) as exc_info:
            verify_store(str(tmp_path / "absent.mosc"))
        assert exc_info.value.op == "verify"


class TestLocalization:
    def test_record_bit_flip_names_the_owning_trace(self, store_path):
        _header, (offset, _nbytes, _crc) = _section(store_path, "records")
        _flip_byte(store_path, offset)
        report = verify_store(store_path)
        assert not report.clean and not report.fatal
        kinds = {f.kind for f in report.findings}
        assert kinds == {"section-crc", "trace-crc"}
        sections = {f.section for f in report.findings if f.kind == "section-crc"}
        assert sections == {"records"}
        # one flipped record byte belongs to exactly one trace
        assert len(report.bad_rows) == 1

    def test_heap_damage_taints_every_referencing_trace(self, store_path):
        # the heap is deduplicated: one flipped string byte can belong
        # to several traces, and each must be named
        _header, (offset, _n, _c) = _section(store_path, "heap")
        _flip_byte(store_path, offset)
        report = verify_store(store_path)
        assert not report.fatal
        assert len(report.bad_rows) >= 1

    def test_header_damage_is_fatal(self, store_path):
        _flip_byte(store_path, 0)  # magic
        report = verify_store(store_path)
        assert report.fatal
        assert [f.kind for f in report.findings] == ["header"]

    def test_index_bounds_damage_is_row_localized(self, store_path):
        header, (offset, _n, _c) = _section(store_path, "index")
        # point row 2's record slab far outside the section
        row_off = offset + 2 * fmt.TRACE_DTYPE.itemsize
        rec_off_field = fmt.TRACE_DTYPE.fields["rec_off"][1]
        with open(store_path, "r+b") as fh:
            fh.seek(row_off + rec_off_field)
            fh.write(struct.pack("<Q", 1 << 40))
        # strict open refuses outright
        with pytest.raises(TraceFormatError, match="bit-rotted index"):
            CorpusStore(store_path, verify=False)
        report = verify_store(store_path)
        assert not report.fatal
        assert any(
            f.kind == "index-bounds" and f.row == 2 for f in report.findings
        )


class TestSalvage:
    def test_salvage_recovers_everything_outside_the_damage(
        self, store_path, fleet, tmp_path
    ):
        _header, (offset, nbytes, _crc) = _section(store_path, "records")
        _flip_byte(store_path, offset + nbytes // 2)
        out = str(tmp_path / "repaired.mosc")
        salvage = salvage_store(store_path, out)
        assert salvage.n_rows == len(fleet)
        assert salvage.n_lost >= 1
        assert salvage.n_recovered == len(fleet) - salvage.n_lost
        assert set(salvage.lost_rows).isdisjoint(salvage.recovered_rows)
        # identity of the lost rows is readable from the intact index
        assert len(salvage.lost_job_ids) == salvage.n_lost

        # the salvaged store re-verifies clean and carries the loss in
        # its unreadable count, so the funnel still adds up
        assert verify_store(out).clean
        store = CorpusStore(out)
        try:
            assert len(store) == salvage.n_recovered
            assert store.n_unreadable == salvage.n_unreadable_carried
            recovered_ids = {
                int(store.index[r]["job_id"]) for r in range(len(store))
            }
            assert recovered_ids.isdisjoint(salvage.lost_job_ids)
        finally:
            store.close()

    def test_salvaged_traces_decode_identically(self, store_path, fleet, tmp_path):
        _header, (offset, _n, _c) = _section(store_path, "records")
        _flip_byte(store_path, offset)
        out = str(tmp_path / "repaired.mosc")
        salvage = salvage_store(store_path, out)
        by_job = {t.meta.job_id: t for t in fleet}
        store = CorpusStore(out)
        try:
            for row in range(len(store)):
                decoded = store.decode_trace(row)
                assert decoded.records == by_job[decoded.meta.job_id].records
        finally:
            store.close()
        assert salvage.n_recovered >= 1

    def test_fatal_damage_refuses_salvage(self, store_path, tmp_path):
        _flip_byte(store_path, 0)
        with pytest.raises(TraceFormatError, match="cannot be salvaged"):
            salvage_store(store_path, str(tmp_path / "out.mosc"))

    def test_index_damaged_rows_lose_identity_but_not_neighbors(
        self, store_path, fleet, tmp_path
    ):
        _header, (offset, _n, _c) = _section(store_path, "index")
        rec_off_field = fmt.TRACE_DTYPE.fields["rec_off"][1]
        with open(store_path, "r+b") as fh:
            fh.seek(offset + 3 * fmt.TRACE_DTYPE.itemsize + rec_off_field)
            fh.write(struct.pack("<Q", 1 << 40))
        salvage = salvage_store(store_path, str(tmp_path / "out.mosc"))
        assert 3 in salvage.lost_rows
        # a bounds-damaged index row cannot vouch for its own job id
        assert salvage.n_recovered == len(fleet) - salvage.n_lost


class TestLegacyV1:
    def test_v1_store_opens_and_decodes(self, store_path, fleet):
        _downgrade_to_v1(store_path)
        store = CorpusStore(store_path)
        try:
            assert store.version == 1
            assert store.trace_crcs is None
            assert len(store) == len(fleet)
            store.decode_trace(0)
        finally:
            store.close()

    def test_v1_clean_verify(self, store_path):
        _downgrade_to_v1(store_path)
        report = verify_store(store_path)
        assert report.clean
        assert report.version == 1

    def test_v1_damage_cannot_be_row_localized(self, store_path):
        _downgrade_to_v1(store_path)
        _header, (offset, _n, _c) = _section(store_path, "records")
        _flip_byte(store_path, offset)
        report = verify_store(store_path)
        assert not report.clean and not report.fatal
        kinds = {f.kind for f in report.findings}
        assert "section-crc" in kinds
        assert "legacy" in kinds  # advises recompiling to v2
        assert report.bad_rows == ()  # no per-trace CRCs to consult

    def test_v1_salvage_recompiles_to_v2(self, store_path, tmp_path):
        _downgrade_to_v1(store_path)
        out = str(tmp_path / "upgraded.mosc")
        salvage = salvage_store(store_path, out)
        assert salvage.n_lost == 0
        report = verify_store(out)
        assert report.clean and report.version == 2
