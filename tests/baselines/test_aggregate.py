"""Unit tests for the aggregate-statistics baseline (related work [25])."""


from repro.baselines import AggregateClass, categorize_aggregate

from tests.conftest import make_record, make_trace

MB = 1024 * 1024
SIG = 500 * MB


class TestAggregateBaseline:
    def test_inactive(self):
        trace = make_trace([make_record(1, 0, read=(0.0, 1.0, 10 * MB))])
        res = categorize_aggregate(trace)
        assert AggregateClass.IO_INACTIVE in res.classes

    def test_read_heavy(self):
        trace = make_trace([make_record(1, 0, read=(0.0, 1.0, SIG))])
        assert AggregateClass.READ_HEAVY in categorize_aggregate(trace).classes

    def test_write_heavy(self):
        trace = make_trace([make_record(1, 0, write=(0.0, 1.0, SIG))])
        assert AggregateClass.WRITE_HEAVY in categorize_aggregate(trace).classes

    def test_balanced(self):
        trace = make_trace(
            [make_record(1, 0, read=(0.0, 1.0, SIG), write=(2.0, 3.0, SIG))]
        )
        assert AggregateClass.READ_WRITE_BALANCED in categorize_aggregate(trace).classes

    def test_metadata_heavy(self):
        rec = make_record(1, 0, read=(0.0, 1.0, SIG), opens=3000)
        trace = make_trace([rec], nprocs=4)
        assert AggregateClass.METADATA_HEAVY in categorize_aggregate(trace).classes

    def test_access_size_classes(self):
        small = make_record(1, 0, read=(0.0, 1.0, SIG))
        small.reads = SIG // 1024  # 1 KB accesses
        res = categorize_aggregate(make_trace([small]))
        assert AggregateClass.SMALL_ACCESSES in res.classes

        large = make_record(1, 0, read=(0.0, 1.0, SIG))
        large.reads = 4  # 125 MB accesses
        res = categorize_aggregate(make_trace([large]))
        assert AggregateClass.LARGE_ACCESSES in res.classes

    def test_blind_to_temporality(self):
        """The paper's critique: identical aggregates at opposite ends of
        the execution are indistinguishable to this baseline."""
        on_start = make_trace([make_record(1, 0, read=(0.0, 30.0, SIG))])
        on_end = make_trace([make_record(1, 0, read=(970.0, 1000.0, SIG))])
        assert (
            categorize_aggregate(on_start).classes
            == categorize_aggregate(on_end).classes
        )

    def test_blind_to_periodicity(self):
        burst = make_trace([make_record(1, 0, write=(0.0, 160.0, SIG))], run_time=10000.0)
        periodic = make_trace(
            [make_record(k, 0, write=(k * 600.0, k * 600.0 + 10.0, SIG // 16))
             for k in range(16)],
            run_time=10000.0,
        )
        a = categorize_aggregate(burst).classes
        b = categorize_aggregate(periodic).classes
        assert AggregateClass.WRITE_HEAVY in a and AggregateClass.WRITE_HEAVY in b
