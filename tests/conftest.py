"""Shared fixtures and trace-building helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_pipeline
from repro.darshan import FileRecord, JobMeta, Trace
from repro.darshan.trace import OperationArray
from repro.synth import FleetConfig, generate_fleet


def make_meta(
    job_id: int = 1,
    uid: int = 100,
    exe: str = "app.exe",
    nprocs: int = 8,
    run_time: float = 1000.0,
) -> JobMeta:
    """A valid job header with the given runtime."""
    start = 1_546_300_800.0
    return JobMeta(
        job_id=job_id,
        uid=uid,
        exe=exe,
        nprocs=nprocs,
        start_time=start,
        end_time=start + run_time,
    )


def make_record(
    file_id: int = 1,
    rank: int = 0,
    *,
    read: tuple[float, float, int] | None = None,
    write: tuple[float, float, int] | None = None,
    opens: int = 1,
    seeks: int = 0,
) -> FileRecord:
    """A record with optional (start, end, bytes) read/write windows."""
    rec = FileRecord(
        file_id=file_id,
        file_name=f"f{file_id}.dat",
        rank=rank,
        opens=opens,
        closes=opens,
        seeks=seeks,
    )
    lo = []
    hi = []
    if read is not None:
        rec.read_start, rec.read_end, rec.bytes_read = read
        rec.reads = max(1, rec.bytes_read // (4 << 20))
        lo.append(rec.read_start)
        hi.append(rec.read_end)
    if write is not None:
        rec.write_start, rec.write_end, rec.bytes_written = write
        rec.writes = max(1, rec.bytes_written // (4 << 20))
        lo.append(rec.write_start)
        hi.append(rec.write_end)
    if opens > 0:
        rec.open_start = min(lo) if lo else 0.0
        rec.close_end = max(hi) if hi else 1.0
    return rec


def make_trace(
    records: list[FileRecord],
    run_time: float = 1000.0,
    nprocs: int = 8,
    job_id: int = 1,
    uid: int = 100,
    exe: str = "app.exe",
) -> Trace:
    return Trace(
        meta=make_meta(job_id=job_id, uid=uid, exe=exe, nprocs=nprocs, run_time=run_time),
        records=records,
    )


def ops(*triples: tuple[float, float, float]) -> OperationArray:
    return OperationArray.from_tuples(list(triples))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_fleet():
    """A small calibrated corpus shared by corpus-level tests."""
    return generate_fleet(FleetConfig(n_apps=150, mean_runs=10.0, seed=99))


@pytest.fixture(scope="session")
def small_pipeline(small_fleet):
    """Pipeline result over the small corpus."""
    return run_pipeline(small_fleet.traces)
