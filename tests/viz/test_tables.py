"""Unit tests for ASCII table rendering."""

import pytest

from repro.viz import format_bytes, format_percent, render_shares_table, render_table


class TestFormatters:
    def test_percent(self):
        assert format_percent(0.347) == "34.7%"
        assert format_percent(1.0, digits=0) == "100%"

    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512 B"),
            (2048, "2.0 KB"),
            (3 * 1024**2, "3.0 MB"),
            (5 * 1024**3, "5.0 GB"),
            (2 * 1024**4, "2.0 TB"),
        ],
    )
    def test_bytes(self, n, expected):
        assert format_bytes(n) == expected


class TestRenderTable:
    def test_alignment_and_borders(self):
        out = render_table(["name", "value"], [["a", "1"], ["long-name", "22"]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| name" in lines[1]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line same width

    def test_title(self):
        out = render_table(["x"], [["1"]], title="Table II")
        assert out.splitlines()[0] == "Table II"

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "| a" in out


class TestRenderSharesTable:
    def test_percent_cells(self):
        table = {"read_single": {"on_start": 0.09, "steady": 0.02}}
        out = render_shares_table(table)
        assert "9.0%" in out
        assert "2.0%" in out
        assert "read_single" in out

    def test_missing_column_rendered_as_dash(self):
        table = {
            "r1": {"a": 0.5},
            "r2": {"b": 0.5},
        }
        out = render_shares_table(table)
        assert "-" in out
