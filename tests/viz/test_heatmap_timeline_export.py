"""Unit tests for heatmap / timeline rendering and CSV export."""

import csv
import io

import numpy as np
import pytest

from repro.analysis import jaccard_matrix
from repro.core import CategorizationResult, Category
from repro.viz import (
    matrix_to_csv,
    render_heatmap,
    render_jaccard,
    render_ops_lane,
    render_trace_anatomy,
    rows_to_csv,
    shares_to_csv,
    write_csv,
)

from tests.conftest import make_record, make_trace, ops

SIG = 500 * 1024 * 1024


def result(job_id, cats):
    return CategorizationResult(
        job_id=job_id, uid=job_id, exe=f"a{job_id}", nprocs=4, run_time=1.0,
        categories=frozenset(cats),
    )


class TestHeatmap:
    def test_render_heatmap_shape_check(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 2)), ["a"], ["b", "c"])

    def test_values_shown_in_percent(self):
        out = render_heatmap(np.array([[0.5]]), ["row"], ["col"])
        assert "50" in out

    def test_render_jaccard_prunes_below_threshold(self):
        rs = [result(i, {Category.READ_ON_START, Category.WRITE_ON_END}) for i in range(3)]
        rs.append(result(9, {Category.PERIODIC}))
        out = render_jaccard(jaccard_matrix(rs))
        assert "read_on_start" in out
        assert "periodic" not in out  # no partner above threshold

    def test_render_jaccard_empty(self):
        out = render_jaccard(jaccard_matrix([result(1, {Category.PERIODIC})]))
        assert "no pairs" in out


class TestTimeline:
    def test_ops_lane_marks_activity(self):
        lane = render_ops_lane(ops((0.0, 250.0, 1.0)), 1000.0, width=40, label="x")
        body = lane.split("|")[1]
        assert body[0] == "#"
        assert body[-1] == "."
        assert "1 ops" in lane

    def test_anatomy_renders_all_panels(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(10.0, 40.0, SIG)),
                make_record(2, 0, write=(950.0, 990.0, SIG)),
            ],
            nprocs=2,
        )
        out = render_trace_anatomy(trace)
        assert "read raw" in out
        assert "write merged" in out
        assert "read chunks" in out
        assert "metadata req/s" in out
        assert "categories:" in out
        assert "read_on_start" in out


class TestCsvExport:
    def test_rows_to_csv(self):
        text = rows_to_csv(["a", "b"], [[1, 2], [3, 4]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_rows_width_validation(self):
        with pytest.raises(ValueError):
            rows_to_csv(["a"], [[1, 2]])

    def test_shares_to_csv(self):
        text = shares_to_csv({"r": {"x": 0.5, "y": 0.25}})
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["row", "x", "y"]
        assert rows[1] == ["r", "0.5", "0.25"]

    def test_matrix_to_csv(self):
        text = matrix_to_csv(np.array([[1.0, 0.0]]), ["r"], ["c1", "c2"])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["", "c1", "c2"]
        assert rows[1] == ["r", "1.0", "0.0"]

    def test_matrix_label_validation(self):
        with pytest.raises(ValueError):
            matrix_to_csv(np.zeros((1, 1)), ["r"], ["c", "c2"])

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv("a,b\n1,2\n", path)
        assert path.read_text() == "a,b\n1,2\n"

    def test_summary_to_csv_surfaces_run_health(self, small_pipeline):
        from repro.viz import summary_to_csv

        rows = dict(
            list(csv.reader(io.StringIO(summary_to_csv(small_pipeline))))[1:]
        )
        # the funnel and health counters every export must carry
        for key in (
            "n_input",
            "n_corrupted",
            "n_selected",
            "n_categorized",
            "n_failures",
            "n_degraded",
            "n_quarantined",
        ):
            assert key in rows
        assert rows["n_failures"] == str(small_pipeline.n_failures)
        assert rows["n_degraded"] == str(
            small_pipeline.metrics.get("n_degraded", 0)
        )
        assert rows["n_quarantined"] == str(
            small_pipeline.metrics.get("n_quarantined", 0)
        )
