"""Regression tests for zero-duration / zero-byte edge cases.

Lint rule MOS005 demands every division by a duration or byte count be
guarded; these tests pin the *behavior* of those guards across the
modules that divide most — empty windows, instantaneous operations, and
zero-volume traces are data at corpus scale, not errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import wilson_interval
from repro.analysis.stats import category_shares, periodicity_table
from repro.cluster.bandwidth import estimate_bandwidth
from repro.darshan.statistics import TraceSummary
from repro.darshan.tolerance import TIME_TOLERANCE_S, close_to
from repro.darshan.trace import OperationArray
from repro.interference.profiles import IOProfile
from repro.merge.intervals import coverage_fraction, overlap_groups
from repro.segment.op_segments import segment_operations
from repro.viz.timeline import render_ops_lane


def _summary(**overrides) -> TraceSummary:
    base = dict(
        job_id=1,
        uid=100,
        exe="app.exe",
        nprocs=8,
        run_time=1000.0,
        n_records=1,
        n_files=1,
        bytes_read=0,
        bytes_written=0,
        reads=0,
        writes=0,
        metadata_ops=0,
        read_time=0.0,
        write_time=0.0,
        meta_time=0.0,
        ranks_doing_io=0,
    )
    base.update(overrides)
    return TraceSummary(**base)


class TestTraceSummaryZeroDenominators:
    def test_io_time_fraction_zero_runtime(self):
        s = _summary(run_time=0.0, read_time=5.0)
        assert s.io_time_fraction == 0.0

    def test_io_time_fraction_zero_nprocs(self):
        s = _summary(nprocs=0, read_time=5.0)
        assert s.io_time_fraction == 0.0

    def test_mean_sizes_with_no_operations(self):
        s = _summary(bytes_read=0, reads=0, bytes_written=0, writes=0)
        assert s.mean_read_size == 0.0
        assert s.mean_write_size == 0.0


class TestBandwidthDegenerateInputs:
    def test_empty_input(self):
        assert estimate_bandwidth(np.empty((0, 2))) == 0.0

    def test_single_point(self):
        assert estimate_bandwidth(np.array([[1.0, 2.0]])) == 0.0

    def test_identical_points(self):
        X = np.ones((10, 2))
        assert estimate_bandwidth(X) == 0.0


class TestStatsEmptyCorpus:
    def test_category_shares_empty(self):
        shares = category_shares([], [])
        assert shares.n_apps == 0
        assert shares.n_runs == 0
        assert all(v == 0.0 for v in shares.single_run.values())
        assert all(v == 0.0 for v in shares.all_runs.values())

    def test_periodicity_table_empty(self):
        table = periodicity_table([], [])
        assert table["single_run"]["periodic"] == 0.0
        assert table["all_runs"]["non_periodic"] == 0.0


class TestWilsonInterval:
    def test_zero_samples(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_bounds_stay_in_unit_interval(self):
        lo, hi = wilson_interval(1, 1)
        assert 0.0 <= lo <= hi <= 1.0


class TestInstantaneousWindows:
    def test_render_ops_lane_zero_runtime(self):
        ops = OperationArray.from_tuples([(0.0, 0.0, 100.0)])
        lane = render_ops_lane(ops, run_time=0.0, width=20)
        assert "|....................|" in lane

    def test_segment_activity_rate_instantaneous_segment(self):
        # two ops closer than clock resolution: the first segment is
        # "instantaneous" and must read as fully busy, not divide by ~0
        ops = OperationArray.from_tuples(
            [(10.0, 10.0, 50.0), (10.0 + TIME_TOLERANCE_S / 10, 20.0, 50.0)]
        )
        segments = segment_operations(ops, run_time=100.0)
        rates = segments.activity_rates
        assert np.all(np.isfinite(rates))
        assert rates[0] == 1.0

    def test_coverage_fraction_zero_runtime(self):
        ops = OperationArray.from_tuples([(0.0, 1.0, 10.0)])
        assert coverage_fraction(ops, 0.0) == 0.0

    def test_demand_series_rejects_nonpositive_bins(self):
        profile = IOProfile(name="j", run_time=100.0)
        with pytest.raises(ValueError):
            profile.demand_series(n_bins=0)


class TestToleranceComparison:
    def test_close_to_within_clock_resolution(self):
        assert close_to(1.0, 1.0 + TIME_TOLERANCE_S / 2)
        assert not close_to(1.0, 1.0 + TIME_TOLERANCE_S * 10)

    def test_close_to_vectorized(self):
        a = np.array([0.0, 1.0])
        b = np.array([TIME_TOLERANCE_S / 2, 2.0])
        assert list(close_to(a, b)) == [True, False]

    def test_overlap_groups_subresolution_gap_merges(self):
        starts = np.array([0.0, 1.0 + TIME_TOLERANCE_S / 10])
        ends = np.array([1.0, 2.0])
        groups = overlap_groups(starts, ends)
        assert list(groups) == [0, 0]

    def test_overlap_groups_real_gap_splits(self):
        starts = np.array([0.0, 1.5])
        ends = np.array([1.0, 2.0])
        groups = overlap_groups(starts, ends)
        assert list(groups) == [0, 1]

    def test_clipped_keeps_instantaneous_ops_at_resolution(self):
        ops = OperationArray.from_tuples([(5.0, 5.0, 10.0)])
        clipped = ops.clipped(0.0, 10.0)
        assert len(clipped) == 1
        assert clipped.volumes[0] == 10.0
