"""Property-based tests on the fusion invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.darshan.trace import OperationArray
from repro.merge import merge_concurrent, merge_neighbors, union_length


@st.composite
def op_arrays(draw, max_ops: int = 30):
    n = draw(st.integers(min_value=0, max_value=max_ops))
    rows = []
    for _ in range(n):
        s = draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False))
        d = draw(st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
        v = draw(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
        rows.append((s, s + d, v))
    return OperationArray.from_tuples(rows)


class TestConcurrentMergeProperties:
    @given(op_arrays())
    @settings(max_examples=80, deadline=None)
    def test_volume_conserved(self, arr):
        merged = merge_concurrent(arr).ops
        assert merged.total_volume == pytest.approx(arr.total_volume, rel=1e-9)

    @given(op_arrays())
    @settings(max_examples=80, deadline=None)
    def test_output_strictly_disjoint(self, arr):
        merged = merge_concurrent(arr).ops
        assert np.all(merged.starts[1:] > merged.ends[:-1])

    @given(op_arrays())
    @settings(max_examples=80, deadline=None)
    def test_union_length_preserved(self, arr):
        # merging must not change the set of covered instants
        merged = merge_concurrent(arr).ops
        assert union_length(merged) == pytest.approx(union_length(arr), rel=1e-9, abs=1e-9)

    @given(op_arrays())
    @settings(max_examples=80, deadline=None)
    def test_idempotent(self, arr):
        once = merge_concurrent(arr).ops
        twice = merge_concurrent(once).ops
        assert len(twice) == len(once)
        assert np.allclose(twice.starts, once.starts)
        assert np.allclose(twice.volumes, once.volumes)

    @given(op_arrays())
    @settings(max_examples=80, deadline=None)
    def test_never_increases_count(self, arr):
        assert merge_concurrent(arr).n_output <= len(arr)


class TestNeighborMergeProperties:
    @given(op_arrays(), st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_volume_conserved(self, arr, run_time):
        disjoint = merge_concurrent(arr).ops
        merged = merge_neighbors(disjoint, run_time).ops
        assert merged.total_volume == pytest.approx(arr.total_volume, rel=1e-9)

    @given(op_arrays(), st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_fixpoint_reached(self, arr, run_time):
        disjoint = merge_concurrent(arr).ops
        once = merge_neighbors(disjoint, run_time)
        twice = merge_neighbors(once.ops, run_time)
        assert twice.n_output == once.n_output

    @given(op_arrays(), st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_span_never_shrinks(self, arr, run_time):
        disjoint = merge_concurrent(arr).ops
        merged = merge_neighbors(disjoint, run_time).ops
        if len(disjoint):
            assert merged.starts[0] == pytest.approx(disjoint.starts[0])
            assert merged.ends[-1] == pytest.approx(float(np.max(disjoint.ends)))
