"""Unit tests for the combined fusion pipeline."""

import pytest

from repro.merge import preprocess_operations, preprocess_trace

from tests.conftest import make_record, make_trace, ops


class TestPreprocessOperations:
    def test_stage_counts_reported(self):
        arr = ops(
            (0.0, 10.0, 1.0),
            (5.0, 12.0, 1.0),   # overlaps first -> concurrent merge
            (12.5, 20.0, 1.0),  # gap 0.5 < 0.1% of 1000 -> neighbor merge
            (500.0, 510.0, 1.0),
        )
        result = preprocess_operations(arr, 1000.0)
        assert result.n_raw == 4
        assert result.n_after_concurrent == 3
        assert result.n_after_neighbor == 2
        assert result.reduction_ratio == pytest.approx(2.0)

    def test_empty(self):
        result = preprocess_operations(ops(), 1000.0)
        assert result.n_raw == 0
        assert result.ops.is_empty()


class TestPreprocessTrace:
    def test_extracts_requested_direction(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(0.0, 10.0, 100)),
                make_record(2, 1, read=(2.0, 12.0, 100)),
                make_record(3, 2, write=(500.0, 510.0, 50)),
            ]
        )
        reads = preprocess_trace(trace, "read")
        writes = preprocess_trace(trace, "write")
        assert reads.n_raw == 2 and reads.n_after_neighbor == 1
        assert writes.n_raw == 1
        assert reads.ops.total_volume == pytest.approx(200.0)
