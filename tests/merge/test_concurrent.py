"""Unit tests for concurrent-overlap merging (paper §III-B2a)."""

import pytest

from repro.merge import merge_concurrent

from tests.conftest import ops


class TestMergeConcurrent:
    def test_desynchronized_ranks_fuse_to_one_operation(self):
        # 4 ranks writing the same checkpoint slightly out of phase
        arr = ops(
            (100.0, 110.0, 25.0),
            (100.5, 110.5, 25.0),
            (101.2, 111.0, 25.0),
            (102.0, 112.0, 25.0),
        )
        result = merge_concurrent(arr)
        assert result.n_output == 1
        assert result.ops.volumes[0] == pytest.approx(100.0)
        assert result.ops.starts[0] == 100.0
        assert result.ops.ends[0] == 112.0

    def test_disjoint_operations_untouched(self):
        arr = ops((0.0, 1.0, 1.0), (10.0, 11.0, 2.0))
        result = merge_concurrent(arr)
        assert result.n_output == 2
        assert result.n_fused == 0

    def test_volume_conserved(self):
        arr = ops((0.0, 5.0, 10.0), (3.0, 8.0, 20.0), (7.0, 9.0, 5.0), (100.0, 101.0, 1.0))
        result = merge_concurrent(arr)
        assert result.ops.total_volume == pytest.approx(arr.total_volume)

    def test_reduction_ratio(self):
        arr = ops((0.0, 5.0, 1.0), (1.0, 6.0, 1.0), (2.0, 7.0, 1.0))
        assert merge_concurrent(arr).reduction_ratio == pytest.approx(3.0)

    def test_single_and_empty_inputs(self):
        assert merge_concurrent(ops()).n_output == 0
        assert merge_concurrent(ops((0.0, 1.0, 1.0))).n_output == 1

    def test_output_is_disjoint(self):
        arr = ops(*[(float(i) * 0.7, float(i) * 0.7 + 1.0, 1.0) for i in range(20)])
        merged = merge_concurrent(arr).ops
        for i in range(len(merged) - 1):
            assert merged.starts[i + 1] > merged.ends[i]
