"""Unit tests for neighbor merging (paper §III-B2b)."""

import pytest

from repro.merge import NeighborMergeConfig, merge_neighbors

from tests.conftest import ops


class TestNeighborMerge:
    def test_gap_below_runtime_fraction_merges(self):
        # gap = 0.5s, runtime 1000s -> 0.1% = 1.0s threshold
        arr = ops((0.0, 10.0, 5.0), (10.5, 20.0, 5.0))
        result = merge_neighbors(arr, 1000.0)
        assert result.n_output == 1
        assert result.ops.volumes[0] == pytest.approx(10.0)

    def test_gap_above_thresholds_kept(self):
        arr = ops((0.0, 10.0, 5.0), (100.0, 110.0, 5.0))
        result = merge_neighbors(arr, 1000.0)
        assert result.n_output == 2

    def test_gap_below_op_fraction_merges(self):
        # runtime small so the absolute rule is tight, but the gap is
        # under 1% of the current operation's duration
        arr = ops((0.0, 1000.0, 5.0), (1005.0, 1100.0, 5.0))
        result = merge_neighbors(arr, 1e9)
        cfg = NeighborMergeConfig(runtime_fraction=0.0)
        result = merge_neighbors(arr, 1e9, cfg)
        assert result.n_output == 1

    def test_growing_operation_absorbs_trailing_ops(self):
        # each merge lengthens the current op, allowing the next merge
        arr = ops(
            (0.0, 1000.0, 1.0),
            (1009.0, 1500.0, 1.0),   # gap 9 < 1% of 1000
            (1514.0, 1600.0, 1.0),   # gap 14 < 1% of 1514
        )
        cfg = NeighborMergeConfig(runtime_fraction=0.0)
        result = merge_neighbors(arr, 1.0, cfg)
        assert result.n_output == 1

    def test_slow_desynchronization_example(self):
        # the paper's motivating case: operations that slid apart until
        # they no longer overlap still merge when close enough
        arr = ops(*[(i * 100.0 + i * 0.05, i * 100.0 + 90.0, 10.0) for i in range(5)])
        result = merge_neighbors(arr, 100000.0)
        # gaps ~10s vs 0.1% of 100000 = 100s -> all merged
        assert result.n_output == 1

    def test_volume_conserved(self):
        arr = ops((0.0, 1.0, 3.0), (1.1, 2.0, 4.0), (50.0, 51.0, 5.0))
        result = merge_neighbors(arr, 1000.0)
        assert result.ops.total_volume == pytest.approx(12.0)

    def test_empty_and_single(self):
        assert merge_neighbors(ops(), 100.0).n_output == 0
        assert merge_neighbors(ops((0.0, 1.0, 1.0)), 100.0).n_output == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NeighborMergeConfig(runtime_fraction=-0.1)
        with pytest.raises(ValueError):
            NeighborMergeConfig(max_passes=0)

    def test_gap_negligible_for_either_op_short_then_long(self):
        # Regression: the gap rule compares against the duration of
        # *either* nearby operation (§III-B2b).  A previous version only
        # tested the growing left-hand operation, so a short op followed
        # by a long one was never merged even though the gap was well
        # under 1% of the long op's duration.
        arr = ops((0.0, 1.0, 2.0), (6.0, 1006.0, 3.0))  # gap 5 ≤ 1% of 1000
        cfg = NeighborMergeConfig(runtime_fraction=0.0)
        result = merge_neighbors(arr, 1e9, cfg)
        assert result.n_output == 1
        assert result.ops.volumes[0] == pytest.approx(5.0)

    def test_gap_negligible_for_either_op_long_then_short(self):
        # The mirrored order must merge identically — the rule is
        # symmetric in the two operations around the gap.
        arr = ops((0.0, 1000.0, 3.0), (1005.0, 1006.0, 2.0))
        cfg = NeighborMergeConfig(runtime_fraction=0.0)
        result = merge_neighbors(arr, 1e9, cfg)
        assert result.n_output == 1
        assert result.ops.volumes[0] == pytest.approx(5.0)

    def test_gap_large_for_both_ops_kept_in_both_orders(self):
        # Control for the either-op rule: a gap exceeding 1% of *both*
        # durations must stay unmerged regardless of order.
        cfg = NeighborMergeConfig(runtime_fraction=0.0)
        short_long = ops((0.0, 1.0, 2.0), (21.0, 1021.0, 3.0))  # gap 20 > 10
        long_short = ops((0.0, 1000.0, 3.0), (1020.0, 1021.0, 2.0))
        assert merge_neighbors(short_long, 1e9, cfg).n_output == 2
        assert merge_neighbors(long_short, 1e9, cfg).n_output == 2

    def test_zero_thresholds_merge_nothing(self):
        arr = ops((0.0, 1.0, 1.0), (1.5, 2.0, 1.0))
        cfg = NeighborMergeConfig(runtime_fraction=0.0, op_fraction=0.0)
        assert merge_neighbors(arr, 1000.0, cfg).n_output == 2
