"""Unit tests for the vectorized interval algebra."""

import numpy as np
import pytest

from repro.merge import (
    coalesce_groups,
    coverage_fraction,
    gaps,
    overlap_groups,
    total_span,
    union_length,
)

from tests.conftest import ops


class TestOverlapGroups:
    def test_disjoint_intervals_get_distinct_groups(self):
        arr = ops((0.0, 1.0, 1.0), (2.0, 3.0, 1.0), (4.0, 5.0, 1.0))
        assert overlap_groups(arr.starts, arr.ends).tolist() == [0, 1, 2]

    def test_overlapping_chain_is_one_group(self):
        arr = ops((0.0, 2.0, 1.0), (1.0, 4.0, 1.0), (3.0, 5.0, 1.0))
        assert overlap_groups(arr.starts, arr.ends).tolist() == [0, 0, 0]

    def test_touching_intervals_merge(self):
        arr = ops((0.0, 1.0, 1.0), (1.0, 2.0, 1.0))
        assert overlap_groups(arr.starts, arr.ends).tolist() == [0, 0]

    def test_containment(self):
        arr = ops((0.0, 10.0, 1.0), (2.0, 3.0, 1.0), (12.0, 13.0, 1.0))
        assert overlap_groups(arr.starts, arr.ends).tolist() == [0, 0, 1]

    def test_empty(self):
        assert len(overlap_groups(np.empty(0), np.empty(0))) == 0


class TestCoalesce:
    def test_merged_span_and_volume(self):
        arr = ops((0.0, 2.0, 10.0), (1.0, 5.0, 20.0))
        merged = coalesce_groups(arr, np.array([0, 0]))
        assert merged.starts[0] == 0.0
        assert merged.ends[0] == 5.0
        assert merged.volumes[0] == 30.0

    def test_group_length_mismatch_rejected(self):
        arr = ops((0.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            coalesce_groups(arr, np.array([0, 0]))


class TestMeasures:
    def test_union_length_ignores_overlap(self):
        arr = ops((0.0, 4.0, 1.0), (2.0, 6.0, 1.0))
        assert union_length(arr) == pytest.approx(6.0)

    def test_coverage_fraction(self):
        arr = ops((0.0, 25.0, 1.0))
        assert coverage_fraction(arr, 100.0) == pytest.approx(0.25)
        assert coverage_fraction(arr, 0.0) == 0.0

    def test_gaps(self):
        arr = ops((0.0, 1.0, 1.0), (3.0, 4.0, 1.0), (10.0, 11.0, 1.0))
        assert gaps(arr).tolist() == [2.0, 6.0]

    def test_total_span(self):
        arr = ops((5.0, 6.0, 1.0), (20.0, 30.0, 1.0))
        assert total_span(arr) == pytest.approx(25.0)
        assert total_span(ops()) == 0.0
