"""Taint engine unit tests: sources, sanitizers, sinks, summaries."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.context import ModuleContext
from repro.lint.dataflow import TaintEngine
from repro.lint.project import ProjectIndex


def _findings(tmp_path, **modules: str):
    entries = []
    for name, src in modules.items():
        src = textwrap.dedent(src)
        path = tmp_path / f"{name}.py"
        path.write_text(src)
        tree = ast.parse(src)
        ctx = ModuleContext.build(str(path), src, tree)
        entries.append((str(path), src, tree, ctx))
    engine = TaintEngine(ProjectIndex.build(entries))
    engine.solve()
    return engine.findings()


def test_same_function_source_to_sink(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        import struct

        def load(blob: bytes) -> list[int]:
            (n,) = struct.unpack("<I", blob[:4])
            return [i for i in range(n)]
        """,
    )
    assert len(found) == 1
    taint = found[0]
    assert taint.sink == "range()"
    assert "struct.unpack" in taint.steps[0].note
    assert "allocation sink" in taint.steps[-1].note


def test_bailing_guard_sanitizes(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        import struct

        def load(blob: bytes) -> list[int]:
            (n,) = struct.unpack("<I", blob[:4])
            if n > 1024:
                raise ValueError("too many")
            return [i for i in range(n)]
        """,
    )
    assert found == []


def test_validator_call_sanitizes(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        import struct

        def check_count(n: int) -> None: ...

        def load(blob: bytes) -> list[int]:
            (n,) = struct.unpack("<I", blob[:4])
            check_count(n)
            return [i for i in range(n)]
        """,
    )
    assert found == []


def test_bounding_min_sanitizes(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        import struct

        def load(blob: bytes) -> list[int]:
            (n,) = struct.unpack("<I", blob[:4])
            n = min(n, 1024)
            return [i for i in range(n)]
        """,
    )
    assert found == []


def test_cross_function_flow_through_return(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        import struct

        import numpy as np

        def _count(blob: bytes) -> int:
            (n,) = struct.unpack("<I", blob[:4])
            return n

        def load(blob: bytes):
            n = _count(blob)
            return np.empty(n)
        """,
    )
    assert len(found) == 1
    taint = found[0]
    assert taint.sink == "np.empty()"
    notes = [s.note for s in taint.steps]
    assert any("struct.unpack" in n for n in notes)
    assert any("returned by _count()" in n for n in notes)
    assert len(taint.steps) >= 3


def test_callee_side_sink_reported_at_caller(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        import struct

        def _alloc(n: int) -> bytearray:
            return bytearray(n)

        def load(blob: bytes) -> bytearray:
            (n,) = struct.unpack("<I", blob[:4])
            return _alloc(n)
        """,
    )
    assert len(found) == 1
    taint = found[0]
    assert taint.function.qualname == "mod.load"
    notes = [s.note for s in taint.steps]
    assert any("_alloc()" in n for n in notes)


def test_callee_validation_sanitizes_caller_argument(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        import struct

        def _check(n: int) -> None:
            if n > 1024:
                raise ValueError("bomb")

        def load(blob: bytes) -> list[int]:
            (n,) = struct.unpack("<I", blob[:4])
            _check(n)
            return [i for i in range(n)]
        """,
    )
    assert found == []


def test_cross_module_flow(tmp_path):
    found = _findings(
        tmp_path,
        decoder="""
        import struct

        def declared_count(blob: bytes) -> int:
            (n,) = struct.unpack("<Q", blob[:8])
            return n
        """,
        loader="""
        from decoder import declared_count

        def load(blob: bytes) -> list[int]:
            return [0] * declared_count(blob)
        """,
    )
    assert len(found) == 1
    assert "multiplication" in found[0].sink


def test_sequence_multiplication_sink(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        import struct

        def load(blob: bytes) -> bytes:
            (n,) = struct.unpack("<I", blob[:4])
            return b"\\x00" * n
        """,
    )
    assert len(found) == 1
    assert "multiplication" in found[0].sink


def test_clean_arithmetic_not_flagged(tmp_path):
    found = _findings(
        tmp_path,
        mod="""
        def load(count: int) -> list[int]:
            return [i for i in range(count * 2)]
        """,
    )
    assert found == []
