"""Baseline round-trip and filtering semantics."""

from __future__ import annotations

from repro.lint import Baseline
from repro.lint.findings import Finding, Severity


def _finding(msg: str, line: int = 1) -> Finding:
    return Finding("MOS005", "mod.py", line, 1, Severity.WARNING, msg)


def test_round_trip(tmp_path):
    findings = [_finding("a"), _finding("a", line=9), _finding("b")]
    baseline = Baseline.from_findings(findings)
    path = str(tmp_path / "baseline.json")
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.counts == baseline.counts
    # the duplicate message shares one fingerprint, counted twice
    assert sorted(loaded.counts.values()) == [1, 2]


def test_fingerprint_ignores_line_numbers():
    assert _finding("a", line=1).fingerprint() == _finding("a", line=99).fingerprint()
    assert _finding("a").fingerprint() != _finding("b").fingerprint()


def test_filter_suppresses_adopted_up_to_count():
    adopted = Baseline.from_findings([_finding("a")])
    kept, suppressed = adopted.filter([_finding("a"), _finding("a", line=5)])
    # one adopted occurrence: the second identical finding is new
    assert suppressed == 1
    assert [f.line for f in kept] == [5]


def test_filter_passes_unknown_findings_through():
    adopted = Baseline.from_findings([_finding("a")])
    kept, suppressed = adopted.filter([_finding("new problem")])
    assert suppressed == 0
    assert len(kept) == 1


def test_empty_baseline_filters_nothing():
    kept, suppressed = Baseline().filter([_finding("a")])
    assert suppressed == 0
    assert len(kept) == 1


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "fingerprints": {}}')
    try:
        Baseline.load(str(path))
    except ValueError as exc:
        assert "version" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
