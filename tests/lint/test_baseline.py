"""Baseline round-trip, filtering, and portable-fingerprint semantics."""

from __future__ import annotations

import json
import os

from repro.lint import Baseline
from repro.lint.findings import Finding, Severity, normalize_path


def _finding(msg: str, line: int = 1, path: str = "mod.py") -> Finding:
    return Finding("MOS005", path, line, 1, Severity.WARNING, msg)


def test_round_trip(tmp_path):
    findings = [_finding("a"), _finding("a", line=9), _finding("b")]
    baseline = Baseline.from_findings(findings)
    path = str(tmp_path / "baseline.json")
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.counts == baseline.counts
    # the duplicate message shares one fingerprint, counted twice
    assert sorted(loaded.counts.values()) == [1, 2]


def test_fingerprint_ignores_line_numbers():
    assert _finding("a", line=1).fingerprint() == _finding("a", line=99).fingerprint()
    assert _finding("a").fingerprint() != _finding("b").fingerprint()


def test_filter_suppresses_adopted_up_to_count():
    adopted = Baseline.from_findings([_finding("a")])
    kept, suppressed = adopted.filter([_finding("a"), _finding("a", line=5)])
    # one adopted occurrence: the second identical finding is new
    assert suppressed == 1
    assert [f.line for f in kept] == [5]


def test_filter_passes_unknown_findings_through():
    adopted = Baseline.from_findings([_finding("a")])
    kept, suppressed = adopted.filter([_finding("new problem")])
    assert suppressed == 0
    assert len(kept) == 1


def test_empty_baseline_filters_nothing():
    kept, suppressed = Baseline().filter([_finding("a")])
    assert suppressed == 0
    assert len(kept) == 1


def test_fingerprint_is_machine_portable():
    # A run from the repo root reporting absolute paths and a CI run
    # reporting relative ones must agree on the fingerprint.
    absolute = _finding("a", path=os.path.join(os.getcwd(), "src", "m.py"))
    relative = _finding("a", path=os.path.join("src", "m.py"))
    dotted = _finding("a", path="./src/m.py")
    assert absolute.fingerprint() == relative.fingerprint()
    assert dotted.fingerprint() == relative.fingerprint()


def test_normalize_path_leaves_foreign_absolute_paths():
    assert normalize_path("/somewhere/else/m.py") == "/somewhere/else/m.py"


def test_saved_baseline_is_version_two(tmp_path):
    path = str(tmp_path / "baseline.json")
    Baseline.from_findings([_finding("a")]).save(path)
    data = json.loads(open(path).read())
    assert data["version"] == 2


def test_legacy_v1_baseline_matches_through_old_fingerprint(tmp_path):
    # A version-1 file, written before path normalization, carries
    # fingerprints hashed over the raw (possibly absolute) path.
    finding = _finding("a", path=os.path.join(os.getcwd(), "mod.py"))
    assert finding.fingerprint() != finding.legacy_fingerprint()
    path = tmp_path / "v1.json"
    path.write_text(
        json.dumps(
            {"version": 1, "fingerprints": {finding.legacy_fingerprint(): 1}}
        )
    )
    loaded = Baseline.load(str(path))
    assert loaded.legacy
    kept, suppressed = loaded.filter([finding])
    assert suppressed == 1 and kept == []


def test_v2_baseline_does_not_probe_legacy_fingerprints(tmp_path):
    finding = _finding("a", path=os.path.join(os.getcwd(), "mod.py"))
    path = tmp_path / "v2.json"
    path.write_text(
        json.dumps(
            {"version": 2, "fingerprints": {finding.legacy_fingerprint(): 1}}
        )
    )
    loaded = Baseline.load(str(path))
    assert not loaded.legacy
    kept, suppressed = loaded.filter([finding])
    assert suppressed == 0 and len(kept) == 1


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "fingerprints": {}}')
    try:
        Baseline.load(str(path))
    except ValueError as exc:
        assert "version" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
