"""Registry hygiene: ids are dense, docstrings lead with their id, and
every rule is documented in docs/LINT.md."""

from __future__ import annotations

import os

import pytest

from repro.lint import REGISTRY, all_rule_ids

_DOCS = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "LINT.md"
)


def _docs_text() -> str:
    with open(os.path.normpath(_DOCS), "r", encoding="utf-8") as fh:
        return fh.read()


def test_rule_ids_are_dense_and_unique():
    ids = all_rule_ids()
    assert ids == sorted(set(ids)), "duplicate or unsorted rule ids"
    expected = [f"MOS{n:03d}" for n in range(1, len(ids) + 1)]
    assert ids == expected, "rule ids must be dense starting at MOS001"


@pytest.mark.parametrize("rule_id", sorted(REGISTRY))
def test_docstring_header_matches_id(rule_id):
    cls = REGISTRY[rule_id]
    doc = (cls.__doc__ or "").lstrip()
    assert doc.startswith(f"{rule_id}: "), (
        f"{cls.__name__} docstring must start with {rule_id!r}"
    )


@pytest.mark.parametrize("rule_id", sorted(REGISTRY))
def test_rule_metadata_complete(rule_id):
    cls = REGISTRY[rule_id]
    assert cls.name, f"{rule_id} has no name"
    assert cls.description, f"{rule_id} has no description"
    assert cls.fix_hint, f"{rule_id} has no fix hint"
    assert cls.scope in ("module", "project")


@pytest.mark.parametrize("rule_id", sorted(REGISTRY))
def test_every_rule_documented(rule_id):
    docs = _docs_text()
    assert f"| {rule_id} |" in docs, f"{rule_id} missing from rules table"
    assert f"### {rule_id} " in docs, f"{rule_id} has no docs section"


def test_docs_mention_no_unknown_rules():
    import re

    docs = _docs_text()
    documented = set(re.findall(r"### (MOS\d{3})", docs))
    assert documented == set(REGISTRY), (
        f"docs sections out of sync: {documented ^ set(REGISTRY)}"
    )
