"""Per-rule fixture tests: each bad fixture is caught by exactly its
intended rule; each good fixture is clean under *all* rules."""

from __future__ import annotations

import glob
import os

import pytest

from repro.lint import all_rule_ids, lint_paths
from repro.lint.engine import LintConfig

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

RULE_IDS = [f"MOS{n:03d}" for n in range(1, 21)]


def _fixture_files(rule_id: str, kind: str) -> list[str]:
    pattern = os.path.join(FIXTURES, rule_id.lower(), f"{kind}*.py")
    files = sorted(glob.glob(pattern))
    assert files, f"no {kind} fixture for {rule_id}"
    return files


def test_registry_holds_all_twenty_rules():
    assert all_rule_ids() == RULE_IDS


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_caught_by_exactly_its_rule(rule_id):
    result = lint_paths(_fixture_files(rule_id, "bad"))
    fired = {f.rule_id for f in result.findings}
    assert fired == {rule_id}, (
        f"{rule_id} bad fixture fired {sorted(fired)}; "
        f"findings: {[f.message for f in result.findings]}"
    )


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_clean_under_all_rules(rule_id):
    result = lint_paths(_fixture_files(rule_id, "good"))
    assert result.findings == [], [f.message for f in result.findings]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_select_isolates_one_rule(rule_id):
    config = LintConfig(select=frozenset({rule_id}))
    result = lint_paths([FIXTURES], config)
    fired = {f.rule_id for f in result.findings}
    assert fired == {rule_id}


def test_ignore_drops_a_rule():
    config = LintConfig(ignore=frozenset({"MOS001"}))
    result = lint_paths([FIXTURES], config)
    fired = {f.rule_id for f in result.findings}
    assert "MOS001" not in fired
    assert len(fired) == 19


def test_unknown_rule_id_rejected():
    config = LintConfig(select=frozenset({"MOS999"}))
    with pytest.raises(ValueError, match="MOS999"):
        lint_paths([FIXTURES], config)
