"""SARIF 2.1.0 output: schema shape, rule catalogue, codeFlows."""

from __future__ import annotations

import json

from repro.lint import REGISTRY, render_sarif
from repro.lint.engine import LintResult
from repro.lint.findings import Finding, Severity, Step


def _finding(trace: tuple[Step, ...] = ()) -> Finding:
    return Finding(
        rule_id="MOS014",
        path="src/mod.py",
        line=10,
        col=5,
        severity=Severity.ERROR,
        message="untrusted decoded value reaches range() unvalidated",
        fix_hint="validate it",
        trace=trace,
    )


def _run(doc: str) -> dict:
    parsed = json.loads(doc)
    assert parsed["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in parsed["$schema"]
    (run,) = parsed["runs"]
    return run


def test_empty_result_still_carries_rule_catalogue():
    run = _run(render_sarif(LintResult()))
    assert run["results"] == []
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted(REGISTRY)
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning")


def test_result_shape_and_fingerprint():
    run = _run(render_sarif(LintResult(findings=[_finding()])))
    (res,) = run["results"]
    assert res["ruleId"] == "MOS014"
    assert res["level"] == "error"
    loc = res["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/mod.py"
    assert loc["region"] == {"startLine": 10, "startColumn": 5}
    assert res["partialFingerprints"]["mosaicFingerprint/v2"] == (
        _finding().fingerprint()
    )
    assert "codeFlows" not in res


def test_trace_renders_as_code_flow():
    trace = (
        Step("src/a.py", 3, 1, "tainted: decoded from trace bytes"),
        Step("src/b.py", 9, 5, "reaches allocation sink range()"),
    )
    run = _run(render_sarif(LintResult(findings=[_finding(trace)])))
    (res,) = run["results"]
    (flow,) = res["codeFlows"]
    locations = flow["threadFlows"][0]["locations"]
    assert len(locations) == 2
    first = locations[0]["location"]
    assert first["physicalLocation"]["artifactLocation"]["uri"] == "src/a.py"
    assert first["message"]["text"].startswith("tainted")


def test_warning_maps_to_warning_level():
    finding = Finding(
        "MOS005", "m.py", 1, 1, Severity.WARNING, "unguarded division"
    )
    run = _run(render_sarif(LintResult(findings=[finding])))
    assert run["results"][0]["level"] == "warning"
