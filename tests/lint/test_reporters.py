"""Reporter snapshots: the text and JSON shapes tooling depends on."""

from __future__ import annotations

import json

from repro.lint import render_json, render_text
from repro.lint.engine import LintResult
from repro.lint.findings import Finding, Severity


def _result() -> LintResult:
    return LintResult(
        findings=[
            Finding(
                "MOS001",
                "src/repro/viz/x.py",
                12,
                5,
                Severity.ERROR,
                "whole-trace load load_binary() outside the TraceSource layer",
                fix_hint="iterate a TraceSource instead",
            ),
            Finding(
                "MOS005",
                "src/repro/viz/x.py",
                30,
                9,
                Severity.WARNING,
                "division by 'run_time' with no guard",
            ),
        ],
        n_files=3,
        n_suppressed=1,
    )


def test_text_snapshot():
    text = render_text(_result())
    assert text == (
        "src/repro/viz/x.py:12:5: MOS001 error: whole-trace load "
        "load_binary() outside the TraceSource layer\n"
        "    hint: iterate a TraceSource instead\n"
        "src/repro/viz/x.py:30:9: MOS005 warning: division by 'run_time' "
        "with no guard\n"
        "3 file(s) checked, 1 error(s), 1 warning(s), 1 suppressed inline "
        "[MOS001×1, MOS005×1]\n"
    )


def test_text_without_hints():
    text = render_text(_result(), show_hints=False)
    assert "hint:" not in text


def test_text_clean_run_summary_only():
    text = render_text(LintResult(n_files=5))
    assert text == "5 file(s) checked, 0 error(s), 0 warning(s)\n"


def test_json_snapshot():
    doc = json.loads(render_json(_result()))
    assert doc["summary"] == {
        "files": 3,
        "errors": 1,
        "warnings": 1,
        "suppressed": 1,
        "baselined": 0,
    }
    first = doc["findings"][0]
    assert first["rule"] == "MOS001"
    assert first["path"] == "src/repro/viz/x.py"
    assert first["line"] == 12
    assert first["severity"] == "error"
    assert len(first["fingerprint"]) == 16


def test_json_is_stable():
    assert render_json(_result()) == render_json(_result())
