"""Engine behavior: suppression comments, parse errors, discovery,
exit-code semantics, and self-hosting over the repository's own src/."""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.lint import Severity, lint_paths
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    LintConfig,
    LintResult,
    check_source,
    discover_files,
)
from repro.lint.findings import Finding

BAD_DIVISION = textwrap.dedent(
    """
    def _rate(volume: float, duration: float) -> float:
        return volume / duration
    """
)


def test_check_source_reports_finding():
    findings, n_suppressed = check_source("mod.py", BAD_DIVISION)
    assert [f.rule_id for f in findings] == ["MOS005"]
    assert n_suppressed == 0
    assert findings[0].line == 3


def test_inline_suppression_specific_rule():
    src = BAD_DIVISION.replace(
        "volume / duration", "volume / duration  # mosaic: disable=MOS005"
    )
    findings, n_suppressed = check_source("mod.py", src)
    assert findings == []
    assert n_suppressed == 1


def test_inline_suppression_all_rules():
    src = BAD_DIVISION.replace(
        "volume / duration", "volume / duration  # mosaic: disable"
    )
    findings, n_suppressed = check_source("mod.py", src)
    assert findings == []
    assert n_suppressed == 1


def test_inline_suppression_other_rule_does_not_apply():
    src = BAD_DIVISION.replace(
        "volume / duration", "volume / duration  # mosaic: disable=MOS004"
    )
    findings, _ = check_source("mod.py", src)
    assert [f.rule_id for f in findings] == ["MOS005"]


def test_suppression_marker_inside_string_is_inert():
    src = textwrap.dedent(
        """
        def _rate(volume: float, duration: float) -> str:
            _ = volume / duration
            return "# mosaic: disable=MOS005"
        """
    )
    findings, n_suppressed = check_source("mod.py", src)
    assert [f.rule_id for f in findings] == ["MOS005"]
    assert n_suppressed == 0


def test_syntax_error_becomes_parse_finding():
    findings, _ = check_source("broken.py", "def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule_id == PARSE_ERROR_RULE
    assert findings[0].severity is Severity.ERROR


def test_discover_files_skips_pycache_and_hidden(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "a.cpython-311.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "c.py").write_text("x = 1\n")
    files = discover_files([str(tmp_path)])
    assert [os.path.basename(f) for f in files] == ["a.py", "c.py"]


def test_discover_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        discover_files(["/nonexistent/definitely/missing"])


def test_exit_code_semantics():
    warning = Finding("MOS005", "m.py", 1, 1, Severity.WARNING, "w")
    error = Finding("MOS001", "m.py", 1, 1, Severity.ERROR, "e")
    only_warnings = LintResult(findings=[warning])
    assert only_warnings.exit_code(strict=False) == 0
    assert only_warnings.exit_code(strict=True) == 1
    with_error = LintResult(findings=[warning, error])
    assert with_error.exit_code(strict=False) == 1
    assert with_error.exit_code(strict=True) == 1
    clean = LintResult()
    assert clean.exit_code(strict=True) == 0


def test_self_hosting_src_is_strict_clean():
    """The acceptance gate: the repository lints itself clean."""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    result = lint_paths([os.path.normpath(src)], LintConfig(strict=True))
    assert result.findings == [], [
        f"{f.location()}: {f.rule_id} {f.message}" for f in result.findings
    ]
