"""Engine behavior: suppression comments, parse errors, discovery,
exit-code semantics, and self-hosting over the repository's own src/."""

from __future__ import annotations

import ast
import os
import textwrap
import time

import pytest

from repro.lint import Severity, lint_paths
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    LintConfig,
    LintResult,
    _expand_suppression_spans,
    check_source,
    discover_files,
)
from repro.lint.findings import Finding

BAD_DIVISION = textwrap.dedent(
    """
    def _rate(volume: float, duration: float) -> float:
        return volume / duration
    """
)


def test_check_source_reports_finding():
    findings, n_suppressed = check_source("mod.py", BAD_DIVISION)
    assert [f.rule_id for f in findings] == ["MOS005"]
    assert n_suppressed == 0
    assert findings[0].line == 3


def test_inline_suppression_specific_rule():
    src = BAD_DIVISION.replace(
        "volume / duration", "volume / duration  # mosaic: disable=MOS005"
    )
    findings, n_suppressed = check_source("mod.py", src)
    assert findings == []
    assert n_suppressed == 1


def test_inline_suppression_all_rules():
    src = BAD_DIVISION.replace(
        "volume / duration", "volume / duration  # mosaic: disable"
    )
    findings, n_suppressed = check_source("mod.py", src)
    assert findings == []
    assert n_suppressed == 1


def test_inline_suppression_other_rule_does_not_apply():
    src = BAD_DIVISION.replace(
        "volume / duration", "volume / duration  # mosaic: disable=MOS004"
    )
    findings, _ = check_source("mod.py", src)
    assert [f.rule_id for f in findings] == ["MOS005"]


def test_suppression_on_decorator_line_covers_decorated_def():
    src = textwrap.dedent(
        """
        import functools


        @functools.cache  # mosaic: disable=MOS010
        def run(items):
            return items
        """
    )
    findings, n_suppressed = check_source("mod.py", src)
    assert [f.rule_id for f in findings] == []
    assert n_suppressed == 1


def test_suppression_on_def_line_covers_decorator_span():
    # The span works in both directions: a comment on the signature
    # silences findings anchored to a decorator line of the same
    # statement (and everything else inside the span).
    src = "@deco\n@other\ndef f(\n    x,\n):\n    return x\n"
    table = _expand_suppression_spans(
        ast.parse(src), {3: frozenset({"MOS010"})}
    )
    # Span = first decorator (1) .. last signature line (5).
    for line in range(1, 5):
        assert table[line] == frozenset({"MOS010"})
    assert 6 not in table


def test_expanded_span_merges_ids_and_blanket_wins():
    src = "@deco\ndef f(x):\n    return x\n"
    table = _expand_suppression_spans(
        ast.parse(src), {1: frozenset({"MOS007"}), 2: None}
    )
    assert table[1] is None and table[2] is None


def test_undecorated_def_span_not_expanded():
    src = "def f(x):\n    return x\n"
    table = _expand_suppression_spans(
        ast.parse(src), {1: frozenset({"MOS010"})}
    )
    assert table == {1: frozenset({"MOS010"})}


def test_suppression_marker_inside_string_is_inert():
    src = textwrap.dedent(
        """
        def _rate(volume: float, duration: float) -> str:
            _ = volume / duration
            return "# mosaic: disable=MOS005"
        """
    )
    findings, n_suppressed = check_source("mod.py", src)
    assert [f.rule_id for f in findings] == ["MOS005"]
    assert n_suppressed == 0


def test_syntax_error_becomes_parse_finding():
    findings, _ = check_source("broken.py", "def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule_id == PARSE_ERROR_RULE
    assert findings[0].severity is Severity.ERROR


def test_discover_files_skips_pycache_and_hidden(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "a.cpython-311.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "c.py").write_text("x = 1\n")
    files = discover_files([str(tmp_path)])
    assert [os.path.basename(f) for f in files] == ["a.py", "c.py"]


def test_discover_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        discover_files(["/nonexistent/definitely/missing"])


def test_exit_code_semantics():
    warning = Finding("MOS005", "m.py", 1, 1, Severity.WARNING, "w")
    error = Finding("MOS001", "m.py", 1, 1, Severity.ERROR, "e")
    only_warnings = LintResult(findings=[warning])
    assert only_warnings.exit_code(strict=False) == 0
    assert only_warnings.exit_code(strict=True) == 1
    with_error = LintResult(findings=[warning, error])
    assert with_error.exit_code(strict=False) == 1
    assert with_error.exit_code(strict=True) == 1
    clean = LintResult()
    assert clean.exit_code(strict=True) == 0


def test_unknown_rule_id_in_ignore_rejected():
    # Regression: a typo'd --ignore used to be silently inert, leaving
    # the misspelled rule enabled while the user believed it off.
    config = LintConfig(ignore=frozenset({"MOS999"}))
    with pytest.raises(ValueError, match="MOS999"):
        config.active_rule_ids()


def test_unknown_rule_id_in_select_rejected():
    config = LintConfig(select=frozenset({"MOSNOPE"}))
    with pytest.raises(ValueError, match="MOSNOPE"):
        config.active_rule_ids()


def test_self_hosting_src_is_strict_clean():
    """The acceptance gate: the repository lints itself clean — and
    fast enough to gate every CI run (well under the 60s budget)."""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    started = time.monotonic()
    result = lint_paths([os.path.normpath(src)], LintConfig(strict=True))
    elapsed = time.monotonic() - started
    assert result.findings == [], [
        f"{f.location()}: {f.rule_id} {f.message}" for f in result.findings
    ]
    assert elapsed < 60.0, f"self-host lint took {elapsed:.1f}s (budget 60s)"
