"""Fixture: every awaited stream read carries a deadline (MOS020)."""

import asyncio


async def read_request(reader: object) -> bytes:
    # bounded form: the read is an argument of wait_for, not a bare await
    request_line = await asyncio.wait_for(reader.readline(), 10.0)
    return request_line


async def read_body(reader: object, length: int) -> bytes:
    async with asyncio.timeout(30.0):
        # bounded form: the enclosing block enforces the deadline
        body = await reader.readexactly(length)
    return body


async def drain_stream(reader: object) -> bytes:
    chunk = await asyncio.wait_for(reader.read(65536), 5.0)
    return chunk
