"""Fixture: awaited stream reads with no deadline (MOS020)."""


async def read_request(reader: object) -> bytes:
    # a bare awaited readline waits as long as the peer stalls it
    request_line = await reader.readline()
    return request_line


async def read_body(reader: object, length: int) -> bytes:
    # slow-loris body: one byte a minute pins this coroutine
    body = await reader.readexactly(length)
    return body


async def drain_stream(reader: object) -> bytes:
    chunk = await reader.read(65536)
    return chunk
