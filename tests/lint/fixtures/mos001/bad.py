"""Fixture: whole-trace load outside the TraceSource layer (MOS001)."""

from repro.darshan.io_binary import load_binary


def _peek_nprocs(path: str) -> int:
    trace = load_binary(path)
    return trace.meta.nprocs
