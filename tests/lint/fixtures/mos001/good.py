"""Fixture: lazy TraceSource access, no whole-trace load (MOS001 clean)."""

from repro.darshan.source import DirectorySource


def _count_traces(path: str) -> int:
    return DirectorySource(path).count()
