"""Fixture: enum dispatch with an explicit default branch (MOS003 clean)."""

from repro.darshan.validate import Violation


def _describe(v: Violation) -> str:
    if v == Violation.UNREADABLE:
        return "file could not be decoded"
    elif v == Violation.NEGATIVE_RUNTIME:
        return "job ends before it starts"
    else:
        return v.value
