"""Fixture: non-exhaustive dispatch over Violation, no default (MOS003)."""

from repro.darshan.validate import Violation


def _describe(v: Violation) -> str:
    if v == Violation.UNREADABLE:
        return "file could not be decoded"
    elif v == Violation.NEGATIVE_RUNTIME:
        return "job ends before it starts"
    elif v in (Violation.TIMESTAMP_BEFORE_START, Violation.TIMESTAMP_AFTER_END):
        return "operation outside the job window"
    return ""
