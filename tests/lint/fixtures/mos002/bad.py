"""Fixture: unbounded accumulation into module scope (MOS002)."""

_SEEN_JOBS: list[str] = []


def _remember(job: str) -> None:
    _SEEN_JOBS.append(job)
