"""Fixture: bounded per-call accumulation (MOS002 clean)."""


def _dedupe(jobs: list[str]) -> list[str]:
    seen: list[str] = []
    for job in jobs:
        if job not in seen:
            seen.append(job)
    return seen
