"""Fixture: pipeline stage runs without consulting the governor (MOS016).

``run_pipeline_demo`` enters a stage block and hands the batch to a
worker that never looks at a ResourceBudget — nothing bounds its work
if the trace is adversarial.
"""

import contextlib
from typing import Iterator


@contextlib.contextmanager
def _stage(name: str) -> Iterator[None]:
    yield


def _categorize_batch(items: list[bytes]) -> list[int]:
    return [len(item) for item in items]


def run_pipeline_demo(items: list[bytes]) -> list[int]:
    with _stage("categorize"):
        return _categorize_batch(items)
