"""Fixture: every stage worker consults the governor (MOS016 clean).

The stage worker takes the budget and checks the deadline before doing
work, so the governor can degrade or abort it.
"""

import contextlib
from typing import Iterator

from repro.core.governor import ResourceBudget


@contextlib.contextmanager
def _stage(name: str) -> Iterator[None]:
    yield


def _categorize_batch(items: list[bytes], budget: ResourceBudget) -> list[int]:
    budget.check_deadline()
    return [len(item) for item in items]


def run_pipeline_demo(items: list[bytes], budget: ResourceBudget) -> list[int]:
    with _stage("categorize"):
        return _categorize_batch(items, budget)
