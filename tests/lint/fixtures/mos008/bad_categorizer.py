"""Fixture: inline magic threshold in a categorization module (MOS008)."""


def _is_significant(total_bytes: float) -> bool:
    return total_bytes > 104857600.0
