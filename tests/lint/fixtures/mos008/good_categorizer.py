"""Fixture: threshold read from MosaicConfig (MOS008 clean)."""

from repro.core.thresholds import MosaicConfig


def _is_significant(total_bytes: float, config: MosaicConfig) -> bool:
    return total_bytes > config.insignificant_bytes
