"""Fixture: guarded division by a duration (MOS005 clean)."""


def _bandwidth(volume: float, duration: float) -> float:
    return volume / duration if duration > 0 else 0.0
