"""Fixture: division by a duration with no guard (MOS005)."""


def _bandwidth(volume: float, duration: float) -> float:
    return volume / duration
