"""Fixture: unpicklable callable shipped to the process pool (MOS007)."""

from repro.parallel.executor import parallel_map


def _double_all(items: list[int]) -> object:
    return parallel_map(lambda x: x * 2, items)
