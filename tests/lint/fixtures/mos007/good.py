"""Fixture: module-level callable via partial for the pool (MOS007 clean)."""

from functools import partial

from repro.parallel.executor import parallel_map


def _scale(x: int, factor: int) -> int:
    return x * factor


def _double_all(items: list[int]) -> object:
    return parallel_map(partial(_scale, factor=2), items)
