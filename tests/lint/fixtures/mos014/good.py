"""Fixture: decoded count is validated before allocation (MOS014 clean).

Same shape as the bad fixture, but the helper bounds the decoded count
against a declared limit before returning it, so every downstream
allocation is backed by a visible guard.
"""

import struct

import numpy as np

_MAX_RECORDS = 1 << 20


def _parse_count(blob: bytes) -> int:
    (n_records,) = struct.unpack("<Q", blob[:8])
    if n_records > _MAX_RECORDS:
        raise ValueError(f"implausible record count {n_records}")
    return n_records


def _load(blob: bytes) -> np.ndarray:
    n = _parse_count(blob)
    values = np.empty(n, dtype=np.float64)
    for i in range(n):
        values[i] = float(i)
    return values
