"""Fixture: untrusted decoded count reaches allocation sinks (MOS014).

The record count is decoded straight out of trace bytes and flows —
through a helper's return value — into ``np.empty`` and ``range``
without ever being validated against a limit.
"""

import struct

import numpy as np


def _parse_count(blob: bytes) -> int:
    (n_records,) = struct.unpack("<Q", blob[:8])
    return n_records


def _load(blob: bytes) -> np.ndarray:
    n = _parse_count(blob)
    values = np.empty(n, dtype=np.float64)
    for i in range(n):
        values[i] = float(i)
    return values
