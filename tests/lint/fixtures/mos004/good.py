"""Fixture: tolerance-based timestamp comparison (MOS004 clean)."""

from repro.core.thresholds import close_to


def _is_instantaneous(start_time: float, end_time: float) -> bool:
    return close_to(start_time, end_time)
