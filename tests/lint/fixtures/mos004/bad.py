"""Fixture: exact float equality on timestamps (MOS004)."""


def _is_instantaneous(start_time: float, end_time: float) -> bool:
    return start_time == end_time
