"""Fixture: resilience contracts honoured (MOS011 clean)."""

from concurrent.futures import ProcessPoolExecutor

from repro.parallel.retry import FailureKind


def _work(x: int) -> int:
    return x + 1


def _bounded_wait(pool: ProcessPoolExecutor) -> int:
    fut = pool.submit(_work, 1)
    return fut.result(timeout=30.0)


def _describe(kind: FailureKind) -> str:
    if kind == FailureKind.EXCEPTION:
        return "exception"
    elif kind == FailureKind.TIMEOUT:
        return "timeout"
    elif kind == FailureKind.CRASH:
        return "crash"
    elif kind == FailureKind.POISON:
        return "poison"
    return "unknown"
