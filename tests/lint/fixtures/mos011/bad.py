"""Fixture: resilience contracts violated (MOS011)."""

from concurrent.futures import ProcessPoolExecutor

from repro.parallel.retry import FailureKind


def _work(x: int) -> int:
    return x + 1


def _blocking_wait(pool: ProcessPoolExecutor) -> int:
    fut = pool.submit(_work, 1)
    return fut.result()  # no timeout: blocks forever on a hung worker


def _describe(kind: FailureKind) -> str:
    # missing POISON and no default
    if kind == FailureKind.EXCEPTION:
        return "exception"
    elif kind == FailureKind.TIMEOUT:
        return "timeout"
    elif kind == FailureKind.CRASH:
        return "crash"
    return ""
