"""Fixture: workers open their own handles (MOS015 clean).

Only the path — a plain picklable string — crosses the process
boundary; each worker maps the file itself and closes it before
returning.
"""

import functools
import mmap

from repro.parallel.executor import parallel_imap


def _worker(path: str, row: int) -> int:
    with open(path, "rb") as fh:
        handle = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            return handle[row]
        finally:
            handle.close()


def _run(path: str, rows: list[int]) -> list[int]:
    fn = functools.partial(_worker, path)
    return list(parallel_imap(fn, rows, max_workers=4))
