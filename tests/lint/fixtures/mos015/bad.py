"""Fixture: mmap handle captured by a pool worker (MOS015).

The mmap is created in the parent process and bound into the worker
partial; after fork/spawn each worker inherits (or fails to inherit) a
kernel object that was never meant to cross the process boundary.
"""

import functools
import mmap

from repro.parallel.executor import parallel_imap


def _worker(handle: mmap.mmap, row: int) -> int:
    return handle[row]


def _run(path: str, rows: list[int]) -> list[int]:
    fh = open(path, "rb")
    mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    fn = functools.partial(_worker, mm)
    return list(parallel_imap(fn, rows, max_workers=4))
