"""Fixture: columnar zero-copy contract honoured (MOS013)."""

import mmap
import os


def _attach_store(path: str, max_payload_bytes: int) -> mmap.mmap:
    # size checked against the decode limit, then viewed — not copied
    if os.path.getsize(path) > max_payload_bytes:
        raise ValueError("store exceeds decode limit")
    with open(path, "rb") as fh:
        return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)


def _read_header(path: str, max_header_bytes: int) -> bytes:
    # bounded read: the size comes from a DecodeLimits-derived cap
    with open(path, "rb") as fh:
        return fh.read(max_header_bytes)


def _slurp_checked(path: str, max_payload_bytes: int) -> bytes:
    # whole-file read is fine once the size cleared the cap
    if os.path.getsize(path) > max_payload_bytes:
        raise ValueError("store exceeds decode limit")
    with open(path, "rb") as fh:
        return fh.read()
