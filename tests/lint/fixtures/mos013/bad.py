"""Fixture: columnar zero-copy contract violated (MOS013)."""

import numpy as np


def _load_index(path: str) -> np.ndarray:
    # materializes the whole section before any validation runs
    return np.load(path)


def _load_ops(path: str) -> np.ndarray:
    return np.fromfile(path, dtype=np.float64)


def _slurp_store(path: str) -> bytes:
    # argument-less read(): whatever the file declares, in one go
    with open(path, "rb") as fh:
        return fh.read()
