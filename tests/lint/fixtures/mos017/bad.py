"""Fixture: TraceFormatError escapes an unguarded call chain (MOS017).

``_decode_record`` raises on truncated input, and ``_summarize`` calls
it with no handler anywhere on the path — a single corrupt record
aborts the whole batch instead of being routed to the dispatch
boundary.
"""


class TraceFormatError(ValueError):
    pass


def _decode_record(blob: bytes) -> bytes:
    if len(blob) < 8:
        raise TraceFormatError("truncated record")
    return blob[8:]


def _summarize(blobs: list[bytes]) -> list[int]:
    return [len(_decode_record(b)) for b in blobs]
