"""Fixture: format errors are caught and re-raised as typed errors
(MOS017 clean).

The caller wraps the decoding call in a handler and converts the
format error into the layer's own exception, preserving the cause.
"""


class TraceFormatError(ValueError):
    pass


class _CorpusError(RuntimeError):
    pass


def _decode_record(blob: bytes) -> bytes:
    if len(blob) < 8:
        raise TraceFormatError("truncated record")
    return blob[8:]


def _summarize(blobs: list[bytes]) -> list[int]:
    sizes: list[int] = []
    for blob in blobs:
        try:
            sizes.append(len(_decode_record(blob)))
        except TraceFormatError as exc:
            raise _CorpusError("bad corpus record") from exc
    return sizes
