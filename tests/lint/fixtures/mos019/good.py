"""Fixture: blocking work pushed through the executor (MOS019)."""

import asyncio
import json


def _read_results(path: str) -> str:
    # sync helper: runs on an executor thread, never on the loop
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read(4096)


async def handle_results(writer: object, path: str) -> None:
    loop = asyncio.get_running_loop()
    # the blocking callable crosses the loop boundary by reference
    payload = await loop.run_in_executor(None, _read_results, path)
    writer.write(payload.encode())
    await writer.drain()


async def throttle() -> None:
    await asyncio.sleep(0.25)


async def run_job(run_pipeline_store: object, store_path: str) -> dict:
    loop = asyncio.get_running_loop()
    result = await loop.run_in_executor(None, run_pipeline_store, store_path)
    return json.loads(json.dumps(result.metrics))
