"""Fixture: blocking I/O inside service coroutines (MOS019)."""

import json
import time


async def handle_results(writer: object) -> None:
    # a file open inside a coroutine stalls every connected client
    with open("/var/lib/mosaic/results.jsonl", "r", encoding="utf-8") as fh:
        payload = fh.read(4096)
    writer.write(payload.encode())


async def throttle() -> None:
    # time.sleep blocks the loop; asyncio.sleep is the awaitable form
    time.sleep(0.25)


async def run_job(run_pipeline_store: object, store_path: str) -> dict:
    # the whole pipeline runs on the event loop: the server serializes
    result = run_pipeline_store(store_path)
    return json.loads(json.dumps(result.metrics))
