"""Fixture: durable writes outside the repro.io seam (MOS018)."""

import json
import os


def save_cache(path: str, payload: dict) -> None:
    # direct truncate-mode open: a crash mid-dump leaves a torn file
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def append_journal(path: str, line: str) -> None:
    # append without flush/fsync discipline: settled entries can vanish
    with open(path, mode="a", encoding="utf-8") as fh:
        fh.write(line + "\n")


def publish(tmp: str, out: str) -> None:
    # rename without temp-file fsync or parent-dir fsync: torn rename
    os.replace(tmp, out)


def publish_legacy(tmp: str, out: str) -> None:
    os.rename(tmp, out)
