"""Fixture: durable writes routed through the repro.io seam (MOS018)."""

import json


def load_cache(path: str) -> dict:
    # reads are out of scope: only mutation needs the durability seam
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def peek(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read(16)


def save_cache(atomic_write_text: object, path: str, payload: dict) -> None:
    # the sanctioned road: temp + fsync + rename + parent-dir fsync
    atomic_write_text(path, json.dumps(payload))


def append_journal(durable_append: object, path: str, line: str) -> None:
    with durable_append(path) as appender:
        appender.append_line(line)


def open_via_seam(io: object, path: str, mode: str) -> object:
    # a *variable* mode is the seam's business, not the caller's
    return io.open(path, mode)
