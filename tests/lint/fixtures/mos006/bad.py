"""Fixture: in-place mutation of a frozen record type (MOS006)."""

from repro.darshan.records import FileRecord


def _zero_reads(rec: FileRecord) -> None:
    rec.bytes_read = 0
