"""Fixture: records rebuilt instead of mutated (MOS006 clean)."""

import dataclasses

from repro.darshan.records import FileRecord


def _zeroed_reads(rec: FileRecord) -> FileRecord:
    return dataclasses.replace(rec, bytes_read=0, reads=0)
