"""Fixture: swallowed corruption errors (MOS009)."""

from repro.darshan.errors import TraceFormatError


def _load_quietly(path: str) -> str | None:
    try:
        return path.upper()
    except TraceFormatError:
        return None
