"""Fixture: corruption errors re-raised outside the scan path (MOS009 clean)."""

from repro.darshan.errors import TraceFormatError


def _load_or_fail(path: str) -> str:
    try:
        return path.upper()
    except TraceFormatError as exc:
        raise TraceFormatError(f"while loading {path}: {exc}") from exc
