"""Fixture: fully annotated public API, unannotated private helper
(MOS010 clean — the rule only holds the public surface)."""


def transfer_rate(volume: float, duration: float) -> float:
    return volume * duration


def _scratch(x):
    return x
