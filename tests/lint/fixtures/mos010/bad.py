"""Fixture: public function with incomplete annotations (MOS010)."""


def transfer_rate(volume, duration: float):
    return volume * duration
