"""Fixture: input-hardening contracts violated (MOS012)."""

import struct
from typing import BinaryIO

from repro.core.governor import DegradationLevel


def _describe(level: DegradationLevel) -> str:
    # missing MINIMAL and FLAGGED, no default
    if level == DegradationLevel.FULL:
        return "everything ran"
    elif level == DegradationLevel.COARSE:
        return "subsampled"
    return ""


def _label(level: DegradationLevel) -> str:
    match level:
        case DegradationLevel.FULL:
            return "full"
        case DegradationLevel.COARSE:
            return "coarse"
        case DegradationLevel.MINIMAL:
            return "minimal"
    return ""


def _decode_records(fh: BinaryIO) -> bytes:
    header = fh.read(4)
    (n_records,) = struct.unpack("<I", header)
    # believes the header's declared count: the allocation bomb
    return fh.read(n_records * 112)
