"""Fixture: input-hardening contracts honoured (MOS012)."""

import struct
from typing import BinaryIO

from repro.core.governor import DegradationLevel


def _describe(level: DegradationLevel) -> str:
    # exhaustive: every ladder rung handled
    if level == DegradationLevel.FULL:
        return "everything ran"
    elif level == DegradationLevel.COARSE:
        return "subsampled"
    elif level == DegradationLevel.MINIMAL:
        return "cheap axes only"
    elif level == DegradationLevel.FLAGGED:
        return "identity only"
    return ""


def _label(level: DegradationLevel) -> str:
    match level:
        case DegradationLevel.FULL:
            return "full"
        case _:
            return "degraded"


def _read_checked(fh: BinaryIO, n: int, remaining: int, what: str) -> bytes:
    if n > remaining:
        raise ValueError(what)
    return fh.read(n)


def _decode_records(fh: BinaryIO, remaining: int, max_record_bytes: int) -> bytes:
    header = fh.read(4)
    (n_records,) = struct.unpack("<I", header)
    n = min(n_records * 112, max_record_bytes)
    return _read_checked(fh, n, remaining, "record section")
