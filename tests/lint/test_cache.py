"""Warm-run cache: hits skip analysis, any relevant change invalidates."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import lint_paths
from repro.lint.cache import LintCache
from repro.lint.engine import LintConfig

BAD_DIVISION = textwrap.dedent(
    """
    def _rate(volume: float, duration: float) -> float:
        return volume / duration
    """
)


def _write(tmp_path, name: str, source: str) -> str:
    path = tmp_path / name
    path.write_text(source)
    return str(path)


def test_warm_run_reproduces_findings(tmp_path):
    target = _write(tmp_path, "mod.py", BAD_DIVISION)
    cache = str(tmp_path / "cache.json")
    cold = lint_paths([target], cache_path=cache)
    warm = lint_paths([target], cache_path=cache)
    assert [f.fingerprint() for f in warm.findings] == [
        f.fingerprint() for f in cold.findings
    ]
    assert warm.n_files == cold.n_files == 1


def test_warm_run_skips_analysis(tmp_path, monkeypatch):
    target = _write(tmp_path, "mod.py", BAD_DIVISION)
    cache = str(tmp_path / "cache.json")
    lint_paths([target], cache_path=cache)

    import repro.lint.engine as engine_mod

    def _boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("analysis ran on a warm cache")

    monkeypatch.setattr(engine_mod, "_run_module_rules", _boom)
    monkeypatch.setattr(engine_mod, "_run_project_rules", _boom)
    warm = lint_paths([target], cache_path=cache)
    assert [f.rule_id for f in warm.findings] == ["MOS005"]


def test_content_change_invalidates_file_entry(tmp_path):
    target = _write(tmp_path, "mod.py", BAD_DIVISION)
    cache = str(tmp_path / "cache.json")
    assert lint_paths([target], cache_path=cache).findings
    _write(
        tmp_path,
        "mod.py",
        BAD_DIVISION.replace(
            "volume / duration", "volume / duration if duration else 0.0"
        ),
    )
    assert lint_paths([target], cache_path=cache).findings == []


def test_rule_set_change_invalidates_cache(tmp_path):
    target = _write(tmp_path, "mod.py", BAD_DIVISION)
    cache = str(tmp_path / "cache.json")
    lint_paths([target], cache_path=cache)
    narrowed = lint_paths(
        [target], LintConfig(select=frozenset({"MOS004"})), cache_path=cache
    )
    assert narrowed.findings == []
    # And back: the MOS004-only cache must not serve the full run.
    full = lint_paths([target], cache_path=cache)
    assert [f.rule_id for f in full.findings] == ["MOS005"]


def test_corrupt_cache_is_ignored(tmp_path):
    target = _write(tmp_path, "mod.py", BAD_DIVISION)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    result = lint_paths([target], cache_path=str(cache))
    assert [f.rule_id for f in result.findings] == ["MOS005"]
    # The damaged file was replaced with a valid one.
    assert json.loads(cache.read_text())["format"] == 1


def test_wrong_engine_version_starts_empty(tmp_path):
    cache_path = str(tmp_path / "cache.json")
    cache = LintCache(cache_path, LintCache.rules_key(["MOS005"]))
    cache.store_file("mod.py", "sha", [], 0)
    cache.save()
    data = json.loads(open(cache_path).read())
    data["rules_key"] = "stale"
    with open(cache_path, "w") as fh:
        json.dump(data, fh)
    reloaded = LintCache.load(cache_path, ["MOS005"])
    assert reloaded.files == {}


def test_project_key_is_path_and_content_sensitive():
    base = {"a.py": "h1", "b.py": "h2"}
    assert LintCache.project_key(base) == LintCache.project_key(dict(base))
    assert LintCache.project_key(base) != LintCache.project_key(
        {"a.py": "h1", "b.py": "CHANGED"}
    )
    assert LintCache.project_key(base) != LintCache.project_key(
        {"a.py": "h1"}
    )


def test_suppressed_counts_survive_the_cache(tmp_path):
    source = BAD_DIVISION.replace(
        "volume / duration", "volume / duration  # mosaic: disable=MOS005"
    )
    target = _write(tmp_path, "mod.py", source)
    cache = str(tmp_path / "cache.json")
    cold = lint_paths([target], cache_path=cache)
    warm = lint_paths([target], cache_path=cache)
    assert cold.n_suppressed == warm.n_suppressed == 1
    assert warm.findings == []
