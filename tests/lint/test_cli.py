"""The ``lint`` subcommand end to end through the real CLI entry point."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli.main import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
BAD = os.path.join(FIXTURES, "mos005", "bad.py")
GOOD = os.path.join(FIXTURES, "mos005", "good.py")


def test_lint_clean_file_exits_zero(capsys):
    assert main(["lint", GOOD]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_lint_warning_exits_zero_without_strict(capsys):
    assert main(["lint", BAD]) == 0
    assert "MOS005" in capsys.readouterr().out


def test_lint_strict_fails_on_warning(capsys):
    assert main(["lint", BAD, "--strict"]) == 1
    assert "MOS005" in capsys.readouterr().out


def test_lint_json_output(capsys):
    assert main(["lint", BAD, "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["warnings"] == 1
    assert doc["findings"][0]["rule"] == "MOS005"


def test_lint_select_and_ignore(capsys):
    assert main(["lint", BAD, "--strict", "--select", "MOS004"]) == 0
    assert main(["lint", BAD, "--strict", "--ignore", "MOS005"]) == 0


def test_lint_baseline_workflow(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    # adopt the current findings...
    assert main(["lint", BAD, "--write-baseline", baseline]) == 0
    assert "adopted 1 finding(s)" in capsys.readouterr().out
    # ...and the next strict run is green
    assert main(["lint", BAD, "--strict", "--baseline", baseline]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_lint_corrupt_baseline_aborts(tmp_path):
    baseline = tmp_path / "corrupt.json"
    baseline.write_text("not json")
    with pytest.raises(SystemExit):
        main(["lint", BAD, "--baseline", str(baseline)])


def test_lint_missing_path_aborts():
    with pytest.raises(SystemExit):
        main(["lint", "/nonexistent/definitely/missing"])


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for n in range(1, 19):
        assert f"MOS{n:03d}" in out


def test_lint_sarif_format(capsys):
    assert main(["lint", BAD, "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    assert [r["ruleId"] for r in run["results"]] == ["MOS005"]


def test_lint_sarif_file_alongside_text(tmp_path, capsys):
    sarif = str(tmp_path / "lint.sarif")
    assert main(["lint", BAD, "--sarif", sarif]) == 0
    assert "MOS005" in capsys.readouterr().out  # text still on stdout
    doc = json.loads(open(sarif).read())
    assert doc["runs"][0]["results"]


def test_lint_explain_prints_contract_and_isolates_rule(capsys):
    assert main(["lint", GOOD, "--explain", "mos014"]) == 0
    out = capsys.readouterr().out
    assert "MOS014 — tainted-allocation" in out
    assert "MOS014:" in out  # the docstring contract
    assert "fix:" in out


def test_lint_explain_unknown_rule_aborts():
    with pytest.raises(SystemExit):
        main(["lint", GOOD, "--explain", "MOS999"])


def test_lint_explain_shows_trace(capsys):
    bad14 = os.path.join(FIXTURES, "mos014", "bad.py")
    assert main(["lint", bad14, "--explain", "MOS014"]) == 1
    out = capsys.readouterr().out
    assert "[1]" in out and "struct.unpack" in out


def test_lint_cache_flag_round_trip(tmp_path, capsys):
    cache = str(tmp_path / "cache.json")
    assert main(["lint", BAD, "--cache", cache]) == 0
    first = capsys.readouterr().out
    assert os.path.exists(cache)
    assert main(["lint", BAD, "--cache", cache]) == 0
    assert capsys.readouterr().out == first
