"""MOS014–MOS017 end to end: seeded reproductions of the real bug
classes, with full source→sink path assertions."""

from __future__ import annotations

import textwrap

from repro.lint import lint_paths
from repro.lint.engine import LintConfig


def _lint(tmp_path, rule_id: str, **modules: str):
    paths = []
    for name, src in modules.items():
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(src))
        paths.append(str(path))
    config = LintConfig(select=frozenset({rule_id}))
    return lint_paths(paths, config).findings


def test_mos014_allocation_bomb_reproduction(tmp_path):
    """The MOSD bomb: a 40-byte payload declaring 4G records, with the
    decode and the allocation in different modules."""
    findings = _lint(
        tmp_path,
        "MOS014",
        header="""
        import struct

        def declared_records(blob: bytes) -> int:
            (n_records,) = struct.unpack("<Q", blob[32:40])
            return n_records
        """,
        loader="""
        import numpy as np

        from header import declared_records

        def load(blob: bytes):
            n = declared_records(blob)
            return np.empty(n, dtype=np.float64)
        """,
    )
    assert [f.rule_id for f in findings] == ["MOS014"]
    finding = findings[0]
    assert "np.empty()" in finding.message
    assert "unvalidated" in finding.message
    notes = [s.note for s in finding.trace]
    assert "struct.unpack" in notes[0]
    assert any("declared_records" in n for n in notes)
    assert "allocation sink" in notes[-1]
    # The trace crosses files: source in header.py, sink in loader.py.
    assert {s.path.rsplit("/", 1)[-1] for s in finding.trace} == {
        "header.py",
        "loader.py",
    }


def test_mos014_validated_flow_is_clean(tmp_path):
    findings = _lint(
        tmp_path,
        "MOS014",
        loader="""
        import struct

        import numpy as np

        _CAP = 1 << 20

        def load(blob: bytes):
            (n,) = struct.unpack("<Q", blob[:8])
            if n > _CAP:
                raise ValueError("implausible count")
            return np.empty(n, dtype=np.float64)
        """,
    )
    assert findings == []


def test_mos015_fork_mmap_reproduction(tmp_path):
    """The pre-worktree-isolation pattern: parent maps the store, the
    worker partial captures the map across the fork."""
    findings = _lint(
        tmp_path,
        "MOS015",
        runner="""
        import functools
        import mmap

        from repro.parallel.executor import parallel_map

        def _score(handle: mmap.mmap, row: int) -> int:
            return handle[row]

        def run(path: str, rows: list[int]) -> list[int]:
            fh = open(path, "rb")
            handle = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            worker = functools.partial(_score, handle)
            return parallel_map(worker, rows)
        """,
    )
    assert [f.rule_id for f in findings] == ["MOS015"]
    finding = findings[0]
    assert "'handle'" in finding.message
    notes = [s.note for s in finding.trace]
    assert any("created here" in n or "mmap" in n for n in notes[:1])
    assert "captured by the worker callable" in notes[-1]


def test_mos015_descriptor_shipping_is_clean(tmp_path):
    findings = _lint(
        tmp_path,
        "MOS015",
        runner="""
        import functools

        from repro.parallel.executor import parallel_map

        def _score(path: str, row: int) -> int:
            with open(path, "rb") as fh:
                return fh.read(row)[-1]

        def run(path: str, rows: list[int]) -> list[int]:
            worker = functools.partial(_score, path)
            return parallel_map(worker, rows)
        """,
    )
    assert findings == []


def test_mos016_ungoverned_stage_reproduction(tmp_path):
    findings = _lint(
        tmp_path,
        "MOS016",
        pipe="""
        import contextlib
        from typing import Iterator

        @contextlib.contextmanager
        def _stage(name: str) -> Iterator[None]:
            yield

        def _categorize(items: list[bytes]) -> list[int]:
            return [len(i) for i in items]

        def run_pipeline(items: list[bytes]) -> list[int]:
            with _stage("categorize"):
                return _categorize(items)
        """,
    )
    assert [f.rule_id for f in findings] == ["MOS016"]
    finding = findings[0]
    assert "_categorize" in finding.message
    assert "never consults" in finding.message
    assert len(finding.trace) == 2


def test_mos016_transitive_budget_consult_is_clean(tmp_path):
    """The budget check may live one call deeper than the stage call."""
    findings = _lint(
        tmp_path,
        "MOS016",
        pipe="""
        import contextlib
        from typing import Iterator

        @contextlib.contextmanager
        def _stage(name: str) -> Iterator[None]:
            yield

        def _tick(budget) -> None:
            budget.check_deadline()

        def _categorize(items: list[bytes], budget) -> list[int]:
            _tick(budget)
            return [len(i) for i in items]

        def run_pipeline(items: list[bytes], budget) -> list[int]:
            with _stage("categorize"):
                return _categorize(items, budget)
        """,
    )
    assert findings == []


def test_mos017_escaping_error_reproduction(tmp_path):
    """A TraceFormatError raised two hops down escapes an unguarded
    call chain in a non-reader module."""
    findings = _lint(
        tmp_path,
        "MOS017",
        analysis="""
        class TraceFormatError(ValueError):
            pass

        def _decode(blob: bytes) -> bytes:
            if len(blob) < 8:
                raise TraceFormatError("truncated")
            return blob[8:]

        def _payload(blob: bytes) -> int:
            return len(_decode(blob))

        def summarize(blobs: list[bytes]) -> list[int]:
            return [_payload(b) for b in blobs]
        """,
    )
    assert findings, "expected MOS017 findings"
    assert {f.rule_id for f in findings} == {"MOS017"}
    messages = [f.message for f in findings]
    assert any("escape summarize()" in m for m in messages)
    deep = next(f for f in findings if "escape summarize()" in f.message)
    notes = [s.note for s in deep.trace]
    # Trace walks raise → intermediate hop → flagged call site.
    assert len(deep.trace) >= 3
    assert "unguarded call in summarize()" in notes[-1]


def test_mos017_handled_at_call_site_is_clean(tmp_path):
    findings = _lint(
        tmp_path,
        "MOS017",
        analysis="""
        class TraceFormatError(ValueError):
            pass

        class CorpusError(RuntimeError):
            pass

        def _decode(blob: bytes) -> bytes:
            if len(blob) < 8:
                raise TraceFormatError("truncated")
            return blob[8:]

        def summarize(blobs: list[bytes]) -> list[int]:
            sizes: list[int] = []
            for blob in blobs:
                try:
                    sizes.append(len(_decode(blob)))
                except TraceFormatError as exc:
                    raise CorpusError("bad record") from exc
            return sizes
        """,
    )
    assert findings == []
