"""ProjectIndex: declaration, call resolution, guards, stage blocks."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.context import ModuleContext
from repro.lint.project import ProjectIndex, source_hash


def _build(tmp_path, **modules: str) -> ProjectIndex:
    """Index named modules (``name="source"``); files land in tmp_path."""
    entries = []
    for name, src in modules.items():
        src = textwrap.dedent(src)
        path = tmp_path / (name.replace(".", "/") + ".py")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src)
    # __init__.py chains must exist before ModuleContext derives names.
    for name, src in modules.items():
        src = textwrap.dedent(src)
        path = str(tmp_path / (name.replace(".", "/") + ".py"))
        tree = ast.parse(src)
        ctx = ModuleContext.build(path, src, tree)
        entries.append((path, src, tree, ctx))
    return ProjectIndex.build(entries)


def test_functions_declared_with_qualified_names(tmp_path):
    index = _build(
        tmp_path,
        mod="""
        def top() -> None: ...

        class Box:
            def method(self) -> None: ...
        """,
    )
    assert "mod.top" in index.functions
    assert "mod.Box.method" in index.functions
    assert "mod.Box" in index.classes


def test_same_module_call_resolved(tmp_path):
    index = _build(
        tmp_path,
        mod="""
        def helper() -> int:
            return 1

        def caller() -> int:
            return helper()
        """,
    )
    calls = index.functions["mod.caller"].calls
    assert [c.resolved for c in calls] == ["mod.helper"]
    assert index.callers["mod.helper"] == {"mod.caller"}


def test_cross_module_call_resolved_through_import(tmp_path):
    index = _build(
        tmp_path,
        lib="""
        def decode(blob: bytes) -> int:
            return len(blob)
        """,
        app="""
        from lib import decode

        def run(blob: bytes) -> int:
            return decode(blob)
        """,
    )
    calls = index.functions["app.run"].calls
    assert [c.resolved for c in calls] == ["lib.decode"]


def test_class_call_resolves_to_init(tmp_path):
    index = _build(
        tmp_path,
        mod="""
        class Reader:
            def __init__(self, path: str) -> None:
                self.path = path

        def make(path: str) -> Reader:
            return Reader(path)
        """,
    )
    calls = index.functions["mod.make"].calls
    assert [c.resolved for c in calls] == ["mod.Reader.__init__"]


def test_self_method_call_resolved(tmp_path):
    index = _build(
        tmp_path,
        mod="""
        class Reader:
            def _decode(self) -> int:
                return 0

            def read(self) -> int:
                return self._decode()
        """,
    )
    calls = index.functions["mod.Reader.read"].calls
    assert [c.resolved for c in calls] == ["mod.Reader._decode"]


def test_nested_def_resolved_and_excluded_from_parent_body(tmp_path):
    index = _build(
        tmp_path,
        mod="""
        def outer() -> int:
            def inner() -> int:
                return probe()
            return inner()

        def probe() -> int:
            return 1
        """,
    )
    outer = index.functions["mod.outer"]
    assert [c.resolved for c in outer.calls] == ["mod.outer.inner"]
    inner = index.functions["mod.outer.inner"]
    assert [c.resolved for c in inner.calls] == ["mod.probe"]


def test_guarded_by_records_enclosing_handlers(tmp_path):
    index = _build(
        tmp_path,
        mod="""
        def risky() -> None: ...

        def caller() -> None:
            try:
                risky()
            except (ValueError, KeyError):
                pass
            risky()
        """,
    )
    guarded, unguarded = index.functions["mod.caller"].calls
    assert guarded.guarded_by == frozenset({"ValueError", "KeyError"})
    assert unguarded.guarded_by == frozenset()


def test_stage_block_membership(tmp_path):
    index = _build(
        tmp_path,
        mod="""
        def work() -> None: ...

        def run(ctx) -> None:
            with ctx.stage("compute"):
                work()
            work()
        """,
    )
    work_calls = [
        c for c in index.functions["mod.run"].calls if c.resolved == "mod.work"
    ]
    inside, outside = work_calls
    assert inside.in_stage_block
    assert not outside.in_stage_block


def test_raises_includes_bare_reraise(tmp_path):
    index = _build(
        tmp_path,
        mod="""
        def direct() -> None:
            raise ValueError("x")

        def reraiser() -> None:
            try:
                direct()
            except KeyError:
                raise
        """,
    )
    assert index.functions["mod.direct"].raises == {"ValueError"}
    assert "KeyError" in index.functions["mod.reraiser"].raises


def test_project_hash_tracks_content(tmp_path):
    a = _build(tmp_path, mod="x = 1\n")
    b = _build(tmp_path, mod="x = 2\n")
    c = _build(tmp_path, mod="x = 1\n")
    assert a.project_hash() != b.project_hash()
    assert a.project_hash() == c.project_hash()


def test_source_hash_is_content_only():
    assert source_hash("x = 1\n") == source_hash("x = 1\n")
    assert source_hash("x = 1\n") != source_hash("x = 2\n")
