"""Unit tests for the JSON and binary trace codecs."""

import pytest

from repro.darshan import (
    TraceFormatError,
    dumps,
    dumps_binary,
    load_binary,
    load_json,
    loads,
    loads_binary,
    save_binary,
    save_json,
)

from tests.conftest import make_record, make_trace


@pytest.fixture
def trace():
    return make_trace(
        [
            make_record(1, 0, read=(0.0, 10.0, 1 << 20), opens=2, seeks=1),
            make_record(2, -1, write=(50.0, 60.0, 5 << 20)),
        ],
        run_time=500.0,
        exe="codec-app.exe",
    )


class TestJsonCodec:
    def test_roundtrip(self, trace):
        again = loads(dumps(trace))
        assert again.meta == trace.meta
        assert again.records == trace.records

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.json"
        save_json(trace, path)
        assert load_json(path).records == trace.records

    def test_gzip_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.json.gz"
        save_json(trace, path)
        assert load_json(path).records == trace.records

    def test_malformed_json_rejected(self):
        with pytest.raises(TraceFormatError):
            loads("{not json")

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(TraceFormatError):
            loads('{"format": "something-else", "version": 1}')

    def test_wrong_version_rejected(self, trace):
        text = dumps(trace).replace('"version": 1', '"version": 99')
        with pytest.raises(TraceFormatError):
            loads(text)

    def test_missing_file_raises_format_error(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_json(tmp_path / "missing.json")


class TestBinaryCodec:
    def test_roundtrip(self, trace):
        again = loads_binary(dumps_binary(trace))
        assert again.meta == trace.meta
        assert again.records == trace.records

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.mosd"
        save_binary(trace, path)
        assert load_binary(path).records == trace.records

    def test_bad_magic_rejected(self, trace):
        payload = bytearray(dumps_binary(trace))
        payload[0:4] = b"XXXX"
        with pytest.raises(TraceFormatError):
            loads_binary(bytes(payload))

    def test_truncation_rejected(self, trace):
        payload = dumps_binary(trace)
        with pytest.raises(TraceFormatError):
            loads_binary(payload[: len(payload) - 10])

    def test_trailing_garbage_rejected(self, trace):
        with pytest.raises(TraceFormatError):
            loads_binary(dumps_binary(trace) + b"\x00")

    def test_empty_trace_roundtrip(self):
        trace = make_trace([])
        assert loads_binary(dumps_binary(trace)).records == []

    def test_binary_smaller_than_json(self, trace):
        assert len(dumps_binary(trace)) < len(dumps(trace).encode())


class TestBinaryCorruptionPaths:
    """Satellite corruption taxonomy: every way a MOSD payload can be cut
    short must surface as TraceFormatError (never struct.error or a
    half-built Trace), so streaming scans can count it as corruption."""

    @staticmethod
    def _sections(trace):
        """(payload, offsets) where offsets mark section boundaries."""
        from repro.darshan.io_binary import _COUNTS, _HEADER, _JOB

        payload = dumps_binary(trace)
        meta = trace.meta
        strings = (
            len(meta.exe.encode()) + len(meta.machine.encode())
            + len(meta.partition.encode())
        )
        table = "\x00".join(r.file_name for r in trace.records).encode()
        header_end = _HEADER.size
        job_end = header_end + _JOB.size + strings
        counts_end = job_end + _COUNTS.size
        table_end = counts_end + len(table)
        return payload, {
            "header_end": header_end,
            "job_end": job_end,
            "counts_end": counts_end,
            "table_end": table_end,
        }

    def test_truncated_magic_header(self, trace):
        payload, off = self._sections(trace)
        with pytest.raises(TraceFormatError, match="magic header"):
            loads_binary(payload[: off["header_end"] - 3])

    def test_truncated_job_header(self, trace):
        payload, off = self._sections(trace)
        with pytest.raises(TraceFormatError, match="job header"):
            loads_binary(payload[: off["header_end"] + 10])

    def test_truncated_job_strings(self, trace):
        payload, off = self._sections(trace)
        with pytest.raises(TraceFormatError, match="string"):
            loads_binary(payload[: off["job_end"] - 2])

    def test_truncated_string_table(self, trace):
        payload, off = self._sections(trace)
        assert off["table_end"] > off["counts_end"]
        with pytest.raises(TraceFormatError, match="string table"):
            loads_binary(payload[: off["counts_end"] + 1])

    def test_truncated_record_section(self, trace):
        payload, off = self._sections(trace)
        with pytest.raises(TraceFormatError, match="record"):
            loads_binary(payload[: off["table_end"] + 5])

    def test_missing_last_record(self, trace):
        from repro.darshan.io_binary import _RECORD

        payload, _ = self._sections(trace)
        # the hardened decoder refuses the lying record count up front,
        # before any record is allocated
        with pytest.raises(TraceFormatError, match="record section"):
            loads_binary(payload[: len(payload) - _RECORD.size])

    def test_every_single_byte_truncation_is_clean(self, trace):
        # exhaustive: no prefix of a valid payload may escape the codec's
        # error taxonomy or crash with anything but TraceFormatError
        payload = dumps_binary(trace)
        for cut in range(len(payload)):
            with pytest.raises(TraceFormatError):
                loads_binary(payload[:cut])


class TestBinaryMetaPeek:
    def test_meta_matches_full_load(self, trace, tmp_path):
        from repro.darshan import load_binary_meta

        path = tmp_path / "t.mosd"
        save_binary(trace, path)
        meta = load_binary_meta(path)
        assert meta == load_binary(path).meta

    def test_meta_peek_bad_magic(self, trace, tmp_path):
        from repro.darshan import load_binary_meta

        path = tmp_path / "t.mosd"
        path.write_bytes(b"NOPE" + dumps_binary(trace)[4:])
        with pytest.raises(TraceFormatError, match="bad magic"):
            load_binary_meta(path)

    def test_meta_peek_truncated_header(self, trace, tmp_path):
        from repro.darshan import load_binary_meta

        path = tmp_path / "t.mosd"
        path.write_bytes(dumps_binary(trace)[:20])
        with pytest.raises(TraceFormatError):
            load_binary_meta(path)

    def test_meta_peek_missing_file(self, tmp_path):
        from repro.darshan import load_binary_meta

        with pytest.raises(TraceFormatError, match="cannot read"):
            load_binary_meta(tmp_path / "absent.mosd")
