"""Unit tests for the JSON and binary trace codecs."""

import pytest

from repro.darshan import (
    TraceFormatError,
    dumps,
    dumps_binary,
    load_binary,
    load_json,
    loads,
    loads_binary,
    save_binary,
    save_json,
)

from tests.conftest import make_record, make_trace


@pytest.fixture
def trace():
    return make_trace(
        [
            make_record(1, 0, read=(0.0, 10.0, 1 << 20), opens=2, seeks=1),
            make_record(2, -1, write=(50.0, 60.0, 5 << 20)),
        ],
        run_time=500.0,
        exe="codec-app.exe",
    )


class TestJsonCodec:
    def test_roundtrip(self, trace):
        again = loads(dumps(trace))
        assert again.meta == trace.meta
        assert again.records == trace.records

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.json"
        save_json(trace, path)
        assert load_json(path).records == trace.records

    def test_gzip_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.json.gz"
        save_json(trace, path)
        assert load_json(path).records == trace.records

    def test_malformed_json_rejected(self):
        with pytest.raises(TraceFormatError):
            loads("{not json")

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(TraceFormatError):
            loads('{"format": "something-else", "version": 1}')

    def test_wrong_version_rejected(self, trace):
        text = dumps(trace).replace('"version": 1', '"version": 99')
        with pytest.raises(TraceFormatError):
            loads(text)

    def test_missing_file_raises_format_error(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_json(tmp_path / "missing.json")


class TestBinaryCodec:
    def test_roundtrip(self, trace):
        again = loads_binary(dumps_binary(trace))
        assert again.meta == trace.meta
        assert again.records == trace.records

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.mosd"
        save_binary(trace, path)
        assert load_binary(path).records == trace.records

    def test_bad_magic_rejected(self, trace):
        payload = bytearray(dumps_binary(trace))
        payload[0:4] = b"XXXX"
        with pytest.raises(TraceFormatError):
            loads_binary(bytes(payload))

    def test_truncation_rejected(self, trace):
        payload = dumps_binary(trace)
        with pytest.raises(TraceFormatError):
            loads_binary(payload[: len(payload) - 10])

    def test_trailing_garbage_rejected(self, trace):
        with pytest.raises(TraceFormatError):
            loads_binary(dumps_binary(trace) + b"\x00")

    def test_empty_trace_roundtrip(self):
        trace = make_trace([])
        assert loads_binary(dumps_binary(trace)).records == []

    def test_binary_smaller_than_json(self, trace):
        assert len(dumps_binary(trace)) < len(dumps(trace).encode())
