"""Unit tests for trace repair heuristics."""

import numpy as np
import pytest

from repro.darshan import is_valid
from repro.darshan.repair import repair_trace
from repro.synth import CORRUPTION_KINDS, corrupt_trace

from tests.conftest import make_record, make_trace


@pytest.fixture
def clean():
    return make_trace(
        [
            make_record(1, 0, read=(0.0, 100.0, 500_000_000)),
            make_record(2, 1, write=(500.0, 600.0, 200_000_000)),
        ]
    )


class TestRepairTrace:
    def test_valid_trace_untouched(self, clean):
        outcome = repair_trace(clean)
        assert outcome.repaired
        assert outcome.actions == []
        assert outcome.trace is clean

    def test_input_never_mutated(self, clean):
        rng = np.random.default_rng(0)
        bad = corrupt_trace(clean, rng, "inverted_window")
        snapshot = [r.read_start for r in bad.records]
        repair_trace(bad)
        assert [r.read_start for r in bad.records] == snapshot

    def test_inverted_window_swapped(self, clean):
        rng = np.random.default_rng(1)
        bad = corrupt_trace(clean, rng, "inverted_window")
        outcome = repair_trace(bad)
        assert outcome.repaired
        assert is_valid(outcome.trace)
        assert any("swap" in a for a in outcome.actions)

    def test_dealloc_before_end_extended(self, clean):
        rng = np.random.default_rng(2)
        bad = corrupt_trace(clean, rng, "dealloc_before_end")
        outcome = repair_trace(bad)
        assert outcome.repaired
        assert any("extend close" in a for a in outcome.actions)

    def test_negative_counter_drops_record(self, clean):
        rng = np.random.default_rng(3)
        bad = corrupt_trace(clean, rng, "negative_counter")
        outcome = repair_trace(bad)
        assert outcome.repaired
        assert outcome.n_dropped_records == 1
        assert len(outcome.trace.records) == 1

    def test_timestamp_overshoot_clamped_or_dropped(self, clean):
        rng = np.random.default_rng(4)
        bad = corrupt_trace(clean, rng, "timestamp_after_end")
        outcome = repair_trace(bad)
        assert outcome.repaired
        assert is_valid(outcome.trace)

    def test_negative_runtime_unrepairable(self, clean):
        rng = np.random.default_rng(5)
        bad = corrupt_trace(clean, rng, "negative_runtime")
        outcome = repair_trace(bad)
        assert not outcome.repaired
        assert "unrepairable" in outcome.actions[0]

    def test_repair_preserves_plausible_volume(self, clean):
        rng = np.random.default_rng(6)
        bad = corrupt_trace(clean, rng, "inverted_window")
        outcome = repair_trace(bad)
        assert outcome.trace.total_bytes == clean.total_bytes

    @pytest.mark.parametrize("kind", sorted(CORRUPTION_KINDS))
    def test_repair_rate_by_kind(self, clean, kind):
        """Every kind except the corrupt job header is recoverable."""
        rng = np.random.default_rng(7)
        outcome = repair_trace(corrupt_trace(clean, rng, kind))
        if kind == "negative_runtime":
            assert not outcome.repaired
        else:
            assert outcome.repaired, kind
