"""Unit tests for trace validity checking (the Fig. 3 eviction stage)."""


from repro.darshan import Violation, is_valid, validate_trace

from tests.conftest import make_record, make_trace


class TestValidTraces:
    def test_clean_trace_is_valid(self):
        trace = make_trace([make_record(1, 0, read=(0.0, 10.0, 100))])
        report = validate_trace(trace)
        assert report.valid and not report.violations

    def test_empty_trace_is_valid(self):
        assert is_valid(make_trace([]))

    def test_slightly_late_close_is_tolerated(self):
        # Darshan flushes at MPI_Finalize; sub-second overshoot is normal.
        rec = make_record(1, 0, write=(0.0, 1000.0, 100))
        rec.close_end = 1000.5
        assert is_valid(make_trace([rec], run_time=1000.0))


class TestCorruptions:
    def test_negative_runtime(self):
        trace = make_trace([])
        trace.meta.end_time = trace.meta.start_time - 1.0
        report = validate_trace(trace)
        assert not report.valid
        assert Violation.NEGATIVE_RUNTIME in report.categories()

    def test_bad_nprocs(self):
        trace = make_trace([], nprocs=0)
        assert Violation.BAD_NPROCS in validate_trace(trace).categories()

    def test_inverted_read_window(self):
        rec = make_record(1, 0, read=(10.0, 5.0, 100))
        report = validate_trace(make_trace([rec]))
        assert Violation.INVERTED_WINDOW in report.categories()

    def test_dealloc_before_end_is_detected(self):
        # the paper's example corruption: file closed before its
        # recorded activity window ends
        rec = make_record(1, 0, write=(0.0, 500.0, 100))
        rec.close_end = 100.0
        report = validate_trace(make_trace([rec]))
        assert Violation.DEALLOC_BEFORE_END in report.categories()

    def test_timestamp_beyond_runtime(self):
        rec = make_record(1, 0, read=(0.0, 5000.0, 100))
        report = validate_trace(make_trace([rec], run_time=1000.0))
        assert Violation.TIMESTAMP_AFTER_END in report.categories()

    def test_negative_counter(self):
        rec = make_record(1, 0, read=(0.0, 1.0, 100))
        rec.bytes_written = -5
        report = validate_trace(make_trace([rec]))
        assert Violation.NEGATIVE_COUNTER in report.categories()

    def test_bytes_without_window(self):
        rec = make_record(1, 0)
        rec.bytes_read = 100
        report = validate_trace(make_trace([rec]))
        assert Violation.BYTES_WITHOUT_WINDOW in report.categories()

    def test_opens_without_close_window(self):
        rec = make_record(1, 0, opens=0)
        rec.opens = 3
        report = validate_trace(make_trace([rec]))
        assert Violation.OPENS_WITHOUT_CLOSE_WINDOW in report.categories()

    def test_multiple_violations_all_reported(self):
        rec = make_record(1, 0, read=(10.0, 5.0, 100))
        rec.bytes_written = -1
        report = validate_trace(make_trace([rec]))
        assert len(report.categories()) >= 2

    def test_reasons_are_strings(self):
        trace = make_trace([], nprocs=-1)
        reasons = validate_trace(trace).reasons()
        assert reasons and all(isinstance(r, str) for r in reasons)
