"""Unit tests for the darshan-parser text codec."""

import pytest

from repro.darshan import TraceFormatError
from repro.darshan.io_text import dumps_text, load_text, loads_text, save_text

from tests.conftest import make_record, make_trace


@pytest.fixture
def trace():
    return make_trace(
        [
            make_record(101, 0, read=(0.0, 10.0, 1 << 20), opens=2, seeks=1),
            make_record(202, -1, write=(50.0, 60.0, 5 << 20)),
        ],
        exe="textcodec.exe",
        run_time=500.0,
    )


class TestTextCodec:
    def test_roundtrip(self, trace):
        again = loads_text(dumps_text(trace))
        assert again.meta == trace.meta
        assert again.records == trace.records

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.darshan.txt"
        save_text(trace, path)
        assert load_text(path).records == trace.records

    def test_header_lines_present(self, trace):
        text = dumps_text(trace)
        assert "# jobid: 1" in text
        assert "# nprocs: 8" in text
        assert "# exe: textcodec.exe" in text

    def test_counter_lines_use_darshan_names(self, trace):
        text = dumps_text(trace)
        assert "POSIX_BYTES_READ" in text
        assert "POSIX_F_WRITE_END_TIMESTAMP" in text

    def test_unknown_counters_ignored(self, trace):
        text = dumps_text(trace)
        text += "POSIX\t0\t101\tPOSIX_FASTEST_RANK\t3\tf101.dat\n"
        again = loads_text(text)
        assert again.records == trace.records

    def test_other_modules_ignored(self, trace):
        text = dumps_text(trace)
        text += "MPI-IO\t0\t101\tMPIIO_INDEP_OPENS\t5\tf101.dat\n"
        assert loads_text(text).records == trace.records

    def test_space_separated_lines_accepted(self, trace):
        text = dumps_text(trace).replace("\t", "  ")
        # file names without spaces survive whitespace splitting
        again = loads_text(text)
        assert len(again.records) == 2

    def test_missing_header_rejected(self, trace):
        text = "\n".join(
            l for l in dumps_text(trace).splitlines() if "nprocs" not in l
        )
        with pytest.raises(TraceFormatError, match="nprocs"):
            loads_text(text)

    def test_malformed_record_line_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("# exe: x\n# uid: 1\n# jobid: 1\n# start_time: 0\n"
                       "# end_time: 1\n# nprocs: 1\nPOSIX broken\n")

    def test_bad_value_rejected(self, trace):
        text = dumps_text(trace)
        text += "POSIX\t0\t101\tPOSIX_OPENS\tnot_a_number\tf.dat\n"
        with pytest.raises(TraceFormatError):
            loads_text(text)

    def test_empty_trace(self):
        trace = make_trace([])
        assert loads_text(dumps_text(trace)).records == []
