"""Unit tests for the lazy trace-source layer."""

import pytest

from repro.darshan import (
    DirectorySource,
    InMemorySource,
    SyntheticSource,
    TraceFormatError,
    save_binary,
    save_json,
    save_text,
)
from repro.synth import FleetConfig

from tests.conftest import make_record, make_trace


def _trace(job_id: int, uid: int = 100, exe: str = "app.exe"):
    return make_trace(
        [make_record(1, 0, read=(0.0, 10.0, 1 << 20))],
        job_id=job_id,
        uid=uid,
        exe=exe,
    )


class TestDirectorySource:
    def test_discovers_all_formats_sorted(self, tmp_path):
        save_binary(_trace(1), tmp_path / "a.mosd")
        save_json(_trace(2), tmp_path / "b.json")
        save_text(_trace(3), tmp_path / "c.darshan.txt")
        (tmp_path / "notes.txt").write_text("not a trace")
        source = DirectorySource(tmp_path)
        refs = list(source.refs())
        assert [str(r.key).rsplit("/", 1)[-1] for r in refs] == [
            "a.mosd", "b.json", "c.darshan.txt",
        ]
        assert [source.load(r).meta.job_id for r in refs] == [1, 2, 3]

    def test_manifest_json_skipped(self, tmp_path):
        save_json(_trace(1), tmp_path / "t.json")
        (tmp_path / "manifest.json").write_text("{}")
        assert DirectorySource(tmp_path).count() == 1

    def test_refs_are_reiterable_and_deterministic(self, tmp_path):
        for i in range(5):
            save_binary(_trace(i + 1), tmp_path / f"j{i}.mosd")
        source = DirectorySource(tmp_path)
        first = [r.key for r in source.refs()]
        second = [r.key for r in source.refs()]
        assert first == second and len(first) == 5

    def test_bytes_read_accumulates(self, tmp_path):
        save_binary(_trace(1), tmp_path / "t.mosd")
        source = DirectorySource(tmp_path)
        assert source.bytes_read == 0
        (ref,) = source.refs()
        assert ref.size_bytes > 0
        source.load(ref)
        assert source.bytes_read == ref.size_bytes
        source.load(ref)
        assert source.bytes_read == 2 * ref.size_bytes

    def test_peek_meta_mosd_reads_header_only(self, tmp_path):
        trace = _trace(17, uid=321, exe="peeked.exe")
        save_binary(trace, tmp_path / "t.mosd")
        source = DirectorySource(tmp_path)
        (ref,) = source.refs()
        meta = source.peek_meta(ref)
        assert (meta.job_id, meta.uid, meta.exe) == (17, 321, "peeked.exe")
        # header peek never pays for the record section
        assert source.bytes_read == 0

    def test_unreadable_payload_raises_format_error(self, tmp_path):
        (tmp_path / "bad.mosd").write_bytes(b"XXXXgarbage")
        source = DirectorySource(tmp_path)
        (ref,) = source.refs()
        with pytest.raises(TraceFormatError):
            source.load(ref)

    def test_missing_directory_raises_format_error(self, tmp_path):
        source = DirectorySource(tmp_path / "absent")
        with pytest.raises(TraceFormatError):
            list(source.refs())

    def test_iteration_yields_traces(self, tmp_path):
        save_binary(_trace(1), tmp_path / "a.mosd")
        save_binary(_trace(2), tmp_path / "b.mosd")
        assert [t.meta.job_id for t in DirectorySource(tmp_path)] == [1, 2]


class TestInMemorySource:
    def test_round_trip(self):
        traces = [_trace(1), _trace(2)]
        source = InMemorySource(traces)
        assert source.count() == 2
        loaded = [source.load(r) for r in source.refs()]
        assert loaded[0] is traces[0] and loaded[1] is traces[1]

    def test_duplicate_traces_stay_distinct(self):
        t = _trace(1)
        source = InMemorySource([t, t])
        assert len({r.key for r in source.refs()}) == 2


class TestSyntheticSource:
    def test_construction_is_lazy(self):
        source = SyntheticSource(FleetConfig(n_apps=40, mean_runs=1.0, seed=1))
        assert source._fleet is None  # nothing generated yet
        assert source.count() > 0
        assert source._fleet is not None

    def test_fleet_generated_once_and_exposed(self):
        source = SyntheticSource(FleetConfig(n_apps=40, mean_runs=1.0, seed=1))
        fleet = source.fleet
        assert source.fleet is fleet
        refs = list(source.refs())
        assert len(refs) == fleet.n_input
        assert source.load(refs[0]) is fleet.traces[0]
        assert fleet.truth  # ground truth rides along for accuracy runs
