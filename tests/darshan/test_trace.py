"""Unit tests for Trace and OperationArray."""

import numpy as np
import pytest

from repro.darshan import OperationArray, Trace

from tests.conftest import make_record, make_trace, ops


class TestOperationArray:
    def test_sorts_by_start(self):
        arr = ops((5.0, 6.0, 1.0), (1.0, 2.0, 2.0))
        assert arr.starts[0] == 1.0
        assert arr.volumes[0] == 2.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OperationArray(np.zeros(2), np.zeros(2), np.zeros(3))

    def test_total_volume_and_busy_time(self):
        arr = ops((0.0, 2.0, 10.0), (4.0, 5.0, 5.0))
        assert arr.total_volume == 15.0
        assert arr.busy_time == 3.0

    def test_empty(self):
        arr = OperationArray.empty()
        assert arr.is_empty() and len(arr) == 0
        assert arr.total_volume == 0.0

    def test_iteration_yields_tuples(self):
        arr = ops((0.0, 1.0, 3.0))
        assert list(arr) == [(0.0, 1.0, 3.0)]

    def test_clipped_scales_volume_pro_rata(self):
        arr = ops((0.0, 10.0, 100.0))
        clipped = arr.clipped(5.0, 10.0)
        assert len(clipped) == 1
        assert clipped.volumes[0] == pytest.approx(50.0)

    def test_clipped_drops_fully_outside(self):
        arr = ops((0.0, 1.0, 5.0), (8.0, 9.0, 7.0))
        clipped = arr.clipped(2.0, 7.0)
        assert len(clipped) == 0


class TestTraceOperations:
    def test_operations_split_by_direction(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(0.0, 10.0, 100)),
                make_record(2, 1, write=(20.0, 30.0, 50)),
            ]
        )
        reads = trace.operations("read")
        writes = trace.operations("write")
        assert len(reads) == 1 and reads.total_volume == 100
        assert len(writes) == 1 and writes.total_volume == 50

    def test_totals(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(0.0, 1.0, 10), write=(2.0, 3.0, 20)),
                make_record(2, 1, write=(4.0, 5.0, 30)),
            ]
        )
        assert trace.total_bytes_read == 10
        assert trace.total_bytes_written == 50
        assert trace.total_bytes == 60

    def test_io_weight_includes_metadata(self):
        t1 = make_trace([make_record(1, 0, read=(0.0, 1.0, 10), opens=0)])
        t2 = make_trace([make_record(1, 0, read=(0.0, 1.0, 10), opens=50)])
        assert t2.io_weight() > t1.io_weight()

    def test_zero_duration_window_gets_min_duration(self):
        trace = make_trace([make_record(1, 0, read=(5.0, 5.0, 10))])
        reads = trace.operations("read")
        assert reads.ends[0] > reads.starts[0]

    def test_dict_roundtrip(self):
        trace = make_trace([make_record(1, 0, read=(0.0, 1.0, 10))])
        again = Trace.from_dict(trace.to_dict())
        assert again.meta == trace.meta
        assert again.records == trace.records


class TestMetadataEvents:
    def test_single_open_places_events_at_window_edges(self):
        trace = make_trace([make_record(1, 0, read=(10.0, 20.0, 100), opens=1, seeks=1)])
        times, counts = trace.metadata_events()
        # opens+seeks at open_start, closes at close_end
        assert times[0] == pytest.approx(10.0)
        assert counts.sum() == pytest.approx(3.0)

    def test_many_opens_spread_over_window(self):
        rec = make_record(1, 0, read=(0.0, 100.0, 100), opens=50)
        trace = make_trace([rec])
        times, counts = trace.metadata_events()
        assert counts.sum() == pytest.approx(rec.metadata_ops)
        assert times.min() >= 0.0 and times.max() <= 100.0
        # spread, not a single point
        assert len(np.unique(np.floor(times / 10.0))) > 5

    def test_no_metadata(self):
        trace = make_trace([make_record(1, 0, read=(0.0, 1.0, 10), opens=0)])
        times, counts = trace.metadata_events()
        assert len(times) == 0 and len(counts) == 0

    def test_times_sorted(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(50.0, 60.0, 10)),
                make_record(2, 0, read=(0.0, 5.0, 10)),
            ]
        )
        times, _ = trace.metadata_events()
        assert np.all(np.diff(times) >= 0)
