"""Unit tests for the record-level data model."""


from repro.darshan import FileRecord, JobMeta
from repro.darshan import counters as C

from tests.conftest import make_record


class TestJobMeta:
    def test_run_time(self):
        meta = JobMeta(1, 2, "a.exe", 4, 100.0, 250.0)
        assert meta.run_time == 150.0

    def test_app_key_groups_by_user_and_exe(self):
        a = JobMeta(1, 7, "sim.exe", 4, 0.0, 1.0)
        b = JobMeta(2, 7, "sim.exe", 64, 5.0, 9.0)
        c = JobMeta(3, 8, "sim.exe", 4, 0.0, 1.0)
        assert a.app_key == b.app_key
        assert a.app_key != c.app_key

    def test_dict_roundtrip(self):
        meta = JobMeta(11, 22, "x.exe", 33, 44.0, 55.0, machine="m", partition="p")
        again = JobMeta.from_dict(meta.to_dict())
        assert again == meta


class TestFileRecord:
    def test_metadata_ops_counts_open_close_seek(self):
        rec = FileRecord(file_id=1, file_name="f", rank=0, opens=3, closes=3, seeks=2, stats=5)
        # stats are tracked but excluded from the spike accounting
        assert rec.metadata_ops == 8

    def test_has_read_requires_bytes_and_window(self):
        rec = make_record(read=(1.0, 2.0, 100))
        assert rec.has_read and not rec.has_write
        rec2 = FileRecord(file_id=1, file_name="f", rank=0, bytes_read=10)
        assert not rec2.has_read  # no window

    def test_counters_use_darshan_names(self):
        rec = make_record(read=(0.0, 1.0, 42), write=(2.0, 3.0, 7))
        counters = rec.counters()
        assert counters[C.POSIX_BYTES_READ] == 42
        assert counters[C.POSIX_BYTES_WRITTEN] == 7
        fcounters = rec.fcounters()
        assert fcounters[C.POSIX_F_READ_START_TIMESTAMP] == 0.0
        assert fcounters[C.POSIX_F_WRITE_END_TIMESTAMP] == 3.0

    def test_dict_roundtrip(self):
        rec = make_record(file_id=9, rank=3, read=(1.0, 4.0, 1024), opens=2, seeks=1)
        again = FileRecord.from_dict(rec.to_dict())
        assert again == rec

    def test_total_bytes(self):
        rec = make_record(read=(0.0, 1.0, 30), write=(0.0, 1.0, 12))
        assert rec.total_bytes == 42

    def test_from_dict_defaults_missing_counters_to_zero(self):
        rec = FileRecord.from_dict({"file_id": 1, "rank": 0})
        assert rec.opens == 0
        assert rec.read_start == C.NO_TIMESTAMP
