"""Property-based tests (hypothesis) on the trace substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.darshan import FileRecord, dumps_binary, loads, loads_binary, dumps
from repro.darshan.trace import OperationArray

from tests.conftest import make_trace

finite_time = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
volume = st.floats(min_value=0.0, max_value=1e15, allow_nan=False)


@st.composite
def op_arrays(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    rows = []
    for _ in range(n):
        s = draw(finite_time)
        d = draw(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
        v = draw(volume)
        rows.append((s, s + d, v))
    return OperationArray.from_tuples(rows)


@st.composite
def records(draw):
    rec = FileRecord(
        file_id=draw(st.integers(min_value=0, max_value=2**40)),
        file_name=draw(st.text(alphabet=st.characters(codec="utf-8", exclude_characters="\x00"), max_size=20)),
        rank=draw(st.integers(min_value=-1, max_value=1 << 20)),
        opens=draw(st.integers(min_value=0, max_value=1000)),
        closes=draw(st.integers(min_value=0, max_value=1000)),
        seeks=draw(st.integers(min_value=0, max_value=1000)),
        reads=draw(st.integers(min_value=0, max_value=10_000)),
        writes=draw(st.integers(min_value=0, max_value=10_000)),
        bytes_read=draw(st.integers(min_value=0, max_value=1 << 50)),
        bytes_written=draw(st.integers(min_value=0, max_value=1 << 50)),
    )
    s = draw(finite_time)
    rec.read_start, rec.read_end = s, s + draw(st.floats(0, 100, allow_nan=False))
    rec.open_start, rec.close_end = s, rec.read_end
    return rec


class TestOperationArrayProperties:
    @given(op_arrays())
    @settings(max_examples=60, deadline=None)
    def test_always_sorted(self, arr):
        assert np.all(np.diff(arr.starts) >= 0)

    @given(op_arrays())
    @settings(max_examples=60, deadline=None)
    def test_ends_never_before_starts(self, arr):
        assert np.all(arr.ends >= arr.starts)

    @given(op_arrays())
    @settings(max_examples=60, deadline=None)
    def test_clip_never_increases_volume(self, arr):
        clipped = arr.clipped(100.0, 5000.0)
        assert clipped.total_volume <= arr.total_volume + 1e-6 * max(arr.total_volume, 1)


class TestCodecProperties:
    @given(st.lists(records(), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_binary_roundtrip_identity(self, recs):
        trace = make_trace(recs)
        again = loads_binary(dumps_binary(trace))
        assert again.records == trace.records
        assert again.meta == trace.meta

    @given(st.lists(records(), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_json_roundtrip_identity(self, recs):
        trace = make_trace(recs)
        again = loads(dumps(trace))
        assert again.records == trace.records
