"""Unit tests for trace aggregate summaries."""

import pytest

from repro.darshan import summarize

from tests.conftest import make_record, make_trace


class TestSummarize:
    def test_basic_aggregates(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(0.0, 10.0, 100), opens=2),
                make_record(2, 1, write=(5.0, 15.0, 200)),
            ],
            nprocs=4,
            run_time=100.0,
        )
        s = summarize(trace)
        assert s.bytes_read == 100
        assert s.bytes_written == 200
        assert s.total_bytes == 300
        assert s.n_files == 2
        assert s.nprocs == 4
        assert s.metadata_ops == trace.total_metadata_ops

    def test_ranks_doing_io_counts_distinct_ranks(self):
        trace = make_trace(
            [
                make_record(1, 0, read=(0.0, 1.0, 10)),
                make_record(2, 0, write=(0.0, 1.0, 10)),
                make_record(3, 3, write=(0.0, 1.0, 10)),
            ]
        )
        assert summarize(trace).ranks_doing_io == 2

    def test_shared_record_counts_all_ranks(self):
        trace = make_trace([make_record(1, -1, read=(0.0, 1.0, 10))], nprocs=16)
        assert summarize(trace).ranks_doing_io == 16

    def test_mean_sizes(self):
        rec = make_record(1, 0, read=(0.0, 1.0, 100))
        rec.reads = 4
        s = summarize(make_trace([rec]))
        assert s.mean_read_size == pytest.approx(25.0)
        assert s.mean_write_size == 0.0

    def test_io_time_fraction_bounded(self):
        rec = make_record(1, 0, read=(0.0, 100.0, 10))
        rec.read_time = 50.0
        s = summarize(make_trace([rec], nprocs=2, run_time=100.0))
        assert 0.0 < s.io_time_fraction <= 1.0

    def test_empty_trace(self):
        s = summarize(make_trace([]))
        assert s.total_bytes == 0
        assert s.io_time_fraction == 0.0
