"""CLI tests for ``mosaic verify [--repair]`` and the storage exit code.

Exit code contract (documented in the CLI module docstring): 0 = store
is clean, 1 = integrity findings, 3 = a durable artifact could not be
persisted (:class:`StorageError` caught at the top level).
"""

import errno
import json

import pytest

from repro.cli import main
from repro.columnar import compile_corpus, verify_store
from repro.columnar.format import HEADER_SIZE, unpack_header
from repro.darshan.source import InMemorySource
from repro.io import scoped_io
from repro.synth import FleetConfig, generate_fleet
from repro.testing import StorageChaos


@pytest.fixture()
def store_path(tmp_path):
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.5, seed=21))
    path = str(tmp_path / "corpus.mosc")
    compile_corpus(InMemorySource(fleet.traces), path)
    return path


def _flip_records_byte(path):
    with open(path, "rb") as fh:
        header = unpack_header(fh.read(HEADER_SIZE))
    offset, _nbytes, _crc = header["sections"]["records"]
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


class TestVerifyCommand:
    def test_clean_store_exits_zero(self, store_path, capsys):
        assert main(["verify", store_path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_damaged_store_exits_one_with_findings(self, store_path, capsys):
        _flip_records_byte(store_path)
        assert main(["verify", store_path]) == 1
        out = capsys.readouterr().out
        assert "section-crc" in out
        assert "trace-crc" in out

    def test_repair_salvages_and_reports_losses(
        self, store_path, tmp_path, capsys
    ):
        _flip_records_byte(store_path)
        out_path = str(tmp_path / "fixed.mosc")
        report_path = str(tmp_path / "report.json")
        rc = main(
            ["verify", store_path, "--repair", "--out", out_path,
             "--json", report_path]
        )
        assert rc == 1  # the *source* store is damaged
        assert "salvaged" in capsys.readouterr().out
        assert verify_store(out_path).clean
        payload = json.loads(open(report_path).read())
        assert payload["n_lost"] >= 1
        assert payload["n_recovered"] == payload["n_rows"] - payload["n_lost"]
        assert payload["verify"]["findings"]

    def test_repair_default_output_path(self, store_path, capsys):
        _flip_records_byte(store_path)
        assert main(["verify", store_path, "--repair"]) == 1
        assert verify_store(store_path + ".repaired.mosc").clean

    def test_fatal_damage_reports_repair_impossible(self, store_path, capsys):
        with open(store_path, "r+b") as fh:
            fh.write(b"XXXX")  # smash the magic
        assert main(["verify", store_path, "--repair"]) == 1
        assert "repair impossible" in capsys.readouterr().out


class TestStorageExitCode:
    def test_enospc_during_generate_exits_three(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        chaos = StorageChaos(tmp_path, script={("write", 0): errno.ENOSPC})
        with scoped_io(chaos):
            rc = main(
                ["generate", "--out", str(out_dir), "--n-apps", "20",
                 "--mean-runs", "1", "--seed", "2"]
            )
        assert rc == 3
        assert "storage error" in capsys.readouterr().err
