"""``mosaic submit`` / ``mosaic watch`` as real subprocesses.

The client library has its own suite (``tests/service/test_client.py``);
this pins the CLI contract on top of it: endpoint discovery via
``--data-dir``, the ``--watch --output`` flow writing the results JSONL
atomically, dedup surfacing on resubmission, and the batch-compatible
exit codes (0 done, 1 failed/unknown).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.columnar import compile_corpus
from repro.darshan import DirectorySource, save_binary
from repro.synth import FleetConfig, generate_fleet

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("MOSAIC_SERVE_TEST_DELAY_S", None)
    return env


def _cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    base = tmp_path_factory.mktemp("submit-cli-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.0, seed=53))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    return str(store_path)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    data_dir = str(tmp_path_factory.mktemp("submit-cli-data"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--data-dir", data_dir, "--port", "0",
        ],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    endpoint_path = os.path.join(data_dir, "server.json")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server died: rc={proc.returncode}")
        try:
            with open(endpoint_path, encoding="utf-8") as fh:
                if json.load(fh).get("pid") == proc.pid:
                    break
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.05)
    else:
        proc.kill()
        raise RuntimeError("server never published server.json")
    yield data_dir
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()


def test_submit_watch_writes_results_and_exits_zero(served, store, tmp_path):
    out = tmp_path / "results.jsonl"
    result = _cli(
        "submit", "--store", store, "--data-dir", served,
        "--watch", "--output", str(out),
    )
    assert result.returncode == 0, result.stderr
    assert "submitted job-" in result.stdout
    assert ": done" in result.stdout
    lines = out.read_bytes().splitlines()
    assert lines and all(json.loads(line) for line in lines)


def test_resubmission_reports_dedup(served, store):
    result = _cli("submit", "--store", store, "--data-dir", served)
    assert result.returncode == 0, result.stderr
    assert "deduplicated" in result.stdout


def test_watch_terminal_job_exits_by_status(served, store):
    submitted = _cli("submit", "--store", store, "--data-dir", served)
    job_id = submitted.stdout.split()[1].rstrip(":")
    result = _cli("watch", job_id, "--data-dir", served, "--quiet")
    assert result.returncode == 0, result.stderr
    assert f"{job_id}: done" in result.stdout


def test_watch_unknown_job_exits_one(served):
    result = _cli("watch", "job-nope", "--data-dir", served, "--quiet")
    assert result.returncode == 1
    assert "watch failed" in result.stderr
