"""Integration tests for the ``mosaic`` CLI."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("generate", "categorize", "report", "anatomy"):
            args = parser.parse_args(
                [cmd] + (["--out", "x"] if cmd == "generate" else [])
                + (["--traces", "t", "--out", "o"] if cmd == "categorize" else [])
            )
            assert args.command == cmd

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEndToEndCli:
    def test_generate_categorize_report(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        rc = main([
            "generate", "--out", str(out_dir), "--n-apps", "30",
            "--mean-runs", "3", "--seed", "3",
        ])
        assert rc == 0
        manifest = json.loads((out_dir / "manifest.json").read_text())
        files = [f for f in os.listdir(out_dir) if f.endswith(".mosd")]
        assert len(files) == manifest["n_traces"]

        results = tmp_path / "results.jsonl"
        rc = main(["categorize", "--traces", str(out_dir), "--out", str(results)])
        assert rc == 0
        assert results.exists()
        lines = [l for l in results.read_text().splitlines() if l.strip()]
        assert len(lines) == 30  # one per unique app
        weights = json.loads((tmp_path / "results.jsonl.weights.json").read_text())
        assert len(weights) == 30

        rc = main(["report", "--traces", str(out_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pre-processing funnel" in out
        assert "Table II" in out
        assert "Table III" in out
        assert "Noteworthy correlations" in out

    def test_generate_json_format(self, tmp_path):
        out_dir = tmp_path / "jcorpus"
        main(["generate", "--out", str(out_dir), "--n-apps", "20",
              "--mean-runs", "1", "--format", "json", "--seed", "1"])
        files = [f for f in os.listdir(out_dir) if f.endswith(".json") and f != "manifest.json"]
        assert files

    def test_anatomy(self, capsys):
        rc = main(["anatomy", "--cohort", "rcw", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "read raw" in out
        assert "categories:" in out

    def test_categorize_empty_dir_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["categorize", "--traces", str(empty), "--out", str(tmp_path / "r.jsonl")])

    def test_accuracy_command(self, tmp_path, capsys):
        out_dir = tmp_path / "acc-corpus"
        main(["generate", "--out", str(out_dir), "--n-apps", "25",
              "--mean-runs", "2", "--seed", "9"])
        rc = main(["accuracy", "--traces", str(out_dir), "--sample-size", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy over 64 sampled traces" in out

    def test_accuracy_requires_manifest(self, tmp_path):
        out_dir = tmp_path / "no-manifest"
        main(["generate", "--out", str(out_dir), "--n-apps", "20",
              "--mean-runs", "1", "--seed", "9"])
        (out_dir / "manifest.json").unlink()
        with pytest.raises(SystemExit):
            main(["accuracy", "--traces", str(out_dir)])

    def test_discover_command(self, capsys):
        rc = main(["discover", "--n-apps", "60", "--seed", "4",
                   "--direction", "read"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "discovered k=" in out
        assert "purity" in out


class TestResilienceFlags:
    @pytest.fixture(scope="class")
    def corpus(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("cli-resilience") / "corpus"
        rc = main([
            "generate", "--out", str(out_dir), "--n-apps", "20",
            "--mean-runs", "2", "--seed", "9",
        ])
        assert rc == 0
        return out_dir

    def test_journal_and_manifest_written(self, corpus, tmp_path, capsys):
        results = tmp_path / "results.jsonl"
        journal = tmp_path / "run.jsonl"
        rc = main([
            "categorize", "--traces", str(corpus), "--out", str(results),
            "--journal", str(journal),
        ])
        assert rc == 0
        lines = [json.loads(l) for l in journal.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert all(l["kind"] == "result" for l in lines[1:])
        manifest = json.loads((tmp_path / "run.jsonl.quarantine.json").read_text())
        assert manifest["n_quarantined"] == 0
        out = capsys.readouterr().out
        assert "journal:" in out

    def test_resume_round_trip(self, corpus, tmp_path, capsys):
        first = tmp_path / "first.jsonl"
        journal = tmp_path / "run.jsonl"
        rc = main([
            "categorize", "--traces", str(corpus), "--out", str(first),
            "--journal", str(journal),
        ])
        assert rc == 0

        # truncate to simulate a mid-run kill, then resume
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:4]))
        second = tmp_path / "second.jsonl"
        rc = main([
            "categorize", "--traces", str(corpus), "--out", str(second),
            "--resume", str(journal),
        ])
        assert rc == 0
        assert second.read_bytes() == first.read_bytes()
        assert "3 resumed" in capsys.readouterr().out

    def test_journal_resume_mismatch_exits(self, corpus, tmp_path):
        with pytest.raises(SystemExit, match="same file"):
            main([
                "categorize", "--traces", str(corpus), "--out", "o",
                "--journal", str(tmp_path / "a.jsonl"),
                "--resume", str(tmp_path / "b.jsonl"),
            ])

    def test_resume_without_journal_file_exits(self, corpus, tmp_path):
        with pytest.raises(SystemExit, match="no journal to resume"):
            main([
                "categorize", "--traces", str(corpus), "--out", "o",
                "--resume", str(tmp_path / "missing.jsonl"),
            ])

    def test_chaos_refused_in_serial_mode(self, corpus):
        with pytest.raises(SystemExit, match="process pool"):
            main(["report", "--traces", str(corpus), "--chaos", "1"])

    def test_task_timeout_flag_accepted(self, corpus, tmp_path):
        results = tmp_path / "results.jsonl"
        rc = main([
            "categorize", "--traces", str(corpus), "--out", str(results),
            "--task-timeout", "30",
        ])
        assert rc == 0
        assert results.exists()


class TestFuzzCommand:
    def test_bounded_run_exits_zero(self, capsys):
        rc = main(["fuzz", "--cases", "30", "--seed", "20190101"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_replay_committed_corpus(self, capsys):
        corpus = os.path.join(os.path.dirname(__file__), "..", "fuzz", "corpus")
        rc = main(["fuzz", "--replay", corpus])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_format_selection(self, capsys):
        rc = main(["fuzz", "--formats", "json", "--cases", "10"])
        assert rc == 0


class TestBudgetFlags:
    @pytest.fixture(scope="class")
    def governed_corpus(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("gov-corpus")
        main(["generate", "--out", str(out_dir), "--n-apps", "20",
              "--mean-runs", "2", "--seed", "17"])
        return out_dir

    def test_budget_surfaces_degradation_in_report(self, governed_corpus, capsys):
        rc = main(["report", "--traces", str(governed_corpus),
                   "--budget-max-ops", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "over budget" in out

    def test_unlimited_budget_prints_no_degradation_line(self, governed_corpus, capsys):
        rc = main(["report", "--traces", str(governed_corpus)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "over budget" not in out

    def test_bad_budget_flag_exits(self, governed_corpus):
        with pytest.raises(SystemExit):
            main(["report", "--traces", str(governed_corpus),
                  "--budget-max-ops", "-3"])

    def test_categorize_records_degradation(self, governed_corpus, tmp_path, capsys):
        results = tmp_path / "gov.jsonl"
        rc = main(["categorize", "--traces", str(governed_corpus),
                   "--out", str(results), "--budget-max-ops", "2"])
        assert rc == 0
        lines = [json.loads(l) for l in results.read_text().splitlines() if l.strip()]
        assert all("degradation" in d for d in lines)
        assert any(d["degradation"] != "full" for d in lines)
