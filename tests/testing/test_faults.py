"""Unit tests for the deterministic chaos harness."""

import pickle

import pytest

from repro.testing.faults import (
    FAULT_CRASH,
    FAULT_FLAKY,
    FAULT_HANG,
    FAULT_NONE,
    ChaosInjector,
    item_key,
)


def _inner(x: int) -> int:
    return x + 100


class TestItemKey:
    def test_trace_like_objects_key_by_job_id(self):
        class Meta:
            job_id = 42

        class TraceLike:
            meta = Meta()

        assert item_key(TraceLike()) == "job:42"

    def test_scalars_key_by_value(self):
        assert item_key(7) == "val:7"
        assert item_key("abc") == "val:abc"

    def test_fallback_is_stable(self):
        assert item_key((1, 2)) == item_key((1, 2))
        assert item_key((1, 2)) != item_key((1, 3))


class TestSchedule:
    def test_explicit_keys_take_precedence(self):
        chaos = ChaosInjector(
            inner=_inner,
            crash_keys=frozenset({"val:1"}),
            hang_keys=frozenset({"val:2"}),
            flaky_keys=frozenset({"val:3"}),
        )
        assert chaos.fault_for("val:1") == FAULT_CRASH
        assert chaos.fault_for("val:2") == FAULT_HANG
        assert chaos.fault_for("val:3") == FAULT_FLAKY
        assert chaos.fault_for("val:4") == FAULT_NONE

    def test_seeded_schedule_is_deterministic(self):
        a = ChaosInjector(inner=_inner, seed=7, crash_rate=0.3, flaky_rate=0.3)
        b = ChaosInjector(inner=_inner, seed=7, crash_rate=0.3, flaky_rate=0.3)
        keys = [f"val:{i}" for i in range(64)]
        assert [a.fault_for(k) for k in keys] == [b.fault_for(k) for k in keys]

    def test_different_seeds_differ(self):
        keys = [f"val:{i}" for i in range(64)]
        a = ChaosInjector(inner=_inner, seed=1, crash_rate=0.5)
        b = ChaosInjector(inner=_inner, seed=2, crash_rate=0.5)
        assert [a.fault_for(k) for k in keys] != [b.fault_for(k) for k in keys]

    def test_rates_partition_roughly(self):
        chaos = ChaosInjector(inner=_inner, seed=0, crash_rate=0.5)
        keys = [f"val:{i}" for i in range(256)]
        crashes = sum(chaos.fault_for(k) == FAULT_CRASH for k in keys)
        assert 64 < crashes < 192  # ~128 expected

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": -0.1},
            {"hang_rate": 1.5},
            {"crash_rate": 0.6, "hang_rate": 0.6},
            {"hang_seconds": 0.0},
        ],
    )
    def test_rejects_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            ChaosInjector(inner=_inner, **kwargs)


class TestExecution:
    def test_healthy_items_pass_through(self):
        chaos = ChaosInjector(inner=_inner)
        assert chaos(5) == 105

    def test_flaky_raises_once_then_recovers(self, tmp_path):
        chaos = ChaosInjector(
            inner=_inner,
            flaky_keys=frozenset({"val:5"}),
            state_dir=str(tmp_path),
        )
        with pytest.raises(OSError, match="injected transient fault"):
            chaos(5)
        assert chaos(5) == 105  # marker file remembers the first attempt

    def test_flaky_without_state_dir_never_recovers(self):
        chaos = ChaosInjector(inner=_inner, flaky_keys=frozenset({"val:5"}))
        for _ in range(3):
            with pytest.raises(OSError):
                chaos(5)

    def test_recovery_state_survives_pickling(self, tmp_path):
        # the retry executes in a *different* worker process; the clone
        # must see the original's marker files
        chaos = ChaosInjector(
            inner=_inner,
            flaky_keys=frozenset({"val:9"}),
            state_dir=str(tmp_path),
        )
        with pytest.raises(OSError):
            chaos(9)
        clone = pickle.loads(pickle.dumps(chaos))
        assert clone(9) == 109
