"""The chaos proxy itself: seeded determinism, replay, and each fault's
observable effect on a real TCP peer.

The upstream here is a trivial fixed-payload server — the point is the
proxy's wire behavior, not Mosaic's; the service-level convergence
claim lives in ``tests/integration/test_netchaos_acceptance.py``.
"""

import json
import socket
import threading
import time

import pytest

from repro.testing.netchaos import (
    FAULT_KINDS,
    ConnectionScript,
    NetChaosProxy,
    NetChaosSchedule,
)

PAYLOAD = b"B" * 2000


class _Upstream:
    """Accepts, reads one newline-terminated request, sends PAYLOAD."""

    def __init__(self):
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(16)
        self.host, self.port = self.sock.getsockname()
        self._stop = False
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while not self._stop:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._one, args=(conn,), daemon=True
            ).start()

    def _one(self, conn):
        try:
            conn.settimeout(10)
            buf = b""
            while b"\n" not in buf:
                chunk = conn.recv(4096)
                if not chunk:
                    return
                buf += chunk
            conn.sendall(PAYLOAD)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._stop = True
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture(scope="module")
def upstream():
    server = _Upstream()
    yield server
    server.close()


def _fetch(endpoint, timeout=10.0):
    """One request through the proxy; returns (bytes, error-or-None)."""
    got = b""
    try:
        with socket.create_connection(endpoint, timeout=timeout) as sock:
            sock.sendall(b"GET\n")
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    return got, None
                got += chunk
    except OSError as exc:
        return got, exc


def _proxy(upstream, **kwargs):
    return NetChaosProxy(
        upstream.host, upstream.port, schedule=NetChaosSchedule(**kwargs)
    )


# -- schedule ----------------------------------------------------------
class TestSchedule:
    def test_same_seed_same_scripts(self):
        a = NetChaosSchedule(7)
        b = NetChaosSchedule(7)
        assert [a.script_for(i) for i in range(64)] == [
            b.script_for(i) for i in range(64)
        ]

    def test_different_seed_differs_somewhere(self):
        a = [NetChaosSchedule(7).script_for(i) for i in range(64)]
        b = [NetChaosSchedule(8).script_for(i) for i in range(64)]
        assert a != b

    def test_clean_every_guarantee_holds_at_full_fault_rate(self):
        schedule = NetChaosSchedule(3, fault_rate=1.0, clean_every=3)
        for i in range(2, 300, 3):
            assert schedule.script_for(i).kind == "none"
        # and the rest are not all clean — chaos actually happens
        kinds = {schedule.script_for(i).kind for i in range(300)}
        assert len(kinds) > 1

    def test_scripts_mode_replays_then_goes_clean(self):
        scripts = [
            ConnectionScript(kind="reset", after_bytes=9),
            ConnectionScript(kind="trickle", chunk_size=5, delay_s=0.001),
        ]
        schedule = NetChaosSchedule(scripts=scripts)
        assert schedule.script_for(0) is scripts[0]
        assert schedule.script_for(1) is scripts[1]
        assert schedule.script_for(2).kind == "none"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "gremlin"},
            {"direction": "sideways"},
            {"after_bytes": -1},
            {"chunk_size": 0},
        ],
    )
    def test_bad_script_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ConnectionScript(**kwargs)

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError, match="fault_rate"):
            NetChaosSchedule(fault_rate=1.5)
        with pytest.raises(ValueError, match="clean_every"):
            NetChaosSchedule(clean_every=1)

    def test_fault_kind_list_is_closed(self):
        assert set(FAULT_KINDS) == {
            "none", "reset", "stall", "truncate", "trickle", "refuse",
        }


# -- proxy wire behavior -----------------------------------------------
class TestProxyFaults:
    def test_clean_passthrough(self, upstream):
        with _proxy(upstream, fault_rate=0.0) as proxy:
            got, err = _fetch(proxy.endpoint)
        assert err is None
        assert got == PAYLOAD
        assert proxy.applied[0]["kind"] == "none"

    def test_reset_delivers_econnreset_mid_body(self, upstream):
        scripts = [ConnectionScript(kind="reset", after_bytes=100)]
        proxy = NetChaosProxy(
            upstream.host,
            upstream.port,
            schedule=NetChaosSchedule(scripts=scripts),
        )
        with proxy:
            got, err = _fetch(proxy.endpoint)
        assert len(got) <= 100
        assert isinstance(err, ConnectionError)

    def test_truncate_fins_after_exactly_n_bytes(self, upstream):
        scripts = [ConnectionScript(kind="truncate", after_bytes=128)]
        proxy = NetChaosProxy(
            upstream.host,
            upstream.port,
            schedule=NetChaosSchedule(scripts=scripts),
        )
        with proxy:
            got, err = _fetch(proxy.endpoint)
        assert err is None
        assert got == PAYLOAD[:128]

    def test_stall_delays_but_delivers_everything(self, upstream):
        scripts = [
            ConnectionScript(kind="stall", after_bytes=64, stall_s=0.3)
        ]
        proxy = NetChaosProxy(
            upstream.host,
            upstream.port,
            schedule=NetChaosSchedule(scripts=scripts),
        )
        with proxy:
            start = time.monotonic()
            got, err = _fetch(proxy.endpoint)
            elapsed = time.monotonic() - start
        assert err is None
        assert got == PAYLOAD
        assert elapsed >= 0.3

    def test_trickle_delivers_everything_slowly(self, upstream):
        scripts = [
            ConnectionScript(
                kind="trickle", after_bytes=0, chunk_size=200, delay_s=0.001
            )
        ]
        proxy = NetChaosProxy(
            upstream.host,
            upstream.port,
            schedule=NetChaosSchedule(scripts=scripts),
        )
        with proxy:
            got, err = _fetch(proxy.endpoint)
        assert err is None
        assert got == PAYLOAD

    def test_refuse_kills_the_connection_on_accept(self, upstream):
        scripts = [ConnectionScript(kind="refuse")]
        proxy = NetChaosProxy(
            upstream.host,
            upstream.port,
            schedule=NetChaosSchedule(scripts=scripts),
        )
        with proxy:
            got, err = _fetch(proxy.endpoint)
        assert got == b""
        # RST on read, or (rarely) a clean EOF if the FIN races the RST
        assert err is None or isinstance(err, ConnectionError)

    def test_dump_script_replays_identically(self, upstream):
        with _proxy(upstream, seed=11, fault_rate=0.5) as proxy:
            for _ in range(6):
                _fetch(proxy.endpoint)
            artifact = proxy.dump_script()
        decisions = json.loads(artifact)
        assert decisions["seed"] == 11
        assert [d["connection"] for d in decisions["connections"]] == list(
            range(6)
        )
        scripts = [
            ConnectionScript(
                **{k: v for k, v in d.items() if k != "connection"}
            )
            for d in decisions["connections"]
        ]
        replay = NetChaosSchedule(scripts=scripts)
        for i, d in enumerate(decisions["connections"]):
            assert replay.script_for(i).to_dict() == {
                k: v for k, v in d.items() if k != "connection"
            }
