"""Unit tests for the Jaccard index matrix."""

import numpy as np
import pytest

from repro.analysis import conditional_probability, jaccard_matrix
from repro.core import CategorizationResult, Category


def result(job_id, cats):
    return CategorizationResult(
        job_id=job_id, uid=job_id, exe=f"a{job_id}", nprocs=4, run_time=1.0,
        categories=frozenset(cats),
    )


@pytest.fixture
def results():
    # 4 traces: A&B co-occur 2/3 of their union
    A, B, C = Category.READ_ON_START, Category.WRITE_ON_END, Category.PERIODIC
    return [
        result(1, {A, B}),
        result(2, {A, B}),
        result(3, {A}),
        result(4, {C}),
    ]


class TestJaccardMatrix:
    def test_pairwise_value(self, results):
        m = jaccard_matrix(results)
        # |A∩B| = 2, |A∪B| = 3
        assert m.get(Category.READ_ON_START, Category.WRITE_ON_END) == pytest.approx(2 / 3)

    def test_diagonal_is_one_for_present_categories(self, results):
        m = jaccard_matrix(results)
        assert m.get(Category.READ_ON_START, Category.READ_ON_START) == pytest.approx(1.0)

    def test_absent_categories_zero(self, results):
        m = jaccard_matrix(results)
        assert m.get(Category.READ_STEADY, Category.WRITE_ON_END) == 0.0

    def test_symmetry(self, results):
        m = jaccard_matrix(results)
        assert np.allclose(m.values, m.values.T)

    def test_disjoint_categories_zero(self, results):
        m = jaccard_matrix(results)
        assert m.get(Category.PERIODIC, Category.READ_ON_START) == 0.0

    def test_run_weighting(self, results):
        m = jaccard_matrix(results, run_weights=[10, 1, 1, 1])
        # weighted: inter = 11, union = 12
        assert m.get(Category.READ_ON_START, Category.WRITE_ON_END) == pytest.approx(11 / 12)

    def test_relevant_pairs_sorted_and_thresholded(self, results):
        m = jaccard_matrix(results)
        pairs = m.relevant_pairs(0.01)
        assert pairs
        values = [v for _, _, v in pairs]
        assert values == sorted(values, reverse=True)
        assert all(v > 0.01 for v in values)

    def test_restricted_category_list(self, results):
        m = jaccard_matrix(results, categories=[Category.READ_ON_START, Category.WRITE_ON_END])
        assert m.values.shape == (2, 2)

    def test_weight_alignment_enforced(self, results):
        with pytest.raises(ValueError):
            jaccard_matrix(results, run_weights=[1])


class TestConditionalProbability:
    def test_direction_matters(self, results):
        p_ba = conditional_probability(results, Category.READ_ON_START, Category.WRITE_ON_END)
        p_ab = conditional_probability(results, Category.WRITE_ON_END, Category.READ_ON_START)
        assert p_ba == pytest.approx(2 / 3)
        assert p_ab == pytest.approx(1.0)

    def test_zero_when_given_absent(self, results):
        assert conditional_probability(results, Category.READ_STEADY, Category.PERIODIC) == 0.0

    def test_run_weighted(self, results):
        p = conditional_probability(
            results, Category.READ_ON_START, Category.WRITE_ON_END, run_weights=[10, 1, 1, 1]
        )
        assert p == pytest.approx(11 / 12)
