"""Unit tests for category distribution statistics."""

import pytest

from repro.analysis import category_shares, metadata_table, periodicity_table, temporality_table
from repro.core import CategorizationResult, Category
from repro.core.periodicity import PeriodicGroup


def result(job_id, cats, write_groups=()):
    return CategorizationResult(
        job_id=job_id, uid=job_id, exe=f"a{job_id}", nprocs=4, run_time=1000.0,
        categories=frozenset(cats),
        periodic_groups={"write": list(write_groups)} if write_groups else {},
    )


@pytest.fixture
def results():
    return [
        result(1, {Category.READ_ON_START, Category.WRITE_ON_END}),
        result(2, {Category.READ_INSIGNIFICANT, Category.WRITE_INSIGNIFICANT}),
        result(
            3,
            {Category.READ_STEADY, Category.WRITE_STEADY, Category.PERIODIC_WRITE,
             Category.PERIODIC, Category.PERIODIC_MINUTE},
            write_groups=[PeriodicGroup("write", 600.0, 1e9, 12, 0.05)],
        ),
    ]


class TestCategoryShares:
    def test_single_run_counts_each_app_once(self, results):
        shares = category_shares(results, [1, 1, 1])
        assert shares.single(Category.READ_ON_START) == pytest.approx(1 / 3)

    def test_all_runs_weighted(self, results):
        shares = category_shares(results, [1, 1, 8])
        assert shares.all(Category.WRITE_STEADY) == pytest.approx(0.8)
        assert shares.all(Category.READ_ON_START) == pytest.approx(0.1)

    def test_alignment_enforced(self, results):
        with pytest.raises(ValueError):
            category_shares(results, [1, 1])

    def test_empty(self):
        shares = category_shares([], [])
        assert shares.single(Category.READ_ON_START) == 0.0


class TestTemporalityTable:
    def test_paper_grouping(self, results):
        table = temporality_table(results, [1, 1, 1])
        assert set(table) == {"read_single", "read_all", "write_single", "write_all"}
        row = table["read_single"]
        assert row["read_insignificant"] == pytest.approx(1 / 3)
        assert row["read_on_start"] == pytest.approx(1 / 3)
        assert row["read_steady"] == pytest.approx(1 / 3)
        assert row["others"] == pytest.approx(0.0)

    def test_others_bucket_collects_rest(self):
        rs = [result(1, {Category.READ_AFTER_START, Category.WRITE_BEFORE_END})]
        table = temporality_table(rs, [1])
        assert table["read_single"]["others"] == pytest.approx(1.0)
        assert table["write_single"]["others"] == pytest.approx(1.0)

    def test_rows_sum_to_one_per_direction(self, results):
        table = temporality_table(results, [3, 2, 5])
        for row in table.values():
            assert sum(row.values()) == pytest.approx(1.0)


class TestPeriodicityTable:
    def test_shares_and_magnitudes(self, results):
        table = periodicity_table(results, [1, 1, 8], "write")
        assert table["single_run"]["periodic"] == pytest.approx(1 / 3)
        assert table["single_run"]["non_periodic"] == pytest.approx(2 / 3)
        assert table["all_runs"]["periodic"] == pytest.approx(0.8)
        assert table["single_run"]["periodic_minute"] == pytest.approx(1 / 3)
        assert table["single_run"]["periodic_hour"] == 0.0

    def test_read_direction(self, results):
        table = periodicity_table(results, [1, 1, 1], "read")
        assert table["single_run"]["periodic"] == 0.0


class TestMetadataTable:
    def test_all_metadata_categories_present(self, results):
        table = metadata_table(results, [1, 1, 1])
        for row in table.values():
            assert set(row) == {c.value for c in
                                [Category.METADATA_HIGH_SPIKE,
                                 Category.METADATA_MULTIPLE_SPIKES,
                                 Category.METADATA_HIGH_DENSITY,
                                 Category.METADATA_INSIGNIFICANT_LOAD]}
