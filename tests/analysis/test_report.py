"""Tests for the consolidated corpus report."""

import pytest

from repro.analysis.report import build_report


@pytest.fixture(scope="module")
def report(small_pipeline):
    return build_report(small_pipeline)


class TestCorpusReport:
    def test_carries_every_artifact(self, report, small_pipeline):
        assert report.n_categorized == small_pipeline.n_categorized
        assert report.funnel.stages[0].count == small_pipeline.preprocess.n_input
        assert set(report.table3) == {
            "read_single", "read_all", "write_single", "write_all",
        }
        assert set(report.table2) == {"single_run", "all_runs"}
        assert set(report.fig4) == {"single_run", "all_runs"}

    def test_render_contains_all_sections(self, report):
        text = report.render()
        for needle in (
            "Fig. 3", "Table II", "Table III", "Fig. 4", "Fig. 5",
            "Noteworthy correlations", "read_on_start", "Run health",
        ):
            assert needle in text

    def test_run_health_counters(self, report, small_pipeline):
        assert report.run_health["n_failures"] == small_pipeline.n_failures
        assert report.run_health["n_degraded"] == (
            small_pipeline.metrics.get("n_degraded", 0)
        )
        assert report.run_health["n_quarantined"] == (
            small_pipeline.metrics.get("n_quarantined", 0)
        )
        text = report.render()
        assert "degraded:" in text
        assert "quarantined:" in text

    def test_values_consistent_with_direct_calls(self, report, small_pipeline):
        from repro.analysis import periodicity_table

        direct = periodicity_table(
            small_pipeline.results, small_pipeline.run_weights(), "write"
        )
        assert report.table2 == direct
