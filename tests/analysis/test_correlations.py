"""Unit tests for the §IV-D correlation report and the generic miner."""

import pytest

from repro.analysis import mine_correlations, paper_correlations
from repro.core import CategorizationResult, Category
from repro.core.periodicity import PeriodicGroup


def result(job_id, cats, write_groups=()):
    return CategorizationResult(
        job_id=job_id, uid=job_id, exe=f"a{job_id}", nprocs=4, run_time=1.0,
        categories=frozenset(cats),
        periodic_groups={"write": list(write_groups)} if write_groups else {},
    )


class TestPaperCorrelations:
    def test_insig_implication(self):
        rs = [
            result(1, {Category.READ_INSIGNIFICANT, Category.WRITE_INSIGNIFICANT}),
            result(2, {Category.READ_INSIGNIFICANT, Category.WRITE_ON_END}),
            result(3, {Category.READ_ON_START, Category.WRITE_ON_END}),
        ]
        rep = paper_correlations(rs)
        assert rep.insig_read_implies_insig_write == pytest.approx(0.5)
        assert rep.read_start_implies_write_end == pytest.approx(1.0)

    def test_periodic_low_busy_share(self):
        low = PeriodicGroup("write", 600.0, 1e9, 10, 0.05)
        high = PeriodicGroup("write", 600.0, 1e9, 10, 0.6)
        rs = [
            result(1, {Category.PERIODIC_WRITE}, [low]),
            result(2, {Category.PERIODIC_WRITE}, [low]),
            result(3, {Category.PERIODIC_WRITE}, [high]),
            result(4, {Category.READ_ON_START}),
        ]
        rep = paper_correlations(rs)
        assert rep.periodic_writes_low_busy == pytest.approx(2 / 3)

    def test_dense_metadata_correlation(self):
        rs = [
            result(1, {Category.METADATA_HIGH_DENSITY, Category.READ_ON_START}),
            result(2, {Category.METADATA_HIGH_DENSITY, Category.WRITE_ON_END}),
            result(3, {Category.METADATA_HIGH_DENSITY, Category.READ_STEADY}),
        ]
        rep = paper_correlations(rs)
        assert rep.dense_metadata_reads_start_or_writes_end == pytest.approx(2 / 3)

    def test_empty_corpus_gives_zeros(self):
        rep = paper_correlations([])
        assert rep.insig_read_implies_insig_write == 0.0
        assert rep.periodic_writes_low_busy == 0.0


class TestMiner:
    def test_finds_strong_pair(self):
        rs = [
            result(i, {Category.READ_ON_START, Category.WRITE_ON_END}) for i in range(8)
        ] + [result(100, {Category.READ_ON_START})]
        found = mine_correlations(rs, min_jaccard=0.1, min_conditional=0.6)
        pairs = {(g.value, t.value) for g, t, _, _ in found}
        assert ("read_on_start", "write_on_end") in pairs

    def test_thresholds_filter(self):
        rs = [
            result(1, {Category.READ_ON_START}),
            result(2, {Category.WRITE_ON_END}),
        ]
        assert mine_correlations(rs, min_jaccard=0.1) == []

    def test_results_sorted_by_conditional(self):
        rs = [
            result(i, {Category.READ_ON_START, Category.WRITE_ON_END,
                       Category.METADATA_HIGH_SPIKE})
            for i in range(5)
        ] + [result(9, {Category.READ_ON_START})]
        found = mine_correlations(rs, min_jaccard=0.05, min_conditional=0.5)
        probs = [p for _, _, p, _ in found]
        assert probs == sorted(probs, reverse=True)
