"""Unit tests for sampling-based accuracy estimation (§IV-E)."""

import pytest

from repro.analysis import estimate_accuracy, wilson_interval
from repro.core import CategorizationResult, Category
from repro.synth import GroundTruth


def result(job_id, cats):
    return CategorizationResult(
        job_id=job_id, uid=job_id, exe=f"a{job_id}", nprocs=4, run_time=1.0,
        categories=frozenset(cats),
    )


TRUTH_OK = GroundTruth(
    read_temporality=Category.READ_ON_START,
    write_temporality=Category.WRITE_ON_END,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(470, 512)
        assert lo < 470 / 512 < hi

    def test_bounded(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        lo, hi = wilson_interval(10, 10)
        assert hi == 1.0

    def test_empty_sample(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_n(self):
        lo1, hi1 = wilson_interval(46, 50)
        lo2, hi2 = wilson_interval(460, 500)
        assert (hi2 - lo2) < (hi1 - lo1)


class TestEstimateAccuracy:
    def test_perfect_corpus(self):
        results = [result(i, {Category.READ_ON_START, Category.WRITE_ON_END}) for i in range(20)]
        truth = {i: TRUTH_OK for i in range(20)}
        rep = estimate_accuracy(results, truth, sample_size=64, seed=1)
        assert rep.accuracy == 1.0
        assert rep.n_incorrect == 0

    def test_known_error_rate_estimated(self):
        good = [result(i, {Category.READ_ON_START, Category.WRITE_ON_END}) for i in range(90)]
        bad = [result(100 + i, {Category.READ_STEADY, Category.WRITE_ON_END}) for i in range(10)]
        truth = {r.job_id: TRUTH_OK for r in good + bad}
        rep = estimate_accuracy(good + bad, truth, sample_size=512, seed=2)
        assert rep.accuracy == pytest.approx(0.9, abs=0.05)
        assert rep.ci_low < 0.9 < rep.ci_high

    def test_error_axes_histogram(self):
        bad = [result(i, {Category.READ_STEADY, Category.WRITE_ON_END}) for i in range(10)]
        truth = {r.job_id: TRUTH_OK for r in bad}
        rep = estimate_accuracy(bad, truth, sample_size=32, seed=0)
        assert rep.dominant_error_axis() == "read_temporality"
        assert rep.errors_by_axis["read_temporality"] == 32

    def test_results_without_truth_skipped(self):
        results = [result(1, {Category.READ_ON_START, Category.WRITE_ON_END})]
        rep = estimate_accuracy(results, {}, sample_size=8)
        assert rep.n_sampled == 0

    def test_deterministic_given_seed(self):
        results = [result(i, {Category.READ_ON_START, Category.WRITE_ON_END}) for i in range(50)]
        truth = {i: TRUTH_OK for i in range(50)}
        a = estimate_accuracy(results, truth, sample_size=16, seed=7)
        b = estimate_accuracy(results, truth, sample_size=16, seed=7)
        assert a.n_correct == b.n_correct
