"""Unit tests for the Fig. 3 funnel report."""

import pytest

from repro.analysis import PAPER_FUNNEL, funnel_report
from repro.core import preprocess_corpus

from tests.conftest import make_record, make_trace


def valid(job_id, uid=1, exe="a"):
    return make_trace(
        [make_record(1, 0, read=(0.0, 10.0, 1000 + job_id))],
        job_id=job_id,
        uid=uid,
        exe=exe,
    )


def corrupted(job_id):
    t = make_trace([], job_id=job_id)
    t.meta.end_time = t.meta.start_time - 1.0
    return t


class TestFunnelReport:
    def test_stage_counts(self):
        traces = [valid(1), valid(2), valid(3, exe="b"), corrupted(4)]
        rep = funnel_report(preprocess_corpus(traces))
        counts = {s.name: s.count for s in rep.stages}
        assert counts["input_traces"] == 4
        assert counts["valid_traces"] == 3
        assert counts["selected_for_categorization"] == 2

    def test_retention_fractions(self):
        traces = [valid(1), valid(2), corrupted(3), corrupted(4)]
        rep = funnel_report(preprocess_corpus(traces))
        assert rep.stages[0].retention == 1.0
        assert rep.stages[1].retention == pytest.approx(0.5)

    def test_corruption_causes_listed(self):
        rep = funnel_report(preprocess_corpus([corrupted(1)]))
        assert rep.corruption_causes == {"negative_runtime": 1}

    def test_paper_reference_values(self):
        # the constants the benches compare against
        assert PAPER_FUNNEL["input_traces"] == 462_502
        assert PAPER_FUNNEL["selected_for_categorization"] == 24_606
        assert PAPER_FUNNEL["corrupted_fraction"] == pytest.approx(0.32)
        assert PAPER_FUNNEL["unique_fraction"] == pytest.approx(0.08)
