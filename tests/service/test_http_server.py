"""End-to-end tests for the Mosaic categorization server.

The server runs in-process on an ephemeral port (one asyncio loop per
daemon thread), exercised over real HTTP with stdlib ``http.client`` —
the same wire a remote submitter would use.  The oracle throughout is
the batch CLI path: a served job's results must be byte-identical to
``run_pipeline_store`` over the same corpus.
"""

import errno
import http.client
import json
import os
import threading
import time

import asyncio

import pytest

from repro.columnar import compile_corpus
from repro.core import run_pipeline_store, save_results_jsonl
from repro.darshan import DirectorySource, save_binary
from repro.io import scoped_io
from repro.parallel import ParallelConfig
from repro.service import MosaicServer
from repro.synth import FleetConfig, generate_fleet
from repro.testing import StorageChaos

SERIAL = ParallelConfig(max_workers=0)


# -- harness -----------------------------------------------------------
def _start(server):
    """Run ``server`` on a daemon thread; return once it publishes its
    ephemeral endpoint (``<data>/server.json``)."""
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run()), daemon=True
    )
    thread.start()
    endpoint_path = os.path.join(server.data_dir, "server.json")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with open(endpoint_path, encoding="utf-8") as fh:
                endpoint = json.load(fh)
            if endpoint.get("pid") == os.getpid():
                return thread, endpoint
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.02)
    raise RuntimeError("server never published server.json")


def _shutdown(server, thread):
    loop = server._loop
    if loop is not None and not loop.is_closed():
        loop.call_soon_threadsafe(server.request_stop)
    thread.join(timeout=30)
    assert not thread.is_alive(), "server thread failed to stop"


def _request(endpoint, method, path, payload=None, raw_body=None):
    conn = http.client.HTTPConnection(
        endpoint["host"], endpoint["port"], timeout=60
    )
    body = raw_body
    if payload is not None:
        body = json.dumps(payload).encode()
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _submit(endpoint, payload):
    status, data = _request(endpoint, "POST", "/jobs", payload)
    assert status == 202, data
    return json.loads(data)["job_id"]


def _wait_terminal(endpoint, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, data = _request(endpoint, "GET", f"/jobs/{job_id}")
        job = json.loads(data)
        if job["status"] not in ("queued", "running"):
            return job
        time.sleep(0.05)
    raise RuntimeError(f"{job_id} still running after {timeout}s")


# -- fixtures ----------------------------------------------------------
@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A compiled store plus the batch-path oracle bytes."""
    base = tmp_path_factory.mktemp("service-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.5, seed=13))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    batch = run_pipeline_store(str(store_path), parallel=SERIAL)
    save_results_jsonl(batch.results, str(base / "batch.jsonl"))
    return {
        "trace_dir": str(trace_dir),
        "store": str(store_path),
        "batch_bytes": (base / "batch.jsonl").read_bytes(),
        "n_results": batch.n_categorized,
    }


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One long-lived server shared by the happy-path flow tests."""
    data_dir = tmp_path_factory.mktemp("service-data")
    server = MosaicServer(data_dir, port=0)
    thread, endpoint = _start(server)
    yield server, endpoint
    _shutdown(server, thread)


# -- request validation ------------------------------------------------
class TestValidation:
    def test_healthz(self, service):
        _server, endpoint = service
        status, data = _request(endpoint, "GET", "/healthz")
        assert status == 200
        assert json.loads(data) == {"status": "ok"}

    def test_unknown_route_404(self, service):
        _server, endpoint = service
        status, _ = _request(endpoint, "GET", "/nope")
        assert status == 404

    def test_unknown_job_404(self, service):
        _server, endpoint = service
        for suffix in ("", "/results", "/events"):
            status, _ = _request(endpoint, "GET", f"/jobs/job-999999{suffix}")
            assert status == 404

    def test_submit_requires_exactly_one_source(self, service, corpus):
        _server, endpoint = service
        for payload in (
            {},
            {"store": corpus["store"], "traces": corpus["trace_dir"]},
        ):
            status, data = _request(endpoint, "POST", "/jobs", payload)
            assert status == 400
            assert "exactly one" in json.loads(data)["error"]

    def test_submit_rejects_missing_source(self, service):
        _server, endpoint = service
        status, data = _request(
            endpoint, "POST", "/jobs", {"store": "/no/such/corpus.mosc"}
        )
        assert status == 400
        assert "no store" in json.loads(data)["error"]

    def test_submit_rejects_bad_budget(self, service, corpus):
        _server, endpoint = service
        for budget in ({"max_ops": -1}, {"bogus_knob": 3}):
            status, data = _request(
                endpoint,
                "POST",
                "/jobs",
                {"store": corpus["store"], "budget": budget},
            )
            assert status == 400
            assert "bad budget" in json.loads(data)["error"]

    def test_submit_rejects_non_json_body(self, service):
        _server, endpoint = service
        status, _ = _request(
            endpoint, "POST", "/jobs", raw_body=b"not json at all"
        )
        assert status == 400

    def test_oversized_body_413(self, service):
        _server, endpoint = service
        status, _ = _request(
            endpoint, "POST", "/jobs", raw_body=b"x" * ((1 << 20) + 1)
        )
        assert status == 413


# -- the service flow (ordered within the class) -----------------------
class TestServiceFlow:
    def test_served_results_byte_identical_to_batch(self, service, corpus):
        _server, endpoint = service
        job_id = _submit(endpoint, {"store": corpus["store"]})
        job = _wait_terminal(endpoint, job_id)
        assert job["status"] == "done", job
        assert job["n_results"] == corpus["n_results"]
        status, data = _request(endpoint, "GET", f"/jobs/{job_id}/results")
        assert status == 200
        assert data == corpus["batch_bytes"]

    def test_resubmission_is_cache_served(self, service, corpus):
        _server, endpoint = service
        _status, data = _request(endpoint, "GET", "/metrics")
        before = json.loads(data)["cache"]
        # the first job ran all-miss; its puts must now serve a re-run
        assert before["misses"] > 0

        job_id = _submit(endpoint, {"store": corpus["store"]})
        job = _wait_terminal(endpoint, job_id)
        assert job["status"] == "done"

        _status, data = _request(endpoint, "GET", "/metrics")
        after = json.loads(data)["cache"]
        served = after["hits"] - before["hits"]
        looked_up = served + (after["misses"] - before["misses"])
        assert looked_up > 0
        assert served >= 0.9 * looked_up

        status, data = _request(endpoint, "GET", f"/jobs/{job_id}/results")
        assert status == 200
        assert data == corpus["batch_bytes"]

    def test_job_listing_and_metrics_shape(self, service, corpus):
        _server, endpoint = service
        _status, data = _request(endpoint, "GET", "/jobs")
        jobs = json.loads(data)["jobs"]
        assert [j["job_id"] for j in jobs] == sorted(j["job_id"] for j in jobs)
        assert all(j["status"] == "done" for j in jobs)

        _status, data = _request(endpoint, "GET", "/metrics")
        metrics = json.loads(data)
        assert metrics["queue_depth"] == 0
        assert metrics["jobs"]["done"] == len(jobs)
        assert 0.0 <= metrics["cache"]["hit_rate"] <= 1.0
        assert sum(metrics["catalog"]["shard_sizes"]) == (
            metrics["catalog"]["n_apps"]
        )
        assert metrics["pipeline"], "pipeline counters never aggregated"

    def test_catalog_endpoint(self, service, corpus):
        _server, endpoint = service
        status, data = _request(endpoint, "GET", "/catalog")
        assert status == 200
        catalog = json.loads(data)
        assert catalog["n_apps"] == 24
        for app in catalog["apps"]:
            assert app["n_runs"] >= 1
            assert 0.0 <= app["stability"] <= 1.0

    def test_events_replay_for_terminal_job(self, service):
        _server, endpoint = service
        _status, data = _request(endpoint, "GET", "/jobs")
        job_id = json.loads(data)["jobs"][0]["job_id"]
        status, data = _request(endpoint, "GET", f"/jobs/{job_id}/events")
        assert status == 200
        assert data == (
            b'data: {"event":"finished","status":"done"}\n\n'
        )

    def test_trace_directory_job(self, service, corpus):
        """The stream path (``traces`` submissions) serves too."""
        _server, endpoint = service
        job_id = _submit(endpoint, {"traces": corpus["trace_dir"]})
        job = _wait_terminal(endpoint, job_id)
        assert job["status"] == "done"
        status, data = _request(endpoint, "GET", f"/jobs/{job_id}/results")
        assert status == 200
        assert data == corpus["batch_bytes"]


# -- live SSE ----------------------------------------------------------
class TestEvents:
    def test_live_settle_stream(self, corpus, tmp_path, monkeypatch):
        monkeypatch.setenv("MOSAIC_SERVE_TEST_DELAY_S", "0.05")
        server = MosaicServer(tmp_path / "data", port=0)
        thread, endpoint = _start(server)
        try:
            job_id = _submit(endpoint, {"store": corpus["store"]})
            conn = http.client.HTTPConnection(
                endpoint["host"], endpoint["port"], timeout=120
            )
            try:
                conn.request("GET", f"/jobs/{job_id}/events")
                resp = conn.getresponse()
                assert resp.status == 200
                events = []
                deadline = time.monotonic() + 120
                while time.monotonic() < deadline:
                    line = resp.readline()
                    if not line:
                        break
                    if line.startswith(b"data: "):
                        events.append(json.loads(line[len(b"data: ") :]))
                        if events[-1].get("event") == "finished":
                            break
            finally:
                conn.close()
            assert events, "no SSE events received"
            assert events[-1] == {"event": "finished", "status": "done"}
            if len(events) > 1:  # subscribed before the job settled
                assert events[0]["event"] == "subscribed"
                kinds = {e["event"] for e in events[1:-1]}
                assert "result" in kinds
        finally:
            _shutdown(server, thread)


# -- storage exhaustion ------------------------------------------------
class _JobsDirChaos(StorageChaos):
    """Faults scoped to paths under the chaos root; the registry and
    endpoint file (outside ``jobs/``) stay healthy, as a filled data
    volume distinct from the server's own state would."""

    def _check(self, op, path):
        p = os.path.abspath(str(path))
        if p != self.root and not p.startswith(self.root + os.sep):
            return None
        return super()._check(op, path)


class TestStorageFailure:
    def test_enospc_job_reports_507(self, corpus, tmp_path):
        server = MosaicServer(tmp_path / "data", port=0)
        thread, endpoint = _start(server)
        chaos = _JobsDirChaos(server.jobs_dir, enospc_rate=1.0)
        try:
            with scoped_io(chaos):
                job_id = _submit(endpoint, {"store": corpus["store"]})
                job = _wait_terminal(endpoint, job_id)
            assert job["status"] == "storage-failed"
            assert job["error"]
            status, _ = _request(endpoint, "GET", f"/jobs/{job_id}")
            assert status == 507
            status, _ = _request(endpoint, "GET", f"/jobs/{job_id}/results")
            assert status == 507
            assert any(
                fault == errno.ENOSPC for _op, _i, fault in chaos.injected
            )
            # the failure is isolated: the server keeps serving
            status, _ = _request(endpoint, "GET", "/healthz")
            assert status == 200
            job_id = _submit(endpoint, {"store": corpus["store"]})
            assert _wait_terminal(endpoint, job_id)["status"] == "done"
        finally:
            _shutdown(server, thread)


# -- registry replay ---------------------------------------------------
class TestRegistryReplay:
    def test_replay_rebuilds_jobs_and_requeues_unfinished(self, tmp_path):
        registry = [
            {"event": "submitted", "job_id": "job-000001", "kind": "store",
             "path": "/x.mosc", "repair": False},
            {"event": "finished", "job_id": "job-000001", "status": "done",
             "error": "", "n_results": 5, "n_failures": 0},
            {"event": "submitted", "job_id": "job-000002", "kind": "traces",
             "path": "/traces", "repair": True},
        ]
        lines = [json.dumps(e, separators=(",", ":")) for e in registry]
        lines.append('{"event": "submitted", "job_id": "job-0000')  # torn tail
        data_dir = tmp_path / "data"
        data_dir.mkdir()
        (data_dir / "jobs.jsonl").write_text("\n".join(lines) + "\n")

        server = MosaicServer(data_dir, port=0)
        assert set(server.jobs) == {"job-000001", "job-000002"}
        assert server.jobs["job-000001"].status == "done"
        assert server.jobs["job-000001"].n_results == 5
        assert server.jobs["job-000002"].status == "queued"
        assert server.jobs["job-000002"].repair is True
        assert [j.job_id for j in server._resumed_at_start] == ["job-000002"]
        # new ids continue after the replayed sequence: no collisions
        assert server._seq == 2
        server._registry.close()

    def test_empty_data_dir_starts_clean(self, tmp_path):
        server = MosaicServer(tmp_path / "data", port=0)
        assert server.jobs == {}
        assert server._resumed_at_start == []
        server._registry.close()
