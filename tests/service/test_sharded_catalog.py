"""Unit tests for the sharded application catalog.

A sharded catalog must be observably identical to one flat
:class:`~repro.core.stream.ApplicationCatalog` fed the same traces —
sharding buys lock granularity, never different answers.  Routing must
also be stable across processes (CRC, not salted ``hash``), or a
restarted server would re-shuffle applications between shards.
"""

import zlib

import pytest

from repro.core import run_pipeline, save_results_jsonl
from repro.core.stream import ApplicationCatalog
from repro.service import ShardedCatalog, result_weight, shard_of
from repro.synth import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(FleetConfig(n_apps=24, mean_runs=2.0, seed=7))


class TestRouting:
    def test_stable_crc_routing(self):
        assert shard_of(100, "app.exe", 8) == (
            zlib.crc32(b"100:app.exe") % 8
        )

    def test_in_range(self):
        for uid in range(50):
            assert 0 <= shard_of(uid, "x.exe", 5) < 5

    def test_single_shard_degenerate(self):
        assert shard_of(1, "a", 1) == 0

    def test_instances_agree(self):
        a = ShardedCatalog(4)
        b = ShardedCatalog(4)
        assert a.shard_index(7, "ior") == b.shard_index(7, "ior")

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedCatalog(0)


class TestFlatEquivalence:
    def test_ingest_matches_flat_catalog(self, fleet, tmp_path):
        flat = ApplicationCatalog()
        sharded = ShardedCatalog(4)
        for trace in fleet.traces:
            flat.ingest(trace)
            sharded.ingest(trace)
        assert len(sharded) == len(flat)
        assert sharded.n_ingested == flat.n_ingested
        assert sharded.n_rejected == flat.n_rejected
        assert sharded.n_failed == flat.n_failed
        flat_entries = flat.entries()
        shard_entries = sharded.entries()
        assert [e.n_runs for e in shard_entries] == [e.n_runs for e in flat_entries]
        assert [e.stability for e in shard_entries] == [
            e.stability for e in flat_entries
        ]
        save_results_jsonl(flat.results(), str(tmp_path / "flat.jsonl"))
        save_results_jsonl(sharded.results(), str(tmp_path / "sharded.jsonl"))
        assert (tmp_path / "flat.jsonl").read_bytes() == (
            tmp_path / "sharded.jsonl"
        ).read_bytes()

    def test_shard_sizes_partition_the_catalog(self, fleet):
        sharded = ShardedCatalog(8)
        for trace in fleet.traces:
            sharded.ingest(trace)
        sizes = sharded.shard_sizes()
        assert len(sizes) == 8
        assert sum(sizes) == len(sharded)
        for (uid, exe) in {t.meta.app_key for t in fleet.traces}:
            entry = sharded.lookup(uid, exe)
            if entry is not None:
                assert sharded._shards[sharded.shard_index(uid, exe)].lookup(
                    uid, exe
                ) is entry


class TestFoldResult:
    def test_fold_already_computed_results(self, fleet):
        pipeline = run_pipeline(fleet.traces[:6])
        sharded = ShardedCatalog(4)
        for result in pipeline.results:
            sharded.fold_result(result, weight=result_weight(result))
        assert sharded.n_ingested == len(pipeline.results)
        for result in pipeline.results:
            uid, exe = result.app_key
            entry = sharded.lookup(uid, exe)
            assert entry is not None

    def test_refold_increments_runs(self, fleet):
        pipeline = run_pipeline(fleet.traces[:2])
        result = pipeline.results[0]
        sharded = ShardedCatalog(4)
        sharded.fold_result(result, weight=10.0)
        entry = sharded.fold_result(result, weight=10.0)
        assert entry.n_runs == 2
        assert entry.stability == 1.0

    def test_stats_snapshot_keys(self, fleet):
        sharded = ShardedCatalog(2)
        for trace in fleet.traces[:4]:
            sharded.ingest(trace)
        stats = sharded.stats()
        assert stats["n_shards"] == 2
        assert stats["n_apps"] == len(sharded)
        assert sum(stats["shard_sizes"]) == stats["n_apps"]
        for key in ("n_ingested", "n_rejected", "n_failed", "n_degraded",
                    "n_quarantined"):
            assert key in stats
