"""Admission control: the server sheds load instead of dying of it.

Every refusal class is driven over real HTTP — queue-full 429,
connection-slot 503, body-budget 503, oversized-header 431, slow-loris
408 — and every one must land in exactly one ``/metrics`` shed counter:
the acceptance criterion is that the server accounts for everything it
refused.
"""

import http.client
import json
import os
import socket
import threading
import time

import asyncio

import pytest

from repro.columnar import compile_corpus
from repro.darshan import DirectorySource, save_binary
from repro.service import MosaicServer
from repro.service.admission import AdmissionControl, AdmissionLimits
from repro.synth import FleetConfig, generate_fleet


# -- unit layer --------------------------------------------------------
class TestLimitsValidation:
    def test_defaults_are_valid(self):
        AdmissionLimits()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_queue_depth", 0),
            ("max_inflight_requests", 0),
            ("max_inflight_body_bytes", 0),
            ("max_body_bytes", -1),
            ("max_header_bytes", 0),
            ("header_timeout_s", 0.0),
            ("body_timeout_s", -2.0),
            ("drain_timeout_s", 0.0),
            ("retry_after_s", 0),
        ],
    )
    def test_bad_value_rejected_at_construction(self, field, value):
        with pytest.raises(ValueError, match=field):
            AdmissionLimits(**{field: value})


class TestAdmissionControlCounters:
    def test_request_slots_bound_and_account(self):
        ctl = AdmissionControl(AdmissionLimits(max_inflight_requests=2))
        assert ctl.try_acquire_request() and ctl.try_acquire_request()
        assert not ctl.try_acquire_request()
        assert ctl.shed_connections == 1
        ctl.release_request()
        assert ctl.try_acquire_request()
        assert ctl.peak_inflight_requests == 2
        assert ctl.accepted_requests == 3

    def test_body_budget_is_a_sum_not_a_max(self):
        ctl = AdmissionControl(AdmissionLimits(max_inflight_body_bytes=100))
        assert ctl.try_reserve_body(60)
        assert not ctl.try_reserve_body(60)
        assert ctl.shed_body_bytes == 1
        ctl.release_body(60)
        assert ctl.try_reserve_body(60)

    def test_every_shed_counter_feeds_the_total(self):
        ctl = AdmissionControl(
            AdmissionLimits(max_inflight_requests=1, max_queue_depth=1)
        )
        ctl.try_acquire_request()
        ctl.try_acquire_request()  # shed: connections
        ctl.admit_job(queue_depth=5)  # shed: jobs
        ctl.shed_oversized_headers += 1
        ctl.shed_oversized_body += 1
        ctl.shed_draining += 1
        ctl.try_reserve_body(10**12)  # shed: body budget
        snap = ctl.snapshot()
        assert snap["shed"]["total"] == 6
        assert sum(
            v for k, v in snap["shed"].items() if k != "total"
        ) == snap["shed"]["total"]


# -- HTTP layer --------------------------------------------------------
def _start(server):
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run()), daemon=True
    )
    thread.start()
    endpoint_path = os.path.join(server.data_dir, "server.json")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with open(endpoint_path, encoding="utf-8") as fh:
                endpoint = json.load(fh)
            if endpoint.get("pid") == os.getpid():
                return thread, endpoint
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.02)
    raise RuntimeError("server never published server.json")


def _shutdown(server, thread):
    loop = server._loop
    if loop is not None and not loop.is_closed():
        loop.call_soon_threadsafe(server.request_stop)
    thread.join(timeout=30)
    assert not thread.is_alive(), "server thread failed to stop"


def _request(endpoint, method, path, payload=None, headers=None):
    conn = http.client.HTTPConnection(
        endpoint["host"], endpoint["port"], timeout=30
    )
    body = json.dumps(payload).encode() if payload is not None else None
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def _metrics(endpoint):
    _status, _headers, data = _request(endpoint, "GET", "/metrics")
    return json.loads(data)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    base = tmp_path_factory.mktemp("admission-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.0, seed=41))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    return str(store_path)


class _GatedExecute:
    """Replaces ``server._execute``: blocks until released, then
    settles the job empty — jobs stay 'running' for as long as the test
    wants the queue pinned."""

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()

    def __call__(self, job):
        self.started.set()
        assert self.gate.wait(timeout=60), "gated job never released"
        job.n_results = 0
        job.n_failures = 0
        job.metrics = {}


@pytest.fixture
def tight_server(tmp_path):
    """A server with one-deep bounds so every shed path is reachable."""
    server = MosaicServer(
        tmp_path / "data",
        port=0,
        limits=AdmissionLimits(
            max_queue_depth=1,
            max_inflight_body_bytes=4096,
            max_header_bytes=2048,
            header_timeout_s=0.5,
        ),
    )
    gated = _GatedExecute()
    server._execute = gated
    thread, endpoint = _start(server)
    yield server, endpoint, gated
    gated.gate.set()
    _shutdown(server, thread)


class TestOverloadSheds:
    def test_queue_full_sheds_429_with_retry_after(
        self, tight_server, store
    ):
        server, endpoint, gated = tight_server
        status, _h, data = _request(
            endpoint, "POST", "/jobs", {"store": store}
        )
        assert status == 202, data
        assert gated.started.wait(timeout=10)
        # depth is now 1 (the running job): the bound is hit
        status, headers, data = _request(
            endpoint, "POST", "/jobs", {"store": store}
        )
        assert status == 429
        assert headers.get("Retry-After") == "1"
        assert "queue is full" in json.loads(data)["error"]
        metrics = _metrics(endpoint)
        assert metrics["admission"]["shed"]["jobs_429"] == 1

    def test_sustained_overcapacity_sheds_and_accounts_everything(
        self, tight_server, store
    ):
        """Fire a burst way past capacity: exactly one job is accepted,
        every other submission is shed 429, and /metrics agrees with
        what the clients observed."""
        server, endpoint, gated = tight_server
        statuses = []
        lock = threading.Lock()

        def submit():
            status, headers, _data = _request(
                endpoint, "POST", "/jobs", {"store": store}
            )
            with lock:
                statuses.append((status, headers.get("Retry-After")))

        threads = [threading.Thread(target=submit) for _ in range(24)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        accepted = [s for s, _ in statuses if s == 202]
        shed = [(s, ra) for s, ra in statuses if s == 429]
        assert len(accepted) == 1
        assert len(shed) == 23
        assert all(ra == "1" for _s, ra in shed)
        metrics = _metrics(endpoint)
        assert metrics["admission"]["shed"]["jobs_429"] == 23
        assert metrics["admission"]["shed"]["total"] == 23
        gated.gate.set()

    def test_body_budget_exhaustion_sheds_503(self, tight_server):
        _server, endpoint, _gated = tight_server
        # one request whose declared body alone exceeds the 4 KiB
        # in-flight budget (but not the per-request 1 MiB bound)
        status, headers, data = _request(
            endpoint, "POST", "/jobs", {"pad": "x" * 8192}
        )
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert "budget" in json.loads(data)["error"]
        metrics = _metrics(endpoint)
        assert metrics["admission"]["shed"]["body_budget_503"] >= 1

    def test_oversized_header_section_sheds_431(self, tight_server):
        _server, endpoint, _gated = tight_server
        status, _headers, _data = _request(
            endpoint, "GET", "/healthz",
            headers={"X-Filler": "f" * 4096},
        )
        assert status == 431
        metrics = _metrics(endpoint)
        assert metrics["admission"]["shed"]["oversized_headers_431"] >= 1

    def test_slow_loris_header_is_abandoned(self, tight_server):
        server, endpoint, _gated = tight_server
        before = server.admission.header_timeouts
        with socket.create_connection(
            (endpoint["host"], endpoint["port"]), timeout=10
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nX-Slow: tri")
            # never finish the header; the server must cut us loose
            deadline = time.monotonic() + 10
            data = b""
            while time.monotonic() < deadline:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
        assert b"408" in data or data == b""
        assert server.admission.header_timeouts == before + 1

    def test_shed_requests_never_leak_slots_or_body_budget(
        self, tight_server
    ):
        server, endpoint, _gated = tight_server
        for _ in range(3):
            _request(endpoint, "POST", "/jobs", {"pad": "x" * 8192})
        # the client sees the response a beat before the handler's
        # finally releases its slot: poll, don't snapshot
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if (
                server.admission.inflight_requests == 0
                and server.admission.inflight_body_bytes == 0
            ):
                break
            time.sleep(0.02)
        assert server.admission.inflight_requests == 0
        assert server.admission.inflight_body_bytes == 0

    def test_readyz_reports_ready_when_healthy(self, tight_server):
        _server, endpoint, _gated = tight_server
        status, _headers, data = _request(endpoint, "GET", "/readyz")
        assert status == 200
        assert json.loads(data) == {"status": "ready"}

    def test_metrics_exposes_limits_and_gauges(self, tight_server):
        _server, endpoint, _gated = tight_server
        admission = _metrics(endpoint)["admission"]
        assert admission["limits"]["max_queue_depth"] == 1
        assert admission["inflight_requests"] >= 0
        assert admission["accepted_requests"] > 0
