"""Unit tests for the content-addressed result cache.

The cache is a performance artifact with a hard correctness rider: a
hit must serve the exact payload the pipeline journaled, and *nothing*
the cache does — missing entries, torn JSON, unwritable roots — may
fail the categorization that consulted it.
"""

import json
import os

from repro.core.thresholds import DEFAULT_CONFIG
from repro.service import ResultCache, config_namespace


class TestNamespace:
    def test_deterministic(self):
        assert config_namespace(DEFAULT_CONFIG) == config_namespace(DEFAULT_CONFIG)

    def test_repair_flag_re_namespaces(self):
        assert config_namespace(DEFAULT_CONFIG, repair=False) != (
            config_namespace(DEFAULT_CONFIG, repair=True)
        )

    def test_config_change_re_namespaces(self):
        tweaked = DEFAULT_CONFIG.with_overrides(n_chunks=DEFAULT_CONFIG.n_chunks + 1)
        assert config_namespace(tweaked) != config_namespace(DEFAULT_CONFIG)

    def test_for_config_installs_namespace(self, tmp_path):
        cache = ResultCache.for_config(tmp_path, DEFAULT_CONFIG, repair=True)
        assert cache.namespace == config_namespace(DEFAULT_CONFIG, repair=True)


class TestKeying:
    def test_key_is_content_addressed(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="ns")
        assert cache.trace_key(0xDEADBEEF) == cache.trace_key(0xDEADBEEF)
        assert cache.trace_key(0xDEADBEEF) != cache.trace_key(0xDEADBEF0)

    def test_key_depends_on_namespace(self, tmp_path):
        a = ResultCache(tmp_path, namespace="a")
        b = ResultCache(tmp_path, namespace="b")
        assert a.trace_key(1) != b.trace_key(1)

    def test_key_masks_to_32_bits(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.trace_key(0x1_0000_0001) == cache.trace_key(1)

    def test_entry_path_fans_out_by_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.trace_key(7)
        path = cache.entry_path(key)
        assert path == os.path.join(str(tmp_path), key[:2], f"{key}.json")


class TestGetPut:
    def test_roundtrip_is_byte_stable(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="ns")
        key = cache.trace_key(42)
        payload = {"uid": 100, "exe": "app.exe", "categories": ["interference"]}
        cache.put(key, payload)
        first = cache.get(key)
        assert first == payload
        with open(cache.entry_path(key), "rb") as fh:
            raw_a = fh.read()
        cache.put(key, payload)  # idempotent re-put
        with open(cache.entry_path(key), "rb") as fh:
            raw_b = fh.read()
        assert raw_a == raw_b
        assert (cache.hits, cache.misses, cache.put_errors) == (1, 0, 0)

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(cache.trace_key(1)) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_torn_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.trace_key(9)
        cache.put(key, {"ok": True})
        with open(cache.entry_path(key), "w", encoding="utf-8") as fh:
            fh.write('{"ok": tr')  # torn mid-token
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_non_dict_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.trace_key(11)
        os.makedirs(os.path.dirname(cache.entry_path(key)), exist_ok=True)
        with open(cache.entry_path(key), "w", encoding="utf-8") as fh:
            json.dump([1, 2, 3], fh)
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_unwritable_root_counts_put_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = ResultCache(blocker / "cache")
        cache.put(cache.trace_key(3), {"x": 1})  # must not raise
        assert cache.put_errors == 1

    def test_miss_then_put_heals(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.trace_key(5)
        assert cache.get(key) is None
        cache.put(key, {"healed": True})
        assert cache.get(key) == {"healed": True}
        assert (cache.hits, cache.misses) == (1, 1)


class TestObservability:
    def test_hit_rate_empty_is_zero(self, tmp_path):
        assert ResultCache(tmp_path).hit_rate == 0.0

    def test_stats_snapshot(self, tmp_path):
        cache = ResultCache(tmp_path, namespace="ns")
        key = cache.trace_key(1)
        cache.get(key)
        cache.put(key, {"v": 1})
        cache.get(key)
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "put_errors": 0,
            "namespace": "ns",
        }
