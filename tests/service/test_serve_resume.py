"""Crash-resume acceptance: ``kill -9`` a serving ``mosaic serve``
process mid-job, restart it on the same data dir, and require the
resumed job to finish byte-identical to the batch oracle with no jobs
lost or duplicated.

This is the integration point of three layers built separately: the
registry replay (re-queues the orphaned job), the JobStore journal
(resumes settled per-trace outcomes instead of recomputing), and the
journal lock's stale-pid detection (the dead server's sidecar must not
fence out its successor).
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.columnar import compile_corpus
from repro.core import run_pipeline_store, save_results_jsonl
from repro.darshan import DirectorySource, save_binary
from repro.parallel import ParallelConfig
from repro.synth import FleetConfig, generate_fleet

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _serve_env(delay_s=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("MOSAIC_SERVE_TEST_DELAY_S", None)
    if delay_s is not None:
        env["MOSAIC_SERVE_TEST_DELAY_S"] = str(delay_s)
    return env


def _spawn(data_dir, log_path, delay_s=None):
    log = open(log_path, "ab")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli.main", "serve",
         "--data-dir", str(data_dir), "--port", "0"],
        stdout=log,
        stderr=subprocess.STDOUT,
        env=_serve_env(delay_s),
    )
    log.close()
    return proc


def _wait_endpoint(data_dir, proc, timeout=60.0):
    """Wait for ``proc``'s incarnation to publish server.json."""
    endpoint_path = os.path.join(str(data_dir), "server.json")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early: rc={proc.returncode}")
        try:
            with open(endpoint_path, encoding="utf-8") as fh:
                endpoint = json.load(fh)
            if endpoint.get("pid") == proc.pid:
                return endpoint
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.05)
    raise RuntimeError("server never published server.json")


def _request(endpoint, method, path, payload=None):
    conn = http.client.HTTPConnection(
        endpoint["host"], endpoint["port"], timeout=60
    )
    body = json.dumps(payload).encode() if payload is not None else None
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _journal_outcomes(journal_path):
    """Settled outcome lines (full lines past the header)."""
    try:
        with open(journal_path, "rb") as fh:
            raw = fh.read()
    except OSError:
        return 0
    complete = raw.rsplit(b"\n", 1)[0].split(b"\n") if raw else []
    return max(0, len([l for l in complete if l.strip()]) - 1)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    base = tmp_path_factory.mktemp("resume-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.0, seed=29))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    batch = run_pipeline_store(
        str(store_path), parallel=ParallelConfig(max_workers=0)
    )
    save_results_jsonl(batch.results, str(base / "batch.jsonl"))
    return {
        "store": str(store_path),
        "batch_bytes": (base / "batch.jsonl").read_bytes(),
    }


class TestKillResume:
    def test_sigkill_mid_job_resumes_byte_identical(self, corpus, tmp_path):
        data_dir = tmp_path / "data"
        journal = data_dir / "jobs" / "job-000001" / "journal.jsonl"

        # -- first incarnation: slowed workers, killed mid-journal -----
        proc = _spawn(data_dir, tmp_path / "server-1.log", delay_s=0.25)
        try:
            endpoint = _wait_endpoint(data_dir, proc)
            status, data = _request(
                endpoint, "POST", "/jobs", {"store": corpus["store"]}
            )
            assert status == 202
            assert json.loads(data)["job_id"] == "job-000001"
            deadline = time.monotonic() + 60
            while _journal_outcomes(journal) < 3:
                assert time.monotonic() < deadline, "no journal progress"
                assert proc.poll() is None, "server died before the kill"
                time.sleep(0.02)
        finally:
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        settled_before = _journal_outcomes(journal)
        assert settled_before >= 3
        assert not (data_dir / "jobs" / "job-000001" / "results.jsonl").exists()

        # -- second incarnation: full speed, must resume on its own ----
        proc = _spawn(data_dir, tmp_path / "server-2.log")
        try:
            endpoint = _wait_endpoint(data_dir, proc)
            deadline = time.monotonic() + 120
            while True:
                _status, data = _request(endpoint, "GET", "/jobs/job-000001")
                job = json.loads(data)
                if job["status"] not in ("queued", "running"):
                    break
                assert time.monotonic() < deadline, "resumed job never settled"
                time.sleep(0.1)
            assert job["status"] == "done", job

            # no duplicated or lost jobs across the crash
            _status, data = _request(endpoint, "GET", "/jobs")
            jobs = json.loads(data)["jobs"]
            assert [j["job_id"] for j in jobs] == ["job-000001"]

            # the journal was resumed, not restarted: outcomes settled
            # before the kill were never re-journaled
            lines = journal.read_bytes().decode().splitlines()
            outcomes = [json.loads(l) for l in lines[1:] if l.strip()]
            trace_ids = [o["job_id"] for o in outcomes]
            assert len(trace_ids) == len(set(trace_ids)), "duplicated outcomes"
            assert len(trace_ids) >= settled_before

            status, data = _request(
                endpoint, "GET", "/jobs/job-000001/results"
            )
            assert status == 200
            assert data == corpus["batch_bytes"]

            # registry: one submitted + one finished event, nothing else
            events = [
                json.loads(l)
                for l in (data_dir / "jobs.jsonl").read_text().splitlines()
                if l.strip()
            ]
            assert [e["event"] for e in events] == ["submitted", "finished"]
            assert events[1]["status"] == "done"
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
