"""The resilient client: retries, breaker, idempotent resubmission, SSE resume.

Unit layer exercises the deterministic pieces (backoff ladder, circuit
transitions under a fake clock, SSE parsing, content-derived keys)
without a server; the HTTP layer drives a real ``MosaicServer`` to
prove dedup, watch-to-terminal, byte-stable results, and journal-backed
``Last-Event-ID`` replay.
"""

import http.client
import json
import os
import socket
import threading
import time

import asyncio

import pytest

from repro.columnar import compile_corpus
from repro.darshan import DirectorySource, save_binary
from repro.service import MosaicServer
from repro.service.client import (
    CircuitBreaker,
    CircuitOpenError,
    ClientRetryPolicy,
    MosaicClient,
    MosaicClientError,
    ServerUnavailable,
    _parse_sse,
    idempotency_key_for,
)
from repro.synth import FleetConfig, generate_fleet


# -- unit: retry policy ------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = ClientRetryPolicy(backoff_base_s=0.05, backoff_cap_s=2.0)
        ladder = [policy.backoff_s(a) for a in range(8)]
        assert ladder == [policy.backoff_s(a) for a in range(8)]
        assert ladder[:4] == [0.05, 0.1, 0.2, 0.4]
        assert ladder[-1] == 2.0
        assert all(b <= 2.0 for b in ladder)

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_attempts": 0}, {"backoff_base_s": -1.0}, {"backoff_cap_s": -0.1}],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClientRetryPolicy(**kwargs)


# -- unit: circuit breaker ---------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(3, reset_timeout_s=5.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.n_opens == 1

    def test_half_open_probe_closes_on_success(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(1, reset_timeout_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 5.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0

    def test_half_open_probe_reopens_on_failure(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(2, reset_timeout_s=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed: straight back open
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.n_opens == 2

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(3, clock=_FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"


# -- unit: SSE parsing -------------------------------------------------
class TestParseSse:
    def test_id_framing_and_keepalive_comments(self):
        stream = [
            b"data: {\"event\": \"subscribed\"}\n",
            b"\n",
            b": keepalive\n",
            b"\n",
            b"id: 3\n",
            b"data: {\"event\": \"result\", \"seq\": 3}\n",
            b"\n",
            b"data: {\"event\": \"finished\"}\n",
            b"\n",
        ]
        events = list(_parse_sse(iter(stream)))
        assert events == [
            (None, {"event": "subscribed"}),
            ("3", {"event": "result", "seq": 3}),
            (None, {"event": "finished"}),
        ]

    def test_garbage_data_lines_are_skipped(self):
        stream = [b"data: not-json\n", b"data: {\"ok\": 1}\n"]
        assert list(_parse_sse(iter(stream))) == [(None, {"ok": 1})]


# -- unit: idempotency keys --------------------------------------------
@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    base = tmp_path_factory.mktemp("client-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.0, seed=43))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    return {"store": str(store_path), "traces": str(trace_dir)}


class TestIdempotencyKey:
    def test_stable_across_calls(self, corpus):
        a = idempotency_key_for("store", corpus["store"])
        b = idempotency_key_for("store", corpus["store"])
        assert a == b
        assert len(a) == 40 and set(a) <= set("0123456789abcdef")

    def test_repair_and_budget_change_the_key(self, corpus):
        base = idempotency_key_for("store", corpus["store"])
        assert idempotency_key_for("store", corpus["store"], repair=True) != base
        assert (
            idempotency_key_for(
                "store", corpus["store"], budget={"max_ops": 5000}
            )
            != base
        )

    def test_trace_dir_key_tracks_the_listing(self, corpus, tmp_path):
        base = idempotency_key_for("traces", corpus["traces"])
        assert base == idempotency_key_for("traces", corpus["traces"])
        other = tmp_path / "other"
        other.mkdir()
        (other / "a.mosd").write_bytes(b"xx")
        assert idempotency_key_for("traces", other) != base

    def test_changed_corpus_changes_the_key(self, corpus, tmp_path):
        fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.0, seed=44))
        trace_dir = tmp_path / "traces2"
        trace_dir.mkdir()
        for trace in fleet.traces:
            save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
        store2 = tmp_path / "corpus2.mosc"
        compile_corpus(DirectorySource(trace_dir), store2)
        assert idempotency_key_for("store", store2) != idempotency_key_for(
            "store", corpus["store"]
        )


# -- HTTP layer --------------------------------------------------------
def _start(server):
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run()), daemon=True
    )
    thread.start()
    endpoint_path = os.path.join(server.data_dir, "server.json")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with open(endpoint_path, encoding="utf-8") as fh:
                endpoint = json.load(fh)
            if endpoint.get("pid") == os.getpid():
                return thread, endpoint
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.02)
    raise RuntimeError("server never published server.json")


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    server = MosaicServer(tmp_path_factory.mktemp("client-srv"), port=0)
    thread, endpoint = _start(server)
    yield server, endpoint
    loop = server._loop
    if loop is not None and not loop.is_closed():
        loop.call_soon_threadsafe(server.request_stop)
    thread.join(timeout=30)
    assert not thread.is_alive()


def _client(endpoint, **kwargs):
    kwargs.setdefault(
        "retry", ClientRetryPolicy(max_attempts=3, backoff_base_s=0.01)
    )
    return MosaicClient(endpoint["host"], endpoint["port"], **kwargs)


class TestClientAgainstServer:
    def test_submit_watch_results_roundtrip(self, live, corpus):
        _server, endpoint = live
        client = _client(endpoint)
        submitted = client.submit(store=corpus["store"])
        assert submitted["status"] in {"queued", "running", "done"}
        events = []
        final = client.watch(
            submitted["job_id"], timeout_s=120, on_event=events.append
        )
        assert final["status"] == "done"
        assert final["n_results"] > 0
        names = {e.get("event") for e in events}
        assert "finished" in names or final["status"] == "done"
        # results are immutable and byte-stable across reads
        first = client.results(submitted["job_id"])
        assert first
        assert first == client.results(submitted["job_id"])
        assert first.count(b"\n") == final["n_results"] + final["n_failures"]

    def test_resubmission_dedups_on_the_idempotency_key(self, live, corpus):
        _server, endpoint = live
        client = _client(endpoint)
        first = client.submit(store=corpus["store"])
        client.wait(first["job_id"], timeout_s=120)
        again = client.submit(store=corpus["store"])
        assert again["job_id"] == first["job_id"]
        assert again.get("deduplicated") is True
        # a different budget is different work: new key, new job
        other = client.submit(
            store=corpus["store"], budget={"max_ops": 9000}
        )
        assert other["job_id"] != first["job_id"]

    def test_wait_reaches_terminal(self, live, corpus):
        _server, endpoint = live
        client = _client(endpoint)
        job = client.submit(store=corpus["store"])
        final = client.wait(job["job_id"], timeout_s=120)
        assert final["status"] == "done"

    def test_unknown_job_raises(self, live):
        _server, endpoint = live
        client = _client(endpoint)
        with pytest.raises(MosaicClientError, match="no job"):
            client.job("job-does-not-exist")

    def test_last_event_id_replay_over_raw_http(self, live, corpus):
        """The server's wire contract, without the client's smoothing:
        id:-numbered settle frames, filtered to seq > Last-Event-ID."""
        _server, endpoint = live
        client = _client(endpoint)
        job_id = client.submit(store=corpus["store"])["job_id"]
        final = client.wait(job_id, timeout_s=120)
        total = final["n_results"] + final["n_failures"]
        assert total >= 2

        def frames(last_event_id=None):
            conn = http.client.HTTPConnection(
                endpoint["host"], endpoint["port"], timeout=30
            )
            headers = (
                {"Last-Event-ID": str(last_event_id)}
                if last_event_id is not None
                else {}
            )
            try:
                conn.request("GET", f"/jobs/{job_id}/events", headers=headers)
                resp = conn.getresponse()
                assert resp.status == 200
                return list(_parse_sse(iter(resp.readline, b"")))
            finally:
                conn.close()

        # no resume cursor: the terminal event alone, nothing replayed
        assert frames() == [(None, {"event": "finished", "status": "done"})]
        # cursor 0: the whole journal replays, every settle id-numbered
        replayed = frames(last_event_id=0)
        assert [int(i) for i, _e in replayed[:-1]] == list(
            range(1, total + 1)
        )
        assert all(e["seq"] == int(i) for i, e in replayed[:-1])
        assert replayed[-1] == (None, {"event": "finished", "status": "done"})
        # mid-stream cursor: strictly after it, no duplicates
        tail = frames(last_event_id=total - 1)
        assert [e for _i, e in tail[:-1]] == [
            e for _i, e in replayed[:-1]
        ][total - 1:]

    def test_server_down_raises_after_retries(self, corpus):
        sleeps = []
        client = MosaicClient(
            "127.0.0.1",
            _free_port(),
            retry=ClientRetryPolicy(max_attempts=3, backoff_base_s=0.01),
            breaker=CircuitBreaker(10),
            sleep=sleeps.append,
        )
        with pytest.raises(ServerUnavailable, match="after 3 attempts"):
            client.request("GET", "/healthz")
        assert client.n_retries == 2
        assert sleeps == [0.01, 0.02, 0.04]

    def test_breaker_opens_and_fails_fast(self):
        client = MosaicClient(
            "127.0.0.1",
            _free_port(),
            retry=ClientRetryPolicy(max_attempts=5, backoff_base_s=0.0),
            breaker=CircuitBreaker(2, reset_timeout_s=60.0),
            sleep=lambda _s: None,
        )
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/healthz")
        assert client.breaker.state == "open"
        # and the next call never touches the socket
        with pytest.raises(CircuitOpenError):
            client.request("GET", "/healthz")

    def test_shed_responses_honor_retry_after(self):
        """429s are retried, each sleep at least the Retry-After hint,
        and the eventual 202 comes back normally."""
        sleeps = []
        client = MosaicClient(
            "127.0.0.1",
            1,
            retry=ClientRetryPolicy(max_attempts=4, backoff_base_s=0.001),
            breaker=CircuitBreaker(50),
            sleep=sleeps.append,
        )
        body = b'{"job_id": "j1", "status": "queued"}'
        responses = [
            (429, {"retry-after": "1"}, b'{"error": "queue full"}'),
            (429, {"retry-after": "1"}, b'{"error": "queue full"}'),
            (202, {"content-length": str(len(body))}, body),
        ]
        client._one_request = lambda *_a, **_k: responses.pop(0)
        status, data = client.request("POST", "/jobs", payload={})
        assert status == 202
        assert json.loads(data)["job_id"] == "j1"
        assert client.n_shed_responses == 2
        assert sleeps == [1.0, 1.0]  # hint (1s) beats the tiny backoff

    def test_shed_past_max_attempts_raises(self):
        client = MosaicClient(
            "127.0.0.1",
            1,
            retry=ClientRetryPolicy(max_attempts=2, backoff_base_s=0.0),
            breaker=CircuitBreaker(50),
            sleep=lambda _s: None,
        )
        client._one_request = lambda *_a, **_k: (503, {}, b"draining")
        with pytest.raises(ServerUnavailable, match="HTTP 503"):
            client.request("GET", "/metrics")

    def test_success_without_framing_headers_is_retried(self):
        """A response severed inside its header section parses as a
        framing-less 200 with an empty body — it must retry, not be
        handed to json.loads."""
        client = MosaicClient(
            "127.0.0.1",
            1,
            retry=ClientRetryPolicy(max_attempts=3, backoff_base_s=0.0),
            breaker=CircuitBreaker(50),
            sleep=lambda _s: None,
        )
        responses = [
            (200, {}, b""),  # truncated mid-header: no framing, no body
            (200, {"content-length": "7"}, b'{"a": 1}'),
        ]
        client._one_request = lambda *_a, **_k: responses.pop(0)
        status, data = client.request("GET", "/jobs/x")
        assert status == 200 and json.loads(data) == {"a": 1}

        client._one_request = lambda *_a, **_k: (200, {}, b"")
        with pytest.raises(ServerUnavailable, match="without framing"):
            client.request("GET", "/jobs/x")
