"""Graceful drain and liveness: SIGTERM turns into a clean handoff.

Covers the drain ladder end to end: readiness flips while liveness
holds, submissions shed, SSE subscribers get a terminal ``drain``
event, the running job finishes (or the hard deadline escalates to the
journal-resume path), and teardown closes every in-flight writer
without leaking exceptions into the loop's handler.
"""

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import asyncio

import pytest

import repro
from repro.columnar import compile_corpus
from repro.darshan import DirectorySource, save_binary
from repro.service import MosaicServer
from repro.service.admission import AdmissionLimits
from repro.synth import FleetConfig, generate_fleet

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


# -- harness (same shape as test_http_server) --------------------------
def _start(server):
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run()), daemon=True
    )
    thread.start()
    endpoint_path = os.path.join(server.data_dir, "server.json")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with open(endpoint_path, encoding="utf-8") as fh:
                endpoint = json.load(fh)
            if endpoint.get("pid") == os.getpid():
                return thread, endpoint
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.02)
    raise RuntimeError("server never published server.json")


def _request(endpoint, method, path, payload=None, headers=None):
    conn = http.client.HTTPConnection(
        endpoint["host"], endpoint["port"], timeout=30
    )
    body = json.dumps(payload).encode() if payload is not None else None
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _call_on_loop(server, fn):
    server._loop.call_soon_threadsafe(fn)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    base = tmp_path_factory.mktemp("drain-corpus")
    fleet = generate_fleet(FleetConfig(n_apps=24, mean_runs=1.0, seed=47))
    trace_dir = base / "traces"
    trace_dir.mkdir()
    for trace in fleet.traces:
        save_binary(trace, trace_dir / f"job{trace.meta.job_id:08d}.mosd")
    store_path = base / "corpus.mosc"
    compile_corpus(DirectorySource(trace_dir), store_path)
    return str(store_path)


class _GatedExecute:
    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()

    def __call__(self, job):
        self.started.set()
        assert self.gate.wait(timeout=60), "gated job never released"
        job.n_results = 0
        job.n_failures = 0
        job.metrics = {}


def _open_sse(endpoint, job_id, headers=None):
    """A raw SSE connection; returns (conn, response) for streaming."""
    conn = http.client.HTTPConnection(
        endpoint["host"], endpoint["port"], timeout=30
    )
    conn.request("GET", f"/jobs/{job_id}/events", headers=headers or {})
    resp = conn.getresponse()
    assert resp.status == 200
    return conn, resp


def _read_event(resp, deadline_s=20):
    """Next ``data:`` JSON event from an SSE response (skips comments)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        line = resp.readline()
        if not line:
            return None
        line = line.strip()
        if line.startswith(b"data:"):
            return json.loads(line[5:].strip())
    raise TimeoutError("no SSE event before deadline")


# -- liveness vs readiness ---------------------------------------------
class TestWorkerDeath:
    def test_healthz_degrades_when_worker_task_dies(self, tmp_path):
        server = MosaicServer(tmp_path / "data", port=0)
        thread, endpoint = _start(server)
        try:
            status, data = _request(endpoint, "GET", "/healthz")
            assert (status, json.loads(data)) == (200, {"status": "ok"})
            # kill the queue consumer the way a bug would: task death
            _call_on_loop(server, server._worker_task.cancel)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, data = _request(endpoint, "GET", "/healthz")
                if status == 503:
                    break
                time.sleep(0.02)
            assert status == 503
            payload = json.loads(data)
            assert payload["status"] == "degraded"
            assert "worker" in payload["error"]
            status, _data = _request(endpoint, "GET", "/readyz")
            assert status == 503
        finally:
            _call_on_loop(server, server.request_stop)
            thread.join(timeout=30)
            assert not thread.is_alive()


# -- the drain ladder --------------------------------------------------
class TestGracefulDrain:
    def test_drain_flips_readyz_sheds_submissions_finishes_job(
        self, tmp_path, store
    ):
        server = MosaicServer(tmp_path / "data", port=0)
        gated = _GatedExecute()
        server._execute = gated
        thread, endpoint = _start(server)
        status, data = _request(endpoint, "POST", "/jobs", {"store": store})
        assert status == 202
        job_id = json.loads(data)["job_id"]
        assert gated.started.wait(timeout=10)

        sse_conn, sse_resp = _open_sse(endpoint, job_id)
        assert _read_event(sse_resp)["event"] == "subscribed"

        _call_on_loop(server, server.request_drain)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not server.draining:
            time.sleep(0.02)

        # readiness flips; liveness holds (the process is healthy,
        # just not accepting) — the split restart orchestrators need
        status, data = _request(endpoint, "GET", "/readyz")
        assert status == 503
        assert json.loads(data) == {"status": "draining"}
        status, _data = _request(endpoint, "GET", "/healthz")
        assert status == 200

        status, data = _request(endpoint, "POST", "/jobs", {"store": store})
        assert status == 503
        assert "draining" in json.loads(data)["error"]
        assert server.admission.shed_draining == 1

        # every open SSE stream got the terminal drain event, and the
        # server closed the stream right after it
        assert _read_event(sse_resp)["event"] == "drain"
        assert b"data:" not in sse_resp.read()
        sse_conn.close()

        # the in-flight job is allowed to finish; then the loop exits
        gated.gate.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert server.jobs[job_id].status == "done"
        assert server.drain_escalated is False

    def test_drain_hard_deadline_escalates_to_resume_path(
        self, tmp_path, store
    ):
        server = MosaicServer(
            tmp_path / "data",
            port=0,
            limits=AdmissionLimits(drain_timeout_s=0.4),
        )
        gated = _GatedExecute()
        server._execute = gated
        thread, endpoint = _start(server)
        status, data = _request(endpoint, "POST", "/jobs", {"store": store})
        assert status == 202
        job_id = json.loads(data)["job_id"]
        assert gated.started.wait(timeout=10)

        _call_on_loop(server, server.request_drain)
        # the job never finishes: the hard deadline must fire and the
        # loop must exit anyway, flagging the escalation
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert server.drain_escalated is True
        assert server.jobs[job_id].status == "running"  # abandoned
        gated.gate.set()  # release the stuck executor thread

    def test_second_drain_request_escalates_to_immediate_stop(
        self, tmp_path, store
    ):
        server = MosaicServer(tmp_path / "data", port=0)
        gated = _GatedExecute()
        server._execute = gated
        thread, endpoint = _start(server)
        status, _data = _request(endpoint, "POST", "/jobs", {"store": store})
        assert status == 202
        assert gated.started.wait(timeout=10)
        _call_on_loop(server, server.request_drain)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not server.draining:
            time.sleep(0.02)
        # the operator's second SIGTERM: stop now, journal covers us
        _call_on_loop(server, server.request_drain)
        thread.join(timeout=30)
        assert not thread.is_alive()
        gated.gate.set()

    def test_drain_leaves_queued_jobs_registered_for_restart(
        self, tmp_path, store
    ):
        data_dir = tmp_path / "data"
        server = MosaicServer(data_dir, port=0)
        gated = _GatedExecute()
        server._execute = gated
        thread, endpoint = _start(server)
        _status, data = _request(endpoint, "POST", "/jobs", {"store": store})
        running_id = json.loads(data)["job_id"]
        assert gated.started.wait(timeout=10)
        _status, data = _request(endpoint, "POST", "/jobs", {"store": store})
        queued_id = json.loads(data)["job_id"]

        _call_on_loop(server, server.request_drain)
        gated.gate.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert server.jobs[running_id].status == "done"
        # the queued job was *not* picked up mid-drain...
        assert server.jobs[queued_id].status == "queued"
        # ...and a fresh incarnation re-queues it from the registry
        successor = MosaicServer(data_dir, port=0)
        assert [j.job_id for j in successor._resumed_at_start] == [queued_id]


# -- teardown closes every writer cleanly (no loop-handler leaks) ------
class TestConnectionTeardown:
    def test_stop_mid_stream_closes_writers_without_leaks(
        self, tmp_path, store
    ):
        server = MosaicServer(tmp_path / "data", port=0)
        thread, endpoint = _start(server)
        loop_errors = []

        def _install_handler():
            server._loop.set_exception_handler(
                lambda _loop, ctx: loop_errors.append(ctx)
            )

        _call_on_loop(server, _install_handler)

        # one finished job to stream results from, one gated job to
        # hold an SSE subscription open
        status, data = _request(endpoint, "POST", "/jobs", {"store": store})
        assert status == 202
        done_id = json.loads(data)["job_id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _s, d = _request(endpoint, "GET", f"/jobs/{done_id}")
            if json.loads(d)["status"] == "done":
                break
            time.sleep(0.05)

        gated = _GatedExecute()
        server._execute = gated
        status, data = _request(endpoint, "POST", "/jobs", {"store": store})
        assert status == 202
        gated_id = json.loads(data)["job_id"]
        assert gated.started.wait(timeout=10)

        # SSE stream mid-flight
        sse_conn, sse_resp = _open_sse(endpoint, gated_id)
        assert _read_event(sse_resp)["event"] == "subscribed"

        # chunked /results stream mid-flight: make the payload far
        # larger than the socket buffers and *don't read it*, so the
        # server handler is parked in writer.drain() when stop lands
        server._read_results = lambda path: b"x" * (64 << 20)
        results_conn = http.client.HTTPConnection(
            endpoint["host"], endpoint["port"], timeout=30
        )
        results_conn.request("GET", f"/jobs/{done_id}/results")
        time.sleep(0.3)  # let the server fill its send buffer and block

        _call_on_loop(server, server.request_stop)
        thread.join(timeout=30)
        assert not thread.is_alive(), "stop hung with streams in flight"
        gated.gate.set()

        # both client sockets observe a closed/aborted connection
        # promptly: at most leftover frame bytes already in flight,
        # never another event
        try:
            leftover = sse_resp.read()
        except (ConnectionError, OSError):
            leftover = b""
        assert b"data:" not in leftover
        with pytest.raises((ConnectionError, http.client.HTTPException, OSError)):
            resp = results_conn.getresponse()
            resp.read()
        sse_conn.close()
        results_conn.close()

        # and nothing leaked into the loop's exception handler
        fatal = [
            ctx for ctx in loop_errors if "exception" in ctx
        ]
        assert fatal == [], fatal


# -- SIGTERM end to end (subprocess) -----------------------------------
def _serve_env(delay_s=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("MOSAIC_SERVE_TEST_DELAY_S", None)
    if delay_s is not None:
        env["MOSAIC_SERVE_TEST_DELAY_S"] = str(delay_s)
    return env


def _wait_endpoint(data_dir, proc, timeout=60.0):
    endpoint_path = os.path.join(str(data_dir), "server.json")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early: rc={proc.returncode}")
        try:
            with open(endpoint_path, encoding="utf-8") as fh:
                endpoint = json.load(fh)
            if endpoint.get("pid") == proc.pid:
                return endpoint
        except (OSError, json.JSONDecodeError):
            pass
        time.sleep(0.05)
    raise RuntimeError("server never published server.json")


class TestSigtermDrain:
    def test_sigterm_mid_job_drains_and_exits_zero(
        self, store, tmp_path
    ):
        """SIGTERM while a (slowed) job runs: the server finishes it,
        registers the outcome, and exits 0 — no escalation needed."""
        data_dir = tmp_path / "data"
        log_path = tmp_path / "serve.log"
        log = open(log_path, "ab")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.main", "serve",
             "--data-dir", str(data_dir), "--port", "0",
             "--drain-timeout", "60"],
            stdout=log, stderr=subprocess.STDOUT,
            env=_serve_env(delay_s=0.05),
        )
        log.close()
        try:
            endpoint = _wait_endpoint(data_dir, proc)
            status, data = _request(
                endpoint, "POST", "/jobs", {"store": store}
            )
            assert status == 202
            job_id = json.loads(data)["job_id"]
            # wait until the job is actually running, then SIGTERM
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _s, d = _request(endpoint, "GET", f"/jobs/{job_id}")
                if json.loads(d)["status"] == "running":
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0, log_path.read_text()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        # the drained incarnation durably finished the job
        registry = (data_dir / "jobs.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in registry if line.strip()]
        finished = [e for e in events if e["event"] == "finished"]
        assert [e["status"] for e in finished] == ["done"]

    def test_sigterm_past_hard_deadline_escalates_and_resumes(
        self, store, tmp_path
    ):
        """A job too slow for the drain budget: the server exits with
        the escalation code and a restart resumes the job from its
        journal to completion."""
        data_dir = tmp_path / "data"
        log_path = tmp_path / "serve.log"
        log = open(log_path, "ab")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.main", "serve",
             "--data-dir", str(data_dir), "--port", "0",
             "--drain-timeout", "0.5"],
            stdout=log, stderr=subprocess.STDOUT,
            env=_serve_env(delay_s=1.0),
        )
        log.close()
        try:
            endpoint = _wait_endpoint(data_dir, proc)
            status, data = _request(
                endpoint, "POST", "/jobs", {"store": store}
            )
            assert status == 202
            job_id = json.loads(data)["job_id"]
            journal = data_dir / "jobs" / job_id / "journal.jsonl"
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not journal.exists():
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
            assert rc == 75, (rc, log_path.read_text())
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        # restart: the abandoned job resumes from its journal
        log = open(log_path, "ab")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.main", "serve",
             "--data-dir", str(data_dir), "--port", "0"],
            stdout=log, stderr=subprocess.STDOUT, env=_serve_env(),
        )
        log.close()
        try:
            endpoint = _wait_endpoint(data_dir, proc)
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                _s, d = _request(endpoint, "GET", f"/jobs/{job_id}")
                job = json.loads(d)
                if job["status"] not in ("queued", "running"):
                    break
                time.sleep(0.1)
            assert job["status"] == "done", job
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)
