"""Fuzz execution harness: run mutated payloads against the readers.

The contract under test (docs/ROBUSTNESS.md): for any byte string a
reader must either return a :class:`~repro.darshan.trace.Trace` or raise
:class:`~repro.darshan.errors.TraceFormatError`.  Any other exception is
a **crash** finding; exceeding the per-case wall-clock deadline is a
**hang** finding; a ``tracemalloc`` peak beyond the allocation budget is
an **over-budget** finding.  The harness never dies on a finding — it
records the reproducer and keeps fuzzing.

Deadlines use ``signal.setitimer`` (real interruption) when running on
the main thread; elsewhere they degrade to after-the-fact wall-clock
classification, which still catches hangs shorter than the case budget
allows but cannot abort a truly unbounded loop.
"""

from __future__ import annotations

import signal
import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..darshan.errors import TraceFormatError
from ..darshan.io_binary import loads_binary
from ..darshan.io_json import loads
from ..darshan.io_text import loads_text
from .mutators import FuzzCase, generate_cases

__all__ = [
    "FORMATS",
    "FuzzFinding",
    "FuzzReport",
    "run_case",
    "run_fuzz",
    "replay_corpus",
]

MB = 1024 * 1024

#: Default per-case wall-clock deadline (seconds).  Generous: a decode
#: of a few-KB payload takes microseconds; anything near a second is a
#: hang in all but name.
DEFAULT_DEADLINE_S = 5.0
#: Default per-case allocation budget: decode working set for the small
#: mutated payloads the fuzzer feeds is well under a megabyte, so a
#: 64 MB peak means a length field was believed.
DEFAULT_ALLOC_BUDGET = 64 * MB


def _entry_text(data: bytes) -> None:
    # mirror load_text: undecodable bytes are a format error, not a crash
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"cannot decode trace: {exc}") from exc
    loads_text(text)


def _entry_binary(data: bytes) -> None:
    loads_binary(data)


def _entry_json(data: bytes) -> None:
    loads(data)


#: format name → payload-level reader entry point.
FORMATS: dict[str, Callable[[bytes], None]] = {
    "binary": _entry_binary,
    "json": _entry_json,
    "text": _entry_text,
}


class _DeadlineExceeded(BaseException):
    """Raised by the SIGALRM handler; BaseException so no reader's
    ``except Exception`` can swallow it."""


def _alarm_handler(signum: int, frame: object) -> None:  # pragma: no cover
    raise _DeadlineExceeded()


@dataclass(slots=True, frozen=True)
class FuzzFinding:
    """One contract violation, with everything needed to reproduce it."""

    fmt: str
    #: "crash" | "hang" | "alloc"
    kind: str
    mutation: str
    seed: int
    error_type: str
    message: str
    data: bytes

    @property
    def label(self) -> str:
        return f"{self.fmt}/{self.mutation}#{self.seed}: {self.kind} ({self.error_type})"


@dataclass(slots=True)
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    n_cases: int = 0
    #: Cases that decoded to a Trace (mutation happened to stay valid).
    n_parsed: int = 0
    #: Cases cleanly refused with TraceFormatError — the common outcome.
    n_rejected: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)
    elapsed_s: float = 0.0
    by_format: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        lines = [
            f"{self.n_cases} cases in {self.elapsed_s:.1f}s: "
            f"{self.n_parsed} parsed, {self.n_rejected} rejected, "
            f"{len(self.findings)} findings"
        ]
        for f in self.findings:
            lines.append(f"  FINDING {f.label}: {f.message[:120]}")
        return "\n".join(lines)


def _run_guarded(
    entry: Callable[[bytes], None],
    data: bytes,
    deadline_s: float,
    alloc_budget: int,
) -> tuple[str, str, str]:
    """Execute one payload; returns (outcome, error_type, message).

    outcome: "parsed" | "rejected" | "crash" | "hang" | "alloc".
    """
    use_alarm = (
        deadline_s > 0
        and threading.current_thread() is threading.main_thread()
        and hasattr(signal, "setitimer")
    )
    tracking = alloc_budget > 0
    started_tracing = False
    if tracking:
        if not tracemalloc.is_tracing():
            tracemalloc.start(1)
            started_tracing = True
        tracemalloc.reset_peak()
    if use_alarm:
        prev = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, deadline_s)
    t0 = time.perf_counter()
    peak = 0
    settled = False
    try:
        try:
            entry(data)
            outcome, etype, msg = "parsed", "", ""
        except TraceFormatError as exc:
            outcome, etype, msg = "rejected", type(exc).__name__, str(exc)
        except _DeadlineExceeded:
            settled = True
            outcome, etype, msg = "hang", "DeadlineExceeded", (
                f"decode exceeded the {deadline_s}s deadline"
            )
        except Exception as exc:  # the finding class the fuzzer exists for
            settled = True
            outcome, etype, msg = "crash", type(exc).__name__, str(exc)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, prev)
        if tracking:
            _, peak = tracemalloc.get_traced_memory()
            # Leaving tracemalloc enabled would slow every allocation in
            # this process (and, via fork, any worker pool) for the rest
            # of its life — only keep it if someone else turned it on.
            if started_tracing:
                tracemalloc.stop()
    if settled:
        return outcome, etype, msg
    elapsed = time.perf_counter() - t0
    if deadline_s > 0 and not use_alarm and elapsed > deadline_s:
        return "hang", "DeadlineExceeded", (
            f"decode took {elapsed:.2f}s against a {deadline_s}s deadline"
        )
    if tracking and peak > alloc_budget:
        return "alloc", "AllocationBudget", (
            f"decode peaked at {peak} bytes against a "
            f"{alloc_budget}-byte budget"
        )
    return outcome, etype, msg


def run_case(
    case: FuzzCase,
    *,
    deadline_s: float = DEFAULT_DEADLINE_S,
    alloc_budget: int = DEFAULT_ALLOC_BUDGET,
) -> FuzzFinding | None:
    """Run one case; returns a finding or ``None`` when the contract held."""
    entry = FORMATS[case.fmt]
    outcome, etype, msg = _run_guarded(entry, case.data, deadline_s, alloc_budget)
    if outcome in ("parsed", "rejected"):
        return None
    return FuzzFinding(
        fmt=case.fmt,
        kind=outcome,
        mutation=case.mutation,
        seed=case.seed,
        error_type=etype,
        message=msg,
        data=case.data,
    )


def run_fuzz(
    formats: Sequence[str] = ("binary", "json", "text"),
    n_cases: int = 1000,
    seed: int = 0,
    *,
    deadline_s: float = DEFAULT_DEADLINE_S,
    alloc_budget: int = DEFAULT_ALLOC_BUDGET,
    on_progress: Callable[[str, int], None] | None = None,
) -> FuzzReport:
    """Fuzz each reader with ``n_cases`` deterministic mutated payloads."""
    report = FuzzReport()
    t0 = time.perf_counter()
    for fmt in formats:
        if fmt not in FORMATS:
            raise ValueError(f"unknown fuzz format: {fmt!r}")
        entry = FORMATS[fmt]
        for case in generate_cases(fmt, n_cases, seed):
            outcome, etype, msg = _run_guarded(
                entry, case.data, deadline_s, alloc_budget
            )
            report.n_cases += 1
            report.by_format[fmt] = report.by_format.get(fmt, 0) + 1
            if outcome == "parsed":
                report.n_parsed += 1
            elif outcome == "rejected":
                report.n_rejected += 1
            else:
                report.findings.append(
                    FuzzFinding(
                        fmt=fmt,
                        kind=outcome,
                        mutation=case.mutation,
                        seed=case.seed,
                        error_type=etype,
                        message=msg,
                        data=case.data,
                    )
                )
            if on_progress is not None and report.n_cases % 500 == 0:
                on_progress(fmt, report.n_cases)
    report.elapsed_s = time.perf_counter() - t0
    return report


def replay_corpus(
    cases: Iterable[tuple[str, str, bytes]],
    *,
    deadline_s: float = DEFAULT_DEADLINE_S,
    alloc_budget: int = DEFAULT_ALLOC_BUDGET,
) -> FuzzReport:
    """Replay saved regression cases (``(fmt, name, data)`` triples).

    Used by CI against ``tests/fuzz/corpus/``: every committed
    reproducer must stay parsed-or-rejected forever.
    """
    report = FuzzReport()
    t0 = time.perf_counter()
    for fmt, name, data in cases:
        entry = FORMATS[fmt]
        outcome, etype, msg = _run_guarded(entry, data, deadline_s, alloc_budget)
        report.n_cases += 1
        report.by_format[fmt] = report.by_format.get(fmt, 0) + 1
        if outcome == "parsed":
            report.n_parsed += 1
        elif outcome == "rejected":
            report.n_rejected += 1
        else:
            report.findings.append(
                FuzzFinding(
                    fmt=fmt,
                    kind=outcome,
                    mutation=name,
                    seed=-1,
                    error_type=etype,
                    message=msg,
                    data=data,
                )
            )
    report.elapsed_s = time.perf_counter() - t0
    return report
