"""Seed corpus and structure-aware mutations for the reader fuzzer.

Everything here is deterministic: the same ``seed`` always yields the
same case stream, so a finding's ``(format, mutation, seed)`` triple is
a complete reproducer even before its bytes are saved.

Mutations come in two tiers.  The *generic* tier (byte flips,
truncations, duplicated/reordered slices, zero fills, random appends)
knows nothing about the formats and exists to shake out parser-state
assumptions.  The *structural* tier aims at the specific lies the
hardened readers must refuse: binary length fields inflated past the
payload, record counts that claim more records than bytes, JSON depth
bombs and ``Infinity`` literals, text counter values that overflow
``int(float(v))``, and headers deleted wholesale.
"""

from __future__ import annotations

import json
import random
import struct
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..darshan.io_binary import _COUNTS, _HEADER, _JOB, dumps_binary
from ..darshan.io_json import dumps
from ..darshan.io_text import dumps_text
from ..darshan.records import FileRecord, JobMeta
from ..darshan.trace import Trace
from ..synth.appmodel import generate_run
from ..synth.cohorts import cohort_by_name

__all__ = ["FuzzCase", "MUTATIONS", "generate_cases", "seed_payloads"]

#: Cohorts whose runs make structurally diverse seeds (periodic,
#: bursty, metadata-heavy, read-and-write).
_SEED_COHORTS = ("rcw_ckpt_periodic", "w_only_end", "r_steady_only")


def _seed_traces(rng: np.random.Generator) -> list[Trace]:
    """A handful of valid traces spanning the cohort space, plus the
    structural edge cases mutation alone rarely reaches."""
    traces: list[Trace] = []
    for name in _SEED_COHORTS:
        spec = cohort_by_name(name).build(1, rng)
        traces.append(generate_run(spec, 1, rng, force_nominal=True))
    # zero-record trace: the smallest valid payload of every format
    traces.append(
        Trace(
            meta=JobMeta(
                job_id=1,
                uid=10,
                exe="empty.exe",
                nprocs=1,
                start_time=0.0,
                end_time=60.0,
            ),
            records=[],
        )
    )
    # non-ASCII names: exercises every UTF-8 decode path
    traces.append(
        Trace(
            meta=JobMeta(
                job_id=2,
                uid=11,
                exe="süßwasser-模拟.exe",
                nprocs=2,
                start_time=0.0,
                end_time=120.0,
            ),
            records=[
                FileRecord(
                    file_id=7,
                    file_name="/scratch/données/χ.dat",
                    rank=0,
                    opens=1,
                    closes=1,
                    writes=4,
                    bytes_written=4096,
                    open_start=1.0,
                    close_end=5.0,
                    write_start=1.5,
                    write_end=4.5,
                )
            ],
        )
    )
    return traces


def seed_payloads(fmt: str, seed: int) -> list[bytes]:
    """Valid serialized payloads of ``fmt`` ("binary"/"json"/"text")."""
    rng = np.random.default_rng(seed)
    payloads: list[bytes] = []
    for trace in _seed_traces(rng):
        if fmt == "binary":
            payloads.append(dumps_binary(trace))
        elif fmt == "json":
            payloads.append(dumps(trace).encode("utf-8"))
        elif fmt == "text":
            payloads.append(dumps_text(trace).encode("utf-8"))
        else:
            raise ValueError(f"unknown fuzz format: {fmt!r}")
    return payloads


# ----------------------------------------------------------------------
# generic byte-level mutations


def _byte_flip(data: bytes, rng: random.Random) -> bytes:
    if not data:
        return data
    buf = bytearray(data)
    for _ in range(rng.randint(1, 8)):
        i = rng.randrange(len(buf))
        buf[i] ^= 1 << rng.randrange(8)
    return bytes(buf)


def _truncate(data: bytes, rng: random.Random) -> bytes:
    if len(data) < 2:
        return b""
    return data[: rng.randrange(len(data))]


def _extend(data: bytes, rng: random.Random) -> bytes:
    return data + rng.randbytes(rng.randint(1, 64))


def _duplicate_section(data: bytes, rng: random.Random) -> bytes:
    if len(data) < 4:
        return data + data
    a = rng.randrange(len(data))
    b = rng.randrange(a, min(len(data), a + max(1, len(data) // 4)) + 1)
    at = rng.randrange(len(data))
    return data[:at] + data[a:b] + data[at:]


def _reorder_sections(data: bytes, rng: random.Random) -> bytes:
    if len(data) < 8:
        return data[::-1]
    cuts = sorted(rng.randrange(len(data)) for _ in range(3))
    a, b, c = cuts
    return data[:a] + data[b:c] + data[a:b] + data[c:]


def _zero_fill(data: bytes, rng: random.Random) -> bytes:
    if not data:
        return data
    buf = bytearray(data)
    a = rng.randrange(len(buf))
    b = rng.randrange(a, min(len(buf), a + 32) + 1)
    buf[a:b] = b"\x00" * (b - a)
    return bytes(buf)


def _splice(data: bytes, rng: random.Random) -> bytes:
    """Overwrite a random slice with random bytes (keeps length)."""
    if not data:
        return data
    buf = bytearray(data)
    a = rng.randrange(len(buf))
    b = rng.randrange(a, min(len(buf), a + 16) + 1)
    buf[a:b] = rng.randbytes(b - a)
    return bytes(buf)


# ----------------------------------------------------------------------
# structural mutations: format-aware lies

_JOB_OFF = _HEADER.size
_STR_LEN_OFF = _JOB_OFF + struct.calcsize("<qqqdd")  # exe/machine/partition u16s


def _lie_binary_string_len(data: bytes, rng: random.Random) -> bytes:
    """Inflate one of the three job-string length fields."""
    off = _STR_LEN_OFF + 2 * rng.randrange(3)
    if len(data) < off + 2:
        return data
    buf = bytearray(data)
    buf[off : off + 2] = struct.pack("<H", rng.choice((0xFFFF, 0x8000, 0x7FFF)))
    return bytes(buf)


def _binary_counts_offset(data: bytes) -> int | None:
    """Locate the record-count struct of a *valid* binary payload."""
    if len(data) < _JOB_OFF + _JOB.size:
        return None
    n_exe, n_mach, n_part = struct.unpack_from("<HHH", data, _STR_LEN_OFF)
    off = _JOB_OFF + _JOB.size + n_exe + n_mach + n_part
    return off if len(data) >= off + _COUNTS.size else None


def _lie_binary_counts(data: bytes, rng: random.Random) -> bytes:
    """Claim an enormous record count / string table in a tiny file —
    the classic allocation bomb the hardened reader must refuse."""
    off = _binary_counts_offset(data)
    if off is None:
        return data
    buf = bytearray(data)
    n_records = rng.choice((0xFFFFFFFF, 2**31, 10_000_000, 1))
    n_table = rng.choice((0xFFFFFFFF, 2**30, 0))
    buf[off : off + _COUNTS.size] = _COUNTS.pack(n_records, n_table)
    return bytes(buf)


def _json_depth_bomb(data: bytes, rng: random.Random) -> bytes:
    """Nest the document inside thousands of arrays."""
    k = rng.choice((64, 1024, 50_000))
    return b"[" * k + data + b"]" * k


def _json_value_bomb(data: bytes, rng: random.Random) -> bytes:
    """Swap a structural token for a hostile literal (Infinity, NaN,
    1e400, a huge int) somewhere inside the document."""
    token = rng.choice([b"Infinity", b"NaN", b"1e400", b"-1e-400", b"9" * 400])
    text = bytearray(data)
    colons = [i for i, ch in enumerate(text) if ch == ord(":")]
    if not colons:
        return bytes(token)
    i = rng.choice(colons)
    j = i + 1
    while j < len(text) and text[j] not in (ord(","), ord("}"), ord("]")):
        j += 1
    return bytes(text[: i + 1]) + token + bytes(text[j:])


def _text_counter_overflow(data: bytes, rng: random.Random) -> bytes:
    """Replace one counter value with an overflow/garbage literal."""
    lines = data.split(b"\n")
    rec_lines = [i for i, ln in enumerate(lines) if ln.startswith(b"POSIX")]
    if not rec_lines:
        return data
    i = rng.choice(rec_lines)
    parts = lines[i].split(b"\t")
    if len(parts) >= 5:
        parts[4] = rng.choice([b"1e400", b"inf", b"nan", b"0x1p999", b"--3", b"1" * 400])
        lines[i] = b"\t".join(parts)
    return b"\n".join(lines)


def _text_long_line(data: bytes, rng: random.Random) -> bytes:
    """Append one pathologically long line."""
    n = rng.choice((1024, 65_536, 2 * 1024 * 1024))
    return data + b"\nPOSIX\t0\t1\tPOSIX_OPENS\t1\t/" + b"A" * n + b"\n"


def _drop_header(data: bytes, rng: random.Random) -> bytes:
    """Delete a whole leading region (headers, magic, job struct)."""
    if len(data) < 4:
        return b""
    return data[rng.randrange(1, max(2, len(data) // 2)) :]


def _record_flood(data: bytes, rng: random.Random) -> bytes:
    """Duplicate the tail of the payload many times: oversized-but-
    plausible record sections for every format."""
    tail = data[len(data) // 2 :]
    return data + tail * rng.randint(2, 20)


#: name → mutation callable.  Order is part of the deterministic
#: schedule; append new mutations at the end.
MUTATIONS: dict[str, Callable[[bytes, random.Random], bytes]] = {
    "byte_flip": _byte_flip,
    "truncate": _truncate,
    "extend": _extend,
    "duplicate_section": _duplicate_section,
    "reorder_sections": _reorder_sections,
    "zero_fill": _zero_fill,
    "splice": _splice,
    "lie_string_len": _lie_binary_string_len,
    "lie_counts": _lie_binary_counts,
    "depth_bomb": _json_depth_bomb,
    "value_bomb": _json_value_bomb,
    "counter_overflow": _text_counter_overflow,
    "long_line": _text_long_line,
    "drop_header": _drop_header,
    "record_flood": _record_flood,
}

#: Structural mutations only meaningful for one format; the generic
#: ones run everywhere.
_FORMAT_ONLY = {
    "lie_string_len": "binary",
    "lie_counts": "binary",
    "depth_bomb": "json",
    "value_bomb": "json",
    "counter_overflow": "text",
    "long_line": "text",
}


@dataclass(slots=True, frozen=True)
class FuzzCase:
    """One mutated payload plus its complete reproduction recipe."""

    fmt: str
    mutation: str
    seed: int
    data: bytes

    @property
    def label(self) -> str:
        return f"{self.fmt}/{self.mutation}#{self.seed}"


def mutations_for(fmt: str) -> list[str]:
    """Mutation schedule for one format (generic + its structural tier)."""
    return [
        name
        for name in MUTATIONS
        if _FORMAT_ONLY.get(name, fmt) == fmt
    ]


def generate_cases(fmt: str, n_cases: int, seed: int) -> Iterator[FuzzCase]:
    """Yield ``n_cases`` deterministic mutated payloads for ``fmt``.

    Case ``i`` applies mutation ``schedule[i % len(schedule)]`` with a
    :class:`random.Random` seeded by ``(seed, fmt, i)`` to a seed
    payload chosen by the same stream — fully reproducible from the
    triple alone.  Roughly one case in eight stacks a second mutation
    on top, reaching states single mutations cannot.
    """
    payloads = seed_payloads(fmt, seed)
    schedule = mutations_for(fmt)
    for i in range(n_cases):
        rng = random.Random(f"{seed}:{fmt}:{i}")
        name = schedule[i % len(schedule)]
        base = payloads[rng.randrange(len(payloads))]
        data = MUTATIONS[name](base, rng)
        if rng.random() < 0.125:
            second = rng.choice(schedule)
            data = MUTATIONS[second](data, rng)
            name = f"{name}+{second}"
        yield FuzzCase(fmt=fmt, mutation=name, seed=i, data=data)


def rebuild_case(fmt: str, seed: int, case_index: int) -> FuzzCase:
    """Regenerate one case from its reproduction triple."""
    for case in generate_cases(fmt, case_index + 1, seed):
        pass
    return case


def make_json_seed(indent: int | None = None) -> bytes:
    """A small valid JSON payload (used by tests and minimization)."""
    rng = np.random.default_rng(0)
    spec = cohort_by_name(_SEED_COHORTS[0]).build(1, rng)
    return json.dumps(
        json.loads(dumps(generate_run(spec, 1, rng, force_nominal=True))),
        indent=indent,
    ).encode("utf-8")
