"""Structure-aware fuzzing of the trace readers.

The decode layer (:mod:`repro.darshan`) is the only part of the pipeline
that touches attacker-grade bytes, and its contract is absolute: for
*any* input a reader must **parse, raise**
:class:`~repro.darshan.errors.TraceFormatError`, **or repair — never
crash, hang, or allocate beyond budget**.  This package enforces that
contract empirically:

:mod:`repro.fuzz.mutators`
    Seeded, deterministic corpus of valid serialized traces plus
    structure-aware mutations — byte flips, truncations, lying length
    fields, duplicated/reordered sections, JSON depth bombs, overflow
    literals.
:mod:`repro.fuzz.harness`
    Executes mutated payloads against the three readers under a
    per-case wall-clock deadline and a ``tracemalloc`` allocation
    budget, classifying every outcome (parsed / rejected / crash /
    hang / over-budget).
:mod:`repro.fuzz.corpus`
    ddmin-style case minimization and the on-disk regression corpus
    (``tests/fuzz/corpus/``) replayed by CI.

Run it via ``mosaic fuzz`` or the pytest suite in ``tests/fuzz/``.
See docs/ROBUSTNESS.md ("Input hardening & degradation ladder").
"""

from .corpus import case_filename, load_corpus, minimize_case, save_corpus
from .harness import (
    FORMATS,
    FuzzFinding,
    FuzzReport,
    replay_corpus,
    run_fuzz,
)
from .mutators import MUTATIONS, FuzzCase, generate_cases, seed_payloads

__all__ = [
    "FORMATS",
    "FuzzCase",
    "FuzzFinding",
    "FuzzReport",
    "MUTATIONS",
    "case_filename",
    "generate_cases",
    "load_corpus",
    "minimize_case",
    "replay_corpus",
    "run_fuzz",
    "save_corpus",
    "seed_payloads",
]
