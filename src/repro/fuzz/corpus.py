"""Regression corpus management and case minimization.

A fuzz finding is only useful if it survives as a permanent regression
test.  This module turns findings into small on-disk reproducers under
``tests/fuzz/corpus/<format>/`` and replays them in CI:

* :func:`minimize_case` — greedy ddmin-style shrinking: repeatedly try
  removing chunks while the interesting behaviour (same outcome class)
  persists, halving chunk size until single bytes.
* :func:`save_corpus` / :func:`load_corpus` — flat files named
  ``<mutation>__<seed>__<digest>.bin`` inside a per-format directory;
  the layout is the manifest.

The committed corpus also contains *taxonomy pins*: minimized inputs
that exercise each distinct ``TraceFormatError`` path of the hardened
readers (lying lengths, depth bombs, overflow literals, truncations),
so a refactor that silently reopens one of those crash classes fails CI
even if the bounded smoke fuzz misses it.
"""

from __future__ import annotations

import hashlib
import os
import re
from typing import Callable, Iterator

from .harness import FORMATS
from .mutators import FuzzCase

__all__ = [
    "case_filename",
    "error_template",
    "load_corpus",
    "minimize_case",
    "save_corpus",
    "outcome_class",
]


def error_template(message: str) -> str:
    """Normalize an error message to its template: byte/string literals,
    numbers, and positional details are collapsed so two failures of the
    same *code path* compare equal while different paths stay distinct."""
    msg = re.sub(r"b'(\\.|[^'])*'", "B", message)
    msg = re.sub(r"'[^']*'", "S", msg)
    msg = re.sub(r"codec can.t decode byte.*", "codec cant decode", msg)
    msg = re.sub(r"codec can.t decode bytes.*", "codec cant decode", msg)
    msg = re.sub(r"bad value for \w+", "bad value", msg)
    msg = re.sub(r"missing header fields: \[.*\]", "missing header fields", msg)
    msg = re.sub(r"[-+]?\d+(\.\d+)?(e[-+]?\d+)?", "N", msg)
    msg = re.sub(r"line N:? ?", "", msg)
    return msg[:70]


def outcome_class(fmt: str, data: bytes) -> str:
    """Behaviour fingerprint used as the minimization oracle.

    ``rejected:<template>`` for clean refusals (the *template* keeps the
    rejection's code path, so shrinking cannot drift onto a different,
    earlier error), ``parsed`` for valid payloads, ``crash:<ErrorType>``
    for contract violations.
    """
    from ..darshan.errors import TraceFormatError

    entry = FORMATS[fmt]
    try:
        entry(data)
        return "parsed"
    except TraceFormatError as exc:
        return f"rejected:{error_template(str(exc))}"
    except Exception as exc:
        return f"crash:{type(exc).__name__}"


def minimize_case(
    fmt: str,
    data: bytes,
    *,
    oracle: Callable[[bytes], str] | None = None,
    max_rounds: int = 16,
) -> bytes:
    """Greedy ddmin-lite: shrink ``data`` while its outcome class holds.

    Chunk size halves from ``len/2`` down to 1; each round walks the
    payload removing chunks whose deletion preserves the oracle's
    answer.  Deterministic, no randomness — the same input always
    minimizes to the same reproducer.
    """
    classify = oracle or (lambda d: outcome_class(fmt, d))
    target = classify(data)
    chunk = max(1, len(data) // 2)
    rounds = 0
    while chunk >= 1 and rounds < max_rounds:
        rounds += 1
        i = 0
        shrunk = False
        while i < len(data):
            candidate = data[:i] + data[i + chunk :]
            if candidate != data and classify(candidate) == target:
                data = candidate
                shrunk = True
                # stay at the same offset: the next chunk slid into it
            else:
                i += chunk
        if chunk == 1 and not shrunk:
            break
        if not shrunk:
            chunk //= 2
        elif len(data) < chunk * 2:
            chunk = max(1, len(data) // 2)
    return data


_SAFE = re.compile(r"[^A-Za-z0-9_+-]")


def case_filename(mutation: str, seed: int, data: bytes) -> str:
    """Stable corpus filename: mutation, seed, and a short digest."""
    digest = hashlib.sha256(data).hexdigest()[:12]
    safe = _SAFE.sub("-", mutation)[:48]
    return f"{safe}__{seed}__{digest}.bin"


def save_corpus(
    cases: list[FuzzCase], root: str | os.PathLike[str]
) -> list[str]:
    """Write cases under ``<root>/<format>/``; returns the paths written.

    Idempotent: the digest-bearing filename dedups identical payloads.
    """
    written: list[str] = []
    for case in cases:
        fdir = os.path.join(os.fspath(root), case.fmt)
        os.makedirs(fdir, exist_ok=True)
        path = os.path.join(
            fdir, case_filename(case.mutation, case.seed, case.data)
        )
        with open(path, "wb") as fh:
            fh.write(case.data)
        written.append(path)
    return written


def load_corpus(
    root: str | os.PathLike[str],
) -> Iterator[tuple[str, str, bytes]]:
    """Yield ``(format, name, data)`` for every committed corpus case."""
    root = os.fspath(root)
    for fmt in sorted(FORMATS):
        fdir = os.path.join(root, fmt)
        if not os.path.isdir(fdir):
            continue
        for name in sorted(os.listdir(fdir)):
            if not name.endswith(".bin"):
                continue
            with open(os.path.join(fdir, name), "rb") as fh:
                yield fmt, name, fh.read()
