"""Crash-surviving streaming map: the resilient corpus execution engine.

:func:`~repro.parallel.executor.parallel_imap` isolates *polite*
failures — a mapped function that raises becomes a
:class:`~repro.parallel.executor.TaskFailure`.  At fleet scale the
impolite ones dominate: a worker killed by the OOM killer or a segfault
raises ``BrokenProcessPool`` and aborts the whole run, and a hung decode
stalls it forever.  :func:`resilient_imap` provides the same streaming
contract but survives all four failure classes of the
:class:`~repro.parallel.retry.FailureKind` taxonomy:

* **EXCEPTION** — transient error classes (see
  :func:`~repro.parallel.retry.is_transient`) are re-executed with
  exponential backoff and deterministic jitter, up to
  ``max_retries``; everything else fails the item immediately.
* **TIMEOUT** — items exceeding the per-task deadline are quarantined
  and the pool is recycled (kill + rebuild), because a hung worker
  cannot be cancelled politely.
* **CRASH / POISON** — ``BrokenProcessPool`` rebuilds the pool and
  replays the implicated items *one at a time* (isolation replay), so
  blame lands precisely: an item that crashes a worker while alone in
  flight is the culprit.  ``max_item_crashes`` implications quarantine
  it as POISON; innocent bystanders complete on replay.

The pool is rebuilt at most ``max_pool_rebuilds`` times per run; beyond
that the run itself is declared unhealthy and :class:`PoolRebuildLimit`
is raised — a circuit breaker, not fault isolation.

Every recovery event is reported through the optional ``on_count``
callback (``n_retries``, ``n_timeouts``, ``n_crash_events``,
``n_pool_rebuilds``, ``n_poisoned``), which the pipeline binds to its
:class:`~repro.core.pipeline.PipelineContext` counters.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Iterator, TypeVar

from .executor import ParallelConfig, TaskFailure, _guarded, _pool, _run_bound
from .retry import FailureKind, RetryPolicy, backoff_delay, is_transient

__all__ = ["PoolRebuildLimit", "resilient_imap"]

T = TypeVar("T")
R = TypeVar("R")

#: Counter callback signature: (counter name, increment).
CountFn = Callable[[str, int], None]


class PoolRebuildLimit(RuntimeError):
    """The process pool died more often than the policy tolerates."""


@dataclass(slots=True)
class _InFlight:
    """Parent-side state of one submitted item."""

    index: int
    item: Any
    submitted_at: float = 0.0
    #: Executions spent so far (the in-flight one included).
    attempts: int = 1
    #: Pool-fatal events this item was in flight for.
    crashes: int = 0


def _noop_count(name: str, value: int) -> None:
    return None


def _synthetic_failure(
    info: _InFlight, kind: FailureKind, error_type: str, message: str
) -> TaskFailure:
    """A failure manufactured parent-side (no exception ever reached us)."""
    return TaskFailure(
        index=info.index,
        error_type=error_type,
        message=message,
        traceback_text="",
        kind=kind,
        qualname=error_type,
        attempts=info.attempts,
    )


def _kill_pool(pool: Any) -> None:
    """Forcibly terminate a pool, hung workers included.

    ``shutdown(wait=False)`` merely stops feeding a pool; a worker stuck
    in a hung decode would survive it forever.  Killing the worker
    processes first makes the subsequent join prompt and marks every
    pending future broken.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except (OSError, AttributeError):
            pass  # already gone
    pool.shutdown(wait=True, cancel_futures=True)


def _serial_resilient(
    fn: Callable[[T], R],
    items: Iterable[T],
    policy: RetryPolicy,
    count: CountFn,
) -> Iterator[tuple[int, R | TaskFailure]]:
    """In-process mode: classified retry with backoff, no deadlines.

    Serial execution cannot preempt a hung call or survive a crash of
    its own process, so only the EXCEPTION leg of the taxonomy applies.
    """
    for index, item in enumerate(items):
        attempts = 0
        while True:
            attempts += 1
            _i, result, failure = _guarded(fn, index, item)
            if failure is None:
                yield (index, result)  # type: ignore[misc]
                break
            if (
                is_transient(failure.qualname or failure.error_type)
                and attempts <= policy.max_retries
            ):
                count("n_retries", 1)
                delay = backoff_delay(attempts, policy, key=index)
                if delay > 0:
                    time.sleep(delay)
                continue
            yield (index, replace(failure, attempts=attempts))
            break


def resilient_imap(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: ParallelConfig | None = None,
    *,
    policy: RetryPolicy | None = None,
    on_count: CountFn | None = None,
) -> Iterator[tuple[int, R | TaskFailure]]:
    """Streaming fault-isolated map that survives crashes and hangs.

    Same contract as :func:`~repro.parallel.executor.parallel_imap` —
    lazy consumption with backpressure, ``(index, result_or_failure)``
    pairs in completion order — plus the recovery behaviour described in
    the module docstring.  ``policy`` defaults to
    ``config.retry_policy()``; ``on_count`` receives recovery counters.
    """
    cfg = config or ParallelConfig()
    pol = policy if policy is not None else cfg.retry_policy()
    count = on_count if on_count is not None else _noop_count
    workers = cfg.resolved_workers()

    if workers <= 1:
        yield from _serial_resilient(fn, items, pol, count)
        return

    window = cfg.resolved_pending()
    deadline = pol.deadline_s
    it = iter(items)
    pool = _pool(fn, workers)
    rebuilds = 0
    #: (ready_at, tiebreak, info) — items sleeping out a backoff.
    retry_heap: list[tuple[float, int, _InFlight]] = []
    tiebreak = itertools.count()
    #: Items implicated in a crash, replayed one at a time.
    suspects: deque[_InFlight] = deque()
    #: Blame-free items awaiting (re)submission — recycle collateral,
    #: and items whose submission itself hit a broken pool.
    backlog: deque[_InFlight] = deque()
    inflight: dict[Future, _InFlight] = {}
    next_index = 0
    exhausted = False
    finished = False

    def try_submit(info: _InFlight, requeue: deque[_InFlight]) -> bool:
        """Submit one item; False when the pool is (already) broken.

        A crash lands asynchronously, so ``submit`` itself can raise
        ``BrokenProcessPool`` while the feeder is topping up the window.
        The item never ran, so it is requeued blame-free (or back onto
        ``suspects``, keeping its suspect status) and the caller runs
        crash recovery.
        """
        info.submitted_at = time.monotonic()
        try:
            fut = pool.submit(_run_bound, (info.index, info.item))
        except BrokenProcessPool:
            requeue.appendleft(info)
            return False
        inflight[fut] = info
        return True

    def rebuild_pool(reason: str) -> None:
        nonlocal pool, rebuilds
        _kill_pool(pool)
        rebuilds += 1
        if rebuilds > pol.max_pool_rebuilds:
            raise PoolRebuildLimit(
                f"process pool rebuilt {rebuilds} times "
                f"(limit {pol.max_pool_rebuilds}); last cause: {reason}"
            )
        count("n_pool_rebuilds", 1)
        pool = _pool(fn, workers)

    def classify_completed(
        info: _InFlight, failure: TaskFailure | None, result: Any
    ) -> tuple[int, Any] | None:
        """Outcome pair to yield, or None when the item was re-queued."""
        if failure is None:
            return (info.index, result)
        if (
            is_transient(failure.qualname or failure.error_type)
            and info.attempts <= pol.max_retries
        ):
            count("n_retries", 1)
            info.attempts += 1
            ready = time.monotonic() + backoff_delay(
                info.attempts, pol, key=info.index
            )
            heapq.heappush(retry_heap, (ready, next(tiebreak), info))
            return None
        return (info.index, replace(failure, attempts=info.attempts))

    def drain_broken() -> list[tuple[int, Any]]:
        """Crash recovery: salvage finished in-flight futures, implicate
        the broken ones, rebuild the pool.  Returns pairs to yield."""
        count("n_crash_events", 1)
        pairs: list[tuple[int, Any]] = []
        rest, straggling = wait(set(inflight), timeout=5.0)
        for fut in rest:
            info = inflight.pop(fut)
            try:
                _i, result, failure = fut.result(timeout=0)
            except BrokenProcessPool:
                outcome = _implicate(info, pol, count)
                if outcome is not None:
                    pairs.append(outcome)
                else:
                    suspects.append(info)
                continue
            pair = classify_completed(info, failure, result)
            if pair is not None:
                pairs.append(pair)
        for fut in straggling:  # pragma: no cover - defensive
            suspects.append(inflight.pop(fut))
        rebuild_pool("worker crash (BrokenProcessPool)")
        return pairs

    try:
        while True:
            now = time.monotonic()
            # Feed the window.  During isolation replay nothing but the
            # lone suspect is submitted, keeping crash blame precise.
            broken_on_submit = False
            if not suspects:
                while backlog and len(inflight) < window:
                    if not try_submit(backlog.popleft(), backlog):
                        broken_on_submit = True
                        break
                while (
                    not broken_on_submit
                    and retry_heap
                    and retry_heap[0][0] <= now
                    and len(inflight) < window
                ):
                    _ready, _tb, info = heapq.heappop(retry_heap)
                    if not try_submit(info, backlog):
                        broken_on_submit = True
                while (
                    not broken_on_submit
                    and not exhausted
                    and len(inflight) < window
                ):
                    try:
                        item = next(it)
                    except StopIteration:
                        exhausted = True
                        break
                    info = _InFlight(index=next_index, item=item)
                    next_index += 1
                    if not try_submit(info, backlog):
                        broken_on_submit = True
            elif not inflight:
                broken_on_submit = not try_submit(suspects.popleft(), suspects)

            if broken_on_submit:
                for pair in drain_broken():
                    yield pair
                continue

            if not inflight:
                if suspects or backlog:
                    continue
                if retry_heap:
                    pause = retry_heap[0][0] - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                    continue
                break

            timeout = None
            if deadline is not None:
                earliest = min(i.submitted_at for i in inflight.values())
                timeout = max(0.0, earliest + deadline - time.monotonic())
            if retry_heap:
                until_retry = max(0.0, retry_heap[0][0] - time.monotonic())
                timeout = (
                    until_retry if timeout is None else min(timeout, until_retry)
                )
            done, _ = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )

            crashed = False
            for fut in done:
                info = inflight.pop(fut)
                try:
                    _i, result, failure = fut.result(timeout=0)
                except BrokenProcessPool:
                    crashed = True
                    outcome = _implicate(info, pol, count)
                    if outcome is not None:
                        yield outcome
                    else:
                        suspects.append(info)
                    continue
                pair = classify_completed(info, failure, result)
                if pair is not None:
                    yield pair

            if crashed:
                for pair in drain_broken():
                    yield pair
                continue

            if deadline is not None:
                now = time.monotonic()
                expired = [
                    (fut, info)
                    for fut, info in inflight.items()
                    if not fut.done() and now - info.submitted_at > deadline
                ]
                if expired:
                    for fut, info in expired:
                        inflight.pop(fut)
                        count("n_timeouts", 1)
                        yield (
                            info.index,
                            _synthetic_failure(
                                info,
                                FailureKind.TIMEOUT,
                                "TaskTimeout",
                                f"exceeded {deadline:.3g}s wall-clock "
                                "deadline; worker recycled",
                            ),
                        )
                    # Remaining in-flight items are collateral of the
                    # recycle: requeued without blame.
                    backlog.extend(inflight.values())
                    inflight.clear()
                    rebuild_pool("task deadline exceeded")
        finished = True
    finally:
        if finished:
            pool.shutdown(wait=True, cancel_futures=True)
        else:
            # Abandoned mid-run (consumer broke out, raised, or the
            # rebuild limit tripped): a graceful shutdown could block on
            # a hung worker forever, so reclaim the processes by force.
            _kill_pool(pool)


def _implicate(
    info: _InFlight, policy: RetryPolicy, count: CountFn
) -> tuple[int, TaskFailure] | None:
    """Blame one crash event on an item.

    Returns the POISON failure pair once the item exhausts its crash
    budget, ``None`` while it still deserves an isolation replay.
    """
    info.crashes += 1
    if info.crashes >= policy.max_item_crashes:
        count("n_poisoned", 1)
        return (
            info.index,
            _synthetic_failure(
                info,
                FailureKind.POISON,
                "WorkerCrash",
                f"killed a worker {info.crashes} time(s); quarantined",
            ),
        )
    return None
