"""Failure taxonomy and retry/backoff policy for corpus execution.

At fleet scale, failures are not one thing: a raised exception, a hung
decode, a worker killed by the OS, and an input that *repeatedly* kills
workers all demand different treatment.  :class:`FailureKind` names the
four classes; :class:`RetryPolicy` carries the knobs that decide how
many second chances each class gets; :func:`backoff_delay` spaces the
chances out with exponential backoff and *deterministic* jitter, so a
retried corpus run is reproducible down to its sleep schedule.

Transience is classified by exception type name (:func:`is_transient`)
rather than by instance, because failures cross the process boundary as
captured strings, never as live exception objects.  Matching is exact:
builtins by bare name, repro-internal classes by module-qualified name —
a third-party exception merely *named* ``ConnectionError`` or
``TraceReadError`` is not silently retried.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "FailureKind",
    "RetryPolicy",
    "TRANSIENT_BUILTIN_TYPES",
    "TRANSIENT_ERROR_TYPES",
    "TRANSIENT_QUALIFIED_TYPES",
    "backoff_delay",
    "is_transient",
]


class FailureKind(Enum):
    """How one work item failed — decides retry/quarantine treatment.

    * ``EXCEPTION`` — the mapped function raised; retried only when the
      exception class is transient (:func:`is_transient`).
    * ``TIMEOUT`` — the item exceeded its wall-clock deadline; the
      worker is recycled and the item quarantined (a hung decode does
      not get to hang twice).
    * ``CRASH`` — a worker died (OOM kill, segfault) while this item
      was in flight; the item is replayed in isolation to assign blame.
    * ``POISON`` — the item repeatedly killed workers and is quarantined
      instead of being retried forever.
    """

    EXCEPTION = "exception"
    TIMEOUT = "timeout"
    CRASH = "crash"
    POISON = "poison"


#: Builtin exception names considered transient: worth re-executing
#: after a backoff because the failure is plausibly environmental (I/O
#: hiccup, interrupted syscall) rather than deterministic.  Builtins are
#: the only names matched bare — :func:`_exc_qualname
#: <repro.parallel.executor._exc_qualname>` leaves them unqualified.
TRANSIENT_BUILTIN_TYPES = frozenset(
    {
        "OSError",
        "IOError",
        "TimeoutError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "BrokenPipeError",
        "BlockingIOError",
        "InterruptedError",
    }
)

#: Repro-internal transient classes, matched *only* by module-qualified
#: name so a third-party class that merely shares the bare name is not
#: silently retried.  ``TraceFormatError``/``TraceReadError`` are here
#: for the re-read path: a trace that *scanned* clean but fails on
#: reload is being touched by something external, not structurally
#: corrupt.
TRANSIENT_QUALIFIED_TYPES = frozenset(
    {
        "repro.darshan.errors.TraceFormatError",
        "repro.darshan.errors.TraceReadError",
    }
)

#: Every transient name, for introspection/docs (the union the old
#: single suffix-matched table used to hold).
TRANSIENT_ERROR_TYPES = TRANSIENT_BUILTIN_TYPES | TRANSIENT_QUALIFIED_TYPES


def is_transient(error_type: str) -> bool:
    """True when an exception type name names a retryable failure class.

    Callers should pass the module-qualified name when they have one
    (:attr:`TaskFailure.qualname <repro.parallel.executor.TaskFailure>`),
    falling back to the bare ``error_type``.  Matching is deliberately
    exact, not suffix-based:

    * a qualified name matches only :data:`TRANSIENT_QUALIFIED_TYPES`
      (plus a ``builtins.``-qualified spelling of a builtin);
    * a bare name matches only :data:`TRANSIENT_BUILTIN_TYPES` — so
      ``somepkg.errors.ConnectionError`` or a user-defined
      ``TraceReadError`` never borrows the transient treatment of the
      class it shadows.
    """
    if error_type in TRANSIENT_QUALIFIED_TYPES:
        return True
    prefix, _, name = error_type.rpartition(".")
    if prefix and prefix != "builtins":
        return False
    return name in TRANSIENT_BUILTIN_TYPES


@dataclass(slots=True, frozen=True)
class RetryPolicy:
    """Second-chance budget of a resilient corpus run.

    All fields are validated at construction; the zero values are
    meaningful (``task_timeout_s=0`` disables deadlines,
    ``max_retries=0`` disables retry, ``backoff_base_s=0`` retries
    immediately — useful in tests).
    """

    #: Per-task wall-clock deadline in seconds; 0 disables deadlines.
    task_timeout_s: float = 0.0
    #: Re-executions granted to a transiently-failing item.
    max_retries: int = 2
    #: First backoff delay; doubles per retry (exponential).
    backoff_base_s: float = 0.05
    #: Ceiling on any single backoff delay.
    backoff_cap_s: float = 2.0
    #: Pool rebuilds (crash or timeout recycles) tolerated per run
    #: before the run itself is declared unhealthy and aborted.
    max_pool_rebuilds: int = 3
    #: Crash events an item may be implicated in before it is
    #: quarantined as :attr:`FailureKind.POISON`.  The first event may
    #: be a group crash; subsequent ones are isolation replays, so 2
    #: means "crashed once alone after crashing once in company".
    max_item_crashes: int = 2

    def __post_init__(self) -> None:
        if self.task_timeout_s < 0:
            raise ValueError("task_timeout_s must be >= 0 (0 disables)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.max_item_crashes < 1:
            raise ValueError("max_item_crashes must be >= 1")

    @property
    def deadline_s(self) -> float | None:
        """The task deadline, or ``None`` when deadlines are disabled."""
        return self.task_timeout_s if self.task_timeout_s > 0 else None


def _jitter_fraction(key: int | str, attempt: int) -> float:
    """Deterministic pseudo-random fraction in [0, 1) for one retry.

    Derived from a hash of ``(key, attempt)`` so the same item retried
    at the same attempt always sleeps the same amount — chaos tests and
    resumed runs see identical schedules — while distinct items spread
    out instead of thundering back in lockstep.
    """
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def backoff_delay(
    attempt: int, policy: RetryPolicy, key: int | str = 0
) -> float:
    """Seconds to wait before retry number ``attempt`` (1-based).

    Exponential in the attempt number, capped by the policy, scaled by
    a deterministic jitter factor in [0.5, 1.0).
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    raw = policy.backoff_base_s * (2.0 ** (attempt - 1))
    capped = min(policy.backoff_cap_s, raw)
    return capped * (0.5 + 0.5 * _jitter_fraction(key, attempt))
