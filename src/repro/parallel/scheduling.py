"""Cost-aware work ordering for corpus processing.

The paper parallelizes per-trace categorization with Dispy on a 64-core
node and reports that two pathological traces dominate load time.  The
classical mitigation — also what makes our pool efficient — is Longest
Processing Time first: sort work items by estimated cost descending so
stragglers start early, then interleave across workers.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

__all__ = ["lpt_order", "chunk_evenly"]

T = TypeVar("T")


def lpt_order(items: Sequence[T], cost: Callable[[T], float]) -> list[int]:
    """Indices of ``items`` in Longest-Processing-Time-first order.

    Stable for equal costs so results remain deterministic.
    """
    return sorted(range(len(items)), key=lambda i: (-cost(items[i]), i))


def chunk_evenly(n_items: int, n_chunks: int) -> list[range]:
    """Split ``range(n_items)`` into up to ``n_chunks`` contiguous ranges
    whose sizes differ by at most one."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n_chunks = min(n_chunks, max(n_items, 1))
    base, extra = divmod(n_items, n_chunks)
    ranges: list[range] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges
