"""Process-pool execution engine (the repo's Dispy substitute).

The paper runs per-trace categorization in parallel across a 64-core
node using the Dispy library; offline and single-node here, we provide
the same contract on top of :mod:`concurrent.futures`:

* per-item isolation — one failing trace never aborts the corpus run;
  failures are captured as :class:`TaskFailure` results;
* cost-aware ordering (LPT) so heavy traces do not become stragglers;
* a serial in-process mode (``max_workers=0``) used for tests,
  debugging, and tiny inputs where fork overhead dominates;
* a streaming mode (:func:`parallel_imap`) that consumes an *iterable*
  with bounded in-flight work instead of materializing the task list —
  the engine of the out-of-core corpus pipeline.

The mapped function must be a module-level picklable callable, the usual
multiprocessing constraint.  It is shipped to each worker exactly once
(via the pool initializer), never re-pickled per work item.
"""

from __future__ import annotations

import os
import traceback
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Callable, Generic, Iterable, Iterator, Sequence, TypeVar

from .retry import FailureKind, RetryPolicy
from .scheduling import lpt_order

__all__ = [
    "TaskFailure",
    "MapOutcome",
    "ParallelConfig",
    "parallel_map",
    "parallel_imap",
]

T = TypeVar("T")
R = TypeVar("R")


def _exc_qualname(exc: BaseException) -> str:
    """Module-qualified exception class name (bare for builtins)."""
    cls = type(exc)
    module = getattr(cls, "__module__", "") or ""
    if module in ("builtins", "__main__"):
        return cls.__qualname__
    return f"{module}.{cls.__qualname__}"


@dataclass(slots=True, frozen=True)
class TaskFailure:
    """Captured failure of one work item.

    ``error_type`` keeps the historical bare class name; ``qualname``
    carries the module-qualified name so callers can distinguish
    ``repro.darshan.errors.TraceReadError`` from any other
    ``TraceReadError``.  ``kind`` places the failure in the
    :class:`~repro.parallel.retry.FailureKind` taxonomy and ``attempts``
    records how many executions were spent on the item (1 = no retry).
    """

    index: int
    error_type: str
    message: str
    traceback_text: str
    kind: FailureKind = FailureKind.EXCEPTION
    qualname: str = ""
    attempts: int = 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        retried = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return (
            f"item {self.index}: [{self.kind.value}] "
            f"{self.error_type}: {self.message}{retried}"
        )


@dataclass(slots=True, frozen=True)
class MapOutcome(Generic[R]):
    """Results of a fault-isolated parallel map, in input order.

    ``results[i]`` is the mapped value of item ``i``, or the
    :class:`TaskFailure` captured from it.  The failure object itself is
    the sentinel, so a mapped function that legitimately returns ``None``
    is a success and survives :meth:`successful` — unlike the earlier
    ``None``-as-failure convention.
    """

    results: list[R | TaskFailure]
    failures: list[TaskFailure]

    @property
    def n_ok(self) -> int:
        return len(self.results) - len(self.failures)

    def ok(self, index: int) -> bool:
        """True when item ``index`` completed without raising."""
        return not isinstance(self.results[index], TaskFailure)

    def successful(self) -> list[R]:
        """Mapped values of the items that succeeded, in input order
        (including any legitimate ``None`` returns)."""
        return [r for r in self.results if not isinstance(r, TaskFailure)]

    def kind_counts(self) -> dict[FailureKind, int]:
        """Failure tally per :class:`~repro.parallel.retry.FailureKind`."""
        counts = Counter(f.kind for f in self.failures)
        return {k: counts[k] for k in FailureKind if counts[k]}

    def raise_if_failed(self) -> None:
        if self.failures:
            first = self.failures[0]
            breakdown = ", ".join(
                f"{n} {kind.name}" for kind, n in self.kind_counts().items()
            )
            raise RuntimeError(
                f"{len(self.failures)} task(s) failed ({breakdown}); "
                f"first: {first}"
            )


@dataclass(slots=True, frozen=True)
class ParallelConfig:
    """Execution knobs for :func:`parallel_map` / :func:`parallel_imap`."""

    #: 0 = serial in-process; None = os.cpu_count().
    max_workers: int | None = None
    #: Items per pickled task batch (amortizes IPC for cheap items).
    chunksize: int = 8
    #: Optional cost estimator enabling LPT ordering (batch map only —
    #: a streaming imap cannot sort what it has not yet seen).
    cost: Callable[[Any], float] | None = None
    #: Streaming mode: maximum submitted-but-unfinished items.  ``None``
    #: derives ``workers * chunksize`` — enough to keep every worker fed
    #: while bounding how many loaded items exist at once.
    max_pending: int | None = None

    # -- resilience knobs (resolved against a RetryPolicy; ``None``
    # -- inherits the policy/MosaicConfig default) -----------------------
    #: Per-task wall-clock deadline in seconds (0 disables deadlines).
    task_timeout_s: float | None = None
    #: Re-executions granted to transiently-failing items.
    max_retries: int | None = None
    #: First retry backoff delay; doubles per retry.
    backoff_base_s: float | None = None
    #: Ceiling on any single backoff delay.
    backoff_cap_s: float | None = None
    #: Pool rebuilds tolerated per run before aborting.
    max_pool_rebuilds: int | None = None
    #: Crash events implicating one item before POISON quarantine.
    max_item_crashes: int | None = None

    def __post_init__(self) -> None:
        if self.task_timeout_s is not None and self.task_timeout_s < 0:
            raise ValueError("task_timeout_s must be >= 0 (0 disables)")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s is not None and self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_cap_s is not None and self.backoff_cap_s < 0:
            raise ValueError("backoff_cap_s must be >= 0")
        if self.max_pool_rebuilds is not None and self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.max_item_crashes is not None and self.max_item_crashes < 1:
            raise ValueError("max_item_crashes must be >= 1")

    _RETRY_FIELDS = (
        "task_timeout_s",
        "max_retries",
        "backoff_base_s",
        "backoff_cap_s",
        "max_pool_rebuilds",
        "max_item_crashes",
    )

    def retry_policy(self, base: RetryPolicy | None = None) -> RetryPolicy:
        """Effective :class:`~repro.parallel.retry.RetryPolicy`.

        Fields left ``None`` here inherit from ``base`` (the pipeline
        passes the :class:`~repro.core.thresholds.MosaicConfig`-derived
        defaults); explicitly-set fields win.
        """
        policy = base if base is not None else RetryPolicy()
        overrides = {
            name: getattr(self, name)
            for name in self._RETRY_FIELDS
            if getattr(self, name) is not None
        }
        return replace(policy, **overrides) if overrides else policy

    def resolved_workers(self) -> int:
        if self.max_workers is None:
            return os.cpu_count() or 1
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        return self.max_workers

    def resolved_pending(self) -> int:
        if self.max_pending is not None:
            if self.max_pending < 1:
                raise ValueError("max_pending must be >= 1")
            return self.max_pending
        return max(1, self.resolved_workers()) * max(1, self.chunksize)


# ----------------------------------------------------------------------
# Worker-side function binding.  ``fn`` is pickled once per worker via
# the pool initializer instead of once per task tuple: task payloads are
# just ``(index, item)``, which matters when ``fn`` is a closure-heavy
# partial and items number in the hundreds of thousands.
_WORKER_FN: Callable[..., Any] | None = None


def _bind_worker_fn(fn: Callable[[T], R]) -> None:
    global _WORKER_FN
    _WORKER_FN = fn


def _guarded(
    fn: Callable[[T], R], index: int, item: T
) -> tuple[int, R | None, TaskFailure | None]:
    try:
        return index, fn(item), None
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        return (
            index,
            None,
            TaskFailure(
                index=index,
                error_type=type(exc).__name__,
                message=str(exc),
                traceback_text=traceback.format_exc(),
                kind=FailureKind.EXCEPTION,
                qualname=_exc_qualname(exc),
            ),
        )


def _run_bound(task: tuple[int, T]) -> tuple[int, Any, TaskFailure | None]:
    index, item = task
    assert _WORKER_FN is not None, "worker initializer did not run"
    return _guarded(_WORKER_FN, index, item)


def _pool(fn: Callable[[T], R], workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_bind_worker_fn,
        initargs=(fn,),
    )


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: ParallelConfig | None = None,
) -> MapOutcome[R]:
    """Apply ``fn`` to every item with fault isolation.

    Results come back in input order regardless of scheduling.  With
    ``max_workers=0`` (or a single item) everything runs in-process,
    which also means ``fn`` need not be picklable in that mode.
    """
    cfg = config or ParallelConfig()
    n = len(items)
    results: list[R | TaskFailure] = [None] * n  # type: ignore[list-item]
    failures: list[TaskFailure] = []
    if n == 0:
        return MapOutcome(results=results, failures=failures)

    order = (
        lpt_order(items, cfg.cost) if cfg.cost is not None else list(range(n))
    )
    workers = cfg.resolved_workers()

    if workers <= 1 or n == 1:
        triples = (_guarded(fn, i, items[i]) for i in order)
    else:
        pool = _pool(fn, min(workers, n))
        try:
            triples = list(
                pool.map(
                    _run_bound,
                    [(i, items[i]) for i in order],
                    chunksize=max(1, cfg.chunksize),
                )
            )
        finally:
            pool.shutdown(wait=True)

    for index, result, failure in triples:
        if failure is not None:
            failures.append(failure)
            results[index] = failure
        else:
            results[index] = result
    failures.sort(key=lambda f: f.index)
    return MapOutcome(results=results, failures=failures)


def parallel_imap(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: ParallelConfig | None = None,
) -> Iterator[tuple[int, R | TaskFailure]]:
    """Streaming fault-isolated map with backpressure.

    Consumes ``items`` lazily — at most
    :meth:`ParallelConfig.resolved_pending` items are drawn from the
    iterable and unfinished at any moment, so a generator that loads
    traces from disk never races ahead of the workers and corpus memory
    stays bounded.  Yields ``(index, result_or_failure)`` pairs as items
    complete: in input order when serial, in completion order with a
    pool.  ``index`` is the item's position in the input iterable.
    """
    cfg = config or ParallelConfig()
    workers = cfg.resolved_workers()
    it = iter(items)

    if workers <= 1:
        for index, item in enumerate(it):
            i, result, failure = _guarded(fn, index, item)
            yield (i, failure if failure is not None else result)
        return

    window = cfg.resolved_pending()
    pool = _pool(fn, workers)
    finished = False
    try:
        pending: set = set()
        next_index = 0
        exhausted = False
        while True:
            while not exhausted and len(pending) < window:
                try:
                    item = next(it)
                except StopIteration:
                    exhausted = True
                    break
                pending.add(pool.submit(_run_bound, (next_index, item)))
                next_index += 1
            if not pending:
                break
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                i, result, failure = fut.result()
                yield (i, failure if failure is not None else result)
        finished = True
    finally:
        # Normal exhaustion drains the pool gracefully.  If the consumer
        # abandons the stream instead (breaks out of its loop, raises,
        # or drops the generator), blocking here for in-flight work
        # would stall the abandonment — cancel everything queued and
        # return immediately; workers exit once their current item ends.
        pool.shutdown(wait=finished, cancel_futures=True)
