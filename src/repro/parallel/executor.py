"""Process-pool execution engine (the repo's Dispy substitute).

The paper runs per-trace categorization in parallel across a 64-core
node using the Dispy library; offline and single-node here, we provide
the same contract on top of :mod:`concurrent.futures`:

* per-item isolation — one failing trace never aborts the corpus run;
  failures are captured as :class:`TaskFailure` results;
* cost-aware ordering (LPT) so heavy traces do not become stragglers;
* a serial in-process mode (``max_workers=0``) used for tests,
  debugging, and tiny inputs where fork overhead dominates.

The mapped function must be a module-level picklable callable, the usual
multiprocessing constraint.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Generic, Sequence, TypeVar

from .scheduling import lpt_order

__all__ = ["TaskFailure", "MapOutcome", "ParallelConfig", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(slots=True, frozen=True)
class TaskFailure:
    """Captured exception from one work item."""

    index: int
    error_type: str
    message: str
    traceback_text: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"item {self.index}: {self.error_type}: {self.message}"


@dataclass(slots=True, frozen=True)
class MapOutcome(Generic[R]):
    """Results of a fault-isolated parallel map, in input order.

    ``results[i]`` is ``None`` exactly when item ``i`` failed; the
    failure detail is in :attr:`failures`.
    """

    results: list[R | None]
    failures: list[TaskFailure]

    @property
    def n_ok(self) -> int:
        return len(self.results) - len(self.failures)

    def successful(self) -> list[R]:
        return [r for r in self.results if r is not None]

    def raise_if_failed(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise RuntimeError(
                f"{len(self.failures)} task(s) failed; first: {first}"
            )


@dataclass(slots=True, frozen=True)
class ParallelConfig:
    """Execution knobs for :func:`parallel_map`."""

    #: 0 = serial in-process; None = os.cpu_count().
    max_workers: int | None = None
    #: Items per pickled task batch (amortizes IPC for cheap items).
    chunksize: int = 8
    #: Optional cost estimator enabling LPT ordering.
    cost: Callable[[Any], float] | None = None

    def resolved_workers(self) -> int:
        if self.max_workers is None:
            return os.cpu_count() or 1
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        return self.max_workers


def _guarded(fn: Callable[[T], R], index: int, item: T) -> tuple[int, R | None, TaskFailure | None]:
    try:
        return index, fn(item), None
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        return (
            index,
            None,
            TaskFailure(
                index=index,
                error_type=type(exc).__name__,
                message=str(exc),
                traceback_text=traceback.format_exc(),
            ),
        )


def _guarded_star(args: tuple[Callable[[T], R], int, T]) -> tuple[int, R | None, TaskFailure | None]:
    return _guarded(*args)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: ParallelConfig | None = None,
) -> MapOutcome[R]:
    """Apply ``fn`` to every item with fault isolation.

    Results come back in input order regardless of scheduling.  With
    ``max_workers=0`` (or a single item) everything runs in-process,
    which also means ``fn`` need not be picklable in that mode.
    """
    cfg = config or ParallelConfig()
    n = len(items)
    results: list[R | None] = [None] * n
    failures: list[TaskFailure] = []
    if n == 0:
        return MapOutcome(results=results, failures=failures)

    order = (
        lpt_order(items, cfg.cost) if cfg.cost is not None else list(range(n))
    )
    workers = cfg.resolved_workers()

    if workers <= 1 or n == 1:
        triples = (_guarded(fn, i, items[i]) for i in order)
    else:
        pool = ProcessPoolExecutor(max_workers=min(workers, n))
        try:
            triples = list(
                pool.map(
                    _guarded_star,
                    [(fn, i, items[i]) for i in order],
                    chunksize=max(1, cfg.chunksize),
                )
            )
        finally:
            pool.shutdown(wait=True)

    for index, result, failure in triples:
        if failure is not None:
            failures.append(failure)
        else:
            results[index] = result
    failures.sort(key=lambda f: f.index)
    return MapOutcome(results=results, failures=failures)
