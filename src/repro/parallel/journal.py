"""Append-only run journal: checkpoint/resume for corpus execution.

A corpus run at paper scale (462,502 traces) that dies at trace 23,000
must not restart from zero.  The journal is a JSON-lines file written
*during* the categorize stage — one line per per-trace outcome, flushed
as it happens — so a killed run can be resumed with ``--resume``: traces
whose outcome is already journaled are skipped and their saved results
reused verbatim.

Format (one JSON object per line):

* ``{"kind": "header", "version": 1, "n_selected": N}`` — first line of
  a fresh journal; ``n_selected`` guards against resuming over a
  *different* corpus.
* ``{"kind": "result", "job_id": J, "result": {...}}`` — one completed
  categorization (the :meth:`CategorizationResult.to_dict` payload).
* ``{"kind": "failure", "job_id": J, "failure_kind": "poison", ...}`` —
  one failed trace with its taxonomy kind, error class, and source key.

The file is crash-tolerant by construction: lines are flushed as
written and fsynced at checkpoint boundaries (every line by default),
so a killed process — or a power cut — leaves at most one partial
trailing line, which the loader ignores.
Quarantined outcomes (TIMEOUT/POISON) are skipped on resume — a hung
decode does not get to hang every resumed run — while plain EXCEPTION
failures are re-attempted, since they may have been environmental.

This module deliberately traffics in plain dicts (not
:class:`~repro.core.result.CategorizationResult`) so the parallel layer
never imports the core package.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..io import DurableAppender, atomic_write_text

__all__ = [
    "JOURNAL_VERSION",
    "JournalState",
    "JournalWriter",
    "write_quarantine_manifest",
]

JOURNAL_VERSION = 1

#: Failure kinds that stay quarantined across resumes.
_QUARANTINE_KINDS = frozenset({"timeout", "poison"})


@dataclass(slots=True)
class JournalState:
    """Everything a resumed run needs from a prior journal."""

    #: Selected-trace count recorded by the run that wrote the journal
    #: (``None`` for a headerless/legacy file).
    n_selected: int | None = None
    #: job_id → result payload dict of completed categorizations.
    completed: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: job_id → failure record of quarantined (TIMEOUT/POISON) traces.
    quarantined: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: Failure records that are *not* quarantined (re-run on resume).
    transient_failures: list[dict[str, Any]] = field(default_factory=list)
    #: Unparseable lines skipped (normally 0 or 1: a torn final write).
    n_malformed: int = 0

    @property
    def n_completed(self) -> int:
        return len(self.completed)

    def is_settled(self, job_id: int) -> bool:
        """True when a resumed run should skip this trace."""
        return job_id in self.completed or job_id in self.quarantined

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "JournalState":
        """Parse a journal, tolerating a torn trailing line.

        Raises :class:`ValueError` only for a journal written by an
        incompatible format version — everything else degrades to
        counting the line as malformed, because a journal that survived
        a crash is expected to be imperfect.
        """
        state = cls()
        with open(os.fspath(path), "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    state.n_malformed += 1
                    continue
                if not isinstance(entry, dict):
                    state.n_malformed += 1
                    continue
                kind = entry.get("kind")
                if kind == "header":
                    version = entry.get("version")
                    if version != JOURNAL_VERSION:
                        raise ValueError(
                            f"journal version {version!r} is not supported "
                            f"(expected {JOURNAL_VERSION})"
                        )
                    if entry.get("n_selected") is not None:
                        state.n_selected = int(entry["n_selected"])
                elif kind == "result":
                    try:
                        state.completed[int(entry["job_id"])] = entry["result"]
                    except (KeyError, TypeError, ValueError):
                        state.n_malformed += 1
                elif kind == "failure":
                    try:
                        job_id = int(entry["job_id"])
                    except (KeyError, TypeError, ValueError):
                        state.n_malformed += 1
                        continue
                    if entry.get("failure_kind") in _QUARANTINE_KINDS:
                        state.quarantined[job_id] = entry
                    else:
                        state.transient_failures.append(entry)
                else:
                    state.n_malformed += 1
        return state


class JournalWriter:
    """Append-only writer; one flushed, fsynced JSON line per outcome.

    Opened in truncate mode for a fresh run and append mode for a
    resumed one.  Writes go through :class:`repro.io.DurableAppender`:
    every line is flushed as written and the file is fsynced every
    ``sync_interval`` lines (default 1), so a power cut — not just a
    ``kill -9`` — loses at most the outcomes since the last checkpoint.
    Storage failures surface as :class:`repro.io.StorageError` naming
    the journal path.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        append: bool = False,
        sync_interval: int = 1,
    ):
        self.path = os.fspath(path)
        self._appender: DurableAppender | None = DurableAppender(
            self.path, append=append, sync_interval=sync_interval
        )
        self.n_written = 0

    # ------------------------------------------------------------------
    def _write(self, entry: dict[str, Any]) -> None:
        if self._appender is None:
            raise ValueError(f"journal {self.path!r} is closed")
        self._appender.append_line(json.dumps(entry, separators=(",", ":")))
        self.n_written += 1

    def write_header(self, *, n_selected: int) -> None:
        self._write(
            {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "n_selected": n_selected,
            }
        )

    def record_result(self, job_id: int, result: dict[str, Any]) -> None:
        self._write({"kind": "result", "job_id": job_id, "result": result})

    def record_failure(
        self,
        job_id: int,
        *,
        failure_kind: str,
        error_type: str,
        message: str,
        trace_key: str = "",
        attempts: int = 1,
    ) -> None:
        self._write(
            {
                "kind": "failure",
                "job_id": job_id,
                "failure_kind": failure_kind,
                "error_type": error_type,
                "message": message,
                "trace_key": trace_key,
                "attempts": attempts,
            }
        )

    def checkpoint(self) -> None:
        """Force-fsync everything journaled so far."""
        if self._appender is not None:
            self._appender.checkpoint()

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_quarantine_manifest(
    journal_path: str | os.PathLike[str],
    entries: list[dict[str, Any]],
) -> str:
    """Write the poisoned/timed-out trace manifest next to a journal.

    The manifest is the operator's worklist: every trace the run gave
    up on, with its source key (a path for directory corpora), failure
    kind, and error, at ``<journal>.quarantine.json``.  Written (even
    when empty) so its absence always means "no journaled run", never
    "no quarantine".
    """
    path = os.fspath(journal_path) + ".quarantine.json"
    payload = {
        "version": JOURNAL_VERSION,
        "n_quarantined": len(entries),
        "quarantined": sorted(entries, key=lambda e: e.get("job_id", 0)),
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return path
