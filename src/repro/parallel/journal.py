"""Append-only run journal: checkpoint/resume for corpus execution.

A corpus run at paper scale (462,502 traces) that dies at trace 23,000
must not restart from zero.  The journal is a JSON-lines file written
*during* the categorize stage — one line per per-trace outcome, flushed
as it happens — so a killed run can be resumed with ``--resume``: traces
whose outcome is already journaled are skipped and their saved results
reused verbatim.

Format (one JSON object per line):

* ``{"kind": "header", "version": 1, "n_selected": N}`` — first line of
  a fresh journal; ``n_selected`` guards against resuming over a
  *different* corpus.
* ``{"kind": "result", "job_id": J, "result": {...}}`` — one completed
  categorization (the :meth:`CategorizationResult.to_dict` payload).
* ``{"kind": "failure", "job_id": J, "failure_kind": "poison", ...}`` —
  one failed trace with its taxonomy kind, error class, and source key.

The file is crash-tolerant by construction: lines are flushed as
written and fsynced at checkpoint boundaries (every line by default),
so a killed process — or a power cut — leaves at most one partial
trailing line, which the loader ignores.
Quarantined outcomes (TIMEOUT/POISON) are skipped on resume — a hung
decode does not get to hang every resumed run — while plain EXCEPTION
failures are re-attempted, since they may have been environmental.

This module deliberately traffics in plain dicts (not
:class:`~repro.core.result.CategorizationResult`) so the parallel layer
never imports the core package.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..io import DurableAppender, StorageError, atomic_write_text, get_io

__all__ = [
    "JOURNAL_VERSION",
    "JournalLockHeld",
    "JournalState",
    "JournalWriter",
    "acquire_journal_lock",
    "iter_settle_events",
    "release_journal_lock",
    "write_quarantine_manifest",
]

JOURNAL_VERSION = 1

#: Failure kinds that stay quarantined across resumes.
_QUARANTINE_KINDS = frozenset({"timeout", "poison"})


@dataclass(slots=True)
class JournalState:
    """Everything a resumed run needs from a prior journal."""

    #: Selected-trace count recorded by the run that wrote the journal
    #: (``None`` for a headerless/legacy file).
    n_selected: int | None = None
    #: job_id → result payload dict of completed categorizations.
    completed: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: job_id → failure record of quarantined (TIMEOUT/POISON) traces.
    quarantined: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: Failure records that are *not* quarantined (re-run on resume).
    transient_failures: list[dict[str, Any]] = field(default_factory=list)
    #: Unparseable lines skipped (normally 0 or 1: a torn final write).
    n_malformed: int = 0
    #: Parseable settle lines (result *and* failure, duplicates counted)
    #: in journal order — the event-sequence cursor a resumed writer
    #: continues from, so SSE event ids stay stable across restarts.
    n_settle_events: int = 0

    @property
    def n_completed(self) -> int:
        return len(self.completed)

    def is_settled(self, job_id: int) -> bool:
        """True when a resumed run should skip this trace."""
        return job_id in self.completed or job_id in self.quarantined

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "JournalState":
        """Parse a journal, tolerating a torn trailing line.

        Raises :class:`ValueError` only for a journal written by an
        incompatible format version — everything else degrades to
        counting the line as malformed, because a journal that survived
        a crash is expected to be imperfect.
        """
        state = cls()
        with open(os.fspath(path), "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    state.n_malformed += 1
                    continue
                if not isinstance(entry, dict):
                    state.n_malformed += 1
                    continue
                kind = entry.get("kind")
                if kind == "header":
                    version = entry.get("version")
                    if version != JOURNAL_VERSION:
                        raise ValueError(
                            f"journal version {version!r} is not supported "
                            f"(expected {JOURNAL_VERSION})"
                        )
                    if entry.get("n_selected") is not None:
                        state.n_selected = int(entry["n_selected"])
                elif kind == "result":
                    try:
                        state.completed[int(entry["job_id"])] = entry["result"]
                    except (KeyError, TypeError, ValueError):
                        state.n_malformed += 1
                        continue
                    state.n_settle_events += 1
                elif kind == "failure":
                    try:
                        job_id = int(entry["job_id"])
                    except (KeyError, TypeError, ValueError):
                        state.n_malformed += 1
                        continue
                    state.n_settle_events += 1
                    if entry.get("failure_kind") in _QUARANTINE_KINDS:
                        state.quarantined[job_id] = entry
                    else:
                        state.transient_failures.append(entry)
                else:
                    state.n_malformed += 1
        return state


def iter_settle_events(
    path: str | os.PathLike[str],
) -> "Iterator[tuple[int, str, dict[str, Any]]]":
    """Yield ``(seq, kind, entry)`` for every settle line, in order.

    ``seq`` is 1-based and counts every parseable ``result``/``failure``
    line (duplicates from resumed transient failures included), matching
    the cursor :class:`JournalState` tracks in ``n_settle_events`` and
    the one a live :class:`~repro.parallel.jobstore.JobStore` advances —
    the three views of "event number N" always agree, which is what
    makes SSE ``Last-Event-ID`` replay sound.  Malformed lines (the torn
    tail of a crashed append) are skipped without consuming a sequence
    number, exactly as :meth:`JournalState.load` skips them.
    """
    seq = 0
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict):
                continue
            kind = entry.get("kind")
            if kind not in ("result", "failure"):
                continue
            try:
                int(entry["job_id"])
            except (KeyError, TypeError, ValueError):
                continue
            seq += 1
            yield seq, str(kind), entry


class JournalLockHeld(StorageError):
    """The journal is already locked by a *live* process.

    Two writers interleaving JSONL appends corrupt resume state, so the
    second opener fails fast instead of silently sharing the file.  A
    typed :class:`~repro.io.StorageError` subclass: the CLI's storage
    exit path (exit code 3) and the service's HTTP mapping both apply.
    """


def _pid_alive(pid: int) -> bool:
    """Liveness probe behind stale-lock detection (signal 0)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - defensive
        return True
    return True


def _lock_holder(lock_path: str) -> int | None:
    """Pid recorded in a lock sidecar, or ``None`` when unreadable.

    An empty/garbled sidecar means the creating process died between
    the exclusive create and the pid write — stale by definition.
    """
    try:
        with open(lock_path, "rb") as fh:  # read path: not the seam
            return int(fh.read().strip() or b"-1")
    except (OSError, ValueError):
        return None


def acquire_journal_lock(path: str | os.PathLike[str]) -> str:
    """Take the ``<path>.lock`` sidecar exclusively; return its path.

    The sidecar is created with ``O_CREAT | O_EXCL`` (through the VFS
    seam, so chaos can script the create) and records the owner's pid.
    An existing sidecar naming a live process raises
    :class:`JournalLockHeld`; one naming a dead pid — the ``kill -9``
    leftover — is broken and re-acquired.
    """
    lock_path = os.fspath(path) + ".lock"
    io = get_io()
    for _attempt in range(8):
        try:
            fh = io.open_exclusive(lock_path)
        except FileExistsError:
            holder = _lock_holder(lock_path)
            if holder is not None and _pid_alive(holder):
                raise JournalLockHeld(
                    f"journal {os.fspath(path)!r} is locked by live "
                    f"process {holder} (lock sidecar {lock_path!r}); "
                    "two writers would interleave appends and corrupt "
                    "resume state",
                    op="lock",
                    path=lock_path,
                ) from None
            # Stale: the recorded owner is gone.  Break the sidecar and
            # race for the create again — losing the race means someone
            # live took it in the meantime.
            with contextlib.suppress(OSError):
                os.unlink(lock_path)
            continue
        except OSError as exc:
            raise StorageError(
                f"could not create journal lock {lock_path!r}: {exc}",
                op="lock",
                path=lock_path,
                errno_value=exc.errno,
            ) from exc
        try:
            io.write(fh, str(os.getpid()).encode("ascii"))
            io.flush(fh)
        except StorageError:
            release_journal_lock(lock_path)
            raise
        except OSError as exc:
            # A sidecar without a readable pid would read as stale to
            # every other process: remove it rather than leave it.
            release_journal_lock(lock_path)
            raise StorageError(
                f"could not record pid in journal lock {lock_path!r}: {exc}",
                op="lock",
                path=lock_path,
                errno_value=exc.errno,
            ) from exc
        finally:
            fh.close()
        return lock_path
    raise StorageError(  # pragma: no cover - pathological contention
        f"could not acquire journal lock {lock_path!r} after retries",
        op="lock",
        path=lock_path,
    )


def release_journal_lock(lock_path: str) -> None:
    """Remove a lock sidecar (best-effort; absence is success)."""
    with contextlib.suppress(OSError):
        os.unlink(lock_path)


class JournalWriter:
    """Append-only writer; one flushed, fsynced JSON line per outcome.

    Opened in truncate mode for a fresh run and append mode for a
    resumed one.  Writes go through :class:`repro.io.DurableAppender`:
    every line is flushed as written and the file is fsynced every
    ``sync_interval`` lines (default 1), so a power cut — not just a
    ``kill -9`` — loses at most the outcomes since the last checkpoint.
    Storage failures surface as :class:`repro.io.StorageError` naming
    the journal path.

    Construction takes the ``<path>.lock`` sidecar exclusively
    (:func:`acquire_journal_lock`) and :meth:`close` releases it, so two
    processes pointed at the same ``--journal`` path cannot interleave
    appends: the second opener fails fast with :class:`JournalLockHeld`.
    A lock left by a killed process is detected by pid liveness and
    broken.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        append: bool = False,
        sync_interval: int = 1,
    ):
        self.path = os.fspath(path)
        self._lock_path: str | None = acquire_journal_lock(self.path)
        try:
            self._appender: DurableAppender | None = DurableAppender(
                self.path, append=append, sync_interval=sync_interval
            )
        except BaseException:
            self._release_lock()
            raise
        self.n_written = 0

    def _release_lock(self) -> None:
        if self._lock_path is not None:
            release_journal_lock(self._lock_path)
            self._lock_path = None

    # ------------------------------------------------------------------
    def _write(self, entry: dict[str, Any]) -> None:
        if self._appender is None:
            raise ValueError(f"journal {self.path!r} is closed")
        self._appender.append_line(json.dumps(entry, separators=(",", ":")))
        self.n_written += 1

    def write_header(self, *, n_selected: int) -> None:
        self._write(
            {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "n_selected": n_selected,
            }
        )

    def record_result(self, job_id: int, result: dict[str, Any]) -> None:
        self._write({"kind": "result", "job_id": job_id, "result": result})

    def record_failure(
        self,
        job_id: int,
        *,
        failure_kind: str,
        error_type: str,
        message: str,
        trace_key: str = "",
        attempts: int = 1,
    ) -> None:
        self._write(
            {
                "kind": "failure",
                "job_id": job_id,
                "failure_kind": failure_kind,
                "error_type": error_type,
                "message": message,
                "trace_key": trace_key,
                "attempts": attempts,
            }
        )

    def checkpoint(self) -> None:
        """Force-fsync everything journaled so far."""
        if self._appender is not None:
            self._appender.checkpoint()

    def close(self) -> None:
        try:
            if self._appender is not None:
                self._appender.close()
                self._appender = None
        finally:
            self._release_lock()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_quarantine_manifest(
    journal_path: str | os.PathLike[str],
    entries: list[dict[str, Any]],
) -> str:
    """Write the poisoned/timed-out trace manifest next to a journal.

    The manifest is the operator's worklist: every trace the run gave
    up on, with its source key (a path for directory corpora), failure
    kind, and error, at ``<journal>.quarantine.json``.  Written (even
    when empty) so its absence always means "no journaled run", never
    "no quarantine".
    """
    path = os.fspath(journal_path) + ".quarantine.json"
    payload = {
        "version": JOURNAL_VERSION,
        "n_quarantined": len(entries),
        "quarantined": sorted(entries, key=lambda e: e.get("job_id", 0)),
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return path
