"""Single-node parallel execution engine: fault-isolated process-pool map
with cost-aware (LPT) scheduling — the reproduction's Dispy substitute."""

from .executor import (
    MapOutcome,
    ParallelConfig,
    TaskFailure,
    parallel_imap,
    parallel_map,
)
from .scheduling import chunk_evenly, lpt_order

__all__ = [
    "MapOutcome",
    "ParallelConfig",
    "TaskFailure",
    "parallel_map",
    "parallel_imap",
    "chunk_evenly",
    "lpt_order",
]
