"""Single-node parallel execution engine: fault-isolated process-pool map
with cost-aware (LPT) scheduling, a crash-surviving resilient streaming
mode (retry/timeout/backoff, poison quarantine), and an append-only run
journal for checkpoint/resume — the reproduction's Dispy substitute."""

from .executor import (
    MapOutcome,
    ParallelConfig,
    TaskFailure,
    parallel_imap,
    parallel_map,
)
from .jobstore import QUARANTINE_KINDS, JobStore, replay_settles
from .journal import (
    JOURNAL_VERSION,
    JournalLockHeld,
    JournalState,
    JournalWriter,
    write_quarantine_manifest,
)
from .resilient import PoolRebuildLimit, resilient_imap
from .retry import (
    FailureKind,
    RetryPolicy,
    TRANSIENT_ERROR_TYPES,
    backoff_delay,
    is_transient,
)
from .scheduling import chunk_evenly, lpt_order

__all__ = [
    "MapOutcome",
    "ParallelConfig",
    "TaskFailure",
    "parallel_map",
    "parallel_imap",
    "JOURNAL_VERSION",
    "JobStore",
    "replay_settles",
    "JournalLockHeld",
    "JournalState",
    "JournalWriter",
    "QUARANTINE_KINDS",
    "write_quarantine_manifest",
    "PoolRebuildLimit",
    "resilient_imap",
    "FailureKind",
    "RetryPolicy",
    "TRANSIENT_ERROR_TYPES",
    "backoff_delay",
    "is_transient",
    "chunk_evenly",
    "lpt_order",
]
