"""JobStore: the submit → settle → resume contract over one journal.

Both batch pipelines (:func:`~repro.core.pipeline.run_pipeline_stream`,
:func:`~repro.core.pipeline.run_pipeline_store`) and the categorization
service (:mod:`repro.service`) need the same bookkeeping around a
checkpoint journal: load prior state when resuming, refuse a journal
written for a different corpus, open the writer (taking the exclusive
lock sidecar), journal every per-trace outcome as it settles, track
which failures are quarantined, and publish the quarantine manifest on
close.  Before this module each caller re-implemented that dance;
:class:`JobStore` is the one shared implementation, so a job started by
the CLI can be resumed by the server (and vice versa) byte-identically.

Like :mod:`repro.parallel.journal` underneath it, this layer traffics in
plain dicts — never :class:`~repro.core.result.CategorizationResult` —
so the parallel package stays independent of the core package.

Lifecycle::

    store = JobStore(path, resume=True)
    state = store.open(n_selected=plan.n_selected)  # lock + header
    ...                                             # state.completed /
    store.settle_result(job_id, payload)            # state.quarantined
    store.settle_failure(job_id, failure_kind=..., ...)
    store.close()                                   # manifest + unlock

``on_settle`` (optional) is invoked after every durably-journaled
outcome — the service's live-stream hook.  Every settle carries a
1-based sequence number (:attr:`JobStore.seq`) that counts journal
settle lines, so a resumed store continues exactly where the dead
incarnation's numbering stopped; :func:`replay_settles` re-reads a
journal and reproduces the same ``(seq, event)`` stream, which is what
backs SSE ``Last-Event-ID`` resume on the server.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from .journal import (
    JournalState,
    JournalWriter,
    iter_settle_events,
    write_quarantine_manifest,
)

__all__ = ["QUARANTINE_KINDS", "JobStore", "replay_settles"]

#: Failure kinds that stay settled (skipped) across resumes.
QUARANTINE_KINDS = frozenset({"timeout", "poison"})

#: Settle callback signature: (kind, job_id, record, seq) with kind one
#: of ``"result"`` / ``"failure"`` and ``seq`` the 1-based journal
#: settle-event sequence number (stable across resumes).
SettleFn = Callable[[str, int, dict[str, Any], int], None]


def replay_settles(
    path: str | os.PathLike[str], *, after: int = 0
) -> list[tuple[int, str, dict[str, Any]]]:
    """Settle events journaled at ``path`` with sequence number > ``after``.

    Returns ``(seq, kind, record)`` triples in journal order, where
    ``record`` is the journal entry (``result`` lines carry the payload
    under ``"result"``; ``failure`` lines are the failure record).  A
    missing or unreadable journal replays as empty — the caller treats
    that as "nothing settled yet", the same answer a fresh job gives.
    """
    try:
        return [
            (seq, kind, entry)
            for seq, kind, entry in iter_settle_events(path)
            if seq > after
        ]
    except OSError:
        return []


class JobStore:
    """Journal-backed outcome store for one categorization job.

    ``resume=True`` only takes effect when a journal already exists at
    ``path`` (a fresh path degrades to a fresh run, matching the CLI's
    ``--resume`` ergonomics).  :attr:`resuming` reports which mode was
    actually taken.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        resume: bool = False,
        sync_interval: int = 1,
        on_settle: SettleFn | None = None,
    ) -> None:
        self.path = os.fspath(path)
        self.resuming = resume and os.path.exists(self.path)
        self.sync_interval = sync_interval
        self.on_settle = on_settle
        self._writer: JournalWriter | None = None
        #: Failure records quarantined this run *or* inherited from the
        #: resumed journal — the manifest content.
        self.quarantine_records: list[dict[str, Any]] = []
        #: Settle-event cursor: the sequence number of the last settled
        #: outcome.  Initialized from the resumed journal's settle-line
        #: count in :meth:`open`, so event numbering is stable across
        #: kill/restart cycles.
        self.seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    def open(self, *, n_selected: int) -> JournalState:
        """Load prior state, take the lock, write the header if fresh.

        Raises :class:`ValueError` when a resumed journal was written
        for a corpus with a different selected-trace count, and
        :class:`~repro.io.StorageError` (via the writer) when the
        journal is locked by a live process or cannot be opened.
        """
        if self._writer is not None:
            raise ValueError(f"job store {self.path!r} is already open")
        state = JournalState()
        if self.resuming:
            state = JournalState.load(self.path)
            if (
                state.n_selected is not None
                and state.n_selected != n_selected
            ):
                raise ValueError(
                    f"journal {self.path!r} was written for a corpus with "
                    f"{state.n_selected} selected traces; this corpus "
                    f"selects {n_selected} — refusing to resume"
                )
            self.quarantine_records.extend(state.quarantined.values())
            self.seq = state.n_settle_events
        self._writer = JournalWriter(
            self.path,
            append=self.resuming,
            sync_interval=self.sync_interval,
        )
        if not self.resuming:
            self._writer.write_header(n_selected=n_selected)
        return state

    def _require_writer(self) -> JournalWriter:
        if self._writer is None:
            raise ValueError(
                f"job store {self.path!r} is not open (call open() first)"
            )
        return self._writer

    # ------------------------------------------------------------------
    def settle_result(self, job_id: int, payload: dict[str, Any]) -> None:
        """Durably record one completed categorization."""
        self._require_writer().record_result(job_id, payload)
        self.seq += 1
        if self.on_settle is not None:
            self.on_settle("result", job_id, payload, self.seq)

    def settle_failure(
        self,
        job_id: int,
        *,
        failure_kind: str,
        error_type: str,
        message: str,
        trace_key: str = "",
        attempts: int = 1,
    ) -> bool:
        """Durably record one failure; True when it was quarantined."""
        record = {
            "job_id": job_id,
            "failure_kind": failure_kind,
            "error_type": error_type,
            "message": message,
            "trace_key": trace_key,
            "attempts": attempts,
        }
        quarantined = failure_kind in QUARANTINE_KINDS
        if quarantined:
            self.quarantine_records.append(record)
        self._require_writer().record_failure(
            job_id,
            failure_kind=failure_kind,
            error_type=error_type,
            message=message,
            trace_key=trace_key,
            attempts=attempts,
        )
        self.seq += 1
        if self.on_settle is not None:
            self.on_settle("failure", job_id, record, self.seq)
        return quarantined

    def checkpoint(self) -> None:
        """Force-fsync everything settled so far."""
        self._require_writer().checkpoint()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the journal lock and publish the quarantine manifest.

        Idempotent.  The manifest is written even when nothing was
        quarantined (its absence must always mean "no journaled run")
        — but only if the store actually opened, so a failed ``open``
        leaves no half-artifacts behind.
        """
        if self._closed:
            return
        writer, self._writer = self._writer, None
        if writer is None:
            self._closed = True
            return
        try:
            writer.close()
        finally:
            self._closed = True
            write_quarantine_manifest(self.path, self.quarantine_records)

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
