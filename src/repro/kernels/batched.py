"""Batched (segmented) kernels — the cross-trace backend.

The vectorized backend removed the per-*operation* Python cost; at
corpus scale the remaining overhead is per-*trace* kernel dispatch.
This module removes that too: every hot data-plane kernel has a
*segmented* variant that processes the flat operation table of many
traces in one NumPy dispatch, with an ``offsets`` array marking trace
boundaries (``offsets[k]:offsets[k+1]`` is trace ``k``'s slab — the
zero-copy layout of :mod:`repro.columnar`).

Segment boundaries are hard walls: no merge, overlap group, or running
maximum ever crosses one.  The per-trace functions exported here wrap
the segmented implementations with a single-segment offsets array, so
``"batched"`` registers as a third :class:`~repro.kernels.backend.KernelBackend`
and the differential oracle (:mod:`repro.testing.differential`) holds it
equivalent to the reference on the same adversarial cases as the
vectorized twin.  Kernels that are already batch-shaped within one trace
(mean-shift step, ACF peak scan, DFT comb scan, volume binning) are
shared with :mod:`repro.kernels.vectorized` — cross-trace batching buys
them nothing, and aliasing keeps the twins bitwise-identical.

Exactness note: the segmented running maximum uses a masked
Hillis–Steele doubling scan (``log2(max segment length)`` vector passes)
instead of adding per-segment offsets to a global ``maximum.accumulate``
— the offset trick loses float precision at corpus scale and the merge
rules compare times at microsecond tolerance.
"""

from __future__ import annotations

import numpy as np

from ..darshan.tolerance import TIME_TOLERANCE_S
from . import vectorized

__all__ = [
    "neighbor_pass",
    "overlap_groups",
    "coalesce_groups",
    "segment",
    "shift_step",
    "acf_peak_scan",
    "dft_comb_scores",
    "bin_activity",
    "neighbor_pass_segmented",
    "overlap_groups_segmented",
    "segment_segmented",
    "bin_events_segmented",
    "segment_ids",
    "group_offsets",
]

# Segment-agnostic kernels shared with the vectorized backend (see
# module docstring): aliasing keeps the per-trace twins bitwise equal.
coalesce_groups = vectorized.coalesce_groups
shift_step = vectorized.shift_step
acf_peak_scan = vectorized.acf_peak_scan
dft_comb_scores = vectorized.dft_comb_scores
bin_activity = vectorized.bin_activity


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Per-element segment id for an offsets array (``len == offsets[-1]``)."""
    lengths = np.diff(offsets)
    return np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)


def _positions_in_segment(offsets: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """0-based rank of each element within its segment."""
    n = int(offsets[-1])
    return np.arange(n, dtype=np.int64) - offsets[ids]


def _segmented_cummax(values: np.ndarray, pos: np.ndarray) -> np.ndarray:
    """Running maximum that restarts at every segment boundary.

    Masked Hillis–Steele doubling: after pass ``d`` element ``i`` holds
    the max over the last ``2d`` elements of its own segment, so
    ``ceil(log2(longest segment))`` passes reach the segment start.
    Exact — only ``maximum`` is applied, never arithmetic on the values.
    """
    out = values.astype(np.float64, copy=True)
    n = len(out)
    if n == 0:
        return out
    longest = int(pos.max()) + 1
    d = 1
    while d < longest:
        can = pos[d:] >= d
        np.maximum(
            out[d:], np.where(can, out[:-d], -np.inf), out=out[d:]
        )
        d <<= 1
    return out


def group_offsets(groups: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Offsets of the coalesced output given global group ids.

    Group ids are contiguous and every segment starts a new group, so a
    segment's output count is ``last_group - first_group + 1``.
    """
    o0 = offsets[:-1]
    o1 = offsets[1:]
    nonempty = o1 > o0
    first = np.where(nonempty, o0, 0)
    last = np.where(nonempty, o1 - 1, 0)
    counts = np.where(nonempty, groups[last] - groups[first] + 1, 0)
    out = np.empty(len(offsets), dtype=np.int64)
    out[0] = 0
    np.cumsum(counts, out=out[1:])
    return out


# ----------------------------------------------------------------------
# segmented kernels


def neighbor_pass_segmented(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    offsets: np.ndarray,
    abs_gaps: np.ndarray,
    op_fraction: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
    """One chain-merge neighbor pass over every segment at once.

    ``abs_gaps`` carries one absolute gap threshold per segment (the
    per-trace ``runtime_fraction * run_time``).  Returns the merged
    columns, the new offsets, and whether anything merged anywhere.
    """
    n = len(starts)
    if n == 0:
        return starts, ends, volumes, offsets, False
    ids = segment_ids(offsets)
    gap = starts[1:] - ends[:-1]
    durations = ends - starts
    mergeable = (
        (gap <= abs_gaps[ids[1:]])
        | (gap <= op_fraction * durations[:-1])
        | (gap <= op_fraction * durations[1:])
    )
    mergeable &= ids[1:] == ids[:-1]
    if not mergeable.any():
        return starts, ends, volumes, offsets, False
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = ~mergeable
    groups = np.cumsum(new_group, dtype=np.int64) - 1
    out_s, out_e, out_v = vectorized.coalesce_groups(
        starts, ends, volumes, groups
    )
    return out_s, out_e, out_v, group_offsets(groups, offsets), True


def overlap_groups_segmented(
    starts: np.ndarray, ends: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Transitive-overlap group ids, never crossing a segment boundary.

    Ids are global and contiguous; feed them to ``coalesce_groups`` and
    :func:`group_offsets` to coalesce a whole batch in one dispatch.
    """
    n = len(starts)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    ids = segment_ids(offsets)
    pos = _positions_in_segment(offsets, ids)
    running_end = _segmented_cummax(ends, pos)
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = starts[1:] > running_end[:-1] + TIME_TOLERANCE_S
    new_group[pos == 0] = True
    return np.cumsum(new_group, dtype=np.int64) - 1


def segment_segmented(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    offsets: np.ndarray,
    run_times: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cut every trace's merged stream into segments in one dispatch.

    Output rows align 1:1 with input operations (``offsets`` unchanged);
    the final operation of each trace extends to
    ``max(run_time, its end)`` exactly like the per-trace kernel.
    """
    n = len(starts)
    if n == 0:
        z = np.empty(0, dtype=np.float64)
        return z, z.copy(), z.copy(), z.copy()
    next_start = np.empty(n, dtype=np.float64)
    next_start[:-1] = starts[1:]
    next_start[-1] = 0.0  # overwritten below: the last row ends a segment
    o0, o1 = offsets[:-1], offsets[1:]
    nonempty = o1 > o0
    last = o1[nonempty] - 1
    next_start[last] = np.maximum(run_times[nonempty], ends[last])
    durations = next_start - starts
    busy = np.minimum(ends - starts, durations)
    return starts.copy(), durations, volumes.copy(), busy


def bin_events_segmented(
    times: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    run_times: np.ndarray,
    bin_width: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Bin many traces' (time, count) event streams in one dispatch.

    The cross-trace twin of :func:`repro.signalproc.activity.bin_events`:
    trace ``k`` owns ``ceil(run_times[k] / bin_width)`` bins (min 1) in
    the flat output.  Returns ``(values, bin_offsets)``.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    run_times = np.asarray(run_times, dtype=np.float64)
    if np.any(run_times <= 0):
        raise ValueError("run_time must be positive")
    n_bins = np.maximum(
        np.ceil(run_times / bin_width).astype(np.int64), 1
    )
    bin_offsets = np.empty(len(n_bins) + 1, dtype=np.int64)
    bin_offsets[0] = 0
    np.cumsum(n_bins, out=bin_offsets[1:])
    total_bins = int(bin_offsets[-1])
    n_events = len(times)
    if not n_events:
        return np.zeros(total_bins, dtype=np.float64), bin_offsets
    # minimum/maximum instead of np.clip: same integers, skips the slow
    # array-bound clip path on multi-million-event streams
    local = (np.asarray(times, dtype=np.float64) / bin_width).astype(np.int64)
    np.maximum(local, 0, out=local)
    n_seg = len(offsets) - 1
    if n_seg <= 256:
        # per-segment slice ops: the clip bound and bin base are scalar
        # within a segment, so small batches skip materializing a
        # per-event segment id (a repeat plus two gathers over the
        # whole event stream)
        for k in range(n_seg):
            sl = local[offsets[k] : offsets[k + 1]]
            np.minimum(sl, int(n_bins[k]) - 1, out=sl)
            sl += int(bin_offsets[k])
    else:
        ids = segment_ids(offsets)
        np.minimum(local, n_bins[ids] - 1, out=local)
        local += bin_offsets[ids]
    # bincount accumulates in event order, exactly like the per-trace
    # bin_events — each trace's bins stay bitwise identical to it.
    values = np.bincount(
        local,
        weights=np.asarray(counts, dtype=np.float64),
        minlength=total_bins,
    )
    return values, bin_offsets


# ----------------------------------------------------------------------
# per-trace twins (the KernelBackend surface)

def _single_offsets(n: int) -> np.ndarray:
    return np.array([0, n], dtype=np.int64)


def neighbor_pass(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    abs_gap: float,
    op_fraction: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """Single-segment wrapper of :func:`neighbor_pass_segmented`."""
    out_s, out_e, out_v, _, changed = neighbor_pass_segmented(
        starts,
        ends,
        volumes,
        _single_offsets(len(starts)),
        np.array([abs_gap], dtype=np.float64),
        op_fraction,
    )
    return out_s, out_e, out_v, changed


def overlap_groups(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Single-segment wrapper of :func:`overlap_groups_segmented`."""
    return overlap_groups_segmented(
        starts, ends, _single_offsets(len(starts))
    )


def segment(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    run_time: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Single-segment wrapper of :func:`segment_segmented`."""
    return segment_segmented(
        starts,
        ends,
        volumes,
        _single_offsets(len(starts)),
        np.array([run_time], dtype=np.float64),
    )
