"""Pure-Python reference kernels — the differential-testing oracle.

Every function here is the *specification* of one hot per-trace kernel:
a deliberately plain, per-element Python implementation whose behaviour
is easy to audit against the paper (§III-B merging rules, §III-B3a
periodicity).  The vectorized twins in :mod:`repro.kernels.vectorized`
must agree with these to numerical tolerance on every input the
adversarial generators in :mod:`repro.testing.differential` produce —
that equivalence, not review alone, is what lets the NumPy rewrites ship
as the default backend.

All kernels are array-in/array-out on plain ``float64`` arrays so both
backends can be driven by the same oracle without touching the dataclass
wrappers of the pipeline layers.
"""

from __future__ import annotations

import numpy as np

from ..darshan.tolerance import TIME_TOLERANCE_S

__all__ = [
    "neighbor_pass",
    "overlap_groups",
    "coalesce_groups",
    "segment",
    "shift_step",
    "acf_peak_scan",
    "dft_comb_scores",
    "bin_activity",
]


def neighbor_pass(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    abs_gap: float,
    op_fraction: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """One greedy left-to-right neighbor-merge scan (§III-B2b).

    A gap is negligible when it is at most ``abs_gap`` (0.1% of the
    runtime) or at most ``op_fraction`` (1%) of the duration of *either*
    nearby operation — the growing current operation or the incoming
    one.  The paper says "the nearby merged operation" without picking a
    side; testing only the left operation would let a long checkpoint
    trailing a short op never absorb it.
    """
    out_s: list[float] = [float(starts[0])]
    out_e: list[float] = [float(ends[0])]
    out_v: list[float] = [float(volumes[0])]
    changed = False
    for i in range(1, len(starts)):
        gap = float(starts[i]) - out_e[-1]
        cur_duration = out_e[-1] - out_s[-1]
        next_duration = float(ends[i]) - float(starts[i])
        if (
            gap <= abs_gap
            or gap <= op_fraction * cur_duration
            or gap <= op_fraction * next_duration
        ):
            out_e[-1] = max(out_e[-1], float(ends[i]))
            out_v[-1] += float(volumes[i])
            changed = True
        else:
            out_s.append(float(starts[i]))
            out_e.append(float(ends[i]))
            out_v.append(float(volumes[i]))
    return (
        np.asarray(out_s),
        np.asarray(out_e),
        np.asarray(out_v),
        changed,
    )


def overlap_groups(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Transitive-overlap group ids for sorted intervals (§III-B2a).

    Touching is judged at clock resolution
    (:data:`~repro.darshan.tolerance.TIME_TOLERANCE_S`).
    """
    n = len(starts)
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    group = 0
    running_end = float(ends[0])
    out[0] = 0
    for i in range(1, n):
        if float(starts[i]) > running_end + TIME_TOLERANCE_S:
            group += 1
        running_end = max(running_end, float(ends[i]))
        out[i] = group
    return out


def coalesce_groups(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    groups: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse each overlap group into min(start)/max(end)/sum(volume)."""
    if len(starts) == 0:
        z = np.empty(0, dtype=np.float64)
        return z, z.copy(), z.copy()
    n_groups = int(groups[-1]) + 1
    out_s = [np.inf] * n_groups
    out_e = [-np.inf] * n_groups
    out_v = [0.0] * n_groups
    for i in range(len(starts)):
        g = int(groups[i])
        out_s[g] = min(out_s[g], float(starts[i]))
        out_e[g] = max(out_e[g], float(ends[i]))
        out_v[g] += float(volumes[i])
    return np.asarray(out_s), np.asarray(out_e), np.asarray(out_v)


def segment(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    run_time: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cut a merged stream into segments (§III-B3a).

    Returns ``(starts, durations, volumes, busy)``; the final segment is
    closed by the end of the execution, never before the last operation
    finished.
    """
    n = len(starts)
    if n == 0:
        z = np.empty(0, dtype=np.float64)
        return z, z.copy(), z.copy(), z.copy()
    durations = np.empty(n, dtype=np.float64)
    busy = np.empty(n, dtype=np.float64)
    for i in range(n):
        if i + 1 < n:
            seg_end = float(starts[i + 1])
        else:
            seg_end = max(run_time, float(ends[-1]))
        durations[i] = seg_end - float(starts[i])
        busy[i] = min(float(ends[i]) - float(starts[i]), durations[i])
    return starts.copy(), durations, volumes.copy(), busy


def shift_step(
    seeds: np.ndarray, X: np.ndarray, bandwidth: float, kernel: str
) -> np.ndarray:
    """One Mean Shift update of every seed toward its local mean.

    Flat kernel: the mean of the points inside the bandwidth ball;
    Gaussian: the exp-weighted mean.  A seed with an empty window stays
    put.
    """
    n_seeds, dim = seeds.shape
    out = np.empty_like(seeds)
    for i in range(n_seeds):
        total = 0.0
        acc = [0.0] * dim
        for j in range(len(X)):
            dist = 0.0
            for k in range(dim):
                diff = float(seeds[i, k]) - float(X[j, k])
                dist += diff * diff
            dist = dist**0.5
            if kernel == "flat":
                w = 1.0 if dist <= bandwidth else 0.0
            elif kernel == "gaussian":
                w = float(np.exp(-0.5 * (dist / bandwidth) ** 2))
            else:
                raise ValueError(f"unknown kernel: {kernel!r}")
            if w:
                total += w
                for k in range(dim):
                    acc[k] += w * float(X[j, k])
        if total > 0:
            for k in range(dim):
                out[i, k] = acc[k] / total
        else:
            out[i] = seeds[i]
    return out


def acf_peak_scan(
    acf: np.ndarray, max_lag: int, min_strength: float
) -> int:
    """First qualifying ACF peak in ``(0, max_lag)``; ``-1`` if none.

    A lag qualifies when it is a *strict* local maximum (rises above the
    left neighbour and falls to the right) with value >= min_strength.
    A plateau test (``>=`` on the left) would latch onto the monotone
    decay shoulder at lag 1 of any positively-autocorrelated signal.
    """
    n = len(acf)
    for lag in range(1, max_lag):
        left = float(acf[lag - 1])
        right = float(acf[lag + 1]) if lag + 1 < n else -np.inf
        if acf[lag] > left and acf[lag] > right and acf[lag] >= min_strength:
            return lag
    return -1


def dft_comb_scores(
    power: np.ndarray, candidates: np.ndarray, max_slots: int = 12
) -> tuple[np.ndarray, np.ndarray]:
    """Comb-minus-anticomb score per candidate fundamental bin position.

    For each (possibly fractional) candidate ``kf``, sum the spectral
    power in a ±1-bin window around its harmonics ``j*kf`` (the comb)
    minus the windows halfway between (the anti-comb), over at most
    ``max_slots`` low-order harmonics.  Returns ``(net/slots, net)``
    arrays; candidates with no harmonic inside the spectrum score 0.
    """
    n = len(power)

    def slot_power(position: float) -> float:
        j = int(round(position))
        lo, hi = max(j - 1, 0), min(j + 2, n)
        return float(power[lo:hi].max()) if hi > lo else 0.0

    per_slot = np.zeros(len(candidates), dtype=np.float64)
    net_arr = np.zeros(len(candidates), dtype=np.float64)
    for c, kf in enumerate(candidates):
        comb = 0.0
        anti = 0.0
        slots = 0
        j = 1
        while j * kf < n and slots < max_slots:
            comb += slot_power(j * kf)
            anti += slot_power((j + 0.5) * kf)
            slots += 1
            j += 1
        if slots == 0:
            continue
        net = comb - anti
        per_slot[c] = net / slots
        net_arr[c] = net
    return per_slot, net_arr


def bin_activity(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    run_time: float,
    n_bins: int,
) -> np.ndarray:
    """Spread operation volumes uniformly over evenly-spaced bins.

    Inputs must already be clipped to ``[0, run_time]``.  Instantaneous
    operations drop their whole volume into the bin containing their
    start; boundary bins receive pro-rata shares under the uniform-rate
    assumption.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    width = run_time / n_bins
    values = np.zeros(n_bins, dtype=np.float64)
    for s, e, v in zip(starts, ends, volumes):
        if v <= 0:
            continue
        if e <= s:  # instantaneous burst
            idx = min(int(s / width), n_bins - 1)
            values[idx] += v
            continue
        b0 = int(s / width)
        b1 = min(int(np.ceil(e / width)), n_bins)
        window = e - s
        rate = v / window
        for b in range(b0, b1):
            lo = max(s, b * width)
            hi = min(e, (b + 1) * width)
            if hi > lo:
                values[min(b, n_bins - 1)] += rate * (hi - lo)
    return values
