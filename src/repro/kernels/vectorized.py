"""Vectorized NumPy kernels — the default backend.

Each function is the performance twin of the same-named reference in
:mod:`repro.kernels.reference`; the differential oracle
(:mod:`repro.testing.differential`) holds the pair equivalent on
thousands of seeded adversarial cases.

The neighbor-merge pass deserves a note: the greedy reference grows the
current operation as it scans, so a merge can enable the next merge
within the same pass.  The vectorized pass instead chain-merges every
run of adjacent operations whose *pre-pass* gaps and durations satisfy
the rule, then the caller iterates to a fixpoint.  The two fixpoints
coincide because merging is monotone — fusing two operations only ever
shrinks the gap to the next operation and grows the durations the rule
tests against, so an enabled merge can never be disabled by another
merge (Newman's lemma gives confluence).  The oracle checks exactly
this equivalence.
"""

from __future__ import annotations

import numpy as np

from ..darshan.tolerance import TIME_TOLERANCE_S

__all__ = [
    "neighbor_pass",
    "overlap_groups",
    "coalesce_groups",
    "segment",
    "shift_step",
    "acf_peak_scan",
    "dft_comb_scores",
    "bin_activity",
]


def neighbor_pass(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    abs_gap: float,
    op_fraction: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """One chain-merge pass over pre-pass gaps and durations (§III-B2b).

    A gap qualifies when it is at most ``abs_gap`` or at most
    ``op_fraction`` of the duration of *either* adjacent operation.
    """
    gap = starts[1:] - ends[:-1]
    durations = ends - starts
    mergeable = (
        (gap <= abs_gap)
        | (gap <= op_fraction * durations[:-1])
        | (gap <= op_fraction * durations[1:])
    )
    if not mergeable.any():
        return starts, ends, volumes, False
    new_group = np.empty(len(starts), dtype=bool)
    new_group[0] = True
    new_group[1:] = ~mergeable
    groups = np.cumsum(new_group, dtype=np.int64) - 1
    out_s, out_e, out_v = coalesce_groups(starts, ends, volumes, groups)
    return out_s, out_e, out_v, True


def overlap_groups(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Transitive-overlap group ids for sorted intervals (§III-B2a).

    One ``maximum.accumulate`` + one ``cumsum``: a new group starts when
    an interval begins strictly after everything before it ended, judged
    at clock resolution.
    """
    n = len(starts)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    running_end = np.maximum.accumulate(ends)
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = starts[1:] > running_end[:-1] + TIME_TOLERANCE_S
    return np.cumsum(new_group, dtype=np.int64) - 1


def coalesce_groups(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    groups: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse each overlap group into min(start)/max(end)/sum(volume)."""
    if len(starts) == 0:
        z = np.empty(0, dtype=np.float64)
        return z, z.copy(), z.copy()
    n_groups = int(groups[-1]) + 1
    out_s = np.full(n_groups, np.inf)
    out_e = np.full(n_groups, -np.inf)
    np.minimum.at(out_s, groups, starts)
    np.maximum.at(out_e, groups, ends)
    out_v = np.bincount(groups, weights=volumes, minlength=n_groups)
    return out_s, out_e, out_v


def segment(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    run_time: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cut a merged stream into segments (§III-B3a), vectorized."""
    n = len(starts)
    if n == 0:
        z = np.empty(0, dtype=np.float64)
        return z, z.copy(), z.copy(), z.copy()
    next_start = np.empty(n, dtype=np.float64)
    next_start[:-1] = starts[1:]
    next_start[-1] = max(run_time, float(ends[-1]))
    durations = next_start - starts
    busy = np.minimum(ends - starts, durations)
    return starts.copy(), durations, volumes.copy(), busy


def shift_step(
    seeds: np.ndarray, X: np.ndarray, bandwidth: float, kernel: str
) -> np.ndarray:
    """One Mean Shift update of every seed, all seeds at once."""
    from scipy.spatial.distance import cdist

    d = cdist(seeds, X)
    if kernel == "flat":
        w = (d <= bandwidth).astype(np.float64)
    elif kernel == "gaussian":
        w = np.exp(-0.5 * (d / bandwidth) ** 2)
    else:
        raise ValueError(f"unknown kernel: {kernel!r}")
    totals = w.sum(axis=1, keepdims=True)
    # A seed with an empty window stays put (flat kernel, isolated point).
    safe = np.where(totals > 0, totals, 1.0)
    new = (w @ X) / safe
    return np.where(totals > 0, new, seeds)


def acf_peak_scan(
    acf: np.ndarray, max_lag: int, min_strength: float
) -> int:
    """First strict local ACF maximum in ``(0, max_lag)``; ``-1`` if none."""
    n = len(acf)
    if max_lag <= 1:
        return -1
    lags = np.arange(1, max_lag)
    center = acf[lags]
    left = acf[lags - 1]
    right = np.where(
        lags + 1 < n, acf[np.minimum(lags + 1, n - 1)], -np.inf
    )
    ok = (center > left) & (center > right) & (center >= min_strength)
    hits = np.flatnonzero(ok)
    return int(lags[hits[0]]) if len(hits) else -1


def dft_comb_scores(
    power: np.ndarray, candidates: np.ndarray, max_slots: int = 12
) -> tuple[np.ndarray, np.ndarray]:
    """Comb-minus-anticomb scores via three clipped gathers per slot set.

    The ±1-bin window max around each harmonic is the elementwise max of
    ``power`` at the clipped positions ``idx-1``, ``idx``, ``idx+1``, so
    the kernel costs O(candidates × slots) regardless of the spectrum
    length — precomputing a full window-max array would make the scan
    scale with ``len(power)`` and lose to the reference on long spectra.
    """
    n = len(power)
    n_cand = len(candidates)
    per_slot = np.zeros(n_cand, dtype=np.float64)
    net_arr = np.zeros(n_cand, dtype=np.float64)
    if n == 0 or n_cand == 0:
        return per_slot, net_arr

    def window_max(pos: np.ndarray) -> np.ndarray:
        idx = np.rint(pos).astype(np.int64)
        lo = np.clip(idx - 1, 0, n - 1)
        mid = np.minimum(idx, n - 1)
        hi = np.minimum(idx + 1, n - 1)
        vals = np.maximum(np.maximum(power[lo], power[mid]), power[hi])
        # idx > n means even the window's left edge is past the
        # spectrum: an empty slot scores zero.
        return np.where(idx <= n, vals, 0.0)

    j = np.arange(1, max_slots + 1, dtype=np.float64)
    for c in range(n_cand):
        kf = float(candidates[c])
        if kf <= 0:
            continue
        comb_pos = j * kf
        live = comb_pos < n
        slots = int(np.count_nonzero(live))
        if slots == 0:
            continue
        comb = float(window_max(comb_pos[live]).sum())
        anti = float(window_max((j[live] + 0.5) * kf).sum())
        net = comb - anti
        per_slot[c] = net / slots
        net_arr[c] = net
    return per_slot, net_arr


def bin_activity(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    run_time: float,
    n_bins: int,
) -> np.ndarray:
    """Spread operation volumes over bins with scatter-adds.

    Boundary bins receive their pro-rata partials via ``np.add.at``; the
    interior full bins of every operation are filled through a
    difference array + ``cumsum``, so the kernel is O(n_ops + n_bins)
    instead of O(n_ops × bins-per-op) Python iterations.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    width = run_time / n_bins
    values = np.zeros(n_bins, dtype=np.float64)
    keep = volumes > 0
    if not keep.any():
        return values
    s, e, v = starts[keep], ends[keep], volumes[keep]

    burst = e <= s
    if burst.any():
        idx = np.minimum((s[burst] / width).astype(np.int64), n_bins - 1)
        np.add.at(values, idx, v[burst])

    spread = ~burst
    if not spread.any():
        return values
    s, e, v = s[spread], e[spread], v[spread]
    window = e - s  # > 0 by the burst split above
    rate = v / window
    b0 = (s / width).astype(np.int64)
    b1 = np.minimum(np.ceil(e / width).astype(np.int64), n_bins)
    last = b1 - 1

    single = last <= b0
    if single.any():
        lo = np.maximum(s[single], b0[single] * width)
        hi = np.minimum(e[single], (b0[single] + 1) * width)
        np.add.at(
            values,
            np.minimum(b0[single], n_bins - 1),
            rate[single] * np.maximum(hi - lo, 0.0),
        )

    multi = ~single
    if multi.any():
        b0m, lastm = b0[multi], last[multi]
        sm, em, ratem = s[multi], e[multi], rate[multi]
        # First partial bin: [max(s, b0*w), (b0+1)*w).
        first_lo = np.maximum(sm, b0m * width)
        np.add.at(
            values,
            b0m,
            ratem * np.maximum((b0m + 1) * width - first_lo, 0.0),
        )
        # Last partial bin: [last*w, min(e, (last+1)*w)).
        last_hi = np.minimum(em, (lastm + 1) * width)
        np.add.at(
            values,
            lastm,
            ratem * np.maximum(last_hi - lastm * width, 0.0),
        )
        # Interior full bins via difference array.
        full = ratem * width
        diff = np.zeros(n_bins + 1, dtype=np.float64)
        np.add.at(diff, b0m + 1, full)
        np.add.at(diff, lastm, -full)
        values += np.cumsum(diff[:-1])
        # The running sum cancels back to ~0 in bins no operation covers;
        # clamp the round-off residue so the signal stays non-negative.
        np.maximum(values, 0.0, out=values)
    return values
