"""Kernel backend registry.

A :class:`KernelBackend` bundles one implementation of every hot
per-trace kernel; ``get_backend`` resolves the
``MosaicConfig.kernel_backend`` switch (``"vectorized"`` is the default,
``"reference"`` the pure-Python oracle, ``"batched"`` the segmented
cross-trace twins of :mod:`repro.kernels.batched`).  Call sites thread an optional
backend name so the whole pipeline can be flipped for differential
testing, ablation, or debugging a suspected vectorization bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import batched, reference, vectorized

__all__ = [
    "KernelBackend",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
]

#: ``(starts, ends, volumes, abs_gap, op_fraction) -> (s, e, v, changed)``
NeighborPass = Callable[
    [np.ndarray, np.ndarray, np.ndarray, float, float],
    tuple[np.ndarray, np.ndarray, np.ndarray, bool],
]


@dataclass(slots=True, frozen=True)
class KernelBackend:
    """One implementation of every hot per-trace kernel."""

    name: str
    neighbor_pass: NeighborPass
    overlap_groups: Callable[[np.ndarray, np.ndarray], np.ndarray]
    coalesce_groups: Callable[
        [np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        tuple[np.ndarray, np.ndarray, np.ndarray],
    ]
    segment: Callable[
        [np.ndarray, np.ndarray, np.ndarray, float],
        tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ]
    shift_step: Callable[[np.ndarray, np.ndarray, float, str], np.ndarray]
    acf_peak_scan: Callable[[np.ndarray, int, float], int]
    dft_comb_scores: Callable[
        [np.ndarray, np.ndarray, int], tuple[np.ndarray, np.ndarray]
    ]
    bin_activity: Callable[
        [np.ndarray, np.ndarray, np.ndarray, float, int], np.ndarray
    ]


def _from_module(name: str, module: object) -> KernelBackend:
    return KernelBackend(
        name=name,
        neighbor_pass=module.neighbor_pass,
        overlap_groups=module.overlap_groups,
        coalesce_groups=module.coalesce_groups,
        segment=module.segment,
        shift_step=module.shift_step,
        acf_peak_scan=module.acf_peak_scan,
        dft_comb_scores=module.dft_comb_scores,
        bin_activity=module.bin_activity,
    )


_BACKENDS: dict[str, KernelBackend] = {
    "reference": _from_module("reference", reference),
    "vectorized": _from_module("vectorized", vectorized),
    "batched": _from_module("batched", batched),
}

#: The default backend name used when a call site receives ``None``.
DEFAULT_BACKEND = "vectorized"


def available_backends() -> tuple[str, ...]:
    """Names accepted by ``get_backend`` / ``MosaicConfig.kernel_backend``."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend name (``None`` → the vectorized default)."""
    key = DEFAULT_BACKEND if name is None else name
    try:
        return _BACKENDS[key]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {key!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
