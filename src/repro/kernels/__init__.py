"""Hot per-trace analysis kernels, in matched reference/vectorized pairs.

The pipeline's categorization fidelity lives in a handful of inner
loops: the neighbor-merge pass, concurrent interval fusion, operation
segmentation, the flat-kernel Mean Shift step, the ACF/DFT peak scans,
and activity-signal binning.  This package ships each as a pure-Python
reference (:mod:`repro.kernels.reference`, the auditable specification)
plus a vectorized NumPy twin (:mod:`repro.kernels.vectorized`, the
default), selected at run time through
:func:`~repro.kernels.backend.get_backend` /
``MosaicConfig.kernel_backend``.
"""

from .backend import (
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    get_backend,
)

__all__ = [
    "DEFAULT_BACKEND",
    "KernelBackend",
    "available_backends",
    "get_backend",
]
