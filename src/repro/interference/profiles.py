"""I/O demand profiles: the bridge from MOSAIC categories to scheduling.

The paper's long-term goal (§V) is concurrency-aware job scheduling: use
each application's categories to predict *when* it will pressure the
parallel file system, and place jobs so those windows do not collide.
This module turns a :class:`~repro.core.result.CategorizationResult`
into an :class:`IOProfile` — an alternating sequence of compute and I/O
phases — and, for evaluation, extracts the *exact* profile from a trace
so the prediction quality of the category-derived profile can be
measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..core.categories import Category
from ..core.result import CategorizationResult
from ..darshan.trace import Trace
from ..merge.pipeline import preprocess_operations

__all__ = ["IOPhase", "IOProfile", "profile_from_result", "profile_from_trace"]

PhaseKind = Literal["read", "write"]


@dataclass(slots=True, frozen=True)
class IOPhase:
    """One I/O demand window of a job (times relative to job start)."""

    start: float
    end: float
    volume: float
    kind: PhaseKind

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("phase must have positive duration")
        if self.volume < 0:
            raise ValueError("volume must be non-negative")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Demand rate in bytes/second under no contention."""
        # duration > 0 is enforced by __post_init__
        return self.volume / self.duration  # mosaic: disable=MOS005


@dataclass(slots=True, frozen=True)
class IOProfile:
    """Expected I/O behaviour of one job: phases over its runtime."""

    name: str
    run_time: float
    phases: tuple[IOPhase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "phases", tuple(sorted(self.phases, key=lambda p: p.start))
        )

    @property
    def total_volume(self) -> float:
        return sum(p.volume for p in self.phases)

    def demand_at(self, t: float) -> float:
        """Instantaneous demand rate at relative time ``t``."""
        return sum(p.rate for p in self.phases if p.start <= t < p.end)

    def demand_series(self, n_bins: int = 256) -> np.ndarray:
        """Binned demand rate over the runtime (bytes/second per bin)."""
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        series = np.zeros(n_bins)
        width = self.run_time / n_bins
        for p in self.phases:
            b0 = int(np.clip(p.start / width, 0, n_bins - 1))
            b1 = int(np.clip(np.ceil(p.end / width), b0 + 1, n_bins))
            series[b0:b1] += p.rate
        return series


#: Fraction of the runtime a start/end burst is assumed to occupy when
#: only the category (not the trace) is known.
BURST_SPAN = 0.05


def profile_from_result(
    result: CategorizationResult, run_time: float | None = None
) -> IOProfile:
    """Predict a job's demand profile from its MOSAIC categories.

    This is what a scheduler would do for an *incoming* job whose
    application has been categorized before: it knows the labels, the
    chunk byte sums, and the detected periods — not the exact trace.
    """
    rt = run_time if run_time is not None else result.run_time
    phases: list[IOPhase] = []

    for direction in ("read", "write"):
        chunks = result.chunk_volumes.get(direction)
        if not chunks:
            continue
        total = float(sum(chunks))
        if total <= 0:
            continue
        kind: PhaseKind = direction  # type: ignore[assignment]

        groups = result.periodic_groups.get(direction, [])
        if groups:
            # periodic: one phase per expected occurrence of each group
            for g in groups:
                n_events = max(1, int(rt // g.period))
                busy = max(g.busy_fraction, 0.01) * g.period
                for k in range(n_events):
                    t0 = min(k * g.period + 0.02 * rt, rt - busy)
                    phases.append(
                        IOPhase(
                            start=max(t0, 0.0),
                            end=max(t0, 0.0) + busy,
                            volume=g.mean_volume,
                            kind=kind,
                        )
                    )
            continue

        steady = (
            Category.READ_STEADY if direction == "read" else Category.WRITE_STEADY
        )
        on_start = (
            Category.READ_ON_START if direction == "read" else Category.WRITE_ON_START
        )
        on_end = (
            Category.READ_ON_END if direction == "read" else Category.WRITE_ON_END
        )
        if steady in result.categories:
            phases.append(IOPhase(start=0.0, end=rt, volume=total, kind=kind))
        elif on_start in result.categories:
            phases.append(
                IOPhase(start=0.0, end=BURST_SPAN * rt, volume=total, kind=kind)
            )
        elif on_end in result.categories:
            phases.append(
                IOPhase(start=(1 - BURST_SPAN) * rt, end=rt, volume=total, kind=kind)
            )
        else:
            # other temporal labels: place the volume according to the
            # chunk profile (one phase per non-empty chunk)
            span = rt / max(len(chunks), 1)
            for i, vol in enumerate(chunks):
                if vol <= 0:
                    continue
                phases.append(
                    IOPhase(
                        start=i * span,
                        end=(i + 1) * span,
                        volume=float(vol),
                        kind=kind,
                    )
                )

    return IOProfile(name=result.exe, run_time=rt, phases=tuple(phases))


def profile_from_trace(trace: Trace) -> IOProfile:
    """Exact demand profile from a trace's merged operations.

    Evaluation ground truth: how the job actually loaded the system.
    """
    rt = trace.meta.run_time
    phases: list[IOPhase] = []
    for direction in ("read", "write"):
        merged = preprocess_operations(
            trace.operations(direction), rt  # type: ignore[arg-type]
        ).ops
        for s, e, v in merged:
            if v <= 0:
                continue
            e = max(e, s + 1e-3)
            phases.append(IOPhase(start=s, end=e, volume=v, kind=direction))  # type: ignore[arg-type]
    return IOProfile(name=trace.meta.exe, run_time=rt, phases=tuple(phases))
