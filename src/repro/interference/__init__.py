"""PFS contention simulation and category-aware scheduling — the
evaluation substrate for the paper's long-term goal (§V): using MOSAIC
categories to limit I/O interference between jobs."""

from .profiles import IOPhase, IOProfile, profile_from_result, profile_from_trace
from .schedulers import (
    Schedule,
    evaluate_schedule,
    schedule_category_aware,
    schedule_random,
    schedule_together,
)
from .simulator import SimJob, SimulationResult, isolated_time, simulate

__all__ = [
    "IOPhase",
    "IOProfile",
    "profile_from_result",
    "profile_from_trace",
    "Schedule",
    "evaluate_schedule",
    "schedule_category_aware",
    "schedule_random",
    "schedule_together",
    "SimJob",
    "SimulationResult",
    "isolated_time",
    "simulate",
]
