"""Launch-time scheduling policies evaluated under PFS contention.

Three policies, evaluated by :func:`evaluate_schedule`:

* ``schedule_together`` — the contention-blind baseline: everything
  launches at once (a burst of queued jobs released by the batch
  scheduler);
* ``schedule_random`` — naive staggering over a window, category-blind;
* ``schedule_category_aware`` — the paper's proposal: use each job's
  MOSAIC-*predicted* demand profile to pick start offsets that minimize
  predicted demand overlap (greedy packing of demand series).

The category-aware policy only sees what MOSAIC provides (categories,
chunk sums, periods); the evaluation simulates the *true* trace-derived
profiles, so prediction error counts against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .profiles import IOProfile
from .simulator import SimJob, SimulationResult, simulate

__all__ = [
    "Schedule",
    "schedule_together",
    "schedule_random",
    "schedule_category_aware",
    "evaluate_schedule",
]


@dataclass(slots=True, frozen=True)
class Schedule:
    """Start-time assignment for a set of jobs."""

    offsets: dict[str, float]
    policy: str

    def start_of(self, name: str) -> float:
        return self.offsets.get(name, 0.0)


def schedule_together(profiles: list[IOProfile]) -> Schedule:
    """Everything at t=0 — the interference worst case."""
    return Schedule(offsets={p.name: 0.0 for p in profiles}, policy="together")


def schedule_random(
    profiles: list[IOProfile], window: float, seed: int = 0
) -> Schedule:
    """Uniform random staggering over ``window`` seconds."""
    rng = np.random.default_rng(seed)
    return Schedule(
        offsets={p.name: float(rng.uniform(0.0, window)) for p in profiles},
        policy="random",
    )


def schedule_category_aware(
    predicted: list[IOProfile],
    window: float,
    *,
    n_candidates: int = 16,
    n_bins: int = 512,
) -> Schedule:
    """Greedy demand packing from MOSAIC-predicted profiles.

    Jobs are placed in order of decreasing predicted I/O volume; each
    takes the candidate offset minimizing the overlap between its
    predicted demand series and the demand already accumulated — the
    concrete form of "two jobs reading large volumes at the start should
    not overlap" (paper §V).
    """
    if n_bins <= 0 or n_candidates <= 0:
        raise ValueError("n_bins and n_candidates must be positive")
    horizon = window + max((p.run_time for p in predicted), default=0.0)
    width = horizon / n_bins
    accumulated = np.zeros(n_bins)
    candidates = np.linspace(0.0, window, n_candidates)
    offsets: dict[str, float] = {}

    for profile in sorted(predicted, key=lambda p: -p.total_volume):
        series = profile.demand_series(max(int(profile.run_time / width), 1))
        best_offset = 0.0
        best_cost = np.inf
        for off in candidates:
            b0 = int(off / width)
            b1 = min(b0 + len(series), n_bins)
            seg = accumulated[b0:b1]
            cost = float(np.dot(seg, series[: b1 - b0]))
            # tie-break toward earlier starts
            cost += 1e-9 * off
            if cost < best_cost:
                best_cost = cost
                best_offset = float(off)
        offsets[profile.name] = best_offset
        b0 = int(best_offset / width)
        b1 = min(b0 + len(series), n_bins)
        accumulated[b0:b1] += series[: b1 - b0]

    return Schedule(offsets=offsets, policy="category_aware")


def evaluate_schedule(
    schedule: Schedule,
    true_profiles: list[IOProfile],
    bandwidth: float,
) -> SimulationResult:
    """Simulate a schedule against the *true* job profiles."""
    jobs = [
        SimJob.from_profile(p, schedule.start_of(p.name)) for p in true_profiles
    ]
    return simulate(jobs, bandwidth)
