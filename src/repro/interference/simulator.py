"""Discrete-event simulation of parallel-file-system contention.

Evaluates what the paper's conclusion proposes: scheduling decisions
based on I/O categories.  Each job is an alternating sequence of compute
segments (fixed duration) and I/O segments (fixed byte volume); the PFS
grants bandwidth by progressive filling (max-min fair share, capped at
each job's uncontended solo rate).  Contention stretches I/O segments,
which delays everything after them — exactly the slowdown
interference-aware scheduling tries to avoid.

The model follows the classical online I/O-scheduling abstraction
(Gainaru et al., paper ref. [7]): a single shared bandwidth resource,
jobs alternating compute and I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .profiles import IOProfile

__all__ = ["SimJob", "SimulationResult", "simulate", "isolated_time"]

#: Numerical slack for event times.
EPS = 1e-9


@dataclass(slots=True)
class _Segment:
    """One phase of a job's lifetime."""

    compute: float  # seconds of compute before the I/O
    volume: float   # bytes of I/O after the compute (0 = trailing compute)
    solo_rate: float  # uncontended I/O rate (bytes/s)


@dataclass(slots=True)
class SimJob:
    """A job instance in the simulation."""

    name: str
    start_time: float
    segments: list[_Segment]

    @classmethod
    def from_profile(cls, profile: IOProfile, start_time: float) -> "SimJob":
        """Serialize a profile's (possibly overlapping) phases into an
        alternating compute/I-O segment list.

        Overlapping phases (e.g. concurrent read+write) are merged into
        one I/O segment with summed volume and rates — the PFS sees
        aggregate demand anyway.
        """
        segments: list[_Segment] = []
        cursor = 0.0
        merged: list[tuple[float, float, float, float]] = []
        for p in sorted(profile.phases, key=lambda p: p.start):
            if merged and p.start < merged[-1][1]:
                s, e, v, r = merged[-1]
                merged[-1] = (s, max(e, p.end), v + p.volume, r + p.rate)
            else:
                merged.append((p.start, p.end, p.volume, p.rate))
        for s, e, v, r in merged:
            compute = max(s - cursor, 0.0)
            segments.append(_Segment(compute=compute, volume=v, solo_rate=max(r, 1.0)))
            cursor = e
        tail = max(profile.run_time - cursor, 0.0)
        if tail > 0 or not segments:
            segments.append(_Segment(compute=tail, volume=0.0, solo_rate=1.0))
        return cls(name=profile.name, start_time=start_time, segments=segments)


@dataclass(slots=True, frozen=True)
class SimulationResult:
    """Outcome of one contention simulation."""

    #: job name → completion time (absolute).
    completion: dict[str, float]
    #: job name → stretch = contended duration / isolated duration.
    stretch: dict[str, float]
    #: seconds during which aggregate demand exceeded the PFS bandwidth.
    congested_time: float
    #: makespan of the whole schedule.
    makespan: float

    @property
    def mean_stretch(self) -> float:
        return float(np.mean(list(self.stretch.values()))) if self.stretch else 1.0

    @property
    def max_stretch(self) -> float:
        return float(max(self.stretch.values())) if self.stretch else 1.0


def isolated_time(profile: IOProfile) -> float:
    """Duration of a job running alone (its nominal runtime)."""
    return profile.run_time


def _fair_share(demands: list[float], capacity: float) -> list[float]:
    """Max-min fair (progressive filling) allocation of ``capacity``."""
    n = len(demands)
    if n == 0:
        return []
    alloc = [0.0] * n
    remaining = capacity
    active = sorted(range(n), key=lambda i: demands[i])
    unsatisfied = list(active)
    while unsatisfied and remaining > EPS:
        share = remaining / len(unsatisfied)
        progressed = False
        for i in list(unsatisfied):
            need = demands[i] - alloc[i]
            if need <= share + EPS:
                alloc[i] = demands[i]
                remaining -= need
                unsatisfied.remove(i)
                progressed = True
        if not progressed:
            for i in unsatisfied:
                alloc[i] += share
            remaining = 0.0
    return alloc


def simulate(
    jobs: list[SimJob],
    bandwidth: float,
    *,
    max_events: int = 1_000_000,
) -> SimulationResult:
    """Run the contention simulation.

    ``bandwidth`` is the PFS aggregate bandwidth in bytes/second.
    Returns completion times and per-job stretch relative to the job's
    isolated duration.
    """
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")

    # per-job state
    idx = [0] * len(jobs)                  # current segment index
    phase_left = [0.0] * len(jobs)         # remaining compute seconds
    bytes_left = [0.0] * len(jobs)         # remaining I/O bytes
    in_io = [False] * len(jobs)
    done = [False] * len(jobs)
    completion: dict[str, float] = {}
    isolated: dict[str, float] = {}

    for j, job in enumerate(jobs):
        if job.segments:
            phase_left[j] = job.segments[0].compute
            bytes_left[j] = job.segments[0].volume
        else:
            done[j] = True
        isolated[job.name] = sum(
            s.compute + (s.volume / s.solo_rate if s.volume else 0.0)
            for s in job.segments
        )

    t = 0.0
    congested = 0.0
    for _ in range(max_events):
        if all(done):
            break

        # set of running jobs and their current mode
        active_io: list[int] = []
        demands: list[float] = []
        next_event = np.inf
        for j, job in enumerate(jobs):
            if done[j]:
                continue
            if t + EPS < job.start_time:
                next_event = min(next_event, job.start_time - t)
                continue
            if in_io[j]:
                active_io.append(j)
                demands.append(job.segments[idx[j]].solo_rate)
            else:
                next_event = min(next_event, max(phase_left[j], EPS))

        rates = _fair_share(demands, bandwidth)
        total_demand = sum(demands)
        for j, rate in zip(active_io, rates):
            if rate > EPS:
                next_event = min(next_event, bytes_left[j] / rate)
            # a starved job (rate 0) waits for the next state change

        if not np.isfinite(next_event):
            break  # only starved I/O left; cannot progress (degenerate)
        dt = max(next_event, EPS)

        # advance time
        if total_demand > bandwidth + EPS:
            congested += dt
        for j, job in enumerate(jobs):
            if done[j] or t + EPS < job.start_time:
                continue
            if in_io[j]:
                pass  # handled below with rates
            else:
                phase_left[j] -= dt
        for j, rate in zip(active_io, rates):
            bytes_left[j] -= rate * dt
        t += dt

        # state transitions
        for j, job in enumerate(jobs):
            if done[j] or t + EPS < job.start_time:
                continue
            seg = job.segments[idx[j]]
            if not in_io[j] and phase_left[j] <= EPS:
                if bytes_left[j] > EPS:
                    in_io[j] = True
                else:
                    _advance(job, j, idx, phase_left, bytes_left, in_io, done, completion, t)
            elif in_io[j] and bytes_left[j] <= EPS:
                in_io[j] = False
                _advance(job, j, idx, phase_left, bytes_left, in_io, done, completion, t)

    # any jobs still unfinished at event cap: record current time
    for j, job in enumerate(jobs):
        if not done[j]:
            completion[job.name] = t

    stretch = {
        job.name: max(
            (completion[job.name] - job.start_time) / max(isolated[job.name], EPS),
            1.0,
        )
        for job in jobs
    }
    makespan = max(completion.values(), default=0.0)
    return SimulationResult(
        completion=completion,
        stretch=stretch,
        congested_time=congested,
        makespan=makespan,
    )


def _advance(job, j, idx, phase_left, bytes_left, in_io, done, completion, t):
    """Move job ``j`` to its next segment (or finish it)."""
    idx[j] += 1
    if idx[j] >= len(job.segments):
        done[j] = True
        completion[job.name] = t
        return
    seg = job.segments[idx[j]]
    phase_left[j] = seg.compute
    bytes_left[j] = seg.volume
    in_io[j] = False
