"""Pass ① over a compiled store: the eviction funnel without decoding.

The streaming scan (:func:`repro.core.preprocess.scan_corpus`) decodes
and validates every trace on every run.  A compiled store did that work
once at ``compile_corpus`` time and recorded the outcome per trace — the
violation bitmask, the repair bit, the ``io_weight`` — so the
store-backed scan replays the exact same funnel (same counters, same
keep-heaviest winners, same tie-breaks, same ``selected`` order) from
the index alone.  ``n_unreadable`` payloads were counted into the header
at compile time and re-enter ``n_input`` here, keeping the Fig. 3 funnel
identical to the streaming one.

Repair is a *compile-time* property of a store: ``scan_store`` refuses a
``repair`` flag that disagrees with how the store was compiled rather
than silently producing a differently-filtered corpus.

:class:`StoreSource` additionally adapts a store to the ordinary
``TraceSource`` protocol, so every per-trace code path (the streaming
pipeline, the differential harness, ad-hoc tooling) can read a compiled
store without knowing about slices.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Iterator

import numpy as np

from ..core.preprocess import SelectedRef, SelectionPlan
from ..darshan.source import TraceRef, TraceSource
from ..darshan.trace import Trace
from .store import CorpusStore

__all__ = ["scan_store", "StoreSource"]


def scan_store(store: CorpusStore, *, repair: bool = False) -> SelectionPlan:
    """Replay pass ① from the trace index; no trace is decoded.

    Returns a plan whose ``SelectedRef.ref.key`` is the winning trace's
    *row* in ``store`` — the store-backed pipeline feeds rows straight
    to the slice planner, and :class:`StoreSource` resolves the same
    refs for the per-trace fallback path.
    """
    if repair != store.compiled_with_repair:
        state = "with" if store.compiled_with_repair else "without"
        want = "with" if repair else "without"
        raise ValueError(
            f"store {store.path!r} was compiled {state} repair but the "
            f"pipeline asked for {want}; recompile the store (repair is "
            f"baked in at compile time)"
        )

    from ..darshan.validate import Violation
    from .format import violation_bit

    corruption: Counter = Counter()
    n_repaired = 0
    if store.n_unreadable:
        corruption[Violation.UNREADABLE] += store.n_unreadable

    idx = store.index
    masks = idx["violations"]
    n_repaired = int(idx["repaired"].astype(np.int64).sum())
    valid = masks == 0
    n_corrupted = store.n_unreadable + int(np.count_nonzero(~valid))
    # valid rows carry mask 0, so counting bits over all rows counts
    # exactly the invalid ones — same histogram as the per-row loop
    for violation in Violation:
        hits = int(np.count_nonzero(masks & violation_bit(violation)))
        if hits:
            corruption[violation] += hits

    v_rows = np.flatnonzero(valid)
    weights = idx["io_weight"][v_rows]
    job_ids = idx["job_id"][v_rows]
    if np.isnan(weights).any():
        # NaN weights make every comparison False in the reference loop;
        # no sort order reproduces that, so replay it literally
        best, runs_per_app = _keep_heaviest_python(store, v_rows)
    else:
        best, runs_per_app = _keep_heaviest(
            store, v_rows, weights, job_ids, idx
        )

    selected = sorted(best.values(), key=lambda e: e.job_id)
    return SelectionPlan(
        selected=selected,
        runs_per_app=runs_per_app,
        n_input=store.n_traces + store.n_unreadable,
        n_corrupted=n_corrupted,
        corruption_histogram=corruption,
        n_repaired=n_repaired,
        n_unreadable=store.n_unreadable,
    )


def _keep_heaviest(
    store: CorpusStore,
    v_rows: np.ndarray,
    weights: np.ndarray,
    job_ids: np.ndarray,
    idx: np.ndarray,
) -> tuple[dict[tuple[int, str], SelectedRef], dict[tuple[int, str], int]]:
    """Vectorized keep-heaviest over the valid rows.

    Applications group by ``(uid, exe_off)`` — the string heap is
    deduplicated at compile time, so equal executables share one heap
    offset and no string is materialized until a group resolves.  Sort
    order reproduces the scalar funnel exactly: heaviest weight wins,
    ties fall to the lowest job id, then to the first row seen; the
    returned dict iterates in first-seen order like the scalar one, so
    the caller's job-id sort breaks *its* ties identically.
    """
    best: dict[tuple[int, str], SelectedRef] = {}
    runs_per_app: dict[tuple[int, str], int] = {}
    if not len(v_rows):
        return best, runs_per_app
    uid = idx["uid"][v_rows]
    exe_off = idx["exe_off"][v_rows]
    order = np.lexsort((job_ids, -weights, exe_off, uid))
    su, se = uid[order], exe_off[order]
    starts = np.empty(len(order), dtype=bool)
    starts[0] = True
    starts[1:] = (su[1:] != su[:-1]) | (se[1:] != se[:-1])
    group_start = np.flatnonzero(starts)
    counts = np.diff(group_start, append=len(order))
    winners = v_rows[order[group_start]]
    # dict insertion order must be first-seen row order, not sort order
    first_seen = np.minimum.reduceat(v_rows[order], group_start)
    for g in np.argsort(first_seen, kind="stable"):
        row = int(winners[g])
        key = store.app_key(row)
        runs_per_app[key] = int(counts[g])
        best[key] = SelectedRef(
            ref=TraceRef(key=row),
            job_id=int(idx[row]["job_id"]),
            app_key=key,
            io_weight=float(idx[row]["io_weight"]),
            repaired=bool(idx[row]["repaired"]),
        )
    return best, runs_per_app


def _keep_heaviest_python(
    store: CorpusStore, v_rows: np.ndarray
) -> tuple[dict[tuple[int, str], SelectedRef], dict[tuple[int, str], int]]:
    """Literal replay of the streaming funnel's comparison chain."""
    idx = store.index
    best: dict[tuple[int, str], SelectedRef] = {}
    runs_per_app: dict[tuple[int, str], int] = {}
    for row in (int(r) for r in v_rows):
        key = store.app_key(row)
        runs_per_app[key] = runs_per_app.get(key, 0) + 1
        weight = float(idx[row]["io_weight"])
        job_id = int(idx[row]["job_id"])
        current = best.get(key)
        if (
            current is None
            or weight > current.io_weight
            or (weight == current.io_weight and job_id < current.job_id)
        ):
            best[key] = SelectedRef(
                ref=TraceRef(key=row),
                job_id=job_id,
                app_key=key,
                io_weight=weight,
                repaired=bool(idx[row]["repaired"]),
            )
    return best, runs_per_app


class StoreSource(TraceSource):
    """A compiled store behind the ordinary ``TraceSource`` protocol.

    Refs are row numbers; loads decode bit-for-bit equal traces.  The
    per-trace fallback path of ``repro categorize --store`` runs through
    this adapter when the batched fast path is disabled.  Note the
    compile-time ``n_unreadable`` payloads cannot be re-enumerated (they
    were never stored), so a streaming scan over this source sees only
    the stored traces; use :func:`scan_store` for funnel-exact numbers.
    """

    def __init__(self, store: CorpusStore):
        self._store = store

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreSource({self._store.path!r}, n={self._store.n_traces})"

    @property
    def store(self) -> CorpusStore:
        return self._store

    def refs(self) -> Iterator[TraceRef]:
        for row in range(self._store.n_traces):
            yield TraceRef(key=row)

    def load(self, ref: TraceRef) -> Trace:
        return self._store.decode_trace(int(ref.key))

    def count(self) -> int:
        return self._store.n_traces
