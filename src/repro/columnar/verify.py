"""``mosaic verify``: integrity audit and salvage for ``.mosc`` stores.

A compiled corpus is one file holding hundreds of thousands of traces;
a single corrupted sector must not cost the other 462,501.  This module
implements the two halves of that promise:

* :func:`verify_store` — a read-only audit that walks the integrity
  ladder (file readable → header parses → geometry sane → section CRCs
  → per-row index bounds → per-trace CRCs) and reports every finding
  with its damage locus.  Per-trace CRCs (format version 2,
  :func:`~repro.columnar.format.trace_crc32`) localize bit rot to exact
  rows; legacy version-1 stores degrade to the section-level audit.
* :func:`salvage_store` — opens the damaged store tolerantly, decodes
  every trace whose CRC and bounds survive, and recompiles them into a
  fresh store (published atomically).  Traces lost to the damage are
  carried into the new header's unreadable count so the eviction-funnel
  accounting stays honest, and the report names exactly which rows (and
  job ids, when recoverable) were lost.

Salvage is a *recompile*, not a byte-level splice: the recovered store
is bit-identical in content to compiling the surviving traces from
scratch, which means it re-verifies trivially.  The per-trace
``repaired`` bits of the source store are preserved through the decoded
traces' index rows only when the rows themselves survive; the header's
repair flag is always carried over.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field

from ..darshan.errors import TraceFormatError
from ..darshan.limits import DEFAULT_LIMITS, DecodeLimits
from ..darshan.source import InMemorySource
from ..io import StorageError
from .compile import CompileReport, compile_corpus
from .format import HEADER_SIZE, section_names, trace_crc32, unpack_header
from .store import CorpusStore

__all__ = [
    "VerifyFinding",
    "VerifyReport",
    "SalvageReport",
    "verify_store",
    "salvage_store",
]


@dataclass(slots=True, frozen=True)
class VerifyFinding:
    """One detected integrity problem.

    ``kind`` is the rung of the ladder that failed (``header``,
    ``geometry``, ``section-crc``, ``index-bounds``, ``trace-crc``,
    ``undecodable``); ``section`` / ``row`` give the damage locus where
    known (``row`` is -1 for whole-file findings).
    """

    kind: str
    detail: str
    section: str = ""
    row: int = -1

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "section": self.section,
            "row": self.row,
        }


@dataclass(slots=True)
class VerifyReport:
    """Everything ``mosaic verify`` learned about one store."""

    path: str
    version: int = 0
    n_traces: int = 0
    #: True when the damage precludes opening the store at all — no
    #: salvage is possible (header or geometry destroyed).
    fatal: bool = False
    findings: list[VerifyFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def bad_rows(self) -> tuple[int, ...]:
        """Rows named by any per-row finding, sorted and deduplicated."""
        return tuple(
            sorted({f.row for f in self.findings if f.row >= 0})
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "version": self.version,
            "n_traces": self.n_traces,
            "clean": self.clean,
            "fatal": self.fatal,
            "bad_rows": list(self.bad_rows),
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass(slots=True)
class SalvageReport:
    """What ``mosaic verify --repair`` recovered — and what it could not.

    ``lost_rows`` are rows of the *source* store that did not survive;
    ``lost_job_ids`` names them by job id where the index row itself was
    intact (an index-damaged row's identity is unrecoverable, reported
    as the row number only).
    """

    src: str
    out: str
    n_rows: int
    recovered_rows: tuple[int, ...]
    lost_rows: tuple[int, ...]
    lost_job_ids: tuple[int, ...]
    #: Unreadable count written into the salvaged header: the source's
    #: count plus every lost row.
    n_unreadable_carried: int
    verify: VerifyReport
    compile_report: CompileReport | None = None

    @property
    def n_recovered(self) -> int:
        return len(self.recovered_rows)

    @property
    def n_lost(self) -> int:
        return len(self.lost_rows)

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "out": self.out,
            "n_rows": self.n_rows,
            "n_recovered": self.n_recovered,
            "n_lost": self.n_lost,
            "recovered_rows": list(self.recovered_rows),
            "lost_rows": list(self.lost_rows),
            "lost_job_ids": list(self.lost_job_ids),
            "n_unreadable_carried": self.n_unreadable_carried,
            "verify": self.verify.to_dict(),
        }


def _open_tolerant(
    path: str, limits: DecodeLimits
) -> tuple[CorpusStore | None, str]:
    """Open without CRC enforcement and with per-row bounds tolerance.

    Returns ``(store, "")`` or ``(None, reason)`` when even the
    tolerant open fails (header/geometry damage — nothing salvageable
    through the normal reader)."""
    try:
        return CorpusStore(path, limits=limits, verify=False, strict=False), ""
    except TraceFormatError as exc:  # mosaic: disable=MOS009
        # verify IS the funnel: structural damage becomes a fatal
        # finding in the report, not an exception.
        return None, str(exc)


def verify_store(
    path: str | os.PathLike[str],
    *,
    limits: DecodeLimits = DEFAULT_LIMITS,
) -> VerifyReport:
    """Audit one store bottom-up; report every integrity finding.

    Never raises for *corruption* — damage is the expected input, and
    every rung degrades to a finding.  Raises :class:`StorageError`
    only when the file itself cannot be read (missing, permissions,
    I/O errors), and :class:`TraceFormatError` never.
    """
    spath = os.fspath(path)
    report = VerifyReport(path=spath)
    try:
        size = os.path.getsize(spath)
        with open(spath, "rb") as fh:
            head = fh.read(HEADER_SIZE)
    except OSError as exc:
        raise StorageError(
            f"verify: cannot read {spath!r}: {exc}",
            op="verify",
            path=spath,
            errno_value=exc.errno,
        ) from exc

    try:
        header = unpack_header(head)
    except ValueError as exc:
        report.fatal = True
        report.findings.append(
            VerifyFinding(kind="header", detail=f"{exc} (file is {size} bytes)")
        )
        return report
    report.version = header["version"]
    report.n_traces = header["n_traces"]

    store, reason = _open_tolerant(spath, limits)
    if store is None:
        report.fatal = True
        report.findings.append(VerifyFinding(kind="geometry", detail=reason))
        return report

    try:
        # Section-level CRC audit (all versions).
        for name in section_names(header["version"]):
            offset, nbytes, crc = header["sections"][name]
            actual = zlib.crc32(store._mmap[offset : offset + nbytes])
            if actual != crc:
                report.findings.append(
                    VerifyFinding(
                        kind="section-crc",
                        section=name,
                        detail=(
                            f"section {name!r} CRC mismatch "
                            f"(stored {crc:#010x}, actual {actual:#010x})"
                        ),
                    )
                )

        # Per-row bounds damage found by the tolerant open.
        for row in sorted(store.bad_rows):
            report.findings.append(
                VerifyFinding(
                    kind="index-bounds",
                    row=row,
                    detail=f"row {row} index entry points outside its sections",
                )
            )

        # Per-trace CRC localization (version 2+ only).
        if store.trace_crcs is not None:
            for row in range(len(store)):
                if row in store.bad_rows:
                    continue
                actual = trace_crc32(
                    store.index,
                    store.records,
                    store.ops_starts,
                    store.ops_ends,
                    store.ops_volumes,
                    store.heap,
                    row,
                )
                stored = int(store.trace_crcs[row])
                if actual != stored:
                    report.findings.append(
                        VerifyFinding(
                            kind="trace-crc",
                            row=row,
                            detail=(
                                f"row {row} CRC mismatch (stored "
                                f"{stored:#010x}, actual {actual:#010x})"
                            ),
                        )
                    )
        elif report.findings:
            # v1 damage cannot be localized below the section level.
            report.findings.append(
                VerifyFinding(
                    kind="legacy",
                    detail=(
                        "version-1 store has no per-trace CRCs; damage "
                        "cannot be localized to rows (recompile to v2)"
                    ),
                )
            )
    finally:
        store.close()
    return report


def salvage_store(
    src_path: str | os.PathLike[str],
    out_path: str | os.PathLike[str],
    *,
    limits: DecodeLimits = DEFAULT_LIMITS,
) -> SalvageReport:
    """Recover every intact trace of a damaged store into a new one.

    A trace survives when its index bounds are sane, its per-trace CRC
    matches (v2; v1 rows are kept if they decode), and it decodes
    without error.  Survivors are recompiled into ``out_path``
    (published atomically); the new header carries the source's
    unreadable count *plus* every lost row.  Raises
    :class:`TraceFormatError` when the store is too damaged to open
    even tolerantly — there is nothing to salvage through the reader.
    """
    src = os.fspath(src_path)
    out = os.fspath(out_path)
    report = verify_store(src, limits=limits)
    if report.fatal:
        raise TraceFormatError(
            f"store {src!r} cannot be salvaged: "
            + "; ".join(f.detail for f in report.findings)
        )

    store, reason = _open_tolerant(src, limits)
    if store is None:  # pragma: no cover - verify_store just opened it
        raise TraceFormatError(f"store {src!r} cannot be salvaged: {reason}")
    try:
        damaged = set(report.bad_rows) | set(store.bad_rows)
        traces = []
        recovered: list[int] = []
        lost: list[int] = []
        lost_job_ids: list[int] = []
        for row in range(len(store)):
            if row in damaged:
                lost.append(row)
                if row not in store.bad_rows:
                    # Index row is in-bounds: its identity is readable
                    # even though the trace payload is rotten.
                    lost_job_ids.append(int(store.index[row]["job_id"]))
                continue
            try:
                traces.append(store.decode_trace(row))
            except (  # mosaic: disable=MOS009 — counted as a lost row
                TraceFormatError,
                UnicodeDecodeError,
                ValueError,
            ):
                lost.append(row)
                lost_job_ids.append(int(store.index[row]["job_id"]))
                report.findings.append(
                    VerifyFinding(
                        kind="undecodable",
                        row=row,
                        detail=f"row {row} passed CRC/bounds but failed decode",
                    )
                )
                continue
            recovered.append(row)
        carried = store.n_unreadable + len(lost)
        compile_report = compile_corpus(
            InMemorySource(traces),
            out,
            mark_repaired=store.compiled_with_repair,
            extra_unreadable=carried,
        )
    finally:
        store.close()
    return SalvageReport(
        src=src,
        out=out,
        n_rows=report.n_traces,
        recovered_rows=tuple(recovered),
        lost_rows=tuple(lost),
        lost_job_ids=tuple(lost_job_ids),
        n_unreadable_carried=carried,
        verify=report,
        compile_report=compile_report,
    )
