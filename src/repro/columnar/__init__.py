"""Columnar corpus store: compile once, mmap everywhere.

The streaming pipeline re-decodes every trace on every run and ships
pickled ``Trace`` objects to pool workers.  This package replaces that
hot path with a compiled artifact (``.mosc``):

* :func:`compile_corpus` — one decode pass over any ``TraceSource``
  writes a compact store: a NumPy structured **trace index**, the flat
  per-direction **ops table**, file records, metadata event streams,
  and a deduplicated string heap (:mod:`repro.columnar.format`).
* :class:`CorpusStore` — memory-mapped, zero-copy reader with a
  hostile-input posture inherited from the trace readers
  (:mod:`repro.columnar.store`).
* :func:`scan_store` — pass ① replayed from the index alone, funnel-
  identical to the streaming scan (:mod:`repro.columnar.scan`).
* :func:`categorize_slice` — workers receive ``(store_path, rows)``
  descriptors, reattach via :func:`attach`, and categorize whole slices
  through the segmented kernels of :mod:`repro.kernels.batched`
  (:mod:`repro.columnar.batch`).
* :func:`verify_store` / :func:`salvage_store` — ``mosaic verify
  [--repair]``: per-section and per-trace CRC audit with row-level
  damage localization, and recovery of every intact trace from a
  partially corrupted store (:mod:`repro.columnar.verify`).

See docs/COLUMNAR.md for the file layout and the equivalence argument.
"""

from .batch import DEFAULT_SLICE_OPS, categorize_slice, plan_slices
from .compile import CompileReport, compile_corpus
from .format import MAGIC, VERSION
from .scan import StoreSource, scan_store
from .store import CorpusStore, StoreSlice, attach, detach_all
from .verify import (
    SalvageReport,
    VerifyFinding,
    VerifyReport,
    salvage_store,
    verify_store,
)

__all__ = [
    "MAGIC",
    "VERSION",
    "CompileReport",
    "CorpusStore",
    "SalvageReport",
    "StoreSlice",
    "StoreSource",
    "VerifyFinding",
    "VerifyReport",
    "DEFAULT_SLICE_OPS",
    "attach",
    "categorize_slice",
    "compile_corpus",
    "detach_all",
    "plan_slices",
    "salvage_store",
    "scan_store",
    "verify_store",
]
