"""``compile_corpus``: one pass from any ``TraceSource`` to a ``.mosc`` store.

Compilation decodes each trace once, validates it (recording the
violation bitmask instead of evicting — the store-backed scan replays
the eviction funnel from the index alone), derives the flat operation
table (``Trace.operations`` per direction), and interns every string in
a deduplicated heap.  Metadata event streams are *not* materialized
(they can dwarf the corpus itself); the reader reconstructs them from
the records section bit-for-bit.  Payloads the source cannot decode at all are *counted*
(``n_unreadable`` in the header) so the store-backed funnel matches the
streaming scan's input accounting exactly.

The write is single-pass over the source but buffered in memory; the
compiled form is a few dozen bytes per record, so a corpus that fits the
decode limits fits the compiler.  ``repair=True`` bakes the repair
heuristics into the stored traces (recorded in a header flag plus a
per-trace bit, so the pipeline can refuse a repair-mode mismatch).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass

import numpy as np

from ..darshan.errors import TraceFormatError
from ..darshan.source import TraceSource
from ..darshan.trace import Trace
from ..darshan.validate import ValidationReport, validate_trace
from ..io import atomic_write_bytes
from .format import (
    ALIGN,
    FLAG_REPAIRED,
    HEADER_SIZE,
    RECORD_DTYPE,
    SECTION_NAMES,
    TRACE_CRC_DTYPE,
    TRACE_DTYPE,
    pack_header,
    trace_crc32,
    violation_bit,
)

__all__ = ["CompileReport", "compile_corpus"]


@dataclass(slots=True, frozen=True)
class CompileReport:
    """What one ``compile_corpus`` pass produced."""

    path: str
    n_traces: int
    n_unreadable: int
    n_records: int
    n_ops: int
    n_bytes: int
    elapsed_s: float

    @property
    def n_input(self) -> int:
        return self.n_traces + self.n_unreadable


class _Heap:
    """Deduplicating UTF-8 string heap builder."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._offsets: dict[str, tuple[int, int]] = {}
        self._size = 0

    def intern(self, s: str) -> tuple[int, int]:
        hit = self._offsets.get(s)
        if hit is not None:
            return hit
        raw = s.encode("utf-8")
        entry = (self._size, len(raw))
        self._offsets[s] = entry
        self._chunks.append(raw)
        self._size += len(raw)
        return entry

    def payload(self) -> bytes:
        return b"".join(self._chunks)


def _align(n: int) -> int:
    return (n + ALIGN - 1) // ALIGN * ALIGN


def compile_corpus(
    source: TraceSource,
    out_path: str | os.PathLike[str],
    *,
    repair: bool = False,
    mark_repaired: bool = False,
    extra_unreadable: int = 0,
) -> CompileReport:
    """Compile every trace of ``source`` into a columnar store.

    Traces are stored in ``source.refs()`` order.  Undecodable payloads
    are counted, not stored; invalid-but-decodable traces are stored
    with their violation bitmask so the scan funnel can evict them
    without decoding anything.  The store is published atomically
    (:func:`repro.io.atomic_write_bytes`): a killed compile never leaves
    a half-visible ``.mosc`` at ``out_path``.

    ``mark_repaired`` sets :data:`FLAG_REPAIRED` in the header without
    re-running the repair heuristics — used by salvage to preserve the
    flag of the store it recovered from.  ``extra_unreadable`` is added
    to the header's unreadable count, letting salvage carry forward the
    original store's unreadables plus the traces corruption destroyed,
    so the store-backed funnel's input accounting stays honest.
    """
    t0 = time.perf_counter()
    heap = _Heap()
    index_rows: list[tuple] = []
    record_chunks: list[np.ndarray] = []
    ops_starts: list[np.ndarray] = []
    ops_ends: list[np.ndarray] = []
    ops_volumes: list[np.ndarray] = []
    n_records = 0
    n_ops = 0
    n_unreadable = extra_unreadable

    for ref in source.refs():
        try:
            trace = source.load(ref)
        except TraceFormatError:  # mosaic: disable=MOS009
            # This IS the funnel: unreadables are counted into the store
            # header and re-enter scan_store's n_input/histogram.
            n_unreadable += 1
            continue
        report = validate_trace(trace)
        repaired = False
        if repair and not report.valid:
            # Mirror scan_corpus: repair only invalid traces, then
            # revalidate so the stored bitmask is the post-repair one.
            from ..darshan.repair import repair_trace

            outcome = repair_trace(trace)
            if outcome.repaired:
                trace = outcome.trace
                repaired = True
                report = validate_trace(trace)
        index_rows.append(
            _compile_trace(
                trace,
                report,
                repaired,
                heap,
                record_chunks,
                ops_starts,
                ops_ends,
                ops_volumes,
                rec_off=n_records,
                ops_off=n_ops,
            )
        )
        n_records += int(index_rows[-1][17])  # n_records field
        n_ops += int(index_rows[-1][19]) + int(index_rows[-1][20])

    index = np.array(index_rows, dtype=TRACE_DTYPE)
    records = (
        np.concatenate(record_chunks)
        if record_chunks
        else np.empty(0, dtype=RECORD_DTYPE)
    )
    empty = np.empty(0, dtype=np.float64)
    starts = np.concatenate(ops_starts) if ops_starts else empty
    ends = np.concatenate(ops_ends) if ops_ends else empty
    volumes = np.concatenate(ops_volumes) if ops_volumes else empty
    heap_bytes = heap.payload()
    trace_crcs = np.fromiter(
        (
            trace_crc32(index, records, starts, ends, volumes, heap_bytes, row)
            for row in range(len(index))
        ),
        dtype=TRACE_CRC_DTYPE,
        count=len(index),
    )
    sections = {
        "index": index.tobytes(),
        "records": records.tobytes(),
        "ops_starts": starts.tobytes(),
        "ops_ends": ends.tobytes(),
        "ops_volumes": volumes.tobytes(),
        "heap": heap_bytes,
        "trace_crcs": trace_crcs.tobytes(),
    }

    table: list[tuple[int, int, int]] = []
    cursor = _align(HEADER_SIZE)
    for name in SECTION_NAMES:
        payload = sections[name]
        table.append((cursor, len(payload), zlib.crc32(payload)))
        cursor = _align(cursor + len(payload))

    header = pack_header(
        flags=FLAG_REPAIRED if (repair or mark_repaired) else 0,
        n_traces=len(index),
        n_records=n_records,
        n_ops=n_ops,
        heap_len=len(sections["heap"]),
        n_unreadable=n_unreadable,
        sections=table,
    )

    # Assemble the full image (alignment gaps zero-filled) and publish
    # it atomically: temp + fsync + rename + parent-dir fsync, so a
    # crash or ENOSPC at any instant leaves the old store or none.
    n_bytes = table[-1][0] + table[-1][1]
    image = bytearray(n_bytes)
    image[: len(header)] = header
    for (offset, nbytes, _crc), name in zip(table, SECTION_NAMES):
        image[offset : offset + nbytes] = sections[name]
    out = os.fspath(out_path)
    atomic_write_bytes(out, bytes(image))

    return CompileReport(
        path=out,
        n_traces=len(index),
        n_unreadable=n_unreadable,
        n_records=n_records,
        n_ops=n_ops,
        n_bytes=n_bytes,
        elapsed_s=time.perf_counter() - t0,
    )


def _compile_trace(
    trace: Trace,
    report: ValidationReport,
    repaired: bool,
    heap: _Heap,
    record_chunks: list[np.ndarray],
    ops_starts: list[np.ndarray],
    ops_ends: list[np.ndarray],
    ops_volumes: list[np.ndarray],
    *,
    rec_off: int,
    ops_off: int,
) -> tuple:
    """Append one trace's slabs; returns its index row tuple."""
    mask = 0
    for violation in report.categories():
        mask |= violation_bit(violation)

    recs = np.zeros(len(trace.records), dtype=RECORD_DTYPE)
    for i, r in enumerate(trace.records):
        name_off, name_len = heap.intern(r.file_name)
        recs[i] = (
            r.file_id,
            r.rank,
            r.opens,
            r.closes,
            r.seeks,
            r.stats,
            r.reads,
            r.writes,
            r.bytes_read,
            r.bytes_written,
            r.open_start,
            r.close_end,
            r.read_start,
            r.read_end,
            r.write_start,
            r.write_end,
            r.read_time,
            r.write_time,
            r.meta_time,
            name_off,
            name_len,
        )
    record_chunks.append(recs)

    read_ops = trace.operations("read")
    write_ops = trace.operations("write")
    for ops in (read_ops, write_ops):
        ops_starts.append(ops.starts)
        ops_ends.append(ops.ends)
        ops_volumes.append(ops.volumes)

    exe_off, exe_len = heap.intern(trace.meta.exe)
    machine_off, machine_len = heap.intern(trace.meta.machine)
    partition_off, partition_len = heap.intern(trace.meta.partition)

    return (
        trace.meta.job_id,
        trace.meta.uid,
        trace.meta.nprocs,
        trace.meta.start_time,
        trace.meta.end_time,
        trace.io_weight(),
        trace.total_metadata_ops,
        trace.total_bytes,
        mask,
        1 if repaired else 0,
        exe_off,
        exe_len,
        machine_off,
        machine_len,
        partition_off,
        partition_len,
        rec_off,
        len(trace.records),
        ops_off,
        len(read_ops),
        len(write_ops),
    )
