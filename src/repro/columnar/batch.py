"""Store-backed batch categorization: many traces per kernel dispatch.

``categorize_slice`` is the worker entry of the store-backed fast path.
It reattaches the corpus store (per-pid cache, see
:func:`repro.columnar.store.attach`), assembles the slice's flat
operation table per direction, runs concurrent fusion and the
neighbor-merge fixpoint over *all* traces in a handful of segmented
dispatches (:mod:`repro.kernels.batched`), bins every trace's metadata
event stream in one dispatch, and only then loops per trace for the
axis classifiers — which are the exact per-trace functions of
:mod:`repro.core`, fed identical inputs, so categories (and journaled
results) are byte-identical to ``categorize_trace``.

Resource governance is per-slice (docs/COLUMNAR.md): the planner packs
slices so the summed working set respects the ``ResourceBudget``, the
per-trace degradation ladder is assessed from index counts (same
messages as the per-trace path), and stage deadlines are measured over
the slice's batched stages — wall-clock is a slice-level resource here.
"""

from __future__ import annotations

import numpy as np

from ..core.governor import (
    OP_WORKING_SET_BYTES,
    DegradationLevel,
    Governor,
    ResourceBudget,
    subsample_ops,
)
from ..core.metadata import (
    MetadataDetection,
    detect_from_rate,
    insignificant_metadata,
)
from ..core.periodicity import PeriodicityDetection, detect_periodicity
from ..core.result import CategorizationResult
from ..core.temporality import TemporalityDetection, classify_temporality
from ..core.thresholds import DEFAULT_CONFIG, MosaicConfig
from ..darshan.trace import OperationArray
from ..darshan.validate import Violation
from ..kernels import batched
from .store import CorpusStore, StoreSlice, attach

__all__ = ["categorize_slice", "plan_slices", "DEFAULT_SLICE_OPS"]

#: Default per-slice operation budget when no ``ResourceBudget`` bounds
#: it: large enough to amortize dispatch, small enough to keep worker
#: result latency (and journal granularity) reasonable.
DEFAULT_SLICE_OPS = 262_144

#: Hard cap on traces per slice regardless of how tiny they are.
MAX_SLICE_TRACES = 1024

_DIRECTIONS = ("read", "write")


def plan_slices(
    store: CorpusStore,
    rows: list[int],
    *,
    budget: ResourceBudget | None = None,
    target_ops: int = DEFAULT_SLICE_OPS,
    max_traces: int = MAX_SLICE_TRACES,
) -> list[StoreSlice]:
    """Pack rows into :class:`StoreSlice` descriptors.

    The per-slice working set is bounded: a slice's summed operation
    count stays under ``max(budget.max_ops, target_ops)`` (and its
    estimated bytes under ``budget.max_bytes`` when set) — the
    ``ResourceBudget`` enforced per slice rather than per trace.  A
    single over-budget trace still gets its own slice; its *ladder*
    level is assessed inside the worker.
    """
    cap_ops = target_ops
    cap_bytes = 0
    if budget is not None and not budget.unlimited:
        if budget.max_ops > 0:
            cap_ops = max(budget.max_ops, target_ops)
        if budget.max_bytes > 0:
            cap_bytes = max(
                budget.max_bytes, target_ops * OP_WORKING_SET_BYTES
            )

    idx = store.index
    slices: list[StoreSlice] = []
    current: list[int] = []
    acc_ops = 0
    for row in rows:
        n_ops = int(idx[row]["n_read_ops"]) + int(idx[row]["n_write_ops"])
        over = current and (
            acc_ops + n_ops > cap_ops
            or len(current) >= max_traces
            or (
                cap_bytes
                and (acc_ops + n_ops) * OP_WORKING_SET_BYTES > cap_bytes
            )
        )
        if over:
            slices.append(StoreSlice(path=store.path, rows=tuple(current)))
            current = []
            acc_ops = 0
        current.append(row)
        acc_ops += n_ops
    if current:
        slices.append(StoreSlice(path=store.path, rows=tuple(current)))
    return slices


def _flagged_result(
    store: CorpusStore, row: int, run_time: float, governor: Governor
) -> CategorizationResult:
    """Identity-only partial result, mirroring the per-trace path."""
    r = store.index[row]
    return CategorizationResult(
        job_id=int(r["job_id"]),
        uid=int(r["uid"]),
        exe=store.string(int(r["exe_off"]), int(r["exe_len"])),
        nprocs=int(r["nprocs"]),
        run_time=run_time,
        categories=frozenset(),
        degradation=DegradationLevel.FLAGGED,
        budget_violations=tuple(
            f"{Violation.RESOURCE_BUDGET.value}: {reason}"
            for reason in governor.violations
        ),
    )


def _gather_direction(
    store: CorpusStore,
    rows: list[int],
    direction: str,
    caps: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate one direction's raw op slabs (subsampled where capped)."""
    starts: list[np.ndarray] = []
    ends: list[np.ndarray] = []
    volumes: list[np.ndarray] = []
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        lo, hi = store.ops_bounds(row, direction)
        cap = caps[i]
        if cap > 0 and hi - lo > cap:
            ops = subsample_ops(
                OperationArray(
                    store.ops_starts[lo:hi],
                    store.ops_ends[lo:hi],
                    store.ops_volumes[lo:hi],
                ),
                cap,
            )
            starts.append(ops.starts)
            ends.append(ops.ends)
            volumes.append(ops.volumes)
            offsets[i + 1] = offsets[i] + len(ops)
        else:
            starts.append(store.ops_starts[lo:hi])
            ends.append(store.ops_ends[lo:hi])
            volumes.append(store.ops_volumes[lo:hi])
            offsets[i + 1] = offsets[i] + (hi - lo)
    empty = np.empty(0, dtype=np.float64)
    return (
        np.concatenate(starts) if starts else empty,
        np.concatenate(ends) if ends else empty,
        np.concatenate(volumes) if volumes else empty,
        offsets,
    )


def _merge_batch(
    starts: np.ndarray,
    ends: np.ndarray,
    volumes: np.ndarray,
    offsets: np.ndarray,
    run_times: np.ndarray,
    config: MosaicConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concurrent fusion + neighbor fixpoint over the whole slice.

    The per-pass kernels are the segmented twins of the per-trace merge
    (:func:`repro.merge.pipeline.preprocess_operations`); segment walls
    make every trace's fixpoint identical to its solo merge.
    """
    if len(starts):
        groups = batched.overlap_groups_segmented(starts, ends, offsets)
        new_offsets = batched.group_offsets(groups, offsets)
        starts, ends, volumes = batched.coalesce_groups(
            starts, ends, volumes, groups
        )
        offsets = new_offsets
    cfg = config.merge
    abs_gaps = cfg.runtime_fraction * np.maximum(run_times, 0.0)
    for _ in range(cfg.max_passes):
        starts, ends, volumes, offsets, changed = (
            batched.neighbor_pass_segmented(
                starts, ends, volumes, offsets, abs_gaps, cfg.op_fraction
            )
        )
        if not changed:
            break
    return starts, ends, volumes, offsets


def _batch_metadata(
    store: CorpusStore,
    rows: list[int],
    run_times: np.ndarray,
    config: MosaicConfig,
) -> list[MetadataDetection]:
    """Metadata axis for a slice: one segmented binning dispatch.

    Bitwise-identical to :func:`repro.core.metadata.classify_metadata`:
    the segmented binning accumulates per trace in the same event order,
    and the rate rules run on each trace's own bin slice.
    """
    idx = store.index
    out: list[MetadataDetection | None] = [None] * len(rows)
    binned: list[int] = []
    for i, row in enumerate(rows):
        total = int(idx[row]["total_meta_ops"])
        threshold = config.metadata_min_ops_per_rank * max(
            int(idx[row]["nprocs"]), 1
        )
        if total < threshold:
            out[i] = insignificant_metadata(total)
        else:
            binned.append(i)
    if binned:
        times, counts, offsets = store.metadata_events_batch(
            [rows[i] for i in binned]
        )
        width = config.metadata_bin_seconds
        values, bin_offsets = batched.bin_events_segmented(
            times,
            counts,
            offsets,
            np.maximum(run_times[binned], width),
            width,
        )
        values = values / width
        for j, i in enumerate(binned):
            rate = values[bin_offsets[j] : bin_offsets[j + 1]]
            out[i] = detect_from_rate(
                int(idx[rows[i]]["total_meta_ops"]), rate, config
            )
    return [m for m in out if m is not None]


def categorize_slice(
    task: StoreSlice, config: MosaicConfig = DEFAULT_CONFIG
) -> list[CategorizationResult]:
    """Categorize every trace of one store slice; results in row order.

    The worker-side unit of the store-backed fast path.  Reattaches via
    the per-pid cache, so a rebuilt pool (or a resumed run) re-opens the
    store read-only instead of inheriting a descriptor.
    """
    store = attach(task.path)
    rows = list(task.rows)
    idx = store.index
    run_times = (
        idx["end_time"][rows].astype(np.float64)
        - idx["start_time"][rows]
    )

    governors = [Governor(config.budget) for _ in rows]
    for i, row in enumerate(rows):
        n_ops = int(idx[row]["n_read_ops"]) + int(idx[row]["n_write_ops"])
        governors[i].admit_cost(n_ops, n_ops * OP_WORKING_SET_BYTES)

    active = [i for i, g in enumerate(governors) if g.allows_axes()]
    active_rows = [rows[i] for i in active]
    active_times = run_times[active]

    # -- batched merge stage (both directions) --------------------------
    merged: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
    for direction in _DIRECTIONS:
        caps = [governors[i].ops_cap() for i in active]
        s, e, v, offsets = _gather_direction(
            store, active_rows, direction, caps
        )
        merged[direction] = _merge_batch(
            s, e, v, offsets, active_times, config
        )
    for i in active:
        governors[i].check_deadline("merge")

    # -- batched metadata binning ---------------------------------------
    metadata = _batch_metadata(store, active_rows, active_times, config)

    # -- per-trace axis classification ----------------------------------
    results: list[CategorizationResult] = []
    pos_of = {i: k for k, i in enumerate(active)}
    for i, row in enumerate(rows):
        governor = governors[i]
        run_time = float(run_times[i])
        if i not in pos_of:
            results.append(_flagged_result(store, row, run_time, governor))
            continue
        k = pos_of[i]
        temporality: list[TemporalityDetection] = []
        periodicity: list[PeriodicityDetection] = []
        for direction in _DIRECTIONS:
            s, e, v, offsets = merged[direction]
            lo, hi = int(offsets[k]), int(offsets[k + 1])
            ops = (
                OperationArray(s[lo:hi].copy(), e[lo:hi].copy(), v[lo:hi].copy())
                if hi > lo
                else OperationArray.empty()
            )
            temp = classify_temporality(ops, run_time, direction, config)
            temporality.append(temp)
            significant = ops.total_volume >= config.insignificant_bytes
            if significant and governor.allows_periodicity():
                periodicity.append(
                    detect_periodicity(ops, run_time, direction, config)
                )
            else:
                periodicity.append(
                    PeriodicityDetection(
                        direction=direction, groups=(), n_segments=0
                    )
                )
        governor.check_deadline("axes")
        r = idx[row]
        results.append(
            CategorizationResult.build(
                job_id=int(r["job_id"]),
                uid=int(r["uid"]),
                exe=store.string(int(r["exe_off"]), int(r["exe_len"])),
                nprocs=int(r["nprocs"]),
                run_time=run_time,
                temporality=temporality,
                periodicity=periodicity,
                metadata=metadata[k],
                config=config,
                degradation=governor.level,
                budget_violations=tuple(governor.violations),
            )
        )
    return results
