"""MOSC on-disk layout: the columnar corpus store format.

One ``.mosc`` file holds an entire compiled corpus as flat, memory-map
friendly sections:

========  ==================================================================
section   contents
========  ==================================================================
index     one :data:`TRACE_DTYPE` row per trace — identity scalars, dedup
          weight, validation bitmask, and the offsets/counts locating the
          trace's slabs in every other section
records   one :data:`RECORD_DTYPE` row per file record (every
          ``FileRecord`` field, so decode is bit-for-bit)
ops_*     the derived flat operation table (start / end / volume columns),
          per trace: read ops sorted by start, then write ops sorted by
          start — exactly ``Trace.operations(direction)``
heap      UTF-8 string heap (exe / machine / partition / file names),
          deduplicated, addressed by (offset, length) pairs
========  ==================================================================

The metadata *event stream* is deliberately not materialized: a record
with ``k`` opens expands to ``2k`` events (metadata-heavy traces reach
millions), while the record row it derives from is 140 bytes.  The
reader reconstructs ``Trace.metadata_events()`` bit-for-bit from the
records section on demand (:meth:`repro.columnar.store.CorpusStore.metadata_events`).

The fixed-size header carries magic, version, section counts, and a
section table (offset, byte length, CRC32 per section) plus its own
CRC32, so truncation and bit rot are detectable *before* any section is
interpreted — the same hostile-input posture as the MOSD trace codec
(:mod:`repro.darshan.io_binary`), enforced against
:class:`~repro.darshan.limits.DecodeLimits` by the reader.
"""

from __future__ import annotations

import struct

import numpy as np

from ..darshan.validate import Violation

__all__ = [
    "MAGIC",
    "VERSION",
    "ALIGN",
    "HEADER_SIZE",
    "SECTION_NAMES",
    "TRACE_DTYPE",
    "RECORD_DTYPE",
    "FLAG_REPAIRED",
    "violation_bit",
    "violations_from_mask",
    "pack_header",
    "unpack_header",
]

MAGIC = b"MOSC"
VERSION = 1

#: Header flag: the corpus was compiled with repair heuristics applied.
FLAG_REPAIRED = 1 << 0

#: magic, version, flags, n_traces, n_records, n_ops, heap_len,
#: n_unreadable
_FIXED = struct.Struct("<4sHHQQQQQ")
#: per-section (offset, byte length, crc32)
_SECTION = struct.Struct("<QQI")
_HEADER_CRC = struct.Struct("<I")

SECTION_NAMES = (
    "index",
    "records",
    "ops_starts",
    "ops_ends",
    "ops_volumes",
    "heap",
)

HEADER_SIZE = _FIXED.size + len(SECTION_NAMES) * _SECTION.size + _HEADER_CRC.size

#: Section payload alignment (keeps mmap'd float64 columns aligned).
ALIGN = 64

TRACE_DTYPE = np.dtype(
    [
        ("job_id", "<i8"),
        ("uid", "<i8"),
        ("nprocs", "<i8"),
        ("start_time", "<f8"),
        ("end_time", "<f8"),
        ("io_weight", "<f8"),
        ("total_meta_ops", "<i8"),
        ("total_bytes", "<i8"),
        ("violations", "<u4"),
        ("repaired", "<u1"),
        ("exe_off", "<u8"),
        ("exe_len", "<u4"),
        ("machine_off", "<u8"),
        ("machine_len", "<u4"),
        ("partition_off", "<u8"),
        ("partition_len", "<u4"),
        ("rec_off", "<u8"),
        ("n_records", "<u4"),
        ("ops_off", "<u8"),
        ("n_read_ops", "<u4"),
        ("n_write_ops", "<u4"),
    ]
)

RECORD_DTYPE = np.dtype(
    [
        ("file_id", "<i8"),
        ("rank", "<i8"),
        ("opens", "<i8"),
        ("closes", "<i8"),
        ("seeks", "<i8"),
        ("stats", "<i8"),
        ("reads", "<i8"),
        ("writes", "<i8"),
        ("bytes_read", "<i8"),
        ("bytes_written", "<i8"),
        ("open_start", "<f8"),
        ("close_end", "<f8"),
        ("read_start", "<f8"),
        ("read_end", "<f8"),
        ("write_start", "<f8"),
        ("write_end", "<f8"),
        ("read_time", "<f8"),
        ("write_time", "<f8"),
        ("meta_time", "<f8"),
        ("name_off", "<u8"),
        ("name_len", "<u4"),
    ]
)

#: Stable bit position per validation category (bitmask in the index).
_VIOLATION_ORDER: tuple[Violation, ...] = tuple(Violation)
_VIOLATION_BIT = {v: i for i, v in enumerate(_VIOLATION_ORDER)}


def violation_bit(violation: Violation) -> int:
    """Bit assigned to one :class:`Violation` category."""
    return 1 << _VIOLATION_BIT[violation]


def violations_from_mask(mask: int) -> set[Violation]:
    """Decode a violation bitmask back into categories."""
    return {
        v for v, i in _VIOLATION_BIT.items() if mask & (1 << i)
    }


def pack_header(
    *,
    flags: int,
    n_traces: int,
    n_records: int,
    n_ops: int,
    heap_len: int,
    n_unreadable: int,
    sections: list[tuple[int, int, int]],
) -> bytes:
    """Serialize the fixed header (appends its own CRC32)."""
    import zlib

    if len(sections) != len(SECTION_NAMES):
        raise ValueError("one section entry per SECTION_NAMES required")
    body = _FIXED.pack(
        MAGIC,
        VERSION,
        flags,
        n_traces,
        n_records,
        n_ops,
        heap_len,
        n_unreadable,
    )
    for offset, nbytes, crc in sections:
        body += _SECTION.pack(offset, nbytes, crc)
    return body + _HEADER_CRC.pack(zlib.crc32(body))


def unpack_header(raw: bytes) -> dict:
    """Parse and CRC-check a header buffer of :data:`HEADER_SIZE` bytes.

    Returns the parsed fields; raises ``ValueError`` on any structural
    problem (the reader converts that to ``TraceFormatError``).
    """
    import zlib

    if len(raw) != HEADER_SIZE:
        raise ValueError(
            f"header is {len(raw)} bytes, expected {HEADER_SIZE}"
        )
    body, (crc,) = raw[: -_HEADER_CRC.size], _HEADER_CRC.unpack(
        raw[-_HEADER_CRC.size :]
    )
    if zlib.crc32(body) != crc:
        raise ValueError("header CRC mismatch (truncated or bit-rotted)")
    (
        magic,
        version,
        flags,
        n_traces,
        n_records,
        n_ops,
        heap_len,
        n_unreadable,
    ) = _FIXED.unpack_from(body, 0)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise ValueError(
            f"unsupported store version {version} (expected {VERSION})"
        )
    sections: dict[str, tuple[int, int, int]] = {}
    base = _FIXED.size
    for i, name in enumerate(SECTION_NAMES):
        sections[name] = _SECTION.unpack_from(
            body, base + i * _SECTION.size
        )
    return {
        "flags": flags,
        "n_traces": n_traces,
        "n_records": n_records,
        "n_ops": n_ops,
        "heap_len": heap_len,
        "n_unreadable": n_unreadable,
        "sections": sections,
    }
