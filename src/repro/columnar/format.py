"""MOSC on-disk layout: the columnar corpus store format.

One ``.mosc`` file holds an entire compiled corpus as flat, memory-map
friendly sections:

========  ==================================================================
section   contents
========  ==================================================================
index     one :data:`TRACE_DTYPE` row per trace — identity scalars, dedup
          weight, validation bitmask, and the offsets/counts locating the
          trace's slabs in every other section
records   one :data:`RECORD_DTYPE` row per file record (every
          ``FileRecord`` field, so decode is bit-for-bit)
ops_*     the derived flat operation table (start / end / volume columns),
          per trace: read ops sorted by start, then write ops sorted by
          start — exactly ``Trace.operations(direction)``
heap      UTF-8 string heap (exe / machine / partition / file names),
          deduplicated, addressed by (offset, length) pairs
========  ==================================================================

The metadata *event stream* is deliberately not materialized: a record
with ``k`` opens expands to ``2k`` events (metadata-heavy traces reach
millions), while the record row it derives from is 140 bytes.  The
reader reconstructs ``Trace.metadata_events()`` bit-for-bit from the
records section on demand (:meth:`repro.columnar.store.CorpusStore.metadata_events`).

The fixed-size header carries magic, version, section counts, and a
section table (offset, byte length, CRC32 per section) plus its own
CRC32, so truncation and bit rot are detectable *before* any section is
interpreted — the same hostile-input posture as the MOSD trace codec
(:mod:`repro.darshan.io_binary`), enforced against
:class:`~repro.darshan.limits.DecodeLimits` by the reader.

Version 2 adds a ``trace_crcs`` section: one CRC32 per trace, chained
over the trace's index row, record slab, operation slabs, and every heap
string it references (:func:`trace_crc32`).  Section CRCs detect *that*
a store is damaged; per-trace CRCs localize *which traces* the damage
hits, which is what lets ``mosaic verify --repair`` salvage everything
else.  Version-1 stores still open read-only (no per-trace CRCs, so
verification degrades to the section-level audit).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..darshan.validate import Violation

__all__ = [
    "MAGIC",
    "VERSION",
    "ALIGN",
    "HEADER_SIZE",
    "SECTION_NAMES",
    "TRACE_DTYPE",
    "RECORD_DTYPE",
    "TRACE_CRC_DTYPE",
    "FLAG_REPAIRED",
    "header_size",
    "section_names",
    "violation_bit",
    "violations_from_mask",
    "pack_header",
    "unpack_header",
    "trace_crc32",
]

MAGIC = b"MOSC"
VERSION = 2

#: Versions :func:`unpack_header` still parses (v1: no ``trace_crcs``).
SUPPORTED_VERSIONS = frozenset({1, 2})

#: Header flag: the corpus was compiled with repair heuristics applied.
FLAG_REPAIRED = 1 << 0

#: magic, version, flags, n_traces, n_records, n_ops, heap_len,
#: n_unreadable
_FIXED = struct.Struct("<4sHHQQQQQ")
#: per-section (offset, byte length, crc32)
_SECTION = struct.Struct("<QQI")
_HEADER_CRC = struct.Struct("<I")

_SECTION_NAMES_V1 = (
    "index",
    "records",
    "ops_starts",
    "ops_ends",
    "ops_volumes",
    "heap",
)

#: Current (version-2) section order; ``trace_crcs`` rides last so the
#: v1 prefix layout is unchanged.
SECTION_NAMES = _SECTION_NAMES_V1 + ("trace_crcs",)


def section_names(version: int = VERSION) -> tuple[str, ...]:
    """Section order for a given format version."""
    return _SECTION_NAMES_V1 if version == 1 else SECTION_NAMES


def header_size(version: int = VERSION) -> int:
    """Exact header byte length for a given format version."""
    return (
        _FIXED.size
        + len(section_names(version)) * _SECTION.size
        + _HEADER_CRC.size
    )


HEADER_SIZE = header_size(VERSION)

#: The smallest header any supported version can have (v1's).
MIN_HEADER_SIZE = header_size(1)

#: Section payload alignment (keeps mmap'd float64 columns aligned).
ALIGN = 64

#: One CRC32 per trace (version 2+), see :func:`trace_crc32`.
TRACE_CRC_DTYPE = np.dtype("<u4")

TRACE_DTYPE = np.dtype(
    [
        ("job_id", "<i8"),
        ("uid", "<i8"),
        ("nprocs", "<i8"),
        ("start_time", "<f8"),
        ("end_time", "<f8"),
        ("io_weight", "<f8"),
        ("total_meta_ops", "<i8"),
        ("total_bytes", "<i8"),
        ("violations", "<u4"),
        ("repaired", "<u1"),
        ("exe_off", "<u8"),
        ("exe_len", "<u4"),
        ("machine_off", "<u8"),
        ("machine_len", "<u4"),
        ("partition_off", "<u8"),
        ("partition_len", "<u4"),
        ("rec_off", "<u8"),
        ("n_records", "<u4"),
        ("ops_off", "<u8"),
        ("n_read_ops", "<u4"),
        ("n_write_ops", "<u4"),
    ]
)

RECORD_DTYPE = np.dtype(
    [
        ("file_id", "<i8"),
        ("rank", "<i8"),
        ("opens", "<i8"),
        ("closes", "<i8"),
        ("seeks", "<i8"),
        ("stats", "<i8"),
        ("reads", "<i8"),
        ("writes", "<i8"),
        ("bytes_read", "<i8"),
        ("bytes_written", "<i8"),
        ("open_start", "<f8"),
        ("close_end", "<f8"),
        ("read_start", "<f8"),
        ("read_end", "<f8"),
        ("write_start", "<f8"),
        ("write_end", "<f8"),
        ("read_time", "<f8"),
        ("write_time", "<f8"),
        ("meta_time", "<f8"),
        ("name_off", "<u8"),
        ("name_len", "<u4"),
    ]
)

#: Stable bit position per validation category (bitmask in the index).
_VIOLATION_ORDER: tuple[Violation, ...] = tuple(Violation)
_VIOLATION_BIT = {v: i for i, v in enumerate(_VIOLATION_ORDER)}


def violation_bit(violation: Violation) -> int:
    """Bit assigned to one :class:`Violation` category."""
    return 1 << _VIOLATION_BIT[violation]


def violations_from_mask(mask: int) -> set[Violation]:
    """Decode a violation bitmask back into categories."""
    return {
        v for v, i in _VIOLATION_BIT.items() if mask & (1 << i)
    }


def pack_header(
    *,
    flags: int,
    n_traces: int,
    n_records: int,
    n_ops: int,
    heap_len: int,
    n_unreadable: int,
    sections: list[tuple[int, int, int]],
) -> bytes:
    """Serialize the current-version header (appends its own CRC32)."""
    if len(sections) != len(SECTION_NAMES):
        raise ValueError("one section entry per SECTION_NAMES required")
    body = _FIXED.pack(
        MAGIC,
        VERSION,
        flags,
        n_traces,
        n_records,
        n_ops,
        heap_len,
        n_unreadable,
    )
    for offset, nbytes, crc in sections:
        body += _SECTION.pack(offset, nbytes, crc)
    return body + _HEADER_CRC.pack(zlib.crc32(body))


def unpack_header(raw: bytes) -> dict:
    """Parse and CRC-check a header buffer.

    ``raw`` must hold at least the header of the version it declares
    (pass the file's first :data:`HEADER_SIZE` bytes; extra trailing
    bytes are ignored, which is how the version-1 shim works — a v1
    header is shorter than v2's).  Returns the parsed fields, including
    ``"version"``; raises ``ValueError`` on any structural problem (the
    reader converts that to ``TraceFormatError``).
    """
    if len(raw) < _FIXED.size:
        raise ValueError(
            f"header is {len(raw)} bytes, smaller than the "
            f"{_FIXED.size}-byte fixed prefix"
        )
    (
        magic,
        version,
        flags,
        n_traces,
        n_records,
        n_ops,
        heap_len,
        n_unreadable,
    ) = _FIXED.unpack_from(raw, 0)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported store version {version} "
            f"(supported: {sorted(SUPPORTED_VERSIONS)})"
        )
    expected = header_size(version)
    if len(raw) < expected:
        raise ValueError(
            f"header is {len(raw)} bytes, expected {expected} for "
            f"version {version}"
        )
    raw = raw[:expected]
    body, (crc,) = raw[: -_HEADER_CRC.size], _HEADER_CRC.unpack(
        raw[-_HEADER_CRC.size :]
    )
    if zlib.crc32(body) != crc:
        raise ValueError("header CRC mismatch (truncated or bit-rotted)")
    sections: dict[str, tuple[int, int, int]] = {}
    base = _FIXED.size
    for i, name in enumerate(section_names(version)):
        sections[name] = _SECTION.unpack_from(
            body, base + i * _SECTION.size
        )
    return {
        "version": version,
        "flags": flags,
        "n_traces": n_traces,
        "n_records": n_records,
        "n_ops": n_ops,
        "heap_len": heap_len,
        "n_unreadable": n_unreadable,
        "sections": sections,
    }


def trace_crc32(
    index: np.ndarray,
    records: np.ndarray,
    ops_starts: np.ndarray,
    ops_ends: np.ndarray,
    ops_volumes: np.ndarray,
    heap: bytes,
    row: int,
) -> int:
    """CRC32 of everything one trace owns in the store.

    Chained over the trace's index row, its record slab, its three
    operation slabs, and every heap string it references (exe, machine,
    partition, then each record's file name, in slab order).  Computed
    identically at compile time and by ``mosaic verify``, so any flipped
    bit in any byte a trace depends on changes exactly that trace's CRC.
    The caller is responsible for bounds (the reader validates the index
    before CRCs are consulted).
    """
    r = index[row]
    crc = zlib.crc32(index[row : row + 1].tobytes())
    lo = int(r["rec_off"])
    hi = lo + int(r["n_records"])
    rec = records[lo:hi]
    crc = zlib.crc32(rec.tobytes(), crc)
    olo = int(r["ops_off"])
    ohi = olo + int(r["n_read_ops"]) + int(r["n_write_ops"])
    for arr in (ops_starts, ops_ends, ops_volumes):
        crc = zlib.crc32(np.ascontiguousarray(arr[olo:ohi]).tobytes(), crc)
    for field in ("exe", "machine", "partition"):
        off = int(r[f"{field}_off"])
        crc = zlib.crc32(heap[off : off + int(r[f"{field}_len"])], crc)
    for off, length in zip(rec["name_off"], rec["name_len"]):
        crc = zlib.crc32(heap[int(off) : int(off) + int(length)], crc)
    return crc & 0xFFFFFFFF
