"""Memory-mapped reader for compiled corpus stores (``.mosc``).

:class:`CorpusStore` attaches a compiled corpus with one ``mmap`` and
exposes every section as a zero-copy NumPy view — no per-trace Python
object is built until :meth:`CorpusStore.decode_trace` is asked for one.
Workers receive a tiny picklable :class:`StoreSlice` descriptor instead
of pickled traces and reattach through :func:`attach`, which caches one
read-only store per ``(path, pid)``: a pool rebuilt after a crash-kill
(or a ``--resume`` in a new process) re-opens the file instead of
reusing a file descriptor inherited from a dead parent.

Hostile-input posture (docs/COLUMNAR.md): the file size, header CRC,
section geometry, and every index offset/length are validated against
:class:`~repro.darshan.limits.DecodeLimits` *before* any section is
interpreted; ``verify=True`` additionally CRC-checks the section
payloads.  Any failure raises
:class:`~repro.darshan.errors.TraceFormatError`, never an OOM or an
out-of-bounds view.

SIGBUS safety: a store truncated *after* it was mapped (an operator
``truncate``, a filesystem losing tail blocks) would turn any read of
the vanished pages into a process-killing ``SIGBUS``.  Every accessor
therefore calls :meth:`CorpusStore.guard` first — an ``fstat`` on a
dup'd descriptor of the mapped file comparing the *current* size
against the mapped extent — converting truncation-under-mmap into an
ordinary :class:`TraceFormatError` the pipeline quarantines per trace.
"""

from __future__ import annotations

import mmap
import os
import zlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..darshan.errors import TraceFormatError
from ..darshan.limits import DEFAULT_LIMITS, DecodeLimits, check_declared_size
from ..darshan.records import FileRecord, JobMeta
from ..darshan.trace import OperationArray, Trace
from ..darshan.validate import Violation
from .format import (
    ALIGN,
    FLAG_REPAIRED,
    HEADER_SIZE,
    MIN_HEADER_SIZE,
    RECORD_DTYPE,
    TRACE_CRC_DTYPE,
    TRACE_DTYPE,
    header_size,
    section_names,
    unpack_header,
    violations_from_mask,
)

__all__ = ["CorpusStore", "StoreSlice", "attach", "detach_all"]


@dataclass(slots=True, frozen=True)
class StoreSlice:
    """A worker task: categorize ``rows`` of the store at ``path``.

    Pickles in O(len(rows)) bytes — the zero-copy replacement for
    shipping whole ``Trace`` objects through the pool.
    """

    path: str
    rows: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.rows)


def _expected_nbytes(header: dict) -> dict[str, int]:
    expected = {
        "index": header["n_traces"] * TRACE_DTYPE.itemsize,
        "records": header["n_records"] * RECORD_DTYPE.itemsize,
        "ops_starts": header["n_ops"] * 8,
        "ops_ends": header["n_ops"] * 8,
        "ops_volumes": header["n_ops"] * 8,
        "heap": header["heap_len"],
    }
    if header["version"] >= 2:
        expected["trace_crcs"] = header["n_traces"] * TRACE_CRC_DTYPE.itemsize
    return expected


class CorpusStore:
    """One attached (read-only, memory-mapped) compiled corpus."""

    def __init__(
        self,
        path: str,
        *,
        limits: DecodeLimits = DEFAULT_LIMITS,
        verify: bool = True,
        strict: bool = True,
    ) -> None:
        self.path = os.fspath(path)
        self._limits = limits
        self._fd = -1
        #: Rows whose index entry points outside its sections (tolerant
        #: mode only; always empty when ``strict=True`` succeeded).
        self.bad_rows: frozenset[int] = frozenset()
        size = os.path.getsize(self.path)
        if size < MIN_HEADER_SIZE:
            raise TraceFormatError(
                f"store {self.path!r} is {size} bytes — smaller than the "
                f"{MIN_HEADER_SIZE}-byte minimum header"
            )
        check_declared_size(
            size, size, "corpus store", limits.max_payload_bytes
        )
        with open(self.path, "rb") as fh:
            self._mmap = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            # Keep a descriptor of the *mapped* file (not its path, which
            # may be atomically replaced later) so guard() can detect
            # truncation of these very pages before a read hits SIGBUS.
            self._fd = os.dup(fh.fileno())
        self._mapped_size = size
        try:
            header = unpack_header(bytes(self._mmap[: min(size, HEADER_SIZE)]))
        except ValueError as exc:
            self.close()
            raise TraceFormatError(f"store {self.path!r}: {exc}") from None
        try:
            self._validate_geometry(header, size)
            self._load_sections(header)
            if verify:
                self._verify_crcs(header)
            self._validate_index(strict=strict)
        except TraceFormatError:
            self.close()
            raise
        self.version: int = header["version"]
        self.flags: int = header["flags"]
        self.n_unreadable: int = header["n_unreadable"]

    # -- construction helpers ------------------------------------------
    def _validate_geometry(self, header: dict, size: int) -> None:
        limits = self._limits
        counts = (
            ("traces", header["n_traces"]),
            ("records", header["n_records"]),
            ("operations", header["n_ops"]),
        )
        for what, count in counts:
            if count > limits.max_records:
                raise TraceFormatError(
                    f"store {self.path!r} declares {count} {what}, over the "
                    f"decode limit {limits.max_records}"
                )
        if header["heap_len"] > limits.max_string_bytes:
            raise TraceFormatError(
                f"store {self.path!r} heap is {header['heap_len']} bytes, "
                f"over the decode limit {limits.max_string_bytes}"
            )
        expected = _expected_nbytes(header)
        hsize = header_size(header["version"])
        for name in section_names(header["version"]):
            offset, nbytes, _crc = header["sections"][name]
            if nbytes != expected[name]:
                raise TraceFormatError(
                    f"store {self.path!r} section {name!r} is {nbytes} bytes; "
                    f"the header counts imply {expected[name]} (truncated or "
                    f"bit-rotted header)"
                )
            if offset < hsize or offset % ALIGN:
                raise TraceFormatError(
                    f"store {self.path!r} section {name!r} is misplaced "
                    f"(offset {offset})"
                )
            check_declared_size(
                nbytes, size - offset, f"section {name!r}"
            )

    def _load_sections(self, header: dict) -> None:
        def view(name: str, dtype: np.dtype, count: int) -> np.ndarray:
            offset, _nbytes, _crc = header["sections"][name]
            return np.frombuffer(
                self._mmap, dtype=dtype, count=count, offset=offset
            )

        self.index = view("index", TRACE_DTYPE, header["n_traces"])
        self.records = view("records", RECORD_DTYPE, header["n_records"])
        f8 = np.dtype("<f8")
        self.ops_starts = view("ops_starts", f8, header["n_ops"])
        self.ops_ends = view("ops_ends", f8, header["n_ops"])
        self.ops_volumes = view("ops_volumes", f8, header["n_ops"])
        heap_off, heap_len, _ = header["sections"]["heap"]
        self.heap = bytes(self._mmap[heap_off : heap_off + heap_len])
        #: Per-trace CRCs (version 2+; ``None`` for legacy v1 stores).
        self.trace_crcs: np.ndarray | None = (
            view("trace_crcs", TRACE_CRC_DTYPE, header["n_traces"])
            if header["version"] >= 2
            else None
        )

    def _verify_crcs(self, header: dict) -> None:
        self.guard()
        for name in section_names(header["version"]):
            offset, nbytes, crc = header["sections"][name]
            actual = zlib.crc32(self._mmap[offset : offset + nbytes])
            if actual != crc:
                raise TraceFormatError(
                    f"store {self.path!r} section {name!r} CRC mismatch "
                    f"(bit-rotted payload)"
                )

    def _validate_index(self, *, strict: bool = True) -> None:
        """Bound every index offset/length so a corrupt index can never
        produce an out-of-bounds view, even with ``verify=False``.

        With ``strict=False`` (the salvage path), out-of-bounds rows are
        collected into :attr:`bad_rows` instead of failing the open —
        accessors must not be used on those rows.
        """
        idx = self.index
        if len(idx) == 0:
            return
        bad = np.zeros(len(idx), dtype=bool)

        def mark(off: np.ndarray, n: np.ndarray, total: int) -> np.ndarray:
            off64 = off.astype(np.int64)
            return (off64 + n.astype(np.int64) > total) | (off64 < 0)

        bad |= mark(idx["rec_off"], idx["n_records"], len(self.records))
        bad |= mark(
            idx["ops_off"],
            idx["n_read_ops"].astype(np.int64) + idx["n_write_ops"],
            len(self.ops_starts),
        )
        heap_len = len(self.heap)
        for field in ("exe", "machine", "partition"):
            bad |= mark(idx[f"{field}_off"], idx[f"{field}_len"], heap_len)
        # A record whose name points outside the heap taints the row(s)
        # whose slab contains it.
        rec_bad = mark(
            self.records["name_off"], self.records["name_len"], heap_len
        )
        if rec_bad.any():
            bad_recs = np.flatnonzero(rec_bad)
            lo = idx["rec_off"].astype(np.int64)
            hi = lo + idx["n_records"].astype(np.int64)
            # Only rows already bounds-valid can be probed against slabs.
            for row in np.flatnonzero(~bad):
                if ((bad_recs >= lo[row]) & (bad_recs < hi[row])).any():
                    bad[row] = True
        if bad.any():
            if strict:
                raise TraceFormatError(
                    f"store {self.path!r} index points outside its "
                    f"sections (bit-rotted index)"
                )
            self.bad_rows = frozenset(int(r) for r in np.flatnonzero(bad))

    # -- SIGBUS guard ---------------------------------------------------
    def guard(self) -> None:
        """Refuse to read pages that may no longer be backed by the file.

        An ``mmap`` read past the mapped file's *current* end delivers
        ``SIGBUS`` and kills the process — no Python exception, no
        quarantine, no journal entry.  This re-stats the dup'd
        descriptor of the mapped inode and raises
        :class:`TraceFormatError` if the file has shrunk below the
        mapped extent, so truncation-under-mmap degrades into an
        ordinary per-trace failure.  Cost is one ``fstat`` (~1 µs),
        paid at every accessor entry, not per element.
        """
        if self._fd < 0:
            raise TraceFormatError(f"store {self.path!r} is closed")
        try:
            current = os.fstat(self._fd).st_size
        except OSError as exc:
            raise TraceFormatError(
                f"store {self.path!r} became unreadable: {exc}"
            ) from exc
        if current < self._mapped_size:
            raise TraceFormatError(
                f"store {self.path!r} was truncated under its mapping "
                f"({current} bytes on disk, {self._mapped_size} mapped)"
            )

    # -- basic accessors ------------------------------------------------
    def __len__(self) -> int:
        return len(self.index)

    @property
    def n_traces(self) -> int:
        return len(self.index)

    @property
    def compiled_with_repair(self) -> bool:
        return bool(self.flags & FLAG_REPAIRED)

    def string(self, off: int, length: int) -> str:
        return self.heap[off : off + length].decode("utf-8")

    def violations(self, row: int) -> set[Violation]:
        """Validation categories recorded at compile time (empty = valid)."""
        self.guard()
        return violations_from_mask(int(self.index[row]["violations"]))

    def is_valid(self, row: int) -> bool:
        return int(self.index[row]["violations"]) == 0

    def app_key(self, row: int) -> tuple[int, str]:
        self.guard()
        r = self.index[row]
        return (
            int(r["uid"]),
            self.string(int(r["exe_off"]), int(r["exe_len"])),
        )

    # -- zero-copy trace views ------------------------------------------
    def ops_bounds(self, row: int, direction: str) -> tuple[int, int]:
        """[lo, hi) bounds of one trace-direction slab in the ops table."""
        r = self.index[row]
        lo = int(r["ops_off"])
        n_read = int(r["n_read_ops"])
        if direction == "read":
            return lo, lo + n_read
        if direction == "write":
            return lo + n_read, lo + n_read + int(r["n_write_ops"])
        raise ValueError(f"unknown direction: {direction!r}")

    def operations(self, row: int, direction: str) -> OperationArray:
        """The trace's raw operation array, identical to
        ``decode_trace(row).operations(direction)``."""
        self.guard()
        lo, hi = self.ops_bounds(row, direction)
        if lo == hi:
            return OperationArray.empty()
        return OperationArray(
            self.ops_starts[lo:hi],
            self.ops_ends[lo:hi],
            self.ops_volumes[lo:hi],
        )

    def _metadata_prep(self, row: int) -> tuple | None:
        """Record-level head of the metadata reconstruction.

        Computes, per record of the row's slab, the attribution window
        and event counts — everything needed to size and lay out the
        event stream — without touching per-event storage.  Returns
        ``None`` when the row expands to no events.
        """
        r = self.index[row]
        lo = int(r["rec_off"])
        hi = lo + int(r["n_records"])
        rec = self.records[lo:hi]
        if lo == hi:
            return None
        opens = rec["opens"].astype(np.int64)
        n_open = opens + rec["seeks"].astype(np.int64)
        n_close = rec["closes"].astype(np.int64)
        active = (n_open + n_close) > 0

        open_start = rec["open_start"].astype(np.float64)
        close_end = rec["close_end"].astype(np.float64)
        t0 = np.where(
            open_start >= 0,
            open_start,
            np.maximum(rec["read_start"].astype(np.float64), 0.0),
        )
        t1 = np.where(close_end >= 0, close_end, t0)
        # mirror `if t1 < t0: swap` exactly (NaN comparisons stay put)
        swap = t1 < t0
        t0, t1 = np.where(swap, t1, t0), np.where(swap, t0, t1)

        # `opens <= 1 or t1 <= t0` inverted — NOT `t1 > t0`, which would
        # reroute NaN windows to the single branch the reference spreads
        spread = active & (opens > 1) & ~(t1 <= t0)
        single = active & ~spread
        has_open = single & (n_open > 0)
        has_close = single & (n_close > 0)

        n_events = np.where(
            spread,
            2 * opens,
            has_open.astype(np.int64) + has_close.astype(np.int64),
        )
        total = int(n_events.sum())
        if total == 0:
            return None
        out_off = np.zeros(len(rec), dtype=np.int64)
        np.cumsum(n_events[:-1], out=out_off[1:])
        return (
            total,
            out_off,
            t0,
            t1,
            opens,
            n_open,
            n_close,
            spread,
            has_open,
            has_close,
        )

    @staticmethod
    def _metadata_fill(
        prep: tuple, times: np.ndarray, counts: np.ndarray
    ) -> None:
        """Write the pre-sort event layout of one row into buffers.

        The layout reproduces the reference's append order exactly —
        records in slab order, each record's opens block then its closes
        block — so the caller's stable argsort lands ties identically.
        """
        (
            _total,
            out_off,
            t0,
            t1,
            opens,
            n_open,
            n_close,
            spread,
            has_open,
            has_close,
        ) = prep

        # singles: the t0 slot comes first (when it has opens), then t1
        times[out_off[has_open]] = t0[has_open]
        counts[out_off[has_open]] = n_open[has_open].astype(np.float64)
        close_slot = out_off + has_open.astype(np.int64)
        times[close_slot[has_close]] = t1[has_close]
        counts[close_slot[has_close]] = n_close[has_close].astype(np.float64)

        if spread.any():
            k = opens[spread]
            step = (t1[spread] - t0[spread]) / k
            if len(k) <= 64:
                # Few spread records carrying (potentially) huge k: each
                # record's output block is contiguous (opens then
                # closes), so compute straight into the slices — no
                # per-event record-id gathers, no scatter indices.  Same
                # scalars, same op order, same bits as the path below.
                s_off = out_off[spread]
                s_t0 = t0[spread]
                s_no = n_open[spread]
                s_nc = n_close[spread]
                for i in range(len(k)):
                    ki = int(k[i])
                    a = int(s_off[i])
                    o_sl = times[a : a + ki]
                    # linspace(t0, t1, k, endpoint=False)
                    #   == arange(k)*step + t0
                    np.multiply(
                        np.arange(ki, dtype=np.float64), step[i], out=o_sl
                    )
                    o_sl += s_t0[i]
                    np.add(  # mosaic: disable=MOS002 (ufunc, not a set)
                        o_sl, step[i] * 0.9, out=times[a + ki : a + 2 * ki]
                    )
                    counts[a : a + ki] = s_no[i] / ki
                    counts[a + ki : a + 2 * ki] = s_nc[i] / ki
            else:
                rep = np.repeat(np.arange(len(k)), k)
                pos = np.arange(len(rep), dtype=np.int64)
                pos -= np.repeat(np.concatenate(([0], np.cumsum(k)[:-1])), k)
                # linspace(t0, t1, k, endpoint=False) == arange(k)*step + t0
                open_t = pos * step[rep] + t0[spread][rep]
                close_t = open_t + (step * 0.9)[rep]
                base = np.repeat(out_off[spread], k)
                idx_open = base + pos
                idx_close = base + k[rep] + pos
                times[idx_open] = open_t
                times[idx_close] = close_t
                counts[idx_open] = (n_open[spread] / k)[rep]
                counts[idx_close] = (n_close[spread] / k)[rep]

    def metadata_events(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct the trace's metadata event stream on demand.

        Bit-for-bit equal to ``decode_trace(row).metadata_events()`` —
        the same per-record attribution model (the loop in
        :meth:`repro.darshan.trace.Trace.metadata_events`, the auditable
        reference) run vectorized over the record slab.  The stream is
        derived, not stored: a record with ``k`` opens expands to ``2k``
        events, which can dwarf the record itself, so the expansion
        happens here in one dispatch instead of a per-record loop.

        Bitwise notes: ``np.linspace(t0, t1, k, endpoint=False)`` is
        ``arange(k) * ((t1 - t0) / k) + t0`` element for element, and the
        per-record append order (opens block, then closes block, records
        in slab order) is reproduced exactly before the final stable
        argsort, so ties land identically.
        """
        self.guard()
        prep = self._metadata_prep(row)
        if prep is None:
            z = np.empty(0, dtype=np.float64)
            return z, z.copy()
        total = prep[0]
        times = np.empty(total, dtype=np.float64)
        counts = np.empty(total, dtype=np.float64)
        self._metadata_fill(prep, times, counts)
        order = np.argsort(times, kind="stable")
        return times[order], counts[order]

    def metadata_events_batch(
        self, rows: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Metadata event streams of many rows in one flat allocation.

        Returns ``(times, counts, offsets)`` where
        ``times[offsets[j]:offsets[j+1]]`` is row ``rows[j]``'s stream,
        each slice bit-for-bit equal to :meth:`metadata_events` of that
        row.  One scratch buffer (sized to the largest row) carries every
        pre-sort layout, and the sorted gather lands directly in the flat
        output — no per-row allocations, no concatenation copy.  The
        flat shape is exactly what the segmented binning kernel
        (:func:`repro.kernels.batched.bin_events_segmented`) consumes.
        """
        self.guard()
        preps = [self._metadata_prep(row) for row in rows]
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        for j, prep in enumerate(preps):
            offsets[j + 1] = offsets[j] + (prep[0] if prep else 0)
        total = int(offsets[-1])
        times = np.empty(total, dtype=np.float64)
        counts = np.empty(total, dtype=np.float64)
        if total == 0:
            return times, counts, offsets
        largest = max(prep[0] for prep in preps if prep)
        scratch_t = np.empty(largest, dtype=np.float64)
        scratch_c = np.empty(largest, dtype=np.float64)
        for j, prep in enumerate(preps):
            if prep is None:
                continue
            n = prep[0]
            s_t, s_c = scratch_t[:n], scratch_c[:n]
            self._metadata_fill(prep, s_t, s_c)
            order = np.argsort(s_t, kind="stable")
            lo, hi = int(offsets[j]), int(offsets[j + 1])
            np.take(s_t, order, out=times[lo:hi])
            np.take(s_c, order, out=counts[lo:hi])
        return times, counts, offsets

    # -- full decode ----------------------------------------------------
    def job_meta(self, row: int) -> JobMeta:
        self.guard()
        r = self.index[row]
        return JobMeta(
            job_id=int(r["job_id"]),
            uid=int(r["uid"]),
            exe=self.string(int(r["exe_off"]), int(r["exe_len"])),
            nprocs=int(r["nprocs"]),
            start_time=float(r["start_time"]),
            end_time=float(r["end_time"]),
            machine=self.string(int(r["machine_off"]), int(r["machine_len"])),
            partition=self.string(
                int(r["partition_off"]), int(r["partition_len"])
            ),
        )

    def decode_trace(self, row: int) -> Trace:
        """Materialize one trace, bit-for-bit equal to the compiled input."""
        self.guard()
        r = self.index[row]
        lo = int(r["rec_off"])
        hi = lo + int(r["n_records"])
        records = []
        for rec in self.records[lo:hi]:
            records.append(
                FileRecord(
                    file_id=int(rec["file_id"]),
                    file_name=self.string(
                        int(rec["name_off"]), int(rec["name_len"])
                    ),
                    rank=int(rec["rank"]),
                    opens=int(rec["opens"]),
                    closes=int(rec["closes"]),
                    seeks=int(rec["seeks"]),
                    stats=int(rec["stats"]),
                    reads=int(rec["reads"]),
                    writes=int(rec["writes"]),
                    bytes_read=int(rec["bytes_read"]),
                    bytes_written=int(rec["bytes_written"]),
                    open_start=float(rec["open_start"]),
                    close_end=float(rec["close_end"]),
                    read_start=float(rec["read_start"]),
                    read_end=float(rec["read_end"]),
                    write_start=float(rec["write_start"]),
                    write_end=float(rec["write_end"]),
                    read_time=float(rec["read_time"]),
                    write_time=float(rec["write_time"]),
                    meta_time=float(rec["meta_time"]),
                )
            )
        return Trace(meta=self.job_meta(row), records=records)

    def close(self) -> None:
        if getattr(self, "_fd", -1) >= 0:
            os.close(self._fd)
            self._fd = -1
        mm = getattr(self, "_mmap", None)
        if mm is not None and not mm.closed:
            # Views into the mmap must be released first; drop them.
            for name in (
                "index",
                "records",
                "ops_starts",
                "ops_ends",
                "ops_volumes",
                "trace_crcs",
            ):
                if getattr(self, name, None) is not None:
                    delattr(self, name)
            try:
                mm.close()
            except BufferError:
                # A caller still holds a zero-copy view; the mapping is
                # reclaimed when the last view dies.
                pass

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# per-process attach cache (the mmap seam)

#: abspath → (pid, store).  Keyed by pid so a worker forked or rebuilt
#: after a crash re-opens the store read-only instead of sharing a file
#: descriptor inherited from a dead pool (see docs/COLUMNAR.md).
#: path → (pid, (ino, mtime_ns, size), verified, store)
_ATTACHED: dict[str, tuple[int, tuple[int, int, int], bool, CorpusStore]] = {}
#: FIFO bound on cached attachments; evicted entries are *dropped*, not
#: closed — closing would invalidate live numpy views into the mmap, so
#: the mapping is left to die with its last reference.
_ATTACH_CAP = 16


def attach(
    path: str | os.PathLike[str],
    *,
    limits: DecodeLimits = DEFAULT_LIMITS,
    verify: bool = False,
) -> CorpusStore:
    """Attach (or reuse this process's attachment of) a compiled store.

    Structural validation always runs; ``verify`` (payload CRCs) is off
    by default here because workers attach a store the parent already
    verified at open.  The cache is invalidated on pid change — pool
    rebuilds and resumed runs never inherit a stale descriptor — and on
    file identity change (inode / mtime / size), so recompiling a store
    at the same path never leaves a stale mapping behind.  A cached
    attachment that was made without CRC verification is re-verified
    when ``verify=True`` is requested.
    """
    key = os.path.abspath(os.fspath(path))
    pid = os.getpid()
    try:
        st = os.stat(key)
    except OSError as exc:
        # The store vanished (or its directory did): a cached mapping,
        # if any, must not be served for a file that no longer exists.
        _ATTACHED.pop(key, None)
        raise TraceFormatError(
            f"store {key!r} is not readable: {exc}"
        ) from exc
    ident = (st.st_ino, st.st_mtime_ns, st.st_size)
    hit = _ATTACHED.get(key)
    if (
        hit is not None
        and hit[0] == pid
        and hit[1] == ident
        and (hit[2] or not verify)
    ):
        # Same path identity is necessary but not sufficient: the mapped
        # inode itself may have been truncated in place since the hit
        # was cached.  guard() re-validates before the store is reused.
        try:
            hit[3].guard()
        except TraceFormatError:
            _ATTACHED.pop(key, None)
            raise
        return hit[3]
    store = CorpusStore(key, limits=limits, verify=verify)
    _ATTACHED[key] = (pid, ident, verify, store)
    while len(_ATTACHED) > _ATTACH_CAP:
        _ATTACHED.pop(next(iter(_ATTACHED)))
    return store


def detach_all() -> None:
    """Close and drop every cached attachment (tests / shutdown)."""
    for _pid, _ident, _verified, store in _ATTACHED.values():
        store.close()
    _ATTACHED.clear()
