"""DFT-based periodicity detection (frequency-technique baseline).

Implements the approach of the paper's related work [24]: compute the
discrete Fourier transform of the binned activity signal, find the
dominant non-DC spectral peak, and report its period together with a
confidence score (share of non-DC spectral energy held by the peak and
its immediate neighbours).

The paper's criticism — "this approach fails to distinguish between two
intricate periodic behaviors" — is reproduced by the ABL-PERIOD
benchmark: the detector returns only the *dominant* period, whereas
MOSAIC's Mean Shift grouping resolves multiple concurrent periodicities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activity import ActivitySignal

__all__ = ["DftDetection", "detect_periodicity_dft"]


@dataclass(slots=True, frozen=True)
class DftDetection:
    """Result of the frequency-domain periodicity check."""

    periodic: bool
    #: Dominant period in seconds (NaN when not periodic).
    period: float
    #: Share of non-DC spectral energy in the dominant peak (0..1).
    confidence: float
    #: Dominant frequency in Hz (NaN when not periodic).
    frequency: float


def detect_periodicity_dft(
    signal: ActivitySignal,
    *,
    min_confidence: float = 0.15,
    min_cycles: int = 3,
) -> DftDetection:
    """Detect the dominant periodicity of an activity signal.

    Parameters
    ----------
    min_confidence:
        Minimum share of non-DC spectral energy concentrated in the
        dominant peak (±1 bin) for the signal to count as periodic.
    min_cycles:
        Minimum number of repetitions inside the observation window; a
        "period" seen fewer times is not evidence of periodicity.
    """
    x = np.asarray(signal.values, dtype=np.float64)
    n = len(x)
    not_periodic = DftDetection(
        periodic=False, period=float("nan"), confidence=0.0, frequency=float("nan")
    )
    if n < 2 * min_cycles or signal.duration <= 0.0 or float(x.sum()) <= 0.0:
        return not_periodic

    x = x - x.mean()
    if not np.any(x):
        return not_periodic

    spectrum = np.abs(np.fft.rfft(x)) ** 2
    freqs = np.fft.rfftfreq(n, d=signal.bin_width)
    # Drop DC and frequencies slower than min_cycles repetitions.
    f_min = min_cycles / signal.duration
    valid = freqs >= f_min
    if not np.any(valid):
        return not_periodic
    power = np.where(valid, spectrum, 0.0)
    total = float(power.sum())
    if total <= 0:
        return not_periodic

    # A short-duty pulse train spreads its energy over a harmonic comb.
    # Score candidate fundamentals by comb power minus *anti-comb* power
    # (the bins halfway between harmonics): a genuine period has an empty
    # anti-comb, while a single broadband burst fills comb and anti-comb
    # alike and scores ~zero.  Normalizing by slot count stops sub-
    # multiples of the true fundamental (whose combs contain the true
    # comb plus empty slots) from outscoring it.  Candidates are the
    # sub-multiples of the argmax bin: if the argmax landed on a
    # harmonic, the true fundamental divides it.
    k_peak = int(np.argmax(power))
    k_min = int(np.ceil(f_min * n * signal.bin_width))

    def slot_power(position: float) -> float:
        j = int(round(position))
        lo, hi = max(j - 1, 0), min(j + 2, len(power))
        return float(power[lo:hi].max()) if hi > lo else 0.0

    def refine(k: int) -> float:
        """Sub-bin peak position by parabolic interpolation."""
        if 1 <= k < len(power) - 1:
            y0, y1, y2 = power[k - 1], power[k], power[k + 1]
            denom = y0 - 2 * y1 + y2
            if denom != 0:
                return k + float(np.clip(0.5 * (y0 - y2) / denom, -0.5, 0.5))
        return float(k)

    def comb_minus_anticomb(kf: float) -> tuple[float, float]:
        comb = 0.0
        anti = 0.0
        slots = 0
        j = 1
        # Float harmonic positions track fundamentals that fall between
        # bins; without this the comb drifts off the true harmonics.
        # Every candidate is scored over the same number of harmonics so
        # sub-multiples cannot win by covering a different span — only
        # the low-order harmonics are informative anyway (timing jitter
        # low-passes the comb).
        while j * kf < len(power) and slots < 12:
            comb += slot_power(j * kf)
            anti += slot_power((j + 0.5) * kf)
            slots += 1
            j += 1
        if slots == 0:
            return 0.0, 0.0
        net = comb - anti
        return net / slots, net

    candidates = [
        refine(k_peak) / m
        for m in range(1, 5)
        if k_peak // m >= max(k_min, 1)
    ]
    if not candidates:
        return not_periodic
    best = max(candidates, key=lambda kf: comb_minus_anticomb(kf)[0])
    _, net = comb_minus_anticomb(best)
    confidence = float(np.clip(net / total, 0.0, 1.0))
    if confidence < min_confidence:
        return not_periodic

    freq = float(best) / (n * signal.bin_width)
    return DftDetection(
        periodic=True, period=1.0 / freq, confidence=confidence, frequency=freq
    )
