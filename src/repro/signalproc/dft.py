"""DFT-based periodicity detection (frequency-technique baseline).

Implements the approach of the paper's related work [24]: compute the
discrete Fourier transform of the binned activity signal, find the
dominant non-DC spectral peak, and report its period together with a
confidence score (share of non-DC spectral energy held by the peak and
its immediate neighbours).

The paper's criticism — "this approach fails to distinguish between two
intricate periodic behaviors" — is reproduced by the ABL-PERIOD
benchmark: the detector returns only the *dominant* period, whereas
MOSAIC's Mean Shift grouping resolves multiple concurrent periodicities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import get_backend
from .activity import ActivitySignal

__all__ = ["DftDetection", "detect_periodicity_dft"]


@dataclass(slots=True, frozen=True)
class DftDetection:
    """Result of the frequency-domain periodicity check."""

    periodic: bool
    #: Dominant period in seconds (NaN when not periodic).
    period: float
    #: Share of non-DC spectral energy in the dominant peak (0..1).
    confidence: float
    #: Dominant frequency in Hz (NaN when not periodic).
    frequency: float


def detect_periodicity_dft(
    signal: ActivitySignal,
    *,
    min_confidence: float = 0.15,
    min_cycles: int = 3,
    backend: str | None = None,
) -> DftDetection:
    """Detect the dominant periodicity of an activity signal.

    Parameters
    ----------
    min_confidence:
        Minimum share of non-DC spectral energy concentrated in the
        dominant peak (±1 bin) for the signal to count as periodic.
    min_cycles:
        Minimum number of repetitions inside the observation window; a
        "period" seen fewer times is not evidence of periodicity.
    backend:
        Kernel backend for the comb scan (``None`` = vectorized).
    """
    x = np.asarray(signal.values, dtype=np.float64)
    n = len(x)
    not_periodic = DftDetection(
        periodic=False, period=float("nan"), confidence=0.0, frequency=float("nan")
    )
    if n < 2 * min_cycles or signal.duration <= 0.0 or float(x.sum()) <= 0.0:
        return not_periodic

    x = x - x.mean()
    if not np.any(x):
        return not_periodic

    spectrum = np.abs(np.fft.rfft(x)) ** 2
    freqs = np.fft.rfftfreq(n, d=signal.bin_width)
    # Drop DC and frequencies slower than min_cycles repetitions.
    f_min = min_cycles / signal.duration
    valid = freqs >= f_min
    if not np.any(valid):
        return not_periodic
    power = np.where(valid, spectrum, 0.0)
    total = float(power.sum())
    if total <= 0:
        return not_periodic

    # A short-duty pulse train spreads its energy over a harmonic comb.
    # Score candidate fundamentals by comb power minus *anti-comb* power
    # (the bins halfway between harmonics): a genuine period has an empty
    # anti-comb, while a single broadband burst fills comb and anti-comb
    # alike and scores ~zero.  Normalizing by slot count stops sub-
    # multiples of the true fundamental (whose combs contain the true
    # comb plus empty slots) from outscoring it.  Candidates are the
    # sub-multiples of the argmax bin: if the argmax landed on a
    # harmonic, the true fundamental divides it.
    k_peak = int(np.argmax(power))
    k_min = int(np.ceil(f_min * n * signal.bin_width))

    def refine(k: int) -> float:
        """Sub-bin peak position by parabolic interpolation."""
        if 1 <= k < len(power) - 1:
            y0, y1, y2 = power[k - 1], power[k], power[k + 1]
            denom = y0 - 2 * y1 + y2
            if denom != 0:
                return k + float(np.clip(0.5 * (y0 - y2) / denom, -0.5, 0.5))
        return float(k)

    # Candidate fundamentals are the sub-multiples of the argmax bin: if
    # the argmax landed on a harmonic, the true fundamental divides it.
    # Each candidate is scored comb-minus-anticomb over float harmonic
    # positions (fundamentals between bins drift off integer combs) and
    # normalized per slot, so sub-multiples of the true fundamental —
    # whose combs contain the true comb plus empty slots — cannot
    # outscore it.  A genuine period has an empty anti-comb; a single
    # broadband burst fills comb and anti-comb alike and scores ~zero.
    candidates = np.asarray(
        [refine(k_peak) / m for m in range(1, 5) if k_peak // m >= max(k_min, 1)]
    )
    if len(candidates) == 0:
        return not_periodic
    per_slot, nets = get_backend(backend).dft_comb_scores(power, candidates, 12)
    best_idx = int(np.argmax(per_slot))
    best = float(candidates[best_idx])
    confidence = float(np.clip(nets[best_idx] / total, 0.0, 1.0))
    if confidence < min_confidence:
        return not_periodic

    freq = best / (n * signal.bin_width)
    return DftDetection(
        periodic=True, period=1.0 / freq, confidence=confidence, frequency=freq
    )
