"""Autocorrelation-based periodicity detection.

Second signal-processing baseline: the normalized autocorrelation of the
activity signal peaks at lags that are multiples of the period.  More
robust than the DFT to duty-cycle asymmetry (short bursts, long idle),
less precise for closely-spaced mixtures — both properties are exercised
by the ABL-PERIOD benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activity import ActivitySignal

__all__ = ["AutocorrDetection", "detect_periodicity_autocorr"]


@dataclass(slots=True, frozen=True)
class AutocorrDetection:
    periodic: bool
    #: Estimated period in seconds (NaN when not periodic).
    period: float
    #: Autocorrelation value at the detected lag (0..1).
    strength: float
    #: Detected lag in bins.
    lag: int


def _autocorrelation(x: np.ndarray) -> np.ndarray:
    """Biased normalized autocorrelation via FFT, r[0] == 1."""
    x = x - x.mean()
    n = len(x)
    f = np.fft.rfft(x, 2 * n)
    acf = np.fft.irfft(f * np.conj(f))[:n]
    if acf[0] <= 0:
        return np.zeros(n)
    return acf / acf[0]


def detect_periodicity_autocorr(
    signal: ActivitySignal,
    *,
    min_strength: float = 0.2,
    min_cycles: int = 3,
) -> AutocorrDetection:
    """Detect periodicity from the first significant autocorrelation peak.

    A lag qualifies when it is a local maximum of the ACF, its value
    exceeds ``min_strength``, and at least ``min_cycles`` repetitions fit
    in the window.
    """
    x = np.asarray(signal.values, dtype=np.float64)
    n = len(x)
    failed = AutocorrDetection(periodic=False, period=float("nan"), strength=0.0, lag=0)
    if n < 2 * min_cycles or float(x.sum()) <= 0.0:
        return failed

    acf = _autocorrelation(x)
    max_lag = n // min_cycles
    if max_lag < 2:
        return failed

    # Local maxima strictly inside (0, max_lag)
    candidate = None
    for lag in range(1, max_lag):
        left = acf[lag - 1]
        right = acf[lag + 1] if lag + 1 < n else -np.inf
        if acf[lag] >= left and acf[lag] > right and acf[lag] >= min_strength:
            candidate = lag
            break
    if candidate is None:
        return failed

    # Parabolic refinement of the peak position for sub-bin accuracy.
    lag = candidate
    if 1 <= lag < n - 1:
        y0, y1, y2 = acf[lag - 1], acf[lag], acf[lag + 1]
        denom = y0 - 2 * y1 + y2
        delta = 0.0 if denom == 0 else 0.5 * (y0 - y2) / denom
        refined = lag + float(np.clip(delta, -0.5, 0.5))
    else:
        refined = float(lag)

    return AutocorrDetection(
        periodic=True,
        period=refined * signal.bin_width,
        strength=float(acf[lag]),
        lag=lag,
    )
