"""Autocorrelation-based periodicity detection.

Second signal-processing baseline: the normalized autocorrelation of the
activity signal peaks at lags that are multiples of the period.  More
robust than the DFT to duty-cycle asymmetry (short bursts, long idle),
less precise for closely-spaced mixtures — both properties are exercised
by the ABL-PERIOD benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import get_backend
from .activity import ActivitySignal

__all__ = ["AutocorrDetection", "detect_periodicity_autocorr"]


@dataclass(slots=True, frozen=True)
class AutocorrDetection:
    periodic: bool
    #: Estimated period in seconds (NaN when not periodic).
    period: float
    #: Autocorrelation value at the detected lag (0..1).
    strength: float
    #: Detected lag in bins.
    lag: int


def _autocorrelation(x: np.ndarray) -> np.ndarray:
    """Biased normalized autocorrelation via FFT, r[0] == 1."""
    x = x - x.mean()
    n = len(x)
    f = np.fft.rfft(x, 2 * n)
    acf = np.fft.irfft(f * np.conj(f))[:n]
    if acf[0] <= 0:
        return np.zeros(n)
    return acf / acf[0]


def detect_periodicity_autocorr(
    signal: ActivitySignal,
    *,
    min_strength: float = 0.2,
    min_cycles: int = 3,
    backend: str | None = None,
) -> AutocorrDetection:
    """Detect periodicity from the first significant autocorrelation peak.

    A lag qualifies when it is a *strict* local maximum of the ACF
    (rises above the left neighbour, falls to the right), its value
    exceeds ``min_strength``, and at least ``min_cycles`` repetitions fit
    in the window.  The strict rise matters: a plateau test (``>=`` on
    the left) latches onto the monotone decay shoulder at lag 1 of any
    positively-autocorrelated signal and reports a bogus one-bin period.
    ``backend`` selects the peak-scan kernel (``None`` = vectorized).
    """
    x = np.asarray(signal.values, dtype=np.float64)
    n = len(x)
    failed = AutocorrDetection(periodic=False, period=float("nan"), strength=0.0, lag=0)
    if n < 2 * min_cycles or float(x.sum()) <= 0.0:
        return failed

    acf = _autocorrelation(x)
    max_lag = n // min_cycles
    if max_lag < 2:
        return failed

    # First strict local maximum inside (0, max_lag).
    lag = get_backend(backend).acf_peak_scan(acf, max_lag, min_strength)
    if lag < 0:
        return failed

    # Parabolic refinement of the peak for sub-bin accuracy; the refined
    # position is clamped to >= 1 bin (a sub-bin "period" is clock
    # noise, not a cadence) and the strength is the interpolated peak
    # height rather than the unrefined integer-lag sample.
    strength = float(acf[lag])
    if 1 <= lag < n - 1:
        y0, y1, y2 = float(acf[lag - 1]), float(acf[lag]), float(acf[lag + 1])
        denom = y0 - 2 * y1 + y2
        delta = 0.0 if denom == 0 else 0.5 * (y0 - y2) / denom
        delta = float(np.clip(delta, -0.5, 0.5))
        refined = max(lag + delta, 1.0)
        strength = y1 - 0.25 * (y0 - y2) * delta
    else:
        refined = float(lag)

    return AutocorrDetection(
        periodic=True,
        period=refined * signal.bin_width,
        strength=float(np.clip(strength, 0.0, 1.0)),
        lag=lag,
    )
