"""Signal-processing periodicity baselines (DFT and autocorrelation) and
the activity-signal builder they share."""

from .activity import ActivitySignal, bin_events, build_activity_signal
from .autocorr import AutocorrDetection, detect_periodicity_autocorr
from .dft import DftDetection, detect_periodicity_dft

__all__ = [
    "ActivitySignal",
    "bin_events",
    "build_activity_signal",
    "AutocorrDetection",
    "detect_periodicity_autocorr",
    "DftDetection",
    "detect_periodicity_dft",
]
