"""Activity-signal construction: turn an operation stream into an evenly
sampled time series.

Frequency-domain periodicity detection (paper ref. [24], Tarraf et al.,
"Capturing Periodic I/O Using Frequency Techniques") operates on a binned
bandwidth signal rather than on discrete operations.  This module builds
that signal under the same uniform-rate assumption used everywhere else
in the repo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..darshan.trace import OperationArray
from ..kernels import get_backend

__all__ = ["ActivitySignal", "build_activity_signal", "bin_events"]


@dataclass(slots=True, frozen=True)
class ActivitySignal:
    """Evenly-sampled I/O activity (bytes per bin)."""

    values: np.ndarray
    bin_width: float

    def __len__(self) -> int:
        return len(self.values)

    @property
    def duration(self) -> float:
        return len(self.values) * self.bin_width

    @property
    def total(self) -> float:
        return float(self.values.sum())

    def times(self) -> np.ndarray:
        """Bin centers in seconds."""
        return (np.arange(len(self.values)) + 0.5) * self.bin_width


def build_activity_signal(
    ops: OperationArray,
    run_time: float,
    n_bins: int | None = None,
    bin_width: float | None = None,
    *,
    backend: str | None = None,
) -> ActivitySignal:
    """Bin operation volumes into an evenly sampled signal.

    Exactly one of ``n_bins`` / ``bin_width`` may be given; the default is
    1024 bins (enough spectral resolution for periods down to
    ``run_time / 512``).  Each operation's volume is spread uniformly over
    its window; boundary bins receive pro-rata shares.  ``backend``
    selects the binning kernel (``None`` = vectorized default).
    """
    if run_time <= 0:
        raise ValueError("run_time must be positive")
    if n_bins is not None and bin_width is not None:
        raise ValueError("give n_bins or bin_width, not both")
    if bin_width is not None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        n_bins = max(1, int(np.ceil(run_time / bin_width)))
    elif n_bins is None:
        n_bins = 1024
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    width = run_time / n_bins
    if len(ops) == 0:
        return ActivitySignal(
            values=np.zeros(n_bins, dtype=np.float64), bin_width=width
        )

    starts = np.clip(ops.starts, 0.0, run_time)
    ends = np.clip(ops.ends, 0.0, run_time)
    values = get_backend(backend).bin_activity(
        starts, ends, ops.volumes, run_time, n_bins
    )
    return ActivitySignal(values=values, bin_width=width)


def bin_events(
    times: np.ndarray, counts: np.ndarray, run_time: float, bin_width: float = 1.0
) -> np.ndarray:
    """Bin a (time, count) event stream into fixed-width bins.

    This is the per-second metadata request rate builder (§III-B3c uses
    one-second bins for the 250 req/s spike rule).
    """
    if run_time <= 0:
        raise ValueError("run_time must be positive")
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    n_bins = max(1, int(np.ceil(run_time / bin_width)))
    if len(times) == 0:
        return np.zeros(n_bins, dtype=np.float64)
    idx = np.clip((np.asarray(times) / bin_width).astype(np.int64), 0, n_bins - 1)
    return np.bincount(idx, weights=np.asarray(counts, dtype=np.float64), minlength=n_bins)
