"""Tolerance-based timestamp comparison.

Darshan timestamps survive several float round-trips (binary pack, JSON,
merge arithmetic); exact ``==`` on them is a latent platform-dependent
bug, which lint rule MOS004 rejects pipeline-wide.  This module is the
one shared definition of "equal at clock resolution".

It lives at the bottom of the import graph (``darshan.trace`` needs it,
and ``core.thresholds`` sits *above* ``darshan.trace`` via the merge
configuration) and is re-exported by :mod:`repro.core.thresholds`, the
documented home of every pipeline tunable.
"""

from __future__ import annotations

__all__ = ["TIME_TOLERANCE_S", "close_to"]

#: Tolerance for comparing trace timestamps and offsets (seconds).
#: A microsecond is far below Darshan's actual clock resolution while
#: far above accumulated float rounding error.
TIME_TOLERANCE_S = 1e-6


def close_to(a: float, b: float, tol: float = TIME_TOLERANCE_S) -> bool:
    """Tolerance-based equality for timestamps and offsets.

    The pipeline-wide replacement for exact float ``==`` on temporal
    values: ``close_to(end, start)`` asks "is this interval
    instantaneous at clock resolution", which is the question every
    exact comparison in the codebase was actually trying to ask.
    Accepts numpy arrays and broadcasts elementwise.
    """
    return abs(a - b) <= tol
