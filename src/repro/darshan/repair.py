"""Best-effort repair of corrupted traces (extension experiment).

MOSAIC evicts corrupted traces outright — 32% of the Blue Waters 2019
corpus (Fig. 3).  This module implements the obvious alternative:
conservative repair heuristics for each violation class, so the funnel
experiment can quantify how much of the evicted data is mechanically
recoverable (and DESIGN.md can discuss why eviction is still the safer
default: a repaired record is a guess about what the instrumentation
meant to write).

Repairs are conservative by construction:

* inverted windows are swapped (pure transposition errors);
* timestamps slightly past the job end are clamped; wildly past it the
  record is dropped;
* the paper's dealloc-before-end case extends the close timestamp to
  the recorded activity end (the activity evidently happened);
* records with negative counters or byte counts without windows are
  dropped entirely — their content cannot be trusted;
* a negative runtime or non-positive rank count invalidates the whole
  trace: unrepairable.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from .records import FileRecord
from .trace import Trace
from .validate import END_SLACK, validate_trace

__all__ = ["RepairOutcome", "repair_trace"]

#: Records whose timestamps exceed the runtime by more than this factor
#: are dropped instead of clamped.
MAX_CLAMP_FACTOR = 1.5


@dataclass(slots=True)
class RepairOutcome:
    """Result of one repair attempt."""

    trace: Trace
    #: True when the repaired trace passes validation.
    repaired: bool
    #: Human-readable log of what was changed.
    actions: list[str] = field(default_factory=list)
    #: Number of records dropped as unrecoverable.
    n_dropped_records: int = 0


def _fix_record(rec: FileRecord, run_time: float, actions: list[str]) -> bool:
    """Repair one record in place; return False to drop it."""
    name = f"record {rec.file_id}/{rec.rank}"

    for label in ("opens", "closes", "seeks", "stats", "reads", "writes",
                  "bytes_read", "bytes_written"):
        if getattr(rec, label) < 0:
            actions.append(f"drop {name}: negative {label}")
            return False

    hi = run_time + END_SLACK
    for prefix, bytes_attr in (("read", "bytes_read"), ("write", "bytes_written")):
        lo_attr, hi_attr = f"{prefix}_start", f"{prefix}_end"
        lo, hi_ts = getattr(rec, lo_attr), getattr(rec, hi_attr)
        nbytes = getattr(rec, bytes_attr)
        present = lo >= 0.0 or hi_ts >= 0.0
        if nbytes > 0 and not present:
            actions.append(f"drop {name}: {prefix} bytes without window")
            return False
        if not present:
            continue
        if lo < 0.0 or hi_ts < 0.0:
            actions.append(f"drop {name}: half-open {prefix} window")
            return False
        if hi_ts < lo:
            setattr(rec, lo_attr, hi_ts)
            setattr(rec, hi_attr, lo)
            lo, hi_ts = hi_ts, lo
            actions.append(f"swap inverted {prefix} window of {name}")
        if hi_ts > hi:
            if hi_ts > MAX_CLAMP_FACTOR * max(run_time, 1.0):
                actions.append(f"drop {name}: {prefix} window far past job end")
                return False
            setattr(rec, hi_attr, run_time)
            setattr(rec, lo_attr, min(lo, run_time))
            actions.append(f"clamp {prefix} window of {name} to runtime")

    if rec.open_start >= 0.0 and rec.close_end >= 0.0:
        if rec.close_end < rec.open_start:
            rec.open_start, rec.close_end = rec.close_end, rec.open_start
            actions.append(f"swap inverted metadata window of {name}")
        last_activity = max(rec.read_end, rec.write_end)
        if last_activity >= 0.0 and rec.close_end < last_activity:
            # the paper's dealloc-before-end case: the data window proves
            # the file was still in use, so trust it
            rec.close_end = last_activity
            actions.append(f"extend close of {name} to activity end")
        if rec.close_end > hi:
            if rec.close_end > MAX_CLAMP_FACTOR * max(run_time, 1.0):
                actions.append(f"drop {name}: metadata window far past job end")
                return False
            rec.close_end = run_time
            rec.open_start = min(rec.open_start, run_time)
            actions.append(f"clamp metadata window of {name}")
    elif rec.opens > 0:
        anchor = max(rec.read_start, rec.write_start, 0.0)
        rec.open_start = anchor
        rec.close_end = max(rec.read_end, rec.write_end, anchor)
        actions.append(f"reconstruct metadata window of {name} from activity")
    return True


def repair_trace(trace: Trace) -> RepairOutcome:
    """Attempt to repair ``trace``; never mutates the input.

    Valid traces come back untouched with ``repaired=True`` and no
    actions.
    """
    if validate_trace(trace).valid:
        return RepairOutcome(trace=trace, repaired=True)

    run_time = trace.meta.run_time
    if run_time <= 0.0 or trace.meta.nprocs <= 0:
        return RepairOutcome(
            trace=trace,
            repaired=False,
            actions=["unrepairable: corrupt job header"],
        )

    fixed = copy.deepcopy(trace)
    actions: list[str] = []
    kept: list[FileRecord] = []
    dropped = 0
    for rec in fixed.records:
        if _fix_record(rec, run_time, actions):
            kept.append(rec)
        else:
            dropped += 1
    fixed.records = kept

    ok = validate_trace(fixed).valid
    if not ok:
        actions.append("residual violations after repair")
    return RepairOutcome(
        trace=fixed, repaired=ok, actions=actions, n_dropped_records=dropped
    )
