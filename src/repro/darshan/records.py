"""Record-level data model for Darshan-equivalent traces.

A trace is a :class:`~repro.darshan.trace.Trace`: one
:class:`JobMeta` plus a list of :class:`FileRecord`.  A ``FileRecord``
mirrors what the Darshan POSIX module keeps for one (file, rank) pair:
aggregate byte/operation counters and the first/last timestamps of read,
write and metadata activity.  There is intentionally *no* per-operation
event list — Blue Waters ran without DXT (see :mod:`repro.darshan.counters`).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Any

from . import counters as C

__all__ = ["JobMeta", "FileRecord"]


@dataclass(slots=True)
class JobMeta:
    """Job-level header of a trace (Darshan job record equivalent).

    Timestamps are POSIX epoch seconds; all record timestamps are
    *relative* to :attr:`start_time`, matching Darshan fcounters.
    """

    job_id: int
    uid: int
    exe: str
    nprocs: int
    start_time: float
    end_time: float
    machine: str = "bluewaters-syn)".replace(")", "")  # keep literal simple
    partition: str = "scratch"

    def __post_init__(self) -> None:
        # Normalise exe to its basename-like identity: Darshan stores the
        # full command line; MOSAIC's dedup keys on the executable name.
        self.exe = str(self.exe)

    @property
    def run_time(self) -> float:
        """Wall-clock duration of the job in seconds."""
        return self.end_time - self.start_time

    @property
    def app_key(self) -> tuple[int, str]:
        """Deduplication key: MOSAIC assumes all executions of an
        application *by a given user* share I/O behaviour (§III-B1)."""
        return (self.uid, self.exe)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "JobMeta":
        return cls(
            job_id=int(d["job_id"]),
            uid=int(d["uid"]),
            exe=str(d["exe"]),
            nprocs=int(d["nprocs"]),
            start_time=float(d["start_time"]),
            end_time=float(d["end_time"]),
            machine=str(d.get("machine", "bluewaters-syn")),
            partition=str(d.get("partition", "scratch")),
        )


@dataclass(slots=True)
class FileRecord:
    """Aggregated POSIX activity of one (file, rank) pair.

    Timestamps are seconds relative to job start; ``-1.0``
    (:data:`repro.darshan.counters.NO_TIMESTAMP`) means "never happened".
    ``rank == -1`` marks a shared record (file accessed collectively; the
    counters are then totals across all ranks, as real Darshan reduces
    shared files at finalize time).
    """

    file_id: int
    file_name: str
    rank: int

    # metadata counters
    opens: int = 0
    closes: int = 0
    seeks: int = 0
    stats: int = 0

    # data counters
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    # fcounters (seconds relative to job start)
    open_start: float = C.NO_TIMESTAMP
    close_end: float = C.NO_TIMESTAMP
    read_start: float = C.NO_TIMESTAMP
    read_end: float = C.NO_TIMESTAMP
    write_start: float = C.NO_TIMESTAMP
    write_end: float = C.NO_TIMESTAMP
    read_time: float = 0.0
    write_time: float = 0.0
    meta_time: float = 0.0

    # ------------------------------------------------------------------
    @property
    def metadata_ops(self) -> int:
        """Total metadata requests attributed to this record.

        Matches the paper's §III-B3c accounting: OPEN + CLOSE + SEEK
        (SEEKs are assumed co-located with OPENs because Blue Waters-era
        Darshan did not timestamp them).  STATs are tracked but — like in
        the paper — not part of the spike accounting.
        """
        return self.opens + self.closes + self.seeks

    @property
    def has_read(self) -> bool:
        """True if the record carries any read activity."""
        return self.bytes_read > 0 and self.read_start >= 0.0

    @property
    def has_write(self) -> bool:
        """True if the record carries any write activity."""
        return self.bytes_written > 0 and self.write_start >= 0.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Export integer counters keyed by Darshan counter names."""
        return {
            C.POSIX_OPENS: self.opens,
            C.POSIX_CLOSES: self.closes,
            C.POSIX_SEEKS: self.seeks,
            C.POSIX_STATS: self.stats,
            C.POSIX_READS: self.reads,
            C.POSIX_WRITES: self.writes,
            C.POSIX_BYTES_READ: self.bytes_read,
            C.POSIX_BYTES_WRITTEN: self.bytes_written,
        }

    def fcounters(self) -> dict[str, float]:
        """Export float counters keyed by Darshan fcounter names."""
        return {
            C.POSIX_F_OPEN_START_TIMESTAMP: self.open_start,
            C.POSIX_F_CLOSE_END_TIMESTAMP: self.close_end,
            C.POSIX_F_READ_START_TIMESTAMP: self.read_start,
            C.POSIX_F_READ_END_TIMESTAMP: self.read_end,
            C.POSIX_F_WRITE_START_TIMESTAMP: self.write_start,
            C.POSIX_F_WRITE_END_TIMESTAMP: self.write_end,
            C.POSIX_F_READ_TIME: self.read_time,
            C.POSIX_F_WRITE_TIME: self.write_time,
            C.POSIX_F_META_TIME: self.meta_time,
        }

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "file_id": self.file_id,
            "file_name": self.file_name,
            "rank": self.rank,
        }
        d.update(self.counters())
        d.update(self.fcounters())
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FileRecord":
        return cls(
            file_id=int(d["file_id"]),
            file_name=str(d.get("file_name", "")),
            rank=int(d["rank"]),
            opens=int(d.get(C.POSIX_OPENS, 0)),
            closes=int(d.get(C.POSIX_CLOSES, 0)),
            seeks=int(d.get(C.POSIX_SEEKS, 0)),
            stats=int(d.get(C.POSIX_STATS, 0)),
            reads=int(d.get(C.POSIX_READS, 0)),
            writes=int(d.get(C.POSIX_WRITES, 0)),
            bytes_read=int(d.get(C.POSIX_BYTES_READ, 0)),
            bytes_written=int(d.get(C.POSIX_BYTES_WRITTEN, 0)),
            open_start=float(d.get(C.POSIX_F_OPEN_START_TIMESTAMP, C.NO_TIMESTAMP)),
            close_end=float(d.get(C.POSIX_F_CLOSE_END_TIMESTAMP, C.NO_TIMESTAMP)),
            read_start=float(d.get(C.POSIX_F_READ_START_TIMESTAMP, C.NO_TIMESTAMP)),
            read_end=float(d.get(C.POSIX_F_READ_END_TIMESTAMP, C.NO_TIMESTAMP)),
            write_start=float(d.get(C.POSIX_F_WRITE_START_TIMESTAMP, C.NO_TIMESTAMP)),
            write_end=float(d.get(C.POSIX_F_WRITE_END_TIMESTAMP, C.NO_TIMESTAMP)),
            read_time=float(d.get(C.POSIX_F_READ_TIME, 0.0)),
            write_time=float(d.get(C.POSIX_F_WRITE_TIME, 0.0)),
            meta_time=float(d.get(C.POSIX_F_META_TIME, 0.0)),
        )
