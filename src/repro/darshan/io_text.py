"""darshan-parser-style text codec.

Real-world Darshan logs are usually inspected through ``darshan-parser``,
which emits a ``# key: value`` header followed by one line per
(module, rank, record, counter) tuple.  This codec writes and reads that
shape, so output produced by actual Darshan tooling (restricted to the
POSIX counters MOSAIC consumes) can be ingested after a trivial
``darshan-parser <log> | grep POSIX`` and, conversely, our synthetic
traces can be inspected with standard text tools.

Line format::

    # darshan log version: 3.41
    # exe: <command line>
    # uid: <uid>
    # jobid: <jobid>
    # start_time: <epoch seconds>
    # end_time: <epoch seconds>
    # nprocs: <ranks>

    POSIX\t<rank>\t<record id>\t<COUNTER>\t<value>\t<file name>

Unknown counters are ignored (real logs carry dozens MOSAIC never
reads); structurally broken lines raise
:class:`~repro.darshan.errors.TraceFormatError`.

Decoding is hardened (docs/ROBUSTNESS.md): payload size, single-line
length, and the decoded record count are all capped by
:class:`~repro.darshan.limits.DecodeLimits`, non-UTF-8 files and
non-finite header times are refused, and overflowing counter values
raise :class:`TraceFormatError` rather than ``OverflowError``.
"""

from __future__ import annotations

import io
import math
import os

from . import counters as C
from .errors import TraceFormatError
from .limits import DEFAULT_LIMITS, DecodeLimits
from .records import FileRecord, JobMeta
from .trace import Trace

__all__ = ["dumps_text", "loads_text", "save_text", "load_text"]

_HEADER_KEYS = ("exe", "uid", "jobid", "start_time", "end_time", "nprocs")

#: counter name → FileRecord attribute, for both directions of the codec.
_INT_FIELDS = {
    C.POSIX_OPENS: "opens",
    C.POSIX_CLOSES: "closes",
    C.POSIX_SEEKS: "seeks",
    C.POSIX_STATS: "stats",
    C.POSIX_READS: "reads",
    C.POSIX_WRITES: "writes",
    C.POSIX_BYTES_READ: "bytes_read",
    C.POSIX_BYTES_WRITTEN: "bytes_written",
}
_FLOAT_FIELDS = {
    C.POSIX_F_OPEN_START_TIMESTAMP: "open_start",
    C.POSIX_F_CLOSE_END_TIMESTAMP: "close_end",
    C.POSIX_F_READ_START_TIMESTAMP: "read_start",
    C.POSIX_F_READ_END_TIMESTAMP: "read_end",
    C.POSIX_F_WRITE_START_TIMESTAMP: "write_start",
    C.POSIX_F_WRITE_END_TIMESTAMP: "write_end",
    C.POSIX_F_READ_TIME: "read_time",
    C.POSIX_F_WRITE_TIME: "write_time",
    C.POSIX_F_META_TIME: "meta_time",
}


def dumps_text(trace: Trace) -> str:
    """Serialize ``trace`` as darshan-parser-style text."""
    meta = trace.meta
    out = io.StringIO()
    out.write("# darshan log version: 3.41\n")
    out.write(f"# exe: {meta.exe}\n")
    out.write(f"# uid: {meta.uid}\n")
    out.write(f"# jobid: {meta.job_id}\n")
    out.write(f"# start_time: {meta.start_time}\n")
    out.write(f"# end_time: {meta.end_time}\n")
    out.write(f"# nprocs: {meta.nprocs}\n")
    out.write("\n# <module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>\n")
    for rec in trace.records:
        prefix = f"POSIX\t{rec.rank}\t{rec.file_id}"
        for counter, attr in _INT_FIELDS.items():
            out.write(f"{prefix}\t{counter}\t{getattr(rec, attr)}\t{rec.file_name}\n")
        for counter, attr in _FLOAT_FIELDS.items():
            out.write(
                f"{prefix}\t{counter}\t{getattr(rec, attr)!r}\t{rec.file_name}\n"
            )
    return out.getvalue()


def loads_text(payload: str, limits: DecodeLimits = DEFAULT_LIMITS) -> Trace:
    """Parse darshan-parser-style text back into a trace."""
    if len(payload) > limits.max_payload_bytes:
        raise TraceFormatError(
            f"trace payload of {len(payload)} chars exceeds decode limit "
            f"{limits.max_payload_bytes}"
        )
    header: dict[str, str] = {}
    records: dict[tuple[int, int], FileRecord] = {}
    order: list[tuple[int, int]] = []

    for lineno, raw in enumerate(payload.splitlines(), start=1):
        if len(raw) > limits.max_line_chars:
            raise TraceFormatError(
                f"line {lineno}: {len(raw)} chars exceeds decode limit "
                f"{limits.max_line_chars}"
            )
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if ":" in body:
                key, _, value = body.partition(":")
                header[key.strip()] = value.strip()
            continue
        parts = line.split("\t") if "\t" in line else line.split()
        if len(parts) < 5:
            raise TraceFormatError(f"line {lineno}: malformed record line")
        module, rank_s, rec_id_s, counter, value = parts[:5]
        file_name = parts[5] if len(parts) > 5 else ""
        if module != "POSIX":
            continue  # other modules are legal, just not modelled
        try:
            rank = int(rank_s)
            rec_id = int(rec_id_s)
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: bad rank/record id") from exc
        key = (rec_id, rank)
        if key not in records:
            if len(records) >= limits.max_records:
                raise TraceFormatError(
                    f"line {lineno}: record count exceeds decode limit "
                    f"{limits.max_records}"
                )
            records[key] = FileRecord(file_id=rec_id, file_name=file_name, rank=rank)
            order.append(key)
        rec = records[key]
        if file_name and not rec.file_name:
            rec.file_name = file_name
        try:
            if counter in _INT_FIELDS:
                setattr(rec, _INT_FIELDS[counter], int(float(value)))
            elif counter in _FLOAT_FIELDS:
                setattr(rec, _FLOAT_FIELDS[counter], float(value))
            # unknown counters: skipped (real logs carry many more)
        except (ValueError, OverflowError) as exc:
            # int(float("inf")) overflows rather than raising ValueError
            raise TraceFormatError(
                f"line {lineno}: bad value for {counter}: {value!r}"
            ) from exc

    missing = [k for k in _HEADER_KEYS if k not in header]
    if missing:
        raise TraceFormatError(f"missing header fields: {missing}")
    try:
        meta = JobMeta(
            job_id=int(header["jobid"]),
            uid=int(header["uid"]),
            exe=header["exe"],
            nprocs=int(header["nprocs"]),
            start_time=float(header["start_time"]),
            end_time=float(header["end_time"]),
        )
    except (ValueError, OverflowError) as exc:
        raise TraceFormatError(f"bad header value: {exc}") from exc
    for label, value in (("start_time", meta.start_time), ("end_time", meta.end_time)):
        if not math.isfinite(value):
            raise TraceFormatError(f"non-finite header {label}: {value!r}")
    return Trace(meta=meta, records=[records[k] for k in order])


def save_text(trace: Trace, path: str | os.PathLike[str]) -> None:
    """Write ``trace`` to ``path`` as darshan-parser text."""
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        fh.write(dumps_text(trace))


def load_text(
    path: str | os.PathLike[str], limits: DecodeLimits = DEFAULT_LIMITS
) -> Trace:
    """Read a trace written by :func:`save_text` (or extracted from real
    ``darshan-parser`` output)."""
    try:
        size = os.stat(os.fspath(path)).st_size
        if size > limits.max_payload_bytes:
            raise TraceFormatError(
                f"trace file {path!r} is {size} bytes, exceeding decode "
                f"limit {limits.max_payload_bytes}"
            )
        with open(os.fspath(path), "r", encoding="utf-8") as fh:
            return loads_text(fh.read(), limits)
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"cannot decode trace file {path!r}: {exc}") from exc
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path!r}: {exc}") from exc
