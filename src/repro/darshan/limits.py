"""Decode-time resource limits: the hard caps of the input-hardening layer.

The readers in :mod:`repro.darshan.io_binary` / ``io_json`` / ``io_text``
decode attacker-grade bytes: at Blue Waters scale a corpus contains
truncated files, header fields that lie about their section sizes, and
multi-gigabyte pathological traces.  Left unchecked, a lying length
field makes ``read(n)`` allocate the declared (not the actual) size, a
deeply-nested JSON document exhausts the parser stack, and a
repeated-line text log materializes millions of records.

:class:`DecodeLimits` is the single bundle of *hard* caps every reader
enforces **before allocating**.  Exceeding a cap raises
:class:`~repro.darshan.errors.TraceFormatError`, which the scan pass
counts as :attr:`~repro.darshan.validate.Violation.UNREADABLE` — the
trace lands in the corruption funnel instead of crashing or OOM-ing the
run.  These caps are deliberately generous (a legitimate huge trace must
decode; the *soft* per-trace governance that degrades oversized-but-real
traces lives in :mod:`repro.core.governor`).

See docs/ROBUSTNESS.md ("Input hardening & degradation ladder").
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import TraceFormatError

__all__ = ["DecodeLimits", "DEFAULT_LIMITS", "check_declared_size"]

MB = 1024 * 1024


@dataclass(slots=True, frozen=True)
class DecodeLimits:
    """Hard decode-time caps shared by all trace readers.

    Every field bounds one resource a hostile payload could otherwise
    inflate without limit; ``0`` never means "unlimited" here — these
    are DoS guards, so the validators reject non-positive caps.
    """

    #: Largest serialized payload any reader will materialize (checked
    #: against the actual file size before the first read).
    max_payload_bytes: int = 1024 * MB
    #: Most file records one decoded trace may carry, across formats.
    max_records: int = 5_000_000
    #: Largest string table / job-string section of a binary trace.
    max_string_bytes: int = 64 * MB
    #: Deepest JSON nesting accepted (the schema needs 4; bombs use
    #: thousands).
    max_json_depth: int = 32
    #: Longest single line of a darshan-parser text trace, in characters.
    max_line_chars: int = 1 * MB

    def __post_init__(self) -> None:
        for name in (
            "max_payload_bytes",
            "max_records",
            "max_string_bytes",
            "max_json_depth",
            "max_line_chars",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


#: Caps applied when a reader is not handed explicit limits.
DEFAULT_LIMITS = DecodeLimits()


def check_declared_size(
    declared: int, remaining: int, what: str, cap: int | None = None
) -> None:
    """Validate one header-declared section size *before* allocating.

    ``declared`` is whatever the (untrusted) header claims the next
    section occupies; ``remaining`` is how many payload bytes actually
    exist past the current cursor.  A negative, over-cap, or
    beyond-the-file claim raises :class:`TraceFormatError` — the lying
    length field is refused while the allocation is still zero bytes.
    """
    if declared < 0:
        raise TraceFormatError(f"negative declared size for {what}: {declared}")
    if cap is not None and declared > cap:
        raise TraceFormatError(
            f"declared size for {what} exceeds decode limit: "
            f"{declared} > {cap}"
        )
    if declared > remaining:
        raise TraceFormatError(
            f"truncated trace: header declares {declared} bytes for {what} "
            f"but only {remaining} remain"
        )
