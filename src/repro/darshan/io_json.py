"""JSON codec for Darshan-equivalent traces.

The JSON layout mirrors ``darshan-parser --json``-style output: a ``job``
header plus a list of POSIX records keyed by the canonical Darshan counter
names from :mod:`repro.darshan.counters`.  This is the interchange format
of the repo (human-inspectable, versioned); the binary codec in
:mod:`repro.darshan.io_binary` is the bulk-storage format.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from typing import Any

from .errors import TraceFormatError
from .trace import Trace

__all__ = ["dumps", "loads", "save_json", "load_json"]

FORMAT_NAME = "mosaic-darshan-json"
FORMAT_VERSION = 1


def dumps(trace: Trace, *, indent: int | None = None) -> str:
    """Serialize ``trace`` to a JSON string."""
    doc = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        **trace.to_dict(),
    }
    return json.dumps(doc, indent=indent)


def loads(payload: str | bytes) -> Trace:
    """Parse a trace from a JSON string produced by :func:`dumps`."""
    try:
        doc: dict[str, Any] = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"malformed JSON trace: {exc}") from exc
    if not isinstance(doc, dict):
        raise TraceFormatError("JSON trace must be an object")
    if doc.get("format") != FORMAT_NAME:
        raise TraceFormatError(
            f"not a {FORMAT_NAME} document (format={doc.get('format')!r})"
        )
    version = doc.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(f"unsupported trace version: {version!r}")
    try:
        return Trace.from_dict(doc)
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"invalid trace payload: {exc}") from exc


def save_json(trace: Trace, path: str | os.PathLike[str], *, indent: int | None = None) -> None:
    """Write ``trace`` to ``path``; ``.gz`` suffix enables gzip."""
    text = dumps(trace, indent=indent)
    path = os.fspath(path)
    if path.endswith(".gz"):
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(text)
    else:
        with io.open(path, "w", encoding="utf-8") as fh:
            fh.write(text)


def load_json(path: str | os.PathLike[str]) -> Trace:
    """Read a trace written by :func:`save_json`."""
    path = os.fspath(path)
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                return loads(fh.read())
        with io.open(path, "r", encoding="utf-8") as fh:
            return loads(fh.read())
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path!r}: {exc}") from exc
