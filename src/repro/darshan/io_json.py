"""JSON codec for Darshan-equivalent traces.

The JSON layout mirrors ``darshan-parser --json``-style output: a ``job``
header plus a list of POSIX records keyed by the canonical Darshan counter
names from :mod:`repro.darshan.counters`.  This is the interchange format
of the repo (human-inspectable, versioned); the binary codec in
:mod:`repro.darshan.io_binary` is the bulk-storage format.

Decoding is hardened against hostile documents (docs/ROBUSTNESS.md):
nesting depth is bounded by a pre-parse scan (depth bombs never reach
the recursive parser), record counts are capped, oversized payloads and
gzip decompression bombs are refused before materializing, and every
malformed-structure failure mode (wrong types, non-finite job times)
raises :class:`~repro.darshan.errors.TraceFormatError` instead of
leaking ``RecursionError``/``AttributeError`` out of the decode layer.
"""

from __future__ import annotations

import gzip
import io
import json
import math
import os
import zlib
from typing import Any

from .errors import TraceFormatError
from .limits import DEFAULT_LIMITS, DecodeLimits
from .trace import Trace

__all__ = ["dumps", "loads", "save_json", "load_json"]

FORMAT_NAME = "mosaic-darshan-json"
FORMAT_VERSION = 1


def dumps(trace: Trace, *, indent: int | None = None) -> str:
    """Serialize ``trace`` to a JSON string."""
    doc = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        **trace.to_dict(),
    }
    return json.dumps(doc, indent=indent)


def _check_depth(payload: str, max_depth: int) -> None:
    """Refuse documents nested deeper than ``max_depth``.

    One linear pass over the raw text tracking bracket nesting outside
    string literals — a million-deep ``[[[...`` bomb is rejected here,
    before the recursive JSON parser ever sees it.
    """
    depth = 0
    in_string = False
    escaped = False
    for ch in payload:
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
        elif ch in "[{":
            depth += 1
            if depth > max_depth:
                raise TraceFormatError(
                    f"JSON trace nested deeper than decode limit {max_depth}"
                )
        elif ch in "]}":
            depth = max(depth - 1, 0)


def _finite_meta_times(trace: Trace) -> None:
    """NaN/Infinity job times poison every downstream rate computation;
    JSON admits them (``Infinity`` literals), the trace schema does not."""
    for label, value in (
        ("start_time", trace.meta.start_time),
        ("end_time", trace.meta.end_time),
    ):
        if not math.isfinite(value):
            raise TraceFormatError(f"non-finite job {label}: {value!r}")


def loads(payload: str | bytes, limits: DecodeLimits = DEFAULT_LIMITS) -> Trace:
    """Parse a trace from a JSON string produced by :func:`dumps`."""
    if len(payload) > limits.max_payload_bytes:
        raise TraceFormatError(
            f"trace payload of {len(payload)} bytes exceeds decode limit "
            f"{limits.max_payload_bytes}"
        )
    if isinstance(payload, bytes):
        try:
            payload = payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"malformed JSON trace: {exc}") from exc
    _check_depth(payload, limits.max_json_depth)
    try:
        doc: dict[str, Any] = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError, RecursionError) as exc:
        raise TraceFormatError(f"malformed JSON trace: {exc}") from exc
    if not isinstance(doc, dict):
        raise TraceFormatError("JSON trace must be an object")
    if doc.get("format") != FORMAT_NAME:
        raise TraceFormatError(
            f"not a {FORMAT_NAME} document (format={doc.get('format')!r})"
        )
    version = doc.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(f"unsupported trace version: {version!r}")
    records = doc.get("records", [])
    if not isinstance(records, list):
        raise TraceFormatError("JSON trace 'records' must be a list")
    if len(records) > limits.max_records:
        raise TraceFormatError(
            f"record count {len(records)} exceeds decode limit "
            f"{limits.max_records}"
        )
    try:
        trace = Trace.from_dict(doc)
    except (KeyError, TypeError, ValueError, AttributeError, OverflowError) as exc:
        raise TraceFormatError(f"invalid trace payload: {exc}") from exc
    _finite_meta_times(trace)
    return trace


def save_json(trace: Trace, path: str | os.PathLike[str], *, indent: int | None = None) -> None:
    """Write ``trace`` to ``path``; ``.gz`` suffix enables gzip."""
    text = dumps(trace, indent=indent)
    path = os.fspath(path)
    if path.endswith(".gz"):
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(text)
    else:
        with io.open(path, "w", encoding="utf-8") as fh:
            fh.write(text)


def load_json(
    path: str | os.PathLike[str], limits: DecodeLimits = DEFAULT_LIMITS
) -> Trace:
    """Read a trace written by :func:`save_json`.

    Plain files are size-checked before reading; gzip members are read
    through a capped window so a decompression bomb is refused after at
    most ``limits.max_payload_bytes`` expanded bytes, not after filling
    RAM.
    """
    path = os.fspath(path)
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                text = fh.read(limits.max_payload_bytes + 1)
                if len(text) > limits.max_payload_bytes:
                    raise TraceFormatError(
                        f"gzip trace {path!r} expands past decode limit "
                        f"{limits.max_payload_bytes}"
                    )
                return loads(text, limits)
        size = os.stat(path).st_size
        if size > limits.max_payload_bytes:
            raise TraceFormatError(
                f"trace file {path!r} is {size} bytes, exceeding decode "
                f"limit {limits.max_payload_bytes}"
            )
        with io.open(path, "r", encoding="utf-8") as fh:
            return loads(fh.read(), limits)
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"cannot decode trace file {path!r}: {exc}") from exc
    except (OSError, EOFError, zlib.error) as exc:
        # gzip surfaces truncation as EOFError and corrupt streams as
        # BadGzipFile (OSError) or raw zlib.error, depending on where
        # the damage sits
        raise TraceFormatError(f"cannot read trace file {path!r}: {exc}") from exc
