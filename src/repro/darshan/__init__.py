"""Darshan-equivalent trace substrate.

Models the information content of Blue Waters-era Darshan POSIX logs
(aggregated per file between open and close, no DXT) with JSON and binary
codecs, structural validity checking, and NumPy operation views consumed
by the MOSAIC algorithms.
"""

from .errors import (
    DarshanError,
    TraceFormatError,
    TraceReadError,
    TraceUnavailableError,
    TraceValidationError,
    TraceWriteError,
)
from .limits import DEFAULT_LIMITS, DecodeLimits
from .records import FileRecord, JobMeta
from .trace import Direction, OperationArray, Trace
from .validate import ValidationReport, Violation, is_valid, validate_trace
from .io_json import dumps, load_json, loads, save_json
from .io_binary import (
    dumps_binary,
    load_binary,
    load_binary_meta,
    loads_binary,
    save_binary,
)
from .source import (
    DirectorySource,
    InMemorySource,
    SyntheticSource,
    TraceRef,
    TraceSource,
)
from .statistics import TraceSummary, summarize
from .repair import RepairOutcome, repair_trace
from .io_text import dumps_text, load_text, loads_text, save_text

__all__ = [
    "DarshanError",
    "TraceFormatError",
    "TraceReadError",
    "TraceUnavailableError",
    "TraceValidationError",
    "TraceWriteError",
    "DecodeLimits",
    "DEFAULT_LIMITS",
    "FileRecord",
    "JobMeta",
    "Direction",
    "OperationArray",
    "Trace",
    "ValidationReport",
    "Violation",
    "is_valid",
    "validate_trace",
    "dumps",
    "loads",
    "save_json",
    "load_json",
    "dumps_binary",
    "loads_binary",
    "save_binary",
    "load_binary",
    "load_binary_meta",
    "TraceRef",
    "TraceSource",
    "DirectorySource",
    "InMemorySource",
    "SyntheticSource",
    "TraceSummary",
    "summarize",
    "RepairOutcome",
    "repair_trace",
    "dumps_text",
    "load_text",
    "loads_text",
    "save_text",
]
