"""Compact binary codec for Darshan-equivalent traces.

Real Darshan logs are binary for a reason: a year of Blue Waters is
hundreds of thousands of files.  This codec packs a trace into a small
struct-based container so that corpus-scale experiments do not pay JSON
costs.  Layout (little endian):

``header``
    magic ``b"MOSD"`` · u16 version · u16 reserved · job struct ·
    u32 record count · u32 string-table length
``string table``
    UTF-8 file names joined by ``\\x00``
``records``
    fixed 112-byte struct per record (see ``_RECORD``)

The codec is deliberately strict: any truncation or bad magic raises
:class:`~repro.darshan.errors.TraceFormatError`, which the validity stage
counts as corruption — mirroring how MOSAIC evicts unreadable Darshan
files.

Decoding is *hardened* (docs/ROBUSTNESS.md): every header-declared
length (job strings, record count, string-table size) is validated
against the bytes that actually remain **before** anything is allocated,
so a header claiming a 2 GB string table in a 200-byte file is refused
at zero cost instead of allocating the lie.  The caps come from
:class:`~repro.darshan.limits.DecodeLimits`.
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO

from .errors import TraceFormatError, TraceWriteError
from .limits import DEFAULT_LIMITS, DecodeLimits, check_declared_size
from .records import FileRecord, JobMeta
from .trace import Trace

__all__ = [
    "save_binary",
    "load_binary",
    "load_binary_meta",
    "dumps_binary",
    "loads_binary",
]

MAGIC = b"MOSD"
VERSION = 1

_HEADER = struct.Struct("<4sHH")
# job_id, uid, nprocs, start, end, exe_len, machine_len, partition_len
_JOB = struct.Struct("<qqqddHHH")
_COUNTS = struct.Struct("<II")
# file_id rank opens closes seeks stats reads writes bytes_read bytes_written
# open_start close_end read_start read_end write_start write_end
# read_time write_time meta_time
_RECORD = struct.Struct("<qiqqqqqqqq9d")


def _pack_job(meta: JobMeta) -> bytes:
    exe = meta.exe.encode("utf-8")
    machine = meta.machine.encode("utf-8")
    partition = meta.partition.encode("utf-8")
    if max(len(exe), len(machine), len(partition)) > 0xFFFF:
        raise TraceWriteError("job string field too long")
    head = _JOB.pack(
        meta.job_id,
        meta.uid,
        meta.nprocs,
        meta.start_time,
        meta.end_time,
        len(exe),
        len(machine),
        len(partition),
    )
    return head + exe + machine + partition


def _read_exact(fh: BinaryIO, n: int, what: str) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise TraceFormatError(f"truncated trace: expected {n} bytes for {what}")
    return data


def _read_checked(fh: BinaryIO, n: int, remaining: int, what: str) -> bytes:
    """Read a header-declared section, refusing the claim before any
    allocation when it exceeds the bytes that actually remain."""
    check_declared_size(n, remaining, what)
    return _read_exact(fh, n, what)


def _decode_utf8(data: bytes, what: str) -> str:
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"invalid UTF-8 in {what}: {exc}") from exc


def _unpack_job(fh: BinaryIO, remaining: int, limits: DecodeLimits) -> JobMeta:
    """Decode the job header; ``remaining`` bounds the payload bytes
    past the fixed header so string lengths cannot lie."""
    raw = _read_exact(fh, _JOB.size, "job header")
    remaining -= _JOB.size
    job_id, uid, nprocs, start, end, n_exe, n_mach, n_part = _JOB.unpack(raw)
    cap = limits.max_string_bytes
    check_declared_size(n_exe + n_mach + n_part, remaining, "job strings", cap)
    exe = _decode_utf8(_read_checked(fh, n_exe, remaining, "exe string"), "exe string")
    remaining -= n_exe
    machine = _decode_utf8(
        _read_checked(fh, n_mach, remaining, "machine string"), "machine string"
    )
    remaining -= n_mach
    partition = _decode_utf8(
        _read_checked(fh, n_part, remaining, "partition string"), "partition string"
    )
    return JobMeta(
        job_id=job_id,
        uid=uid,
        exe=exe,
        nprocs=nprocs,
        start_time=start,
        end_time=end,
        machine=machine,
        partition=partition,
    )


def _pack_record(rec: FileRecord) -> bytes:
    try:
        return _RECORD.pack(
            rec.file_id,
            rec.rank,
            rec.opens,
            rec.closes,
            rec.seeks,
            rec.stats,
            rec.reads,
            rec.writes,
            rec.bytes_read,
            rec.bytes_written,
            rec.open_start,
            rec.close_end,
            rec.read_start,
            rec.read_end,
            rec.write_start,
            rec.write_end,
            rec.read_time,
            rec.write_time,
            rec.meta_time,
        )
    except struct.error as exc:
        raise TraceWriteError(f"counter out of range in record {rec.file_id}: {exc}") from exc


def dumps_binary(trace: Trace) -> bytes:
    """Serialize ``trace`` into the MOSD binary container."""
    names = [rec.file_name for rec in trace.records]
    table = "\x00".join(names).encode("utf-8")
    parts = [
        _HEADER.pack(MAGIC, VERSION, 0),
        _pack_job(trace.meta),
        _COUNTS.pack(len(trace.records), len(table)),
        table,
    ]
    parts.extend(_pack_record(rec) for rec in trace.records)
    return b"".join(parts)


def loads_binary(payload: bytes, limits: DecodeLimits = DEFAULT_LIMITS) -> Trace:
    """Parse the MOSD binary container produced by :func:`dumps_binary`.

    Every header-declared length is validated against ``len(payload)``
    before the corresponding section is allocated; a payload larger
    than ``limits.max_payload_bytes`` is refused outright.
    """
    import io as _io

    if len(payload) > limits.max_payload_bytes:
        raise TraceFormatError(
            f"trace payload of {len(payload)} bytes exceeds decode limit "
            f"{limits.max_payload_bytes}"
        )
    fh = _io.BytesIO(payload)
    raw = _read_exact(fh, _HEADER.size, "magic header")
    magic, version, _ = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic: {magic!r}")
    if version != VERSION:
        raise TraceFormatError(f"unsupported binary trace version: {version}")
    meta = _unpack_job(fh, len(payload) - fh.tell(), limits)
    n_records, n_table = _COUNTS.unpack(_read_exact(fh, _COUNTS.size, "counts"))
    remaining = len(payload) - fh.tell()
    if n_records > limits.max_records:
        raise TraceFormatError(
            f"record count {n_records} exceeds decode limit {limits.max_records}"
        )
    # the record section must account for every byte the header claims:
    # a lying count is refused before the first record is allocated
    check_declared_size(n_table, remaining, "string table", limits.max_string_bytes)
    check_declared_size(
        n_table + n_records * _RECORD.size, remaining, "record section"
    )
    table = _decode_utf8(
        _read_checked(fh, n_table, remaining, "string table"), "string table"
    )
    names = table.split("\x00") if table else []
    if names and len(names) != n_records:
        raise TraceFormatError(
            f"string table holds {len(names)} names for {n_records} records"
        )
    records: list[FileRecord] = []
    for i in range(n_records):
        vals = _RECORD.unpack(_read_exact(fh, _RECORD.size, f"record {i}"))
        records.append(
            FileRecord(
                file_id=vals[0],
                file_name=names[i] if names else "",
                rank=vals[1],
                opens=vals[2],
                closes=vals[3],
                seeks=vals[4],
                stats=vals[5],
                reads=vals[6],
                writes=vals[7],
                bytes_read=vals[8],
                bytes_written=vals[9],
                open_start=vals[10],
                close_end=vals[11],
                read_start=vals[12],
                read_end=vals[13],
                write_start=vals[14],
                write_end=vals[15],
                read_time=vals[16],
                write_time=vals[17],
                meta_time=vals[18],
            )
        )
    trailing = fh.read(1)
    if trailing:
        raise TraceFormatError("trailing bytes after last record")
    return Trace(meta=meta, records=records)


def save_binary(trace: Trace, path: str | os.PathLike[str]) -> None:
    """Write ``trace`` to ``path`` in MOSD binary form."""
    data = dumps_binary(trace)
    with open(os.fspath(path), "wb") as fh:
        fh.write(data)


def load_binary(
    path: str | os.PathLike[str], limits: DecodeLimits = DEFAULT_LIMITS
) -> Trace:
    """Read a trace written by :func:`save_binary`.

    The on-disk size is checked against ``limits.max_payload_bytes``
    before the file is read, so an oversized file never reaches memory.
    """
    try:
        size = os.stat(os.fspath(path)).st_size
        if size > limits.max_payload_bytes:
            raise TraceFormatError(
                f"trace file {path!r} is {size} bytes, exceeding decode "
                f"limit {limits.max_payload_bytes}"
            )
        with open(os.fspath(path), "rb") as fh:
            return loads_binary(fh.read(), limits)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path!r}: {exc}") from exc


def load_binary_meta(path: str | os.PathLike[str]) -> JobMeta:
    """Read only the job header of a MOSD file.

    Streaming scans use this to inspect a trace's identity (job id,
    user, executable, runtime) without paying for its record section —
    the header is a few dozen bytes regardless of trace size.  Raises
    :class:`TraceFormatError` on bad magic, unsupported version, or a
    header truncated before the job strings end.
    """
    try:
        size = os.stat(os.fspath(path)).st_size
        with open(os.fspath(path), "rb") as fh:
            raw = _read_exact(fh, _HEADER.size, "magic header")
            magic, version, _ = _HEADER.unpack(raw)
            if magic != MAGIC:
                raise TraceFormatError(f"bad magic: {magic!r}")
            if version != VERSION:
                raise TraceFormatError(
                    f"unsupported binary trace version: {version}"
                )
            return _unpack_job(fh, size - _HEADER.size, DEFAULT_LIMITS)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path!r}: {exc}") from exc
